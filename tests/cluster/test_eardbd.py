"""EARDBD aggregation tier: batching, bounded buffer, reconciliation."""

import pytest

from repro.cluster.eardbd import Eardbd, EardbdConfig, NodeReport
from repro.ear.accounting import AccountingDB, NodeJobRecord
from repro.errors import ConfigError, ExperimentError
from repro.telemetry.recorder import EventRecorder


def report(job_id: int, node_id: int, *, policy: str = "min_energy") -> NodeReport:
    return NodeReport(
        job_id=job_id,
        workload="synt",
        policy=policy,
        cpu_policy_th=0.1,
        unc_policy_th=0.05,
        node=NodeJobRecord(
            node_id=node_id,
            seconds=10.0,
            dc_energy_j=3000.0,
            avg_cpu_freq_ghz=2.4,
            avg_imc_freq_ghz=2.0,
        ),
    )


class TestBatching:
    def test_reports_buffer_until_flush(self):
        db = AccountingDB()
        daemon = Eardbd(db)
        assert daemon.submit(report(1, 0), time_s=1.0)
        assert daemon.submit(report(1, 1), time_s=2.0)
        assert db.node_rows() == 0 and daemon.pending == 2
        assert daemon.flush(time_s=30.0) == 2
        assert db.node_rows() == 2 and daemon.pending == 0

    def test_job_grows_across_flushes(self):
        db = AccountingDB()
        daemon = Eardbd(db)
        daemon.submit(report(1, 0), time_s=1.0)
        daemon.flush(time_s=30.0)
        daemon.submit(report(1, 1), time_s=31.0)
        daemon.flush(time_s=60.0)
        rec = db.job(1)
        assert [n.node_id for n in rec.nodes] == [0, 1]
        assert rec.dc_energy_j == pytest.approx(6000.0)

    def test_flush_on_empty_buffer_is_fine(self):
        daemon = Eardbd(AccountingDB())
        assert daemon.flush(time_s=30.0) == 0
        assert daemon.stats.flushes == 1


class TestBoundedBuffer:
    def test_overflow_drops_and_counts(self):
        db = AccountingDB()
        daemon = Eardbd(db, EardbdConfig(buffer_limit=2))
        assert daemon.submit(report(1, 0), time_s=0.0)
        assert daemon.submit(report(1, 1), time_s=0.0)
        assert not daemon.submit(report(1, 2), time_s=0.0)
        assert daemon.stats.dropped == 1 and daemon.pending == 2
        daemon.flush(time_s=30.0)
        # the drop is permanent: the DB has only the two buffered rows
        assert db.node_rows() == 2

    def test_flush_frees_space(self):
        daemon = Eardbd(AccountingDB(), EardbdConfig(buffer_limit=1))
        daemon.submit(report(1, 0), time_s=0.0)
        daemon.flush(time_s=30.0)
        assert daemon.submit(report(1, 1), time_s=31.0)
        assert daemon.stats.dropped == 0

    def test_drop_emits_telemetry(self):
        recorder = EventRecorder(node=-1)
        daemon = Eardbd(
            AccountingDB(), EardbdConfig(buffer_limit=1), telemetry=recorder
        )
        daemon.submit(report(1, 0), time_s=0.0)
        daemon.submit(report(1, 1), time_s=5.0)
        drops = [e for e in recorder.events if e.kind == "drop"]
        assert len(drops) == 1
        assert drops[0].subsystem == "eardbd"
        assert drops[0].payload_dict["node_id"] == 1

    def test_flush_emits_telemetry(self):
        recorder = EventRecorder(node=-1)
        daemon = Eardbd(AccountingDB(), telemetry=recorder)
        daemon.submit(report(1, 0), time_s=0.0)
        daemon.flush(time_s=30.0)
        flushes = [e for e in recorder.events if e.kind == "flush"]
        assert len(flushes) == 1
        assert flushes[0].payload_dict["rows"] == 1


class TestReconciliation:
    def test_conservation_law_holds_throughout(self):
        db = AccountingDB()
        daemon = Eardbd(db, EardbdConfig(buffer_limit=3))
        for node_id in range(5):
            daemon.submit(report(1, node_id), time_s=float(node_id))
            assert daemon.stats.reconciles_with(db, pending=daemon.pending)
        daemon.flush(time_s=30.0)
        assert daemon.stats.reconciles_with(db)
        assert daemon.stats.received == 5
        assert daemon.stats.forwarded == 3
        assert daemon.stats.dropped == 2

    def test_reconciliation_detects_foreign_writes(self):
        db = AccountingDB()
        daemon = Eardbd(db)
        daemon.submit(report(1, 0), time_s=0.0)
        daemon.flush(time_s=30.0)
        db.upsert_nodes(report(2, 0).job_record())  # not via the daemon
        assert not daemon.stats.reconciles_with(db)


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            EardbdConfig(flush_interval_s=0.0)
        with pytest.raises(ConfigError):
            EardbdConfig(buffer_limit=0)

    def test_conflicting_metadata_rejected_at_flush(self):
        daemon = Eardbd(AccountingDB())
        daemon.submit(report(1, 0, policy="min_energy"), time_s=0.0)
        daemon.submit(report(1, 1, policy="min_time"), time_s=0.0)
        with pytest.raises(ExperimentError, match="conflicting policy"):
            daemon.flush(time_s=30.0)

    def test_duplicate_node_rejected_at_flush(self):
        daemon = Eardbd(AccountingDB())
        daemon.submit(report(1, 0), time_s=0.0)
        daemon.submit(report(1, 0), time_s=1.0)
        with pytest.raises(ExperimentError, match="reported twice"):
            daemon.flush(time_s=30.0)
