"""ClusterSimulation: scheduling, determinism, EARGM actuation."""

import pytest

from repro.cluster.eardbd import EardbdConfig
from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceConfig, TraceJob, generate_trace
from repro.ear.accounting import AccountingDB
from repro.ear.config import EarConfig
from repro.ear.eargm import EargmConfig, WarningLevel
from repro.errors import ConfigError, ExperimentError
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.experiments.resilience import reference_fault_plan
from repro.hw.node import SD530
from repro.workloads.generator import synthetic_workload


def wl(name, *, n_nodes=1, n_iterations=40, core=0.8, unc=0.08, mem=0.1):
    return synthetic_workload(
        name=name,
        node_config=SD530,
        core_share=core,
        unc_share=unc,
        mem_share=mem,
        n_nodes=n_nodes,
        n_iterations=n_iterations,
    )


def tj(index, submit_s, workload, *, seed=1, margin=1.3):
    return TraceJob(
        index=index,
        submit_s=submit_s,
        workload=workload,
        seed=seed,
        est_time_s=workload.total_ref_time_s * margin,
    )


def fresh_pool():
    return ExperimentPool(jobs=1, cache=RunCache())


def run(trace, config, **kwargs):
    kwargs.setdefault("pool", fresh_pool())
    return ClusterSimulation(trace, config, **kwargs).run()


def small_trace(n_jobs=5, seed=0):
    return generate_trace(
        TraceConfig(n_jobs=n_jobs, seed=seed, scale=0.2, mean_interarrival_s=10.0)
    )


def narrow_trace(n_jobs=6):
    """Single-node jobs only, for clusters narrower than the default mix."""
    return tuple(
        tj(i, 5.0 * i, wl(f"n{i}", n_iterations=40), seed=i + 1)
        for i in range(n_jobs)
    )


class TestFcfs:
    def test_serial_on_one_node(self):
        trace = tuple(
            tj(i, float(i), wl(f"job{i}", n_iterations=20), seed=i + 1)
            for i in range(3)
        )
        report = run(trace, ClusterConfig(n_nodes=1))
        assert report.n_jobs == 3
        assert [j.index for j in report.jobs] == [0, 1, 2]
        starts = [j.start_s for j in report.jobs]
        ends = [j.end_s for j in report.jobs]
        # one node: strictly back to back, never overlapping
        for nxt, prev_end in zip(starts[1:], ends[:-1]):
            assert nxt >= prev_end - 1e-9
        assert report.n_backfilled == 0

    def test_wide_job_waits_for_nodes(self):
        narrow = wl("narrow", n_nodes=1, n_iterations=40)
        wide = wl("wide", n_nodes=2, n_iterations=20)
        trace = (tj(0, 0.0, narrow), tj(1, 0.0, narrow, seed=2), tj(2, 1.0, wide))
        report = run(trace, ClusterConfig(n_nodes=2, backfill=False))
        wide_start = next(j for j in report.jobs if j.workload == "wide").start_s
        narrow_ends = [j.end_s for j in report.jobs if j.workload == "narrow"]
        assert wide_start >= max(narrow_ends) - 1e-9

    def test_placement_disjoint_while_overlapping(self):
        trace = tuple(
            tj(i, 0.0, wl(f"p{i}", n_iterations=40), seed=i + 1) for i in range(4)
        )
        report = run(trace, ClusterConfig(n_nodes=4))
        used = [n for j in report.jobs for n in j.placement]
        assert sorted(used) == [0, 1, 2, 3]


class TestBackfill:
    def backfill_trace(self, with_short=True):
        # 4-node cluster: A (3 nodes, long) runs; B (4 nodes) queues at
        # its head; C (1 node, short) can slip into A's shadow; D
        # (1 node, long) would push B back and must stay queued.
        a = tj(0, 0.0, wl("A", n_nodes=3, n_iterations=90))
        b = tj(1, 1.0, wl("B", n_nodes=4, n_iterations=30))
        c = tj(2, 2.0, wl("C", n_nodes=1, n_iterations=12))
        d = tj(3, 3.0, wl("D", n_nodes=1, n_iterations=120))
        return (a, b, c, d) if with_short else (a, b, d)

    def test_short_job_backfills_long_does_not(self):
        report = run(self.backfill_trace(), ClusterConfig(n_nodes=4))
        by_name = {j.workload: j for j in report.jobs}
        assert by_name["C"].backfilled
        assert by_name["C"].start_s == pytest.approx(2.0)
        assert not by_name["D"].backfilled
        assert by_name["D"].start_s > by_name["B"].start_s - 1e-9
        assert report.n_backfilled == 1

    def test_backfill_never_delays_the_queue_head(self):
        with_c = run(self.backfill_trace(), ClusterConfig(n_nodes=4))
        without_c = run(self.backfill_trace(with_short=False), ClusterConfig(n_nodes=4))
        b_with = next(j for j in with_c.jobs if j.workload == "B")
        b_without = next(j for j in without_c.jobs if j.workload == "B")
        assert b_with.start_s <= b_without.start_s + 1e-9

    def test_no_backfill_flag_is_pure_fcfs(self):
        report = run(self.backfill_trace(), ClusterConfig(n_nodes=4, backfill=False))
        by_name = {j.workload: j for j in report.jobs}
        assert report.n_backfilled == 0
        # C arrives behind B and now has to wait for it
        assert by_name["C"].start_s >= by_name["B"].start_s - 1e-9


class TestDeterminism:
    def test_same_trace_same_report(self):
        trace = small_trace()
        config = ClusterConfig(n_nodes=4, ear_config=EarConfig(), telemetry=True)
        db_a, db_b = AccountingDB(), AccountingDB()
        a = run(trace, config, accounting=db_a)
        b = run(trace, config, accounting=db_b)
        assert a.to_dict() == b.to_dict()
        assert db_a.to_json() == db_b.to_json()
        assert a.telemetry == b.telemetry

    def test_serial_equals_parallel(self):
        trace = small_trace(n_jobs=6)
        config = ClusterConfig(n_nodes=4, ear_config=EarConfig(), telemetry=True)
        serial = ClusterSimulation(
            trace, config, pool=ExperimentPool(jobs=1, cache=RunCache())
        ).run()
        parallel = ClusterSimulation(
            trace, config, pool=ExperimentPool(jobs=2, cache=RunCache())
        ).run()
        assert serial.to_dict() == parallel.to_dict()
        assert serial.telemetry == parallel.telemetry


class TestEargmActuation:
    def test_tight_budget_caps_later_jobs(self):
        trace = narrow_trace(n_jobs=6)
        report = run(
            trace,
            ClusterConfig(
                n_nodes=2,
                ear_config=EarConfig(),
                eargm=EargmConfig(budget_j=2e4, horizon_s=600.0),
            ),
        )
        offsets = [j.pstate_offset for j in report.jobs]
        assert offsets[0] == 0
        assert max(offsets) > 0
        assert report.cap_changes >= 1
        assert report.consumed_j == pytest.approx(report.total_energy_j)
        assert report.final_level is not WarningLevel.OK

    def test_generous_budget_never_caps(self):
        trace = small_trace(n_jobs=4)
        report = run(
            trace,
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                eargm=EargmConfig(budget_j=1e12, horizon_s=1e6),
            ),
        )
        assert all(j.pstate_offset == 0 for j in report.jobs)
        assert report.cap_changes == 0
        assert report.final_level is WarningLevel.OK

    def test_no_eargm_reports_no_budget(self):
        report = run(small_trace(n_jobs=3), ClusterConfig(n_nodes=4))
        assert report.budget_j is None
        assert report.consumed_j is None
        assert report.final_level is None
        assert all(j.level_at_start is WarningLevel.OK for j in report.jobs)

    def test_cap_reaches_the_hardware(self):
        trace = narrow_trace(n_jobs=6)
        free = run(trace, ClusterConfig(n_nodes=2, ear_config=EarConfig()))
        capped = run(
            trace,
            ClusterConfig(
                n_nodes=2,
                ear_config=EarConfig(),
                eargm=EargmConfig(budget_j=2e4, horizon_s=600.0),
            ),
        )
        free_by_idx = {j.index: j for j in free.jobs}
        slower = [
            j
            for j in capped.jobs
            if j.pstate_offset > 0
            and j.avg_cpu_freq_ghz < free_by_idx[j.index].avg_cpu_freq_ghz - 0.1
        ]
        assert slower, "capped jobs should run at visibly lower CPU frequency"


class TestAccountingIntegration:
    def test_eardbd_reconciles_with_db(self):
        db = AccountingDB()
        trace = small_trace(n_jobs=5)
        report = run(
            trace,
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                eardbd=EardbdConfig(flush_interval_s=15.0),
            ),
            accounting=db,
        )
        assert report.eardbd.reconciles_with(db)
        node_count = sum(j.n_nodes for j in report.jobs)
        assert db.node_rows() == node_count
        assert report.eardbd.forwarded == node_count
        assert report.eardbd.dropped == 0

    def test_db_energy_matches_report(self):
        db = AccountingDB()
        report = run(
            small_trace(n_jobs=4),
            ClusterConfig(n_nodes=4, ear_config=EarConfig()),
            accounting=db,
        )
        assert db.total_energy_j() == pytest.approx(report.total_energy_j)

    def test_policy_recorded_per_job(self):
        db = AccountingDB()
        run(
            small_trace(n_jobs=3),
            ClusterConfig(n_nodes=4, ear_config=EarConfig(policy="min_time")),
            accounting=db,
        )
        assert {rec.policy for rec in db.jobs()} == {"min_time"}

    def test_monitoring_only_records_none_policy(self):
        db = AccountingDB()
        run(small_trace(n_jobs=3), ClusterConfig(n_nodes=4), accounting=db)
        assert {rec.policy for rec in db.jobs()} == {"none"}


class TestTelemetry:
    def test_lifecycle_events_recorded(self):
        trace = small_trace(n_jobs=4)
        report = run(
            trace, ClusterConfig(n_nodes=4, ear_config=EarConfig(), telemetry=True)
        )
        kinds = [
            (e.subsystem, e.kind) for e in report.telemetry.events
        ]
        assert kinds.count(("cluster", "job_submit")) == 4
        assert kinds.count(("cluster", "job_start")) == 4
        assert kinds.count(("cluster", "job_end")) == 4
        assert ("eardbd", "flush") in kinds

    def test_telemetry_off_by_default(self):
        report = run(small_trace(n_jobs=2), ClusterConfig(n_nodes=4))
        assert report.telemetry is None

    def test_event_times_ride_the_sim_clock(self):
        report = run(
            narrow_trace(n_jobs=4),
            ClusterConfig(n_nodes=2, ear_config=EarConfig(), telemetry=True),
        )
        times = [e.time_s for e in report.telemetry.events]
        assert times == sorted(times)
        assert times[-1] > 0.0


class TestFaults:
    def test_fault_plan_reaches_the_jobs(self):
        trace = small_trace(n_jobs=3)
        clean = run(trace, ClusterConfig(n_nodes=4, ear_config=EarConfig()))
        faulty = run(
            trace,
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                fault_plan=reference_fault_plan().scaled(5.0),
            ),
        )
        assert clean.n_jobs == faulty.n_jobs == 3
        # an intense fault regime must leave a visible mark somewhere
        assert clean.to_dict() != faulty.to_dict()


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSimulation((), ClusterConfig(), pool=fresh_pool())

    def test_too_wide_job_rejected(self):
        trace = (tj(0, 0.0, wl("wide", n_nodes=4, n_iterations=10)),)
        with pytest.raises(ConfigError, match="needs 4 nodes"):
            ClusterSimulation(trace, ClusterConfig(n_nodes=2), pool=fresh_pool())

    def test_zero_node_cluster_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(n_nodes=0)

    def test_simulation_runs_once(self):
        sim = ClusterSimulation(
            small_trace(n_jobs=2), ClusterConfig(n_nodes=4), pool=fresh_pool()
        )
        sim.run()
        with pytest.raises(ExperimentError, match="runs once"):
            sim.run()

    def test_utilisation_bounded(self):
        report = run(small_trace(n_jobs=5), ClusterConfig(n_nodes=4))
        assert 0.0 < report.utilisation <= 1.0
        assert report.makespan_s > 0.0
