"""Discrete-event core: ordering, tie-breaking, clock monotonicity."""

import pytest

from repro.cluster.events import Event, EventKind, EventQueue, SimClock
from repro.errors import ExperimentError


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.JOB_ARRIVAL, "b")
        q.push(1.0, EventKind.JOB_ARRIVAL, "a")
        q.push(9.0, EventKind.JOB_ARRIVAL, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_kind_priority(self):
        """Completions free nodes before arrivals see them; flushes run
        last so they ship the reports of same-instant completions."""
        q = EventQueue()
        q.push(2.0, EventKind.EARDBD_FLUSH)
        q.push(2.0, EventKind.JOB_ARRIVAL, "arrive")
        q.push(2.0, EventKind.JOB_FINISH, "finish")
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.JOB_FINISH,
            EventKind.JOB_ARRIVAL,
            EventKind.EARDBD_FLUSH,
        ]

    def test_same_time_same_kind_insertion_order(self):
        q = EventQueue()
        for name in ("first", "second", "third"):
            q.push(1.0, EventKind.JOB_ARRIVAL, name)
        assert [q.pop().payload for _ in range(3)] == ["first", "second", "third"]

    def test_pop_empty_raises(self):
        with pytest.raises(ExperimentError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ExperimentError):
            EventQueue().push(-1.0, EventKind.JOB_ARRIVAL)

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, EventKind.JOB_ARRIVAL)
        assert q and len(q) == 1

    def test_push_returns_event(self):
        event = EventQueue().push(3.0, EventKind.JOB_FINISH, "x")
        assert event == Event(3.0, EventKind.JOB_FINISH, "x")


class TestSimClock:
    def test_advances(self):
        clock = SimClock()
        clock.advance(4.5)
        assert clock.now == 4.5

    def test_refuses_to_run_backwards(self):
        clock = SimClock()
        clock.advance(10.0)
        with pytest.raises(ExperimentError):
            clock.advance(9.0)

    def test_same_instant_is_fine(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.advance(3.0)
        assert clock.now == 3.0
