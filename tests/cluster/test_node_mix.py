"""Heterogeneous node pools: mix parsing, layout, mixed scheduling.

A ``--node-mix`` cluster places each job entirely inside one processor
generation, retargets the workload to that generation's silicon, and
keeps the homogeneous scheduling path bit-identical when no mix is
given.  These tests pin all three properties plus the pool's node-id
bookkeeping and the per-die ``uncore/limit_write`` telemetry a mixed
run surfaces from non-MSR backends.
"""

import pytest

from repro.cluster.pool import GENERATIONS, NodePool, parse_node_mix
from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceJob
from repro.errors import ConfigError
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.hw.node import GRANITE_RAPIDS_NODE, SD530
from repro.sim.engine import run_workload
from repro.workloads.generator import synthetic_workload


def wl(name, *, n_nodes=1, n_iterations=30):
    return synthetic_workload(
        name=name,
        node_config=SD530,
        core_share=0.8,
        unc_share=0.08,
        mem_share=0.1,
        n_nodes=n_nodes,
        n_iterations=n_iterations,
    )


def tj(index, submit_s, workload, *, seed=1):
    return TraceJob(
        index=index,
        submit_s=submit_s,
        workload=workload,
        seed=seed,
        est_time_s=workload.total_ref_time_s * 1.3,
    )


def run(trace, config):
    pool = ExperimentPool(jobs=1, cache=RunCache())
    return ClusterSimulation(trace, config, pool=pool).run()


MIX = (("skylake", 2), ("graniterapids", 2))


# -- parsing ----------------------------------------------------------------


class TestParseNodeMix:
    def test_order_preserved(self):
        assert parse_node_mix("skylake=8,graniterapids=8") == (
            ("skylake", 8),
            ("graniterapids", 8),
        )
        assert parse_node_mix("graniterapids=1, skylake=3") == (
            ("graniterapids", 1),
            ("skylake", 3),
        )

    def test_malformed_entry(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_node_mix("skylake")

    def test_unknown_generation(self):
        with pytest.raises(ConfigError, match="unknown node generation"):
            parse_node_mix("itanium=4")

    def test_duplicate_generation(self):
        with pytest.raises(ConfigError, match="twice"):
            parse_node_mix("skylake=2,skylake=2")

    def test_non_integer_count(self):
        with pytest.raises(ConfigError, match="integer"):
            parse_node_mix("skylake=lots")

    def test_count_below_one(self):
        with pytest.raises(ConfigError, match=">= 1"):
            parse_node_mix("skylake=0")

    def test_empty_spec(self):
        with pytest.raises(ConfigError, match="at least one"):
            parse_node_mix(" , ")


# -- pool layout ------------------------------------------------------------


class TestNodePool:
    def test_contiguous_ranges_in_mix_order(self):
        pool = NodePool(MIX)
        assert pool.total == 4
        assert pool.node_ids("skylake") == range(0, 2)
        assert pool.node_ids("graniterapids") == range(2, 4)
        assert pool.generations == ("skylake", "graniterapids")
        assert pool.max_generation_size == 2

    def test_generation_of_and_config_of(self):
        pool = NodePool(MIX)
        assert pool.generation_of(0) == "skylake"
        assert pool.generation_of(3) == "graniterapids"
        assert pool.config_of(1) == SD530
        assert pool.config_of(2) == GRANITE_RAPIDS_NODE
        with pytest.raises(ConfigError):
            pool.generation_of(4)

    def test_broadwell_is_sysfs_backed(self):
        assert GENERATIONS["broadwell"].uncore_backend == "sysfs"
        assert GENERATIONS["skylake"].uncore_backend == "msr"
        assert GENERATIONS["graniterapids"].uncore_backend == "tpmi"

    def test_mix_must_total_n_nodes(self):
        with pytest.raises(ConfigError, match="totals"):
            ClusterConfig(n_nodes=8, node_mix=MIX)


# -- mixed scheduling -------------------------------------------------------


class TestMixedScheduling:
    def test_mixed_run_completes_within_generations(self):
        trace = tuple(
            tj(i, 2.0 * i, wl(f"m{i}", n_nodes=1 + i % 2), seed=i + 1)
            for i in range(6)
        )
        report = run(trace, ClusterConfig(n_nodes=4, node_mix=MIX))
        assert report.n_jobs == len(trace)
        pool = NodePool(MIX)
        for job in report.jobs:
            gens = {pool.generation_of(n) for n in job.placement}
            assert len(gens) == 1  # a job never spans generations

    def test_job_wider_than_any_generation_rejected(self):
        trace = (tj(0, 0.0, wl("wide", n_nodes=3)),)
        with pytest.raises(ConfigError, match="largest generation"):
            run(trace, ClusterConfig(n_nodes=4, node_mix=MIX))

    def test_single_generation_mix_matches_homogeneous(self):
        """A skylake-only mix must reproduce the homogeneous schedule."""
        trace = tuple(
            tj(i, 3.0 * i, wl(f"h{i}", n_nodes=1 + i % 2), seed=i + 1)
            for i in range(6)
        )
        plain = run(trace, ClusterConfig(n_nodes=3))
        mixed = run(trace, ClusterConfig(n_nodes=3, node_mix=(("skylake", 3),)))
        assert [j.placement for j in mixed.jobs] == [j.placement for j in plain.jobs]
        assert [j.start_s for j in mixed.jobs] == [j.start_s for j in plain.jobs]
        assert [j.end_s for j in mixed.jobs] == [j.end_s for j in plain.jobs]
        assert mixed.n_backfilled == plain.n_backfilled

    def test_overflow_jobs_retargeted_to_granite_rapids(self):
        """Jobs spilling past the Skylake partition run on GNR silicon."""
        trace = tuple(tj(i, 0.0, wl(f"r{i}"), seed=i + 1) for i in range(4))
        sim = ClusterSimulation(
            trace,
            ClusterConfig(n_nodes=4, node_mix=MIX),
            pool=ExperimentPool(jobs=1, cache=RunCache()),
        )
        starters = [sim._claim(job, backfilled=False) for job in trace]
        configs = [s.job.workload.node_config for s in starters]
        assert configs[:2] == [SD530, SD530]
        assert configs[2:] == [GRANITE_RAPIDS_NODE, GRANITE_RAPIDS_NODE]
        placements = [s.placement for s in starters]
        assert placements == [(0,), (1,), (2,), (3,)]


# -- per-die telemetry from a job's engine ----------------------------------


class TestJobTelemetry:
    def test_tpmi_job_surfaces_per_die_limit_writes(self):
        """What ``job_telemetry`` arms: node telemetry carries one
        ``uncore/limit_write`` per die write, with die identity."""
        workload = wl("tele").retargeted(GRANITE_RAPIDS_NODE)
        result = run_workload(workload, seed=1, telemetry=True, pin_uncore_ghz=1.5)
        events = [
            e
            for e in result.nodes[0].telemetry.events
            if e.subsystem == "uncore" and e.kind == "limit_write"
        ]
        assert events
        payloads = [e.payload_dict for e in events]
        assert all(p["backend"] == "tpmi" for p in payloads)
        assert {p["die"] for p in payloads} == {0, 1}
        assert {p["socket"] for p in payloads} == {0, 1}

    def test_msr_job_limit_writes_are_package_scoped(self):
        result = run_workload(wl("tele-msr"), seed=1, telemetry=True, pin_uncore_ghz=1.8)
        events = [
            e
            for e in result.nodes[0].telemetry.events
            if e.subsystem == "uncore" and e.kind == "limit_write"
        ]
        assert events
        payloads = [e.payload_dict for e in events]
        assert all(p["backend"] == "msr" for p in payloads)
        assert {p["die"] for p in payloads} == {0}
