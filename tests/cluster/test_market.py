"""The power-cap market: allocation regimes, conservation, integration.

The headline invariant (docs/POLICIES.md): the sum of live grants never
exceeds the budget — in any of the three allocation regimes, and at
every EARDBD flush tick of a full cluster campaign.
"""

import pytest

from repro.cluster.market import Grant, MarketConfig, PowerMarket
from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceConfig, generate_trace
from repro.ear.config import EarConfig
from repro.errors import ConfigError
from repro.experiments.parallel import ExperimentPool, RunCache

MKT = MarketConfig(budget_w=1500.0)
# per-node ladder value with the defaults: 8*4 + 3*12 = 68 W
SAVEABLE = MKT.saveable_w_per_node


def market(budget_w=1500.0, **overrides):
    return PowerMarket(MarketConfig(budget_w=budget_w, **overrides))


class TestConfig:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            MarketConfig(budget_w=0.0)

    def test_rejects_negative_ladder(self):
        with pytest.raises(ConfigError):
            MarketConfig(budget_w=100.0, max_imc_steps=-1)

    def test_saveable_is_full_ladder(self):
        assert SAVEABLE == 8 * 4.0 + 3 * 12.0


class TestPowerTable:
    def test_prior_until_observed(self):
        m = market()
        assert m.estimate_w_per_node("x") == 400.0
        m.observe("x", 311.0)
        assert m.estimate_w_per_node("x") == 311.0

    def test_last_write_wins(self):
        m = market()
        m.observe("x", 311.0)
        m.observe("x", 288.0)
        assert m.estimate_w_per_node("x") == 288.0

    def test_nonpositive_measurement_ignored(self):
        m = market()
        m.observe("x", 0.0)
        assert m.estimate_w_per_node("x") == 400.0


class TestAllocationRegimes:
    def test_slack_grants_needed(self):
        m = market(budget_w=1000.0)
        g = m.admit(1, "a", 2)  # needs 800 <= 1000
        assert g.granted_w == 800.0
        assert not g.capped

    def test_binding_floor_plus_prorata(self):
        # two 1-node jobs, needed 400 each, floor 332 each; budget 700:
        # headroom 700-664=36 over flexibility 136 -> share 36/136.
        m = market(budget_w=700.0)
        m.admit(1, "a", 1)
        g = m.admit(2, "b", 1)
        floor = 400.0 - SAVEABLE
        share = (700.0 - 2 * floor) / (800.0 - 2 * floor)
        expected = floor + SAVEABLE * share
        # job 1's grant froze at 400 (slack at its admission); job 2 is
        # clamped to the remaining headroom.
        assert g.granted_w == pytest.approx(min(expected, 700.0 - 400.0))

    def test_infeasible_squeezes_floors(self):
        m = market(budget_w=500.0)
        m.admit(1, "a", 1)  # granted 400 (slack)
        g = m.admit(2, "b", 1)
        # regime is infeasible only vs both floors: 2*332=664 > 500.
        # newcomer's unclamped share: 332 * 500/664; headroom is 100.
        assert g.granted_w == pytest.approx(100.0)
        assert g.imc_steps == MKT.max_imc_steps
        assert g.pstate_offset == MKT.max_pstate_offset

    def test_never_exceeds_budget(self):
        m = market(budget_w=900.0)
        for jid in range(6):
            m.admit(jid, f"w{jid}", 1)
            live = sum(
                m.grant_for(j).granted_w for j in range(jid + 1) if m.grant_for(j)
            )
            assert live <= 900.0 + 1e-9

    def test_release_frees_watts(self):
        m = market(budget_w=500.0)
        m.admit(1, "a", 1)
        m.release(1)
        g = m.admit(2, "b", 1)
        assert g.granted_w == 400.0
        assert not g.capped


class TestComplianceLadder:
    def test_uncapped_when_fully_granted(self):
        g = market(budget_w=4000.0).admit(1, "a", 4)
        assert g == Grant(job_id=1, granted_w=1600.0, imc_steps=0, pstate_offset=0)

    def test_uncore_pays_first(self):
        # 10 W/node deficit: 3 uncore steps, no P-state touched.
        m = market(budget_w=390.0)
        g = m.admit(1, "a", 1)
        assert g.imc_steps == 3
        assert g.pstate_offset == 0

    def test_pstates_only_after_ladder_exhausted(self):
        # 40 W/node deficit: 8 uncore steps cover 32 W, 1 P-state the rest.
        m = market(budget_w=360.0)
        g = m.admit(1, "a", 1)
        assert g.imc_steps == 8
        assert g.pstate_offset == 1

    def test_exact_step_boundary(self):
        # exactly 2 steps' worth of deficit must not round up to 3.
        m = market(budget_w=392.0)
        g = m.admit(1, "a", 1)
        assert g.imc_steps == 2
        assert g.pstate_offset == 0


class TestTick:
    def test_interval_records_live_state(self):
        m = market(budget_w=1000.0)
        m.admit(1, "a", 1)
        m.admit(2, "b", 1)
        i = m.tick(30.0)
        assert i.time_s == 30.0
        assert i.n_jobs == 2
        assert i.demand_w == 800.0
        assert i.granted_w == 800.0

    def test_stats_aggregate(self):
        m = market(budget_w=500.0)
        m.admit(1, "a", 1)
        m.admit(2, "b", 1)
        m.tick(30.0)
        m.release(1)
        m.tick(60.0)
        s = m.stats()
        assert s.n_jobs == 2
        assert s.n_capped_jobs == 1
        assert len(s.intervals) == 2
        assert s.peak_granted_w <= 500.0 + 1e-9
        assert s.to_dict()["intervals"][0]["granted_w"] == s.intervals[0].granted_w


# -- cluster integration ------------------------------------------------------


def small_trace(n_jobs=6, seed=0):
    return generate_trace(
        TraceConfig(n_jobs=n_jobs, seed=seed, scale=0.2, mean_interarrival_s=10.0)
    )


def run(trace, config):
    pool = ExperimentPool(jobs=1, cache=RunCache())
    return ClusterSimulation(trace, config, pool=pool).run()


class TestClusterIntegration:
    def test_conservation_every_interval(self):
        report = run(
            small_trace(),
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                market=MarketConfig(budget_w=800.0),
            ),
        )
        assert report.market is not None
        assert report.market.intervals  # the flush loop ticked
        for interval in report.market.intervals:
            if interval.n_jobs > 0:
                assert interval.granted_w <= interval.budget_w + 1e-9

    def test_binding_budget_caps_jobs(self):
        report = run(
            small_trace(),
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                market=MarketConfig(budget_w=700.0),
            ),
        )
        capped = [j for j in report.jobs if j.market_imc_steps > 0]
        assert report.market.n_capped_jobs > 0
        assert capped
        # every market-capped job carries its grant in the outcome row.
        assert all(j.granted_w is not None for j in report.jobs)

    def test_slack_budget_caps_nothing(self):
        report = run(
            small_trace(),
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                market=MarketConfig(budget_w=100000.0),
            ),
        )
        assert report.market.n_capped_jobs == 0
        assert all(j.market_imc_steps == 0 for j in report.jobs)

    def test_monitoring_campaign_untouched(self):
        # no EARL on the nodes -> nothing to comply -> no market at all.
        report = run(
            small_trace(),
            ClusterConfig(
                n_nodes=4,
                ear_config=None,
                market=MarketConfig(budget_w=700.0),
            ),
        )
        assert all(j.granted_w is None for j in report.jobs)
        assert all(j.market_imc_steps == 0 for j in report.jobs)

    def test_power_table_learned_from_finishes(self):
        report = run(
            small_trace(),
            ClusterConfig(
                n_nodes=4,
                ear_config=EarConfig(),
                market=MarketConfig(budget_w=5000.0),
            ),
        )
        table = dict(report.market.power_table)
        assert table  # finishes fed measurements back
        assert all(w > 0 for w in table.values())

    def test_deterministic(self):
        cfg = ClusterConfig(
            n_nodes=4,
            ear_config=EarConfig(),
            market=MarketConfig(budget_w=800.0),
        )
        a = run(small_trace(), cfg)
        b = run(small_trace(), cfg)
        assert a.market.to_dict() == b.market.to_dict()
        assert a.total_energy_j == b.total_energy_j

    def test_no_market_reports_none(self):
        report = run(small_trace(), ClusterConfig(n_nodes=4, ear_config=EarConfig()))
        assert report.market is None
        assert report.to_dict()["market"] is None
