"""Synthetic trace generation: determinism, burst shape, validation."""

import pytest

from repro.cluster.traces import TraceConfig, generate_trace, trace_workload_mix
from repro.errors import ConfigError


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(TraceConfig(n_jobs=20, seed=7))
        b = generate_trace(TraceConfig(n_jobs=20, seed=7))
        assert [(j.submit_s, j.workload.name, j.seed) for j in a] == [
            (j.submit_s, j.workload.name, j.seed) for j in b
        ]

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceConfig(n_jobs=20, seed=7))
        b = generate_trace(TraceConfig(n_jobs=20, seed=8))
        assert [(j.submit_s, j.seed) for j in a] != [(j.submit_s, j.seed) for j in b]


class TestShape:
    def test_burst_arrives_at_time_zero(self):
        trace = generate_trace(TraceConfig(n_jobs=8, seed=0, burst_fraction=0.5))
        assert [j.submit_s for j in trace[:4]] == [0.0] * 4
        assert all(j.submit_s > 0 for j in trace[4:])

    def test_arrivals_are_nondecreasing(self):
        trace = generate_trace(TraceConfig(n_jobs=30, seed=3))
        times = [j.submit_s for j in trace]
        assert times == sorted(times)

    def test_indices_sequential(self):
        trace = generate_trace(TraceConfig(n_jobs=6, seed=0))
        assert [j.index for j in trace] == list(range(6))

    def test_estimate_carries_margin(self):
        trace = generate_trace(TraceConfig(n_jobs=5, seed=0, est_margin=1.5))
        for job in trace:
            assert job.est_time_s == pytest.approx(
                job.workload.total_ref_time_s * 1.5
            )

    def test_scale_shrinks_workloads(self):
        full = generate_trace(TraceConfig(n_jobs=5, seed=0))
        half = generate_trace(TraceConfig(n_jobs=5, seed=0, scale=0.5))
        for f, h in zip(full, half):
            assert h.workload.total_ref_time_s < f.workload.total_ref_time_s

    def test_jobs_drawn_from_mix(self):
        names = {w.name for w, _ in trace_workload_mix()}
        trace = generate_trace(TraceConfig(n_jobs=40, seed=1))
        assert {j.workload.name for j in trace} <= names
        # a 40-job trace should exercise more than one workload
        assert len({j.workload.name for j in trace}) > 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_jobs": 0},
            {"mean_interarrival_s": 0.0},
            {"burst_fraction": -0.1},
            {"burst_fraction": 1.1},
            {"scale": 0.0},
            {"est_margin": 0.9},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TraceConfig(**kwargs)

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            generate_trace(TraceConfig(n_jobs=2), workloads=())

    def test_nonpositive_weight_rejected(self):
        (wl, _), *_ = trace_workload_mix()
        with pytest.raises(ConfigError):
            generate_trace(TraceConfig(n_jobs=2), workloads=((wl, 0.0),))
