"""Cluster campaign comparison: the paper's claim at cluster scale."""

import pytest

from repro.cluster.report import (
    compare_cluster_policies,
    render_cluster_report,
    render_comparison,
)
from repro.cluster.scheduler import ClusterConfig
from repro.cluster.traces import TraceConfig, generate_trace
from repro.ear.eargm import EargmConfig
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.experiments.runner import standard_configs


@pytest.fixture(scope="module")
def campaigns():
    """One 10-job trace replayed under none / me / me_eufs.

    Module-scoped: the comparison is the expensive part of this file
    and every test below reads from it.
    """
    trace = generate_trace(TraceConfig(n_jobs=10, seed=0, scale=0.5))
    return compare_cluster_policies(
        trace,
        ClusterConfig(n_nodes=6, telemetry=True),
        standard_configs(),
        pool=ExperimentPool(jobs=1, cache=RunCache()),
    )


class TestAcceptanceDemo:
    def test_me_eufs_beats_monitoring_on_cluster_energy(self, campaigns):
        saving = campaigns["me_eufs"].energy_saving_vs(campaigns["none"])
        assert saving > 0.0, "min_energy + eUFS must save cluster energy"

    def test_me_eufs_beats_plain_me(self, campaigns):
        assert (
            campaigns["me_eufs"].report.total_energy_j
            < campaigns["me"].report.total_energy_j
        )

    def test_makespan_penalty_bounded(self, campaigns):
        penalty = campaigns["me_eufs"].makespan_penalty_vs(campaigns["none"])
        assert penalty < 0.10, f"makespan penalty {penalty:.1%} exceeds 10%"

    def test_every_campaign_saw_the_same_trace(self, campaigns):
        submits = {
            name: tuple(j.submit_s for j in c.report.jobs)
            for name, c in campaigns.items()
        }
        assert len(set(submits.values())) == 1

    def test_accounting_kept_per_campaign(self, campaigns):
        for name, campaign in campaigns.items():
            assert campaign.accounting.node_rows() > 0
            assert campaign.report.eardbd.reconciles_with(campaign.accounting)
            expected = "none" if name == "none" else "min_energy"
            assert {r.policy for r in campaign.accounting.jobs()} == {expected}


class TestSavingsArithmetic:
    def test_saving_vs_self_is_zero(self, campaigns):
        none = campaigns["none"]
        assert none.energy_saving_vs(none) == pytest.approx(0.0)
        assert none.makespan_penalty_vs(none) == pytest.approx(0.0)


class TestRendering:
    def test_report_renders_summary_and_jobs(self, campaigns):
        text = render_cluster_report(campaigns["me_eufs"].report)
        assert "cluster campaign" in text
        assert "min_energy" in text
        assert "jobs (in start order)" in text

    def test_summary_only(self, campaigns):
        text = render_cluster_report(campaigns["me_eufs"].report, jobs=False)
        assert "jobs (in start order)" not in text

    def test_budget_line_present_when_budgeted(self):
        trace = generate_trace(TraceConfig(n_jobs=3, seed=1, scale=0.2))
        campaigns = compare_cluster_policies(
            trace,
            ClusterConfig(
                n_nodes=4, eargm=EargmConfig(budget_j=1e9, horizon_s=1e5)
            ),
            {"none": None},
            pool=ExperimentPool(jobs=1, cache=RunCache()),
        )
        assert "budget" in render_cluster_report(campaigns["none"].report)

    def test_comparison_table(self, campaigns):
        text = render_comparison(campaigns)
        for name in campaigns:
            assert name in text
        assert "saving" in text and "penalty" in text

    def test_comparison_needs_the_reference(self, campaigns):
        with pytest.raises(ValueError, match="reference campaign"):
            render_comparison(campaigns, reference="missing")

    def test_to_dict_round_trips_through_json(self, campaigns):
        import json

        payload = json.dumps(campaigns["me_eufs"].report.to_dict())
        back = json.loads(payload)
        assert back["policy"] == "min_energy"
        assert len(back["jobs"]) == campaigns["me_eufs"].report.n_jobs
