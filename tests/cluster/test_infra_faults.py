"""Control-plane fault channels: node crashes, EARDBD restarts, gating."""

from dataclasses import replace

import pytest

from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceConfig, generate_trace
from repro.errors import ExperimentError
from repro.experiments.parallel import ExperimentPool, RunCache, RunRequest
from repro.experiments.resilience import (
    infra_resilience_sweep,
    reference_infra_plan,
)
from repro.sim.faults import FaultPlan
from tests.conftest import make_fast_workload


def fresh_pool():
    return ExperimentPool(jobs=1, cache=RunCache())


def small_trace(n_jobs=6, seed=0):
    return generate_trace(
        TraceConfig(n_jobs=n_jobs, seed=seed, scale=0.2, mean_interarrival_s=10.0)
    )


def crashy_plan(**kwargs):
    defaults = dict(seed=0, node_crash_rate=0.35, node_reboot_s=40.0)
    defaults.update(kwargs)
    return FaultPlan(**defaults)


class TestFaultPlanInfraFields:
    def test_defaults_are_clean(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert not plan.infra_enabled

    def test_infra_rates_do_not_enable_hardware_channels(self):
        plan = FaultPlan(node_crash_rate=0.1, eardbd_restart_rate=0.1)
        assert plan.infra_enabled
        assert not plan.enabled  # hardware-only property, unchanged

    def test_validation(self):
        with pytest.raises(ExperimentError):
            FaultPlan(node_crash_rate=1.5)
        with pytest.raises(ExperimentError):
            FaultPlan(eardbd_restart_rate=-0.1)
        with pytest.raises(ExperimentError):
            FaultPlan(node_reboot_s=0.0)
        with pytest.raises(ExperimentError):
            FaultPlan(job_max_retries=-1)

    def test_scaled_scales_infra_rates(self):
        plan = FaultPlan(node_crash_rate=0.2, eardbd_restart_rate=0.1)
        half = plan.scaled(0.5)
        assert half.node_crash_rate == pytest.approx(0.1)
        assert half.eardbd_restart_rate == pytest.approx(0.05)
        # scaling clamps at 1.0 like the hardware rates
        assert plan.scaled(100.0).node_crash_rate == 1.0

    def test_infra_rates_do_not_change_the_cache_key(self):
        """Infra channels perturb the control plane, never the job
        physics — a run under an infra-only plan shares the clean run's
        cache entry."""
        workload = make_fast_workload(n_iterations=60)
        clean = RunRequest(workload=workload, ear_config=None, seed=1, scale=0.3)
        infra = replace(
            clean,
            fault_plan=FaultPlan(node_crash_rate=0.5, eardbd_restart_rate=0.5),
        )
        hardware = replace(clean, fault_plan=FaultPlan(meter_stall_rate=0.1))
        assert infra.key() == clean.key()
        assert hardware.key() != clean.key()


class TestNodeCrashes:
    def test_every_job_is_accounted_for(self):
        trace = small_trace()
        config = ClusterConfig(n_nodes=4, fault_plan=crashy_plan())
        report = ClusterSimulation(trace, config, pool=fresh_pool()).run()
        assert len(report.jobs) + len(report.failures) == len(trace)
        assert report.n_node_failures > 0  # the channel actually fired
        assert report.n_requeues + len(report.failures) >= report.n_node_failures

    def test_crashes_are_deterministic(self):
        trace = small_trace()
        config = ClusterConfig(n_nodes=4, fault_plan=crashy_plan())
        a = ClusterSimulation(trace, config, pool=fresh_pool()).run()
        b = ClusterSimulation(trace, config, pool=fresh_pool()).run()
        assert a.makespan_s == b.makespan_s
        assert a.failures == b.failures
        assert a.n_requeues == b.n_requeues
        assert [j.end_s for j in a.jobs] == [j.end_s for j in b.jobs]

    def test_retry_budget_zero_fails_terminally(self):
        trace = small_trace()
        plan = crashy_plan(node_crash_rate=0.9, job_max_retries=0)
        config = ClusterConfig(n_nodes=4, fault_plan=plan)
        report = ClusterSimulation(trace, config, pool=fresh_pool()).run()
        assert report.n_requeues == 0
        assert len(report.failures) > 0
        for failure in report.failures:
            assert failure.attempt == 1
            assert failure.node_id >= 0

    def test_eardbd_reconciles_under_crashes(self):
        trace = small_trace()
        config = ClusterConfig(n_nodes=4, fault_plan=crashy_plan())
        sim = ClusterSimulation(trace, config, pool=fresh_pool())
        report = sim.run()
        assert report.eardbd.reconciles_with(
            sim.accounting, pending=sim.eardbd.pending
        )


class TestEardbdRestarts:
    def test_restarts_replay_the_buffer(self):
        trace = small_trace()
        plan = FaultPlan(eardbd_restart_rate=1.0)  # every flush tick
        config = ClusterConfig(n_nodes=4, fault_plan=plan)
        sim = ClusterSimulation(trace, config, pool=fresh_pool())
        report = sim.run()
        assert report.eardbd.restarts > 0
        # nothing lost: the conservation law holds across restarts
        assert report.eardbd.dropped == 0
        assert report.eardbd.reconciles_with(
            sim.accounting, pending=sim.eardbd.pending
        )
        # the restart-only plan perturbs reporting, never the schedule
        clean = ClusterSimulation(
            trace, ClusterConfig(n_nodes=4), pool=fresh_pool()
        ).run()
        assert report.makespan_s == clean.makespan_s


class TestCleanPathGating:
    def test_zero_rate_plan_is_bit_identical_to_no_plan(self):
        trace = small_trace()
        clean = ClusterSimulation(
            trace, ClusterConfig(n_nodes=4), pool=fresh_pool()
        ).run()
        gated = ClusterSimulation(
            trace,
            ClusterConfig(n_nodes=4, fault_plan=FaultPlan()),
            pool=fresh_pool(),
        ).run()
        assert gated.makespan_s == clean.makespan_s
        assert gated.total_energy_j == clean.total_energy_j
        assert [j.end_s for j in gated.jobs] == [j.end_s for j in clean.jobs]
        assert gated.failures == ()
        assert gated.n_requeues == 0
        assert gated.n_node_failures == 0

    def test_report_dict_carries_the_fault_tallies(self):
        trace = small_trace()
        config = ClusterConfig(n_nodes=4, fault_plan=crashy_plan())
        report = ClusterSimulation(trace, config, pool=fresh_pool()).run()
        d = report.to_dict()
        assert d["n_node_failures"] == report.n_node_failures
        assert d["n_requeues"] == report.n_requeues
        assert d["eardbd"]["restarts"] == report.eardbd.restarts
        assert len(d["failures"]) == len(report.failures)


class TestInfraSweep:
    def test_reference_plan_layers_infra_on_hardware(self):
        plan = reference_infra_plan()
        assert plan.enabled  # hardware channels present
        assert plan.infra_enabled
        assert plan.node_crash_rate > 0
        assert plan.eardbd_restart_rate > 0

    def test_sweep_accounts_for_every_job(self):
        sweep = infra_resilience_sweep(
            intensities=(0.0, 2.0), n_jobs=4, n_nodes=4, scale=0.2
        )
        assert len(sweep.points) == 2
        for point in sweep.points:
            assert point.n_completed + point.n_failed == point.n_jobs
            assert point.eardbd_reconciled

    def test_intensity_zero_is_the_clean_campaign(self):
        sweep = infra_resilience_sweep(
            intensities=(0.0,), n_jobs=4, n_nodes=4, scale=0.2
        )
        point = sweep.points[0]
        assert point.n_failed == 0
        assert point.n_requeues == 0
        assert point.n_node_failures == 0
        assert point.eardbd_restarts == 0
