"""Streaming mode of ClusterSimulation vs. the batch path."""

import pytest

from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceConfig, generate_trace
from repro.ear.eargm import EargmConfig
from repro.errors import ExperimentError
from repro.experiments.parallel import ExperimentPool, RunCache


def fresh_pool():
    return ExperimentPool(jobs=1, cache=RunCache())


def small_trace(n_jobs=6, seed=0):
    return generate_trace(
        TraceConfig(n_jobs=n_jobs, seed=seed, scale=0.2, mean_interarrival_s=10.0)
    )


def config(**kw):
    kw.setdefault("n_nodes", 8)
    kw.setdefault("telemetry", True)
    return ClusterConfig(**kw)


class TestStreamingEquivalence:
    def test_streamed_trace_bit_identical_to_batch(self):
        trace = small_trace()
        batch = ClusterSimulation(trace, config(), pool=fresh_pool()).run()
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        for job in trace:  # submitted before the clock passes any submit_s
            sim.submit_job(job)
        sim.drain_events()
        stream = sim.finalize()
        assert stream.jobs == batch.jobs
        assert stream.total_energy_j == batch.total_energy_j
        assert stream.makespan_s == batch.makespan_s
        assert stream.utilisation == batch.utilisation
        assert stream.mean_wait_s == batch.mean_wait_s
        assert stream.eardbd.forwarded == batch.eardbd.forwarded

    def test_incremental_batches_match_when_submitted_ahead_of_clock(self):
        # Submitting in several pump cycles is still identical as long
        # as every job is admitted before the clock reaches it; here we
        # interleave stepping with submission but keep arrivals ahead.
        trace = small_trace()
        batch = ClusterSimulation(trace, config(), pool=fresh_pool()).run()
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        for job in trace:
            sim.submit_job(job)
            # advance only up to (not past) the next submission time
            while sim.n_pending_events and sim.clock.now < job.submit_s:
                sim.step()
        sim.drain_events()
        stream = sim.finalize()
        assert stream.jobs == batch.jobs

    def test_harvesting_preserves_report_totals(self):
        trace = small_trace()
        batch = ClusterSimulation(trace, config(), pool=fresh_pool()).run()
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        harvested = []
        for job in trace:
            sim.submit_job(job)
            sim.drain_events()
            harvested.extend(sim.harvest_outcomes())
            assert len(sim._outcomes) == 0
        stream = sim.finalize()
        assert stream.jobs == ()  # drained
        assert len(harvested) == batch.n_jobs
        assert stream.total_energy_j == pytest.approx(batch.total_energy_j)
        assert stream.n_backfilled == batch.n_backfilled
        assert stream.max_wait_s >= 0.0


class TestStreamingSemantics:
    def test_empty_streaming_sim_stays_at_time_zero(self):
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        sim.start()
        assert sim.n_pending_events == 0
        assert sim.clock.now == 0.0

    def test_late_submission_admitted_at_now(self):
        trace = small_trace(n_jobs=2)
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        sim.submit_job(trace[0])
        sim.drain_events()
        now = sim.clock.now
        assert now > 0.0
        admitted = sim.submit_job(trace[1])
        assert admitted.submit_s == now
        sim.drain_events()
        outcome = [o for o in sim.harvest_outcomes() if o.index == trace[1].index][0]
        assert outcome.wait_s >= 0.0

    def test_flush_rearms_after_idle(self):
        trace = small_trace(n_jobs=2)
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        sim.submit_job(trace[0])
        sim.drain_events()  # queue runs dry: flush tick dies with it
        assert sim.n_pending_events == 0
        sim.submit_job(trace[1])
        assert sim.n_pending_events >= 2  # arrival + re-armed flush
        sim.drain_events()
        assert sim.jobs_completed == 2

    def test_eargm_spans_streaming_submissions(self):
        trace = small_trace(n_jobs=4)
        cfg = config(eargm=EargmConfig(budget_j=1e9, horizon_s=50.0))
        sim = ClusterSimulation((), cfg, pool=fresh_pool(), streaming=True)
        for job in trace:
            sim.submit_job(job)
        sim.drain_events()
        report = sim.finalize()
        assert report.consumed_j == pytest.approx(report.total_energy_j)

    def test_batch_sim_rejects_submit_job(self):
        trace = small_trace(n_jobs=1)
        sim = ClusterSimulation(trace, config(), pool=fresh_pool())
        with pytest.raises(ExperimentError):
            sim.submit_job(trace[0])

    def test_finalize_runs_once(self):
        trace = small_trace(n_jobs=1)
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        sim.submit_job(trace[0])
        sim.drain_events()
        sim.finalize()
        with pytest.raises(ExperimentError):
            sim.finalize()
        with pytest.raises(ExperimentError):
            sim.submit_job(trace[0])

    def test_drain_telemetry_events_bounds_backlog(self):
        trace = small_trace(n_jobs=3)
        sim = ClusterSimulation((), config(), pool=fresh_pool(), streaming=True)
        for job in trace:
            sim.submit_job(job)
        sim.drain_events()
        events = sim.drain_telemetry_events()
        assert events  # job_submit/start/end at least
        assert sim.drain_telemetry_events() == ()
