"""Cross-cutting property-based tests on core invariants.

These complement the per-module hypothesis tests with properties that
span layers: energy conservation, guard safety, model sanity and
policy bounds under arbitrary (but valid) workload shapes.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ear.config import EarConfig
from repro.ear.models import make_model, steady_state_signature
from repro.hw.node import SD530, Node
from repro.sim.engine import run_workload
from repro.workloads.generator import synthetic_profile, synthetic_workload

# share mixes: (core, unc, mem) with sum <= 0.98
share_mixes = st.tuples(
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=0.0, max_value=0.3),
    st.floats(min_value=0.0, max_value=0.7),
).filter(lambda t: sum(t) <= 0.98)


def profile_from(mix, vpi=0.0):
    core, unc, mem = mix
    return synthetic_profile(
        name="prop",
        node_config=SD530,
        core_share=core,
        unc_share=unc,
        mem_share=mem,
        vpi=vpi,
    )


class TestSteadyStateProperties:
    @given(share_mixes, st.sampled_from([2.4, 2.1, 1.8, 1.5, 1.2]))
    @settings(max_examples=40, deadline=None)
    def test_slower_cpu_never_speeds_up(self, mix, freq):
        p = profile_from(mix)
        fast = steady_state_signature(p, SD530, f_cpu_ghz=2.4)
        slow = steady_state_signature(p, SD530, f_cpu_ghz=freq)
        assert slow.iteration_time_s >= fast.iteration_time_s - 1e-12

    @given(share_mixes)
    @settings(max_examples=30, deadline=None)
    def test_lower_uncore_lowers_power(self, mix):
        p = profile_from(mix)
        hi = steady_state_signature(p, SD530, f_cpu_ghz=2.4, f_uncore_ghz=2.4)
        lo = steady_state_signature(p, SD530, f_cpu_ghz=2.4, f_uncore_ghz=1.2)
        assert lo.dc_power_w < hi.dc_power_w

    @given(share_mixes)
    @settings(max_examples=30, deadline=None)
    def test_signature_metrics_consistent(self, mix):
        p = profile_from(mix)
        sig = steady_state_signature(p, SD530, f_cpu_ghz=2.4)
        # CPI, TPI, GBs must satisfy their defining identity:
        # gbs = tpi * 64 * instr/s = tpi * 64 * (cycles/s / cpi)
        instr_per_s = sig.avg_cpu_freq_ghz * 1e9 * 40 / sig.cpi
        gbs = sig.tpi * 64 * instr_per_s / 1e9
        assert gbs == pytest.approx(sig.gbs, rel=1e-6)


class TestModelProperties:
    @given(share_mixes, st.integers(min_value=2, max_value=15))
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_projection_finite_and_positive(self, mix, to_ps):
        model = make_model(SD530, EarConfig())
        sig = steady_state_signature(profile_from(mix), SD530, f_cpu_ghz=2.4)
        proj = model.project(sig, 1, to_ps)
        assert math.isfinite(proj.time_s) and proj.time_s > 0
        assert math.isfinite(proj.power_w) and proj.power_w > 0

    @given(share_mixes)
    @settings(max_examples=20, deadline=None)
    def test_projection_roundtrip_identity(self, mix):
        model = make_model(SD530, EarConfig())
        sig = steady_state_signature(profile_from(mix), SD530, f_cpu_ghz=2.4)
        proj = model.project(sig, 1, 1)
        assert proj.time_s == pytest.approx(sig.iteration_time_s)
        assert proj.power_w == pytest.approx(sig.dc_power_w)


class TestEndToEndProperties:
    @given(share_mixes, st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_energy_conservation(self, mix, seed):
        """Total energy == integral of power over time, per node."""
        core, unc, mem = mix
        wl = synthetic_workload(
            node_config=SD530,
            core_share=core,
            unc_share=unc,
            mem_share=mem,
            n_iterations=40,
        )
        r = run_workload(wl, seed=seed)
        assert r.dc_energy_j == pytest.approx(
            r.avg_dc_power_w * r.time_s * r.n_nodes, rel=1e-9
        )
        assert r.pck_energy_j < r.dc_energy_j

    @given(share_mixes)
    @settings(max_examples=6, deadline=None)
    def test_policy_never_exceeds_guard_grossly(self, mix):
        """Under the default config the measured time penalty stays
        within cpu_th + unc_th + model slack for any workload shape."""
        core, unc, mem = mix
        wl = synthetic_workload(
            node_config=SD530,
            core_share=core,
            unc_share=unc,
            mem_share=mem,
            n_iterations=120,
        )
        base = run_workload(wl, seed=1, noise_sigma=0.0)
        managed = run_workload(wl, ear_config=EarConfig(), seed=1, noise_sigma=0.0)
        penalty = managed.time_s / base.time_s - 1.0
        assert penalty < 0.05 + 0.02 + 0.05  # thresholds + model slack

    @given(share_mixes)
    @settings(max_examples=6, deadline=None)
    def test_policy_frequencies_within_hardware_range(self, mix):
        core, unc, mem = mix
        wl = synthetic_workload(
            node_config=SD530,
            core_share=core,
            unc_share=unc,
            mem_share=mem,
            n_iterations=80,
        )
        r = run_workload(wl, ear_config=EarConfig(), seed=2)
        assert 1.0 <= r.avg_cpu_freq_ghz <= 2.6
        assert 1.2 - 1e-6 <= r.avg_imc_freq_ghz <= 2.4 + 1e-6


class TestCalibrationProperty:
    @given(
        share_mixes,
        st.floats(min_value=280.0, max_value=380.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_activity_solve_exact_when_representable(self, mix, power):
        """Whenever calibration succeeds, the anchor power is exact."""
        from dataclasses import replace

        core, unc, mem = mix
        p = replace(profile_from(mix), ref_dc_power_w=power, calibrate_power=True)
        node = Node(SD530)
        try:
            cal = p.calibrate_activity(node)
        except Exception:
            return  # unrepresentable target: rejection is the contract
        op = replace(
            cal.operating_point(node, effective_core_ghz=2.4),
            traffic_gbs=cal.ref_gbs,
        )
        assert node.power(op).dc_w == pytest.approx(power, rel=1e-6)
