"""Shared learning-phase fixtures.

The grid campaign is the expensive part (a coarse SD530 grid is
16 P-states x 2 uncore points per kernel), so one campaign is measured
and fitted once per session and shared; the pool has a memory-only
cache so re-measuring in a second campaign instance is free.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import ExperimentPool, RunCache
from repro.hw.node import SD530
from repro.learning import LearningCampaign, LearningGrid
from repro.workloads.kernels import bt_mz_c_openmp, dgemm_mkl, stream_triad


@pytest.fixture(scope="session")
def learning_pool():
    """Serial pool with a memory cache shared by every campaign here."""
    return ExperimentPool(jobs=1, cache=RunCache())


@pytest.fixture(scope="session")
def small_battery():
    """Compute-bound + memory-bound + AVX-dense: the minimal useful mix."""
    return (bt_mz_c_openmp(), stream_triad(), dgemm_mkl())


@pytest.fixture(scope="session")
def campaign(learning_pool, small_battery):
    """A coarse-grid SD530 campaign over the small battery."""
    return LearningCampaign(
        SD530,
        kernels=small_battery,
        grid=LearningGrid.coarse(SD530),
        pool=learning_pool,
    )


@pytest.fixture(scope="session")
def observations(campaign):
    """The campaign's measured grid observations."""
    return campaign.measure()


@pytest.fixture(scope="session")
def fitted_table(campaign, observations):
    """The coefficient table fitted from the session observations."""
    return campaign.fit(observations)
