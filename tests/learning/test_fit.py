"""Least-squares fitting of coefficient tables from grid observations."""

import pytest

from repro.errors import LearningError
from repro.hw.node import SD530
from repro.learning import MIN_PAIR_OBSERVATIONS, fit_table

N_STATES = len(SD530.pstates)


class TestFitQuality:
    def test_complete_and_fitted(self, fitted_table):
        assert fitted_table.source == "fitted"
        assert len(fitted_table) == N_STATES * (N_STATES - 1)
        assert fitted_table.pstate_freqs_ghz == tuple(
            SD530.pstates.frequencies_ghz
        )

    def test_goodness_of_fit_attached(self, fitted_table):
        quality = fitted_table.quality
        assert quality is not None
        assert quality.min_r2_cpi > 0.9
        assert quality.min_r2_power > 0.8
        assert quality.max_rel_time_err < 0.25
        assert len(quality.pairs) == N_STATES * (N_STATES - 1)

    def test_licence_measured_from_avx_kernel(self, fitted_table):
        # DGEMM is in the battery, so the licence plateau is observable
        # and must land at the Xeon 6148's 2.2 GHz AVX-512 licence.
        licence = fitted_table.quality.avx512_licence_ghz
        assert licence == pytest.approx(2.2, abs=0.05)

    def test_projection_tracks_frequency(self, fitted_table, observations):
        # Projecting a nominal observation to a lower clock must predict
        # a longer iteration: slowdown bounded by the frequency ratio.
        obs = next(
            o for o in observations if o.pstate == 1 and o.kernel == "BT-MZ.C"
        )
        freqs = SD530.pstates.frequencies_ghz
        t_to, _ = fitted_table.project(obs.signature, 1, N_STATES - 1)
        assert t_to > obs.signature.iteration_time_s
        assert t_to < obs.signature.iteration_time_s * (
            freqs[1] / freqs[N_STATES - 1]
        ) * 1.1


class TestFitFailures:
    def test_empty_grid(self):
        with pytest.raises(LearningError):
            fit_table((), SD530)

    def test_missing_pstates(self, observations):
        partial = [o for o in observations if o.pstate in (0, 1)]
        with pytest.raises(LearningError, match="P-states"):
            fit_table(partial, SD530)

    def test_too_few_matched_pairs(self, observations):
        # keep just one (kernel, uncore, seed) coordinate per P-state:
        # every pair then has fewer matches than the regression accepts.
        assert MIN_PAIR_OBSERVATIONS > 1
        seen = set()
        thin = []
        for o in observations:
            if o.pstate not in seen:
                seen.add(o.pstate)
                thin.append(o)
        with pytest.raises(LearningError, match="matched observations"):
            fit_table(thin, SD530)
