"""The fitted-vs-fallback resolution order and the bit-identity guarantee.

With no fitted table present, every projection — and therefore every
policy decision and every simulated run — must be *bit-identical* to
the pre-learning behaviour, so existing results and cached runs stay
valid.  Fitted tables are opt-in via ``EarConfig.coefficients_path``.
"""

import dataclasses

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import (
    Avx512Model,
    coefficients_file,
    make_model,
    resolve_coefficients,
    save_coefficients,
    train_coefficients,
)
from repro.errors import ModelError
from repro.hw.node import GPU_NODE, GRANITE_RAPIDS_NODE, SD530
from repro.sim.engine import run_workload
from repro.workloads.kernels import bt_mz_c_openmp


class TestResolutionOrder:
    def test_none_is_the_analytic_table(self):
        table = resolve_coefficients(SD530, EarConfig())
        assert table is train_coefficients(SD530)
        assert table.source == "analytic"

    def test_empty_directory_falls_back_identically(self, tmp_path):
        config = EarConfig(coefficients_path=str(tmp_path))
        assert resolve_coefficients(SD530, config) is train_coefficients(SD530)

    def test_directory_with_fitted_table_loads_it(self, fitted_table, tmp_path):
        save_coefficients(fitted_table, coefficients_file(tmp_path, SD530.name))
        config = EarConfig(coefficients_path=str(tmp_path))
        table = resolve_coefficients(SD530, config)
        assert table.source == "fitted"
        assert table is not train_coefficients(SD530)

    def test_explicit_missing_file_raises(self, tmp_path):
        config = EarConfig(coefficients_path=str(tmp_path / "nope.json"))
        with pytest.raises(ModelError):
            resolve_coefficients(SD530, config)

    def test_incompatible_pstate_axis_rejected(self, fitted_table, tmp_path):
        # an SD530-fitted table must not project for the 18-state GPU node
        path = tmp_path / "sd530.json"
        save_coefficients(fitted_table, path)
        config = EarConfig(coefficients_path=str(path))
        with pytest.raises(ModelError, match="P-states"):
            resolve_coefficients(GPU_NODE, config)

    def test_fitted_table_drives_the_avx512_model(self, fitted_table, tmp_path):
        save_coefficients(fitted_table, coefficients_file(tmp_path, SD530.name))
        model = make_model(SD530, EarConfig(coefficients_path=str(tmp_path)))
        assert isinstance(model, Avx512Model)


class TestBitIdentity:
    def test_run_identical_with_and_without_empty_dir(self, tmp_path):
        wl = bt_mz_c_openmp().scaled_iterations(0.2)
        base = run_workload(wl, ear_config=EarConfig(), seed=7)
        fall = run_workload(
            wl,
            ear_config=EarConfig(coefficients_path=str(tmp_path)),
            seed=7,
        )
        assert fall.time_s == base.time_s
        assert fall.dc_energy_j == base.dc_energy_j
        assert fall.avg_cpu_freq_ghz == base.avg_cpu_freq_ghz
        assert fall.avg_imc_freq_ghz == base.avg_imc_freq_ghz
        assert fall.signatures == base.signatures
        assert [d.freqs for d in fall.decisions] == [
            d.freqs for d in base.decisions
        ]

    def test_coefficients_path_is_a_compared_config_field(self):
        fields = {f.name: f for f in dataclasses.fields(EarConfig)}
        assert fields["coefficients_path"].compare
        a = EarConfig()
        b = EarConfig(coefficients_path="somewhere")
        assert a != b


class TestBackendQualifiedResolution:
    """Mixed clusters: one table per (node type, uncore backend)."""

    def test_qualified_file_name(self, tmp_path):
        path = coefficients_file(
            tmp_path, GRANITE_RAPIDS_NODE.name, backend="tpmi"
        )
        assert path.name.endswith(".tpmi.json")
        plain = coefficients_file(tmp_path, GRANITE_RAPIDS_NODE.name)
        assert path.name == plain.name.replace(".json", ".tpmi.json")

    def test_qualified_table_preferred_over_plain(self, tmp_path):
        table = train_coefficients(GRANITE_RAPIDS_NODE)
        save_coefficients(
            table, coefficients_file(tmp_path, GRANITE_RAPIDS_NODE.name, backend="tpmi")
        )
        # if resolution ever preferred the plain spelling, loading this
        # garbage would raise — preferring the qualified file skips it.
        coefficients_file(tmp_path, GRANITE_RAPIDS_NODE.name).write_text("not json")
        config = EarConfig(coefficients_path=str(tmp_path))
        resolved = resolve_coefficients(GRANITE_RAPIDS_NODE, config)
        assert resolved.node_name == table.node_name
        assert resolved is not table  # loaded from disk, not the cache

    def test_plain_spelling_still_loads(self, tmp_path):
        # the MSR-era file name keeps working for any backend
        table = train_coefficients(GRANITE_RAPIDS_NODE)
        save_coefficients(
            table, coefficients_file(tmp_path, GRANITE_RAPIDS_NODE.name)
        )
        config = EarConfig(coefficients_path=str(tmp_path))
        resolved = resolve_coefficients(GRANITE_RAPIDS_NODE, config)
        assert resolved is not table
        assert resolved.node_name == table.node_name

    def test_empty_directory_analytic_fallback_is_bit_identical(self, tmp_path):
        config = EarConfig(coefficients_path=str(tmp_path))
        assert resolve_coefficients(GRANITE_RAPIDS_NODE, config) is (
            train_coefficients(GRANITE_RAPIDS_NODE)
        )

    def test_campaign_save_qualifies_non_msr_backends(
        self, tmp_path, learning_pool, small_battery
    ):
        from repro.learning import LearningCampaign, LearningGrid

        campaign = LearningCampaign(
            GRANITE_RAPIDS_NODE,
            kernels=tuple(
                k.retargeted(GRANITE_RAPIDS_NODE) for k in small_battery
            ),
            grid=LearningGrid.coarse(GRANITE_RAPIDS_NODE),
            pool=learning_pool,
        )
        saved = campaign.save(train_coefficients(GRANITE_RAPIDS_NODE), tmp_path)
        assert saved.endswith(".tpmi.json")

    def test_msr_campaign_save_keeps_plain_name(self, campaign, fitted_table, tmp_path):
        saved = campaign.save(fitted_table, tmp_path)
        assert saved.endswith(".json")
        assert ".msr." not in saved
