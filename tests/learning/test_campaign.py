"""The end-to-end learning campaign: measure, fit, validate, save."""

import pytest

from repro.ear.models import load_coefficients
from repro.errors import LearningError
from repro.hw.node import GPU_NODE, SD530
from repro.learning import (
    LearningCampaign,
    LearningGrid,
    ValidationReport,
    WorkloadValidation,
    TargetError,
    default_kernels,
)
from repro.telemetry.recorder import EventRecorder
from repro.workloads.kernels import sp_mz_c_openmp


class TestConstruction:
    def test_default_battery_matches_node(self):
        for kernel in default_kernels(SD530):
            assert kernel.node_config.name == SD530.name

    def test_gpu_node_has_a_battery(self):
        assert default_kernels(GPU_NODE)

    def test_unanchored_generation_gets_retargeted_battery(self):
        # generations without their own kernels (mixed-cluster node
        # types) train on the SD530 CPU battery retargeted to their
        # silicon; GPU-anchored kernels stay out.
        from repro.hw.node import GRANITE_RAPIDS_NODE

        battery = default_kernels(GRANITE_RAPIDS_NODE)
        assert battery
        names = {k.name for k in default_kernels(SD530)}
        for kernel in battery:
            assert kernel.node_config.name == GRANITE_RAPIDS_NODE.name
            assert kernel.name in names

    def test_foreign_kernel_rejected(self, learning_pool):
        gpu_kernel = default_kernels(GPU_NODE)[0]
        with pytest.raises(LearningError, match="node type"):
            LearningCampaign(SD530, kernels=(gpu_kernel,), pool=learning_pool)

    def test_out_of_range_grid_pstate_rejected(self, learning_pool):
        grid = LearningGrid(
            pstates=(0, 99), uncore_ghz=(1.2, 2.4), scale=0.15
        )
        with pytest.raises(LearningError, match="range"):
            LearningCampaign(SD530, grid=grid, pool=learning_pool)


class TestMeasure:
    def test_grid_is_fully_covered(self, campaign, observations):
        assert len(observations) == len(campaign.kernels) * campaign.grid.runs_per_kernel
        pstates = {o.pstate for o in observations}
        assert pstates == set(campaign.grid.pstates)

    def test_observations_are_steady_state(self, observations):
        for o in observations:
            assert o.signature.iteration_time_s > 0
            assert o.signature.dc_power_w > 0


class TestTelemetry:
    def test_campaign_events_emitted(self, learning_pool, small_battery):
        recorder = EventRecorder(node=-1)
        campaign = LearningCampaign(
            SD530,
            kernels=small_battery,
            grid=LearningGrid.coarse(SD530),
            pool=learning_pool,
            recorder=recorder,
        )
        campaign.fit()
        kinds = {(e.subsystem, e.kind) for e in recorder.events}
        assert ("learning", "grid_run") in kinds
        assert ("learning", "fit") in kinds
        grid_runs = [e for e in recorder.events if e.kind == "grid_run"]
        assert {e.payload_dict["kernel"] for e in grid_runs} == {
            w.name for w in small_battery
        }

    def test_payloads_are_json_safe(self, learning_pool, small_battery):
        import json

        recorder = EventRecorder(node=-1)
        campaign = LearningCampaign(
            SD530,
            kernels=small_battery,
            grid=LearningGrid.coarse(SD530),
            pool=learning_pool,
            recorder=recorder,
        )
        table = campaign.fit()
        report = campaign.validate(
            table, workloads=(sp_mz_c_openmp(),), threshold=0.5
        )
        assert report.workloads
        for event in recorder.events:
            json.dumps(event.to_dict())


class TestValidation:
    def test_held_out_kernel_within_threshold(self, campaign, fitted_table):
        # SP-MZ.C is not in the small battery: a genuine held-out check.
        # The deliberately tiny battery (two scalar kernels) leaves the
        # power regression only two anchors to extrapolate from, so the
        # threshold here is looser than the production default — the CI
        # learn-smoke job validates the full battery at the real 20 %.
        report = campaign.validate(
            fitted_table, workloads=(sp_mz_c_openmp(),), threshold=0.35
        )
        assert report.passed, report.summary()
        assert report.max_rel_time_err < 0.20

    def test_failing_report_raises_with_worst_workload(self):
        report = ValidationReport(
            node_name="n",
            threshold=0.05,
            workloads=(
                WorkloadValidation(
                    workload="W",
                    targets=(
                        TargetError(
                            pstate=2,
                            projected_time_s=2.0,
                            observed_time_s=1.0,
                            projected_power_w=100.0,
                            observed_power_w=100.0,
                        ),
                    ),
                ),
            ),
        )
        assert not report.passed
        with pytest.raises(LearningError, match="'W'"):
            report.raise_if_failed()

    def test_validation_failure_blocks_save(
        self, learning_pool, small_battery, tmp_path, monkeypatch
    ):
        campaign = LearningCampaign(
            SD530,
            kernels=small_battery,
            grid=LearningGrid.coarse(SD530),
            pool=learning_pool,
        )
        monkeypatch.setattr(
            "repro.learning.campaign.default_validation_workloads",
            lambda node_config: (sp_mz_c_openmp(),),
        )
        out = tmp_path / "coeffs"
        with pytest.raises(LearningError, match="validation failed"):
            campaign.run(out_dir=out, validate=True, threshold=1e-6)
        assert not out.exists()


class TestSave:
    def test_run_saves_a_loadable_table(
        self, learning_pool, small_battery, tmp_path
    ):
        campaign = LearningCampaign(
            SD530,
            kernels=small_battery,
            grid=LearningGrid.coarse(SD530),
            pool=learning_pool,
        )
        table, report = campaign.run(out_dir=tmp_path / "coeffs")
        assert report is None
        files = list((tmp_path / "coeffs").glob("*.json"))
        assert len(files) == 1
        restored = load_coefficients(files[0])
        assert restored.source == "fitted"
        assert len(restored) == len(table)
        assert restored.quality is not None
