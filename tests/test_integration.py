"""End-to-end reproduction stories at reduced scale.

Each test pins one of the paper's qualitative claims, running the full
stack (workload -> engine -> EARL -> policy -> MSRs) with iteration
counts scaled down for speed.  Absolute-number fidelity is the
benchmark harness's job; these tests protect the *shape*: who wins,
in which direction, and why.
"""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.runner import clear_run_cache, compare, standard_configs
from repro.sim.engine import run_workload
from repro.workloads.applications import bqcd, gromacs_ion_channel, hpcg
from repro.workloads.kernels import (
    bt_cuda_d,
    bt_mz_c_openmp,
    dgemm_mkl,
    lu_cuda_d,
)

SCALE = 0.6
SEEDS = (1, 2)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


class TestCpuBoundKernelStory:
    """BT-MZ: DVFS alone does nothing; explicit UFS finds the savings."""

    @pytest.fixture(scope="class")
    def results(self):
        return compare(bt_mz_c_openmp(), standard_configs(), seeds=SEEDS, scale=SCALE)

    def test_me_changes_nothing(self, results):
        me = results["me"]
        assert abs(me.time_penalty) < 0.01
        assert abs(me.energy_saving) < 0.01
        assert me.result.avg_cpu_freq_ghz == pytest.approx(2.38, abs=0.03)

    def test_eufs_saves_energy_cheaply(self, results):
        eu = results["me_eufs"]
        assert eu.energy_saving > 0.02
        assert eu.time_penalty < 0.03
        assert eu.power_saving > eu.time_penalty

    def test_eufs_lowers_only_the_uncore(self, results):
        eu = results["me_eufs"]
        assert eu.result.avg_cpu_freq_ghz == pytest.approx(2.38, abs=0.03)
        assert eu.result.avg_imc_freq_ghz < 2.1


class TestMemoryBoundStory:
    """HPCG: DVFS dives on the CPU; the uncore guard keeps the IMC high."""

    @pytest.fixture(scope="class")
    def results(self):
        return compare(hpcg(), standard_configs(), seeds=SEEDS, scale=SCALE)

    def test_me_cuts_cpu_frequency_deeply(self, results):
        assert results["me"].result.avg_cpu_freq_ghz < 2.15

    def test_uncore_guard_stops_descent_quickly(self, results):
        """Table VI: HPCG's uncore only drops 2.39 -> 2.29."""
        assert results["me_eufs"].result.avg_imc_freq_ghz > 2.2

    def test_eufs_adds_savings_over_me(self, results):
        assert (
            results["me_eufs"].energy_saving >= results["me"].energy_saving - 0.005
        )


class TestCudaStory:
    """CUDA kernels: host spin -> uncore collapses at no time cost."""

    def test_bt_cuda_eufs_reaches_the_floor(self):
        res = compare(bt_cuda_d(), standard_configs(), seeds=SEEDS, scale=SCALE)
        eu = res["me_eufs"]
        assert eu.result.avg_imc_freq_ghz < 1.6
        assert eu.time_penalty < 0.02
        assert eu.energy_saving > 0.05

    def test_lu_cuda_hardware_keeps_uncore_up_but_eufs_cuts_it(self):
        """Table IV's LU.CUDA row: HW UFS 2.39 GHz, explicit UFS 1.60."""
        res = compare(lu_cuda_d(), standard_configs(), seeds=SEEDS, scale=SCALE)
        assert res["me"].result.avg_imc_freq_ghz > 2.3
        assert res["me_eufs"].result.avg_imc_freq_ghz < 2.1
        assert res["me_eufs"].energy_saving > res["me"].energy_saving + 0.02


class TestAvx512Story:
    """DGEMM: the licence frequency rules; eUFS trims a little more."""

    def test_cpu_runs_at_licence_not_nominal(self):
        res = compare(dgemm_mkl(), standard_configs(), seeds=SEEDS, scale=SCALE)
        for cfg in ("me", "me_eufs"):
            assert res[cfg].result.avg_cpu_freq_ghz <= 2.21

    def test_hardware_already_lowered_uncore(self):
        base = run_workload(dgemm_mkl().scaled_iterations(SCALE), seed=1)
        assert base.avg_imc_freq_ghz < 2.1  # AVX power rebalancing


class TestThresholdStory:
    """BQCD at cpu_th 3 %: DVFS does nothing, eUFS threshold is a dial."""

    def test_unc_threshold_controls_descent_depth(self):
        wl = bqcd()
        imcs = {}
        for th in (0.01, 0.03):
            cfg = EarConfig(cpu_policy_th=0.03, unc_policy_th=th)
            runs = [
                run_workload(wl.scaled_iterations(SCALE), ear_config=cfg, seed=s)
                for s in SEEDS
            ]
            imcs[th] = sum(r.avg_imc_freq_ghz for r in runs) / len(runs)
        assert imcs[0.03] < imcs[0.01]


class TestGuidedSearchStory:
    """Fig. 5: HW-guided search converges faster than starting at max."""

    def test_guided_needs_fewer_policy_rounds(self):
        wl = gromacs_ion_channel().scaled_iterations(SCALE)
        guided = run_workload(
            wl, ear_config=EarConfig(cpu_policy_th=0.05), seed=1
        )
        not_guided = run_workload(
            wl,
            ear_config=EarConfig(cpu_policy_th=0.05, hw_guided_imc=False),
            seed=1,
        )

        def rounds_until_ready(result):
            from repro.ear.policies import PolicyState

            for i, d in enumerate(result.decisions):
                if d.policy_state is PolicyState.READY:
                    return i
            return len(result.decisions)

        assert rounds_until_ready(guided) <= rounds_until_ready(not_guided)


class TestDcVsPckStory:
    """Table VII: PCK relative savings exceed DC relative savings."""

    def test_pck_savings_exceed_dc_savings(self):
        res = compare(hpcg(), standard_configs(), seeds=SEEDS, scale=SCALE)
        eu = res["me_eufs"]
        assert eu.pck_power_saving > eu.power_saving > 0
