"""min_energy_to_solution: the figure-2 state machine, unit level.

These tests drive the policy directly with hand-built signatures,
checking each transition of the paper's state diagram without the
engine in the loop (integration is covered in tests/sim).
"""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import make_model
from repro.ear.policies import MinEnergyPolicy, PolicyContext, PolicyState, Stage
from repro.ear.signature import Signature
from repro.hw.node import SD530


def make_policy(**cfg_overrides) -> MinEnergyPolicy:
    cfg = EarConfig(**cfg_overrides)
    ctx = PolicyContext(
        config=cfg,
        pstates=SD530.pstates,
        model=make_model(SD530, cfg),
        imc_max_ghz=2.4,
        imc_min_ghz=1.2,
    )
    return MinEnergyPolicy(ctx)


def cpu_bound_sig(**overrides) -> Signature:
    """A BT-MZ-like signature: the CPU stage keeps the default."""
    kwargs = dict(
        iteration_time_s=0.45,
        dc_power_w=332.0,
        cpi=0.39,
        tpi=0.0018,
        gbs=28.0,
        vpi=0.0,
        avg_cpu_freq_ghz=2.4,
        avg_imc_freq_ghz=2.4,
    )
    kwargs.update(overrides)
    return Signature(**kwargs)


def memory_bound_sig(**overrides) -> Signature:
    """An HPCG-like signature: the CPU stage dives."""
    kwargs = dict(
        iteration_time_s=0.5,
        dc_power_w=340.0,
        cpi=3.13,
        tpi=0.0904,
        gbs=177.0,
        vpi=0.0,
        avg_cpu_freq_ghz=2.4,
        avg_imc_freq_ghz=2.4,
    )
    kwargs.update(overrides)
    return Signature(**kwargs)


class TestCpuFreqSel:
    def test_cpu_bound_keeps_default(self):
        policy = make_policy(use_explicit_ufs=False)
        state, freqs = policy.node_policy(cpu_bound_sig())
        assert state is PolicyState.READY
        assert freqs.cpu_ghz == pytest.approx(2.4)

    def test_memory_bound_lowers_frequency(self):
        policy = make_policy(use_explicit_ufs=False)
        state, freqs = policy.node_policy(memory_bound_sig())
        assert state is PolicyState.READY
        assert freqs.cpu_ghz <= 2.2

    def test_tighter_threshold_is_more_conservative(self):
        loose = make_policy(use_explicit_ufs=False, cpu_policy_th=0.05)
        tight = make_policy(use_explicit_ufs=False, cpu_policy_th=0.01)
        _, f_loose = loose.node_policy(memory_bound_sig())
        _, f_tight = tight.node_policy(memory_bound_sig())
        assert f_tight.cpu_ghz >= f_loose.cpu_ghz

    def test_min_frequency_respected(self):
        policy = make_policy(use_explicit_ufs=False, min_cpu_freq_ghz=2.2)
        _, freqs = policy.node_policy(memory_bound_sig())
        assert freqs.cpu_ghz >= 2.2

    def test_without_eufs_policy_goes_stable(self):
        policy = make_policy(use_explicit_ufs=False)
        policy.node_policy(cpu_bound_sig())
        assert policy.stage is Stage.STABLE


class TestStateDiagram:
    def test_default_selection_shortcuts_to_imc_stage(self):
        """Figure 2: default CPU frequency -> IMC_FREQ_SEL directly."""
        policy = make_policy()
        state, freqs = policy.node_policy(cpu_bound_sig())
        assert policy.stage is Stage.IMC_FREQ_SEL
        assert state is PolicyState.CONTINUE
        assert freqs.imc_max_ghz < 2.4  # first step already taken

    def test_lowered_selection_goes_through_comp_ref(self):
        """Figure 2: a changed CPU frequency needs a reference window."""
        policy = make_policy()
        state, freqs = policy.node_policy(memory_bound_sig())
        assert policy.stage is Stage.COMP_REF
        assert state is PolicyState.CONTINUE
        assert freqs.imc_max_ghz == pytest.approx(2.4)  # IMC untouched yet

    def test_comp_ref_records_reference_and_starts_descent(self):
        policy = make_policy()
        policy.node_policy(memory_bound_sig())
        at_new_freq = memory_bound_sig(
            avg_cpu_freq_ghz=2.0, cpi=2.7, avg_imc_freq_ghz=2.4
        )
        state, freqs = policy.node_policy(at_new_freq)
        assert policy.stage is Stage.IMC_FREQ_SEL
        assert state is PolicyState.CONTINUE
        assert policy._ref_cpi == pytest.approx(2.7)


class TestImcDescent:
    def descend_to_ready(self, policy, base_sig, *, cpi_per_step=0.0, max_steps=20):
        """Feed signatures whose CPI grows with each uncore step."""
        state, freqs = policy.node_policy(base_sig)
        steps = 0
        while state is PolicyState.CONTINUE and steps < max_steps:
            steps += 1
            sig = base_sig
            if cpi_per_step:
                # CPI responds to how far the uncore came down
                drop = round((2.4 - freqs.imc_max_ghz) * 10)
                sig = cpu_bound_sig(
                    cpi=base_sig.cpi * (1.0 + cpi_per_step * drop),
                    avg_imc_freq_ghz=freqs.imc_max_ghz,
                )
            state, freqs = policy.node_policy(sig)
        return state, freqs, steps

    def test_insensitive_workload_descends_to_floor(self):
        """No CPI/GBs reaction -> the descent only stops at the silicon
        minimum (the BT.CUDA case)."""
        policy = make_policy()
        state, freqs, steps = self.descend_to_ready(policy, cpu_bound_sig())
        assert state is PolicyState.READY
        assert freqs.imc_max_ghz == pytest.approx(1.2)
        assert policy.stage is Stage.STABLE

    def test_guard_trips_and_reverts_one_step(self):
        """CPI growing 0.7 %/step crosses the 2 % guard around the 3rd
        step; the last reduction must be reverted."""
        policy = make_policy()
        state, freqs, steps = self.descend_to_ready(
            policy, cpu_bound_sig(), cpi_per_step=0.007
        )
        assert state is PolicyState.READY
        # guard: 1 + 0.007*drop > 1.02 at drop=3 (2.1 GHz), reverted to 2.2
        assert freqs.imc_max_ghz == pytest.approx(2.2)

    def test_gbs_guard_also_trips(self):
        policy = make_policy()
        state, freqs = policy.node_policy(cpu_bound_sig())
        assert state is PolicyState.CONTINUE
        # a GB/s collapse beyond unc_policy_th with CPI unchanged
        state, freqs = policy.node_policy(cpu_bound_sig(gbs=20.0))
        assert state is PolicyState.READY

    def test_gbs_guard_ignored_for_negligible_traffic(self):
        """Busy-wait hosts move ~0.1 GB/s; relative jitter there must
        not stop the descent."""
        policy = make_policy()
        state, _ = policy.node_policy(cpu_bound_sig(gbs=0.09))
        assert state is PolicyState.CONTINUE
        state, _ = policy.node_policy(cpu_bound_sig(gbs=0.05))
        assert state is PolicyState.CONTINUE

    def test_tighter_unc_threshold_stops_earlier(self):
        tight = make_policy(unc_policy_th=0.01)
        loose = make_policy(unc_policy_th=0.03)
        _, f_tight, _ = TestImcDescent().descend_to_ready(
            tight, cpu_bound_sig(), cpi_per_step=0.007
        )
        _, f_loose, _ = TestImcDescent().descend_to_ready(
            loose, cpu_bound_sig(), cpi_per_step=0.007
        )
        assert f_tight.imc_max_ghz >= f_loose.imc_max_ghz

    def test_only_max_limit_moves_by_default(self):
        """Paper extension 3: the minimum stays at the hardware floor."""
        policy = make_policy()
        _, freqs = policy.node_policy(cpu_bound_sig())
        assert freqs.imc_min_ghz == pytest.approx(1.2)
        assert freqs.imc_max_ghz < 2.4

    def test_move_imc_min_pins_the_range(self):
        policy = make_policy(move_imc_min=True)
        _, freqs = policy.node_policy(cpu_bound_sig())
        assert freqs.imc_min_ghz == pytest.approx(freqs.imc_max_ghz)


class TestHwGuidedStart:
    def test_hw_guided_starts_from_hw_selection(self):
        policy = make_policy(hw_guided_imc=True)
        sig = cpu_bound_sig(avg_imc_freq_ghz=1.8)
        _, freqs = policy.node_policy(sig)
        assert freqs.imc_max_ghz == pytest.approx(1.7)  # one step below HW

    def test_not_guided_starts_from_maximum(self):
        policy = make_policy(hw_guided_imc=False)
        sig = cpu_bound_sig(avg_imc_freq_ghz=1.8)
        _, freqs = policy.node_policy(sig)
        assert freqs.imc_max_ghz == pytest.approx(2.3)


class TestPhaseChange:
    def test_signature_change_during_descent_restarts(self):
        """Paper: a phase change during IMC selection goes back to
        CPU_FREQ_SEL."""
        policy = make_policy()
        policy.node_policy(cpu_bound_sig())
        assert policy.stage is Stage.IMC_FREQ_SEL
        # CPI moves 10x: far past the 15 % signature threshold
        changed = memory_bound_sig(avg_cpu_freq_ghz=2.4)
        state, freqs = policy.node_policy(changed)
        # the policy restarted and re-selected for the new signature
        assert freqs.cpu_ghz <= 2.2

    def test_validate_accepts_stable_signature(self):
        policy = make_policy(use_explicit_ufs=False)
        sig = cpu_bound_sig()
        policy.node_policy(sig)
        assert policy.validate(cpu_bound_sig(cpi=0.40))

    def test_validate_rejects_phase_change(self):
        policy = make_policy(use_explicit_ufs=False)
        policy.node_policy(cpu_bound_sig())
        assert not policy.validate(memory_bound_sig())

    def test_reset_restores_initial_state(self):
        policy = make_policy()
        policy.node_policy(cpu_bound_sig())
        policy.reset()
        assert policy.stage is Stage.CPU_FREQ_SEL
        assert policy._imc_max_ghz == pytest.approx(2.4)

    def test_default_freqs(self):
        policy = make_policy()
        f = policy.default_freqs()
        assert f.cpu_ghz == pytest.approx(2.4)
        assert f.imc_max_ghz == pytest.approx(2.4)
        assert f.imc_min_ghz == pytest.approx(1.2)
