"""EARL runtime: windows, the Code-1 state machine, policy wiring."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.eard import Eard
from repro.ear.earl import Earl, EarlState
from repro.ear.policies import PolicyState
from repro.hw.node import SD530, Node
from repro.workloads.generator import synthetic_profile


def make_earl(node: Node, **cfg_overrides) -> Earl:
    cfg = EarConfig(**cfg_overrides)
    return Earl(Eard(node), cfg)


def run_iterations(earl: Earl, node: Node, profile, n: int):
    for _ in range(n):
        counters = profile.execute_iteration(node)
        earl.on_iteration(counters, profile.mpi_events, counters.seconds)


@pytest.fixture()
def profile(node):
    return synthetic_profile(
        name="earl.test",
        node_config=SD530,
        core_share=0.88,
        unc_share=0.06,
        mem_share=0.04,
        iteration_s=0.5,
    ).calibrate_activity(node)


class TestStartup:
    def test_default_frequency_pinned_at_job_start(self, node):
        make_earl(node)
        assert node.sockets[0].pinned
        assert node.core_target_ghz == pytest.approx(2.4)

    def test_monitoring_policy_does_not_pin(self, node):
        make_earl(node, policy="monitoring")
        assert not node.sockets[0].pinned


class TestWindows:
    def test_no_signature_before_min_window(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 15)  # 7.5 s < 10 s
        assert earl.signatures == []

    def test_signature_after_window_completes(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 60)  # ~30 s
        assert len(earl.signatures) >= 2

    def test_signature_metrics_plausible(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 30)
        sig = earl.signatures[0]
        assert sig.iteration_time_s == pytest.approx(0.5, rel=0.05)
        assert 250 < sig.dc_power_w < 420
        assert sig.cpi == pytest.approx(profile.ref_cpi, rel=0.1)

    def test_dynais_gates_mpi_workloads(self, node, profile):
        """No signature until the loop is detected."""
        earl = make_earl(node)
        # feed 30 iterations of *aperiodic* events: never locks
        for i in range(30):
            counters = profile.execute_iteration(node)
            earl.on_iteration(counters, (i * 17 + 3, i * 31 + 5), counters.seconds)
        assert earl.signatures == []

    def test_time_guided_mode_without_mpi(self, node):
        """Non-MPI codes are time-guided (the paper's fallback)."""
        from dataclasses import replace

        profile = replace(
            synthetic_profile(
                name="omp",
                node_config=SD530,
                core_share=0.88,
                unc_share=0.06,
                mem_share=0.04,
            ),
            mpi_events=(),
        ).calibrate_activity(node)
        earl = make_earl(node)
        run_iterations(earl, node, profile, 30)
        assert len(earl.signatures) >= 1


class TestLifetimeEvents:
    def test_loop_hooks_fired(self, node, profile):
        """The policy API's loop lifetime events (paper section V-B:
        'several application lifetime events are captured')."""
        earl = make_earl(node)
        calls = []
        earl.policy.on_new_loop = lambda: calls.append("new")
        earl.policy.on_end_loop = lambda: calls.append("end")
        run_iterations(earl, node, profile, 10)
        assert "new" in calls
        # break the pattern: the loop ends
        counters = profile.execute_iteration(node)
        earl.on_iteration(counters, (999, 998, 997), counters.seconds)
        assert "end" in calls


class TestStateMachine:
    def test_iterative_policy_continues_then_stabilises(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 300)  # ~150 s: full descent
        states = [d.policy_state for d in earl.decisions if d.policy_state]
        assert PolicyState.CONTINUE in states
        assert PolicyState.READY in states
        assert earl.state is EarlState.VALIDATE_POLICY

    def test_frequencies_applied_to_hardware(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 300)
        # the descent must have constrained the uncore ceiling
        limits = node.sockets[0].msr.read_uncore_limits()
        assert limits.max_ratio < 24

    def test_decision_trace_recorded(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 100)
        assert earl.decisions
        assert earl.decisions[0].earl_state is EarlState.NODE_POLICY
        assert earl.decisions[0].freqs is not None

    def test_phase_change_revalidates(self, node, profile):
        """After stabilising, a very different phase flips EARL back to
        NODE_POLICY via the validate failure path."""
        earl = make_earl(node)
        run_iterations(earl, node, profile, 300)
        assert earl.state is EarlState.VALIDATE_POLICY
        memory_phase = synthetic_profile(
            name="phase2",
            node_config=SD530,
            core_share=0.1,
            unc_share=0.2,
            mem_share=0.65,
            activity=0.5,
        ).calibrate_activity(node)
        run_iterations(earl, node, memory_phase, 60)
        # it went back through NODE_POLICY at least once
        node_policy_after = [
            d
            for d in earl.decisions
            if d.earl_state is EarlState.NODE_POLICY and d.signature.cpi > 1.5
        ]
        assert node_policy_after
