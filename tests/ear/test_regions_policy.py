"""min_energy_regions: keys, bit-identical fallback, re-entry re-apply.

The contract (docs/POLICIES.md): on single-phase workloads the region
variant is byte-for-byte ``min_energy`` — the table only changes
behaviour when a run actually re-enters an already-learned region.
"""

import pytest

from repro.ear.config import EarConfig
from repro.ear.policies import (
    MinEnergyRegionsPolicy,
    available_policies,
    create_policy,
    region_key,
)
from repro.ear.signature import Signature
from repro.hw.node import SD530
from repro.sim import run_workload
from repro.workloads.app import Workload
from repro.workloads.generator import synthetic_profile
from repro.workloads.kernels import bt_mz_c_openmp, stream_triad

SCALE = 0.25


def sig(cpi, gbs):
    return Signature(
        iteration_time_s=0.5,
        dc_power_w=330.0,
        cpi=cpi,
        tpi=0.01,
        gbs=gbs,
        vpi=0.0,
        avg_cpu_freq_ghz=2.4,
        avg_imc_freq_ghz=2.4,
    )


class TestRegionKey:
    def test_within_tolerance_same_bucket(self):
        # 5 % CPI drift at a 15 % bucket width: same region.
        assert region_key(sig(0.39, 28.0), 0.15)[0] == region_key(sig(0.41, 28.0), 0.15)[0]

    def test_distinct_phases_distinct_keys(self):
        assert region_key(sig(0.39, 28.0), 0.15) != region_key(sig(3.13, 177.0), 0.15)

    def test_no_traffic_shares_one_bucket(self):
        # Busy-wait noise below the floor must not spread over log buckets.
        a = region_key(sig(0.5, 0.01), 0.15)
        b = region_key(sig(0.5, 0.4), 0.15)
        assert a[1] == b[1]

    def test_narrower_tolerance_narrower_buckets(self):
        wide = region_key(sig(1.0, 50.0), 0.30)
        narrow = region_key(sig(1.0, 50.0), 0.02)
        assert abs(narrow[1]) > abs(wide[1])


class TestRegistration:
    def test_registered(self):
        assert "min_energy_regions" in available_policies()

    def test_config_selects_it(self):
        from repro.ear.models import make_model
        from repro.ear.policies import PolicyContext

        cfg = EarConfig(policy="min_energy_regions")
        ctx = PolicyContext(
            config=cfg,
            pstates=SD530.pstates,
            model=make_model(SD530, cfg),
            imc_max_ghz=2.4,
            imc_min_ghz=1.2,
        )
        assert isinstance(
            create_policy("min_energy_regions", ctx), MinEnergyRegionsPolicy
        )


def run_pair(workload, seed=1):
    """The same run under min_energy and min_energy_regions."""
    base = run_workload(
        workload, ear_config=EarConfig(policy="min_energy"), seed=seed
    )
    regions = run_workload(
        workload, ear_config=EarConfig(policy="min_energy_regions"), seed=seed
    )
    return base, regions


class TestSinglePhaseBitIdentity:
    """One phase -> one region -> the re-apply branch never fires."""

    @pytest.mark.parametrize("factory", [bt_mz_c_openmp, stream_triad])
    def test_exact_equality(self, factory):
        wl = factory().scaled_iterations(SCALE)
        base, regions = run_pair(wl)
        assert regions.time_s == base.time_s
        assert regions.dc_energy_j == base.dc_energy_j
        assert regions.avg_cpu_freq_ghz == base.avg_cpu_freq_ghz
        assert regions.avg_imc_freq_ghz == base.avg_imc_freq_ghz

    def test_identical_decision_stream(self):
        wl = bt_mz_c_openmp().scaled_iterations(SCALE)
        base, regions = run_pair(wl)
        assert regions.decisions == base.decisions


def abab_workload(n=400):
    """Two alternating phases, long enough for each descent to settle."""
    a = synthetic_profile(
        name="compute",
        node_config=SD530,
        core_share=0.85,
        unc_share=0.05,
        mem_share=0.05,
    )
    b = synthetic_profile(
        name="memory",
        node_config=SD530,
        core_share=0.25,
        unc_share=0.15,
        mem_share=0.55,
    )
    return Workload(
        name="abab",
        node_config=SD530,
        n_nodes=1,
        n_processes=1,
        phases=((a, n), (b, n), (a, n), (b, n)),
    )


class TestReEntry:
    def test_reapplies_learned_regions(self):
        r = run_workload(
            abab_workload(),
            ear_config=EarConfig(policy="min_energy_regions"),
            seed=3,
            telemetry=True,
        )
        kinds = [
            e.kind for e in r.nodes[0].telemetry.events if e.subsystem == "policy"
        ]
        learned = kinds.count("region_learned")
        reapplied = kinds.count("region_reapply")
        # A and B are learned on their first visit; the second visits
        # re-apply instead of re-descending.
        assert learned == 2
        assert reapplied == 2

    def test_reapply_restores_learned_pair(self):
        r = run_workload(
            abab_workload(),
            ear_config=EarConfig(policy="min_energy_regions"),
            seed=3,
            telemetry=True,
        )
        events = {
            (e.kind, e.payload_dict["region"]): e.payload_dict
            for e in r.nodes[0].telemetry.events
            if e.subsystem == "policy"
            and e.kind in ("region_learned", "region_reapply")
        }
        for (kind, region), payload in events.items():
            if kind == "region_reapply":
                learned = events[("region_learned", region)]
                assert payload["cpu_ghz"] == learned["cpu_ghz"]
                assert payload["imc_max_ghz"] == learned["imc_max_ghz"]

    def test_deterministic(self):
        cfg = EarConfig(policy="min_energy_regions")
        r1 = run_workload(abab_workload(), ear_config=cfg, seed=3)
        r2 = run_workload(abab_workload(), ear_config=cfg, seed=3)
        assert r1.time_s == r2.time_s
        assert r1.dc_energy_j == r2.dc_energy_j
        assert r1.decisions == r2.decisions

    def test_no_worse_than_global_policy(self):
        wl = abab_workload()
        base = run_workload(
            wl, ear_config=EarConfig(policy="min_energy"), seed=3, noise_sigma=0.0
        )
        regions = run_workload(
            wl,
            ear_config=EarConfig(policy="min_energy_regions"),
            seed=3,
            noise_sigma=0.0,
        )
        # Skipping repeat descents must not cost energy on re-entrant codes.
        assert regions.dc_energy_j <= base.dc_energy_j * 1.005
