"""EARL degradation ladder: stalls, watchdog, policy containment.

Complements ``test_earl.py`` (the clean-path state machine) with the
failure paths: each rung of the ladder documented in
:mod:`repro.ear.earl` gets a direct test.
"""

import math
from dataclasses import replace

import pytest

from repro.ear.config import EarConfig
from repro.ear.eard import Eard, EnergyReading
from repro.ear.earl import Earl, EarlState
from repro.ear.policies.api import NodeFreqs, PolicyPlugin, PolicyState
from repro.errors import PolicyError
from repro.hw.node import SD530, Node
from repro.sim.faults import FaultInjector, FaultPlan, HealthMonitor
from repro.workloads.generator import synthetic_profile


@pytest.fixture()
def profile(node):
    return synthetic_profile(
        name="hardening.test",
        node_config=SD530,
        core_share=0.88,
        unc_share=0.06,
        mem_share=0.04,
        iteration_s=0.5,
    ).calibrate_activity(node)


def make_earl(node: Node, *, injector=None, policy=None, **cfg_overrides) -> Earl:
    health = HealthMonitor()
    eard = Eard(node, injector=injector, health=health)
    return Earl(eard, EarConfig(**cfg_overrides), policy=policy)


def run_iterations(earl: Earl, node: Node, profile, n: int):
    for _ in range(n):
        counters = profile.execute_iteration(node)
        earl.on_iteration(counters, profile.mpi_events, counters.seconds)


def stalled_injector(node_id: int = 0) -> FaultInjector:
    """A meter that latches its first reading and never publishes again."""
    plan = FaultPlan(meter_stall_rate=1.0, meter_stall_reads=10**9)
    return FaultInjector(plan, run_seed=0, node_id=node_id, health=HealthMonitor())


class TestIngressRejection:
    """Rung 1: implausible counter samples never reach the window."""

    @pytest.mark.parametrize(
        "mutation",
        [
            {"instructions": math.nan},
            {"cycles": 0.0},
            {"instructions": -1e9},
            {"seconds": math.inf},
            {"bytes_transferred": -1.0},
        ],
    )
    def test_bad_sample_rejected_and_counted(self, node, profile, mutation):
        earl = make_earl(node)
        counters = replace(profile.execute_iteration(node), **mutation)
        earl.on_iteration(counters, profile.mpi_events, counters.seconds)
        assert earl.health.samples_rejected == 1
        assert earl.bank.snapshot().instructions == 0.0  # never entered

    def test_clean_sample_accepted(self, node, profile):
        earl = make_earl(node)
        counters = profile.execute_iteration(node)
        earl.on_iteration(counters, profile.mpi_events, counters.seconds)
        assert earl.health.samples_rejected == 0
        assert earl.bank.snapshot().instructions > 0


class TestStallDetection:
    """Rungs 3+4: a dead meter no longer spins the window forever."""

    def test_stalled_meter_counted_and_watchdog_fires(self, node, profile):
        earl = make_earl(
            node,
            injector=stalled_injector(),
            stalled_poll_limit=5,
            watchdog_window_limit=2,
        )
        run_iterations(earl, node, profile, 300)
        health = earl.health
        assert earl.signatures == []  # no energy, no signature
        assert health.windows_stalled >= 2
        assert health.watchdog_restores == 1
        assert earl.degraded

    def test_watchdog_restores_policy_defaults(self, node, profile):
        earl = make_earl(
            node,
            injector=stalled_injector(),
            stalled_poll_limit=5,
            watchdog_window_limit=2,
        )
        run_iterations(earl, node, profile, 300)
        defaults = earl.policy.default_freqs()
        assert node.core_target_ghz == pytest.approx(defaults.cpu_ghz)
        limits = node.sockets[0].msr.read_uncore_limits()
        assert limits.max_ghz == pytest.approx(defaults.imc_max_ghz)

    def test_meter_recovery_exits_degraded(self, node, profile):
        """Once the meter publishes again, a good window clears the
        watchdog and closes the degraded span."""
        earl = make_earl(node, stalled_poll_limit=5, watchdog_window_limit=2)
        real_read = earl.eard.read_dc_energy
        frozen = real_read()
        stalled = {"on": True}
        earl.eard.read_dc_energy = lambda: frozen if stalled["on"] else real_read()
        run_iterations(earl, node, profile, 150)
        assert earl.degraded
        assert earl.health.watchdog_restores == 1
        stalled["on"] = False
        run_iterations(earl, node, profile, 100)
        assert not earl.degraded
        assert earl.signatures  # windows flow again
        earl.on_app_end()
        assert earl.health.snapshot().degraded_s > 0.0

    def test_transient_meter_lag_does_not_stall(self, node, profile):
        """The 1 Hz counter's normal publication lag stays below the
        stall limit: zero stalled windows on a clean run."""
        earl = make_earl(node)
        run_iterations(earl, node, profile, 300)
        assert earl.health.windows_stalled == 0
        assert earl.health.watchdog_restores == 0
        assert not earl.degraded


class TestWindowRejection:
    """Rung 2: a window whose signature cannot be built is dropped."""

    def test_bad_signature_counted_then_watchdog(self, node, profile):
        earl = make_earl(node, watchdog_window_limit=2)
        # a broken frequency sensor makes every signature non-finite
        earl.eard.current_effective_cpu_ghz = lambda: math.nan
        run_iterations(earl, node, profile, 150)
        assert earl.health.windows_rejected >= 2
        assert earl.health.watchdog_restores == 1
        assert earl.degraded
        assert earl.signatures == []


class ExplodingPolicy(PolicyPlugin):
    """Applies one decision, then raises on the next window."""

    applies_frequencies = True

    def __init__(self) -> None:
        self.calls = 0
        self.resets = 0

    def node_policy(self, sig):
        self.calls += 1
        if self.calls >= 2:
            raise PolicyError("policy logic exploded")
        return PolicyState.CONTINUE, NodeFreqs(
            cpu_ghz=2.0, imc_max_ghz=2.0, imc_min_ghz=1.2
        )

    def validate(self, sig) -> bool:
        return True

    def default_freqs(self) -> NodeFreqs:
        return NodeFreqs(cpu_ghz=2.4, imc_max_ghz=2.4, imc_min_ghz=1.2)

    def reset(self) -> None:
        self.resets += 1


class TestPolicyContainment:
    """Rung 5: a crashing policy is disabled, not fatal."""

    def test_policy_error_contained(self, node, profile):
        earl = make_earl(node, policy=ExplodingPolicy())
        run_iterations(earl, node, profile, 300)
        assert earl.health.policy_failures == 1
        assert earl.degraded
        # fell back to the policy's declared defaults
        assert node.core_target_ghz == pytest.approx(2.4)
        # ... and signatures keep flowing for monitoring
        assert len(earl.signatures) > 2

    def test_disabled_policy_never_called_again(self, node, profile):
        policy = ExplodingPolicy()
        earl = make_earl(node, policy=policy)
        run_iterations(earl, node, profile, 300)
        assert policy.calls == 2  # one good call + the exploding one

    def test_on_app_end_failure_is_absorbed(self, node, profile):
        earl = make_earl(node)
        earl.policy.on_app_end = lambda: (_ for _ in ()).throw(PolicyError("bye"))
        run_iterations(earl, node, profile, 60)
        earl.on_app_end()  # must not raise
        assert earl.health.policy_failures == 1


class TestValidatePolicyFailure:
    """The Code-1 VALIDATE_POLICY failure path: restore defaults,
    reset the policy, fall back to NODE_POLICY."""

    def _stabilised_earl(self, node, profile):
        earl = make_earl(node)
        run_iterations(earl, node, profile, 300)
        assert earl.state is EarlState.VALIDATE_POLICY
        return earl

    def test_validate_failure_restores_defaults_and_resets(self, node, profile):
        earl = self._stabilised_earl(node, profile)
        restored = []
        earl.policy.validate = lambda sig: False
        earl.eard.restore_defaults = lambda freqs: restored.append(freqs) or True
        resets = []
        original_reset = earl.policy.reset
        earl.policy.reset = lambda: resets.append(True) or original_reset()
        run_iterations(earl, node, profile, 30)  # >= one more window
        assert restored, "defaults were not restored on validate failure"
        assert restored[0] == earl.policy.default_freqs()
        assert resets, "policy state was not reset on validate failure"

    def test_validate_failure_falls_back_to_node_policy(self, node, profile):
        earl = self._stabilised_earl(node, profile)
        earl.policy.validate = lambda sig: False
        n_before = len(earl.decisions)
        run_iterations(earl, node, profile, 60)  # >= two windows
        new = earl.decisions[n_before:]
        # a validate decision (policy_state None) followed by a fresh
        # NODE_POLICY decision: the state machine went back around
        assert any(d.earl_state is EarlState.VALIDATE_POLICY for d in new)
        assert any(
            d.earl_state is EarlState.NODE_POLICY and d.policy_state is not None
            for d in new
        )
