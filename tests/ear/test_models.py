"""Energy model training and projection accuracy."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import (
    DefaultModel,
    clear_cache,
    make_model,
    steady_state_signature,
    train_coefficients,
)
from repro.errors import ModelError
from repro.hw.node import GPU_NODE, SD530
from repro.workloads.generator import synthetic_profile, training_corpus


class TestTraining:
    def test_covers_all_pairs(self, sd530_coefficients):
        n = len(SD530.pstates)
        assert len(sd530_coefficients) == n * (n - 1)

    def test_cached_per_node_type(self, sd530_coefficients):
        assert train_coefficients(SD530) is sd530_coefficients

    def test_gpu_node_trains_separately(self, gpu_coefficients, sd530_coefficients):
        assert gpu_coefficients is not sd530_coefficients

    def test_missing_pair_raises(self, sd530_coefficients):
        with pytest.raises(ModelError):
            sd530_coefficients.get(0, 99)

    def test_identity_projection(self, sd530_coefficients):
        sig = steady_state_signature(
            training_corpus(SD530)[3], SD530, f_cpu_ghz=2.4
        )
        t, p = sd530_coefficients.project(sig, 1, 1)
        assert t == sig.iteration_time_s
        assert p == sig.dc_power_w


class TestProjectionAccuracy:
    """The trained model must predict the simulated hardware well on
    the corpus family — that is what EAR's learning phase achieves."""

    @pytest.mark.parametrize("stall", [0.04, 0.28, 0.58, 0.88])
    @pytest.mark.parametrize("to_freq", [2.1, 1.8, 1.4])
    def test_time_prediction_on_family(self, sd530_coefficients, stall, to_freq):
        profile = synthetic_profile(
            name="probe",
            node_config=SD530,
            core_share=1.0 - stall,
            unc_share=0.25 * stall,
            mem_share=0.75 * stall,
            activity=1.0 - 0.55 * stall,
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        truth = steady_state_signature(profile, SD530, f_cpu_ghz=to_freq)
        model = DefaultModel(sd530_coefficients, SD530.pstates)
        pred = model.project(sig, 1, SD530.pstates.pstate_of(to_freq))
        assert pred.time_s == pytest.approx(truth.iteration_time_s, rel=0.04)

    @pytest.mark.parametrize("stall", [0.04, 0.48, 0.88])
    def test_power_prediction_on_family(self, sd530_coefficients, stall):
        profile = synthetic_profile(
            name="probe",
            node_config=SD530,
            core_share=1.0 - stall,
            unc_share=0.25 * stall,
            mem_share=0.75 * stall,
            activity=1.0 - 0.55 * stall,
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        truth = steady_state_signature(profile, SD530, f_cpu_ghz=1.8)
        model = DefaultModel(sd530_coefficients, SD530.pstates)
        pred = model.project(sig, 1, SD530.pstates.pstate_of(1.8))
        assert pred.power_w == pytest.approx(truth.dc_power_w, rel=0.05)

    def test_cpu_bound_projects_near_inverse_frequency(self, sd530_coefficients):
        profile = synthetic_profile(
            name="cpu",
            node_config=SD530,
            core_share=0.98,
            unc_share=0.01,
            mem_share=0.01,
            activity=1.0,
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        model = DefaultModel(sd530_coefficients, SD530.pstates)
        pred = model.project(sig, 1, SD530.pstates.pstate_of(1.2))
        assert pred.time_s / sig.iteration_time_s == pytest.approx(2.0, rel=0.06)

    def test_memory_bound_projects_nearly_flat(self, sd530_coefficients):
        profile = synthetic_profile(
            name="mem",
            node_config=SD530,
            core_share=0.1,
            unc_share=0.22,
            mem_share=0.68,
            activity=0.5,
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        model = DefaultModel(sd530_coefficients, SD530.pstates)
        pred = model.project(sig, 1, SD530.pstates.pstate_of(1.8))
        assert pred.time_s / sig.iteration_time_s < 1.08


class TestModelSelection:
    def test_make_model_avx(self):
        model = make_model(SD530, EarConfig(use_avx512_model=True))
        assert model.name == "avx512"

    def test_make_model_default(self):
        model = make_model(SD530, EarConfig(use_avx512_model=False))
        assert model.name == "default"

    def test_clear_cache_retrains(self, sd530_coefficients):
        clear_cache()
        try:
            fresh = train_coefficients(SD530)
            assert fresh is not sd530_coefficients
            assert len(fresh) == len(sd530_coefficients)
        finally:
            # repopulate the shared cache for the rest of the session
            clear_cache()
            train_coefficients(SD530)
            train_coefficients(GPU_NODE)
