"""min_energy edge cases: floors, caps, and unusual starts."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import make_model
from repro.ear.policies import MinEnergyPolicy, PolicyContext, PolicyState, Stage
from repro.ear.signature import Signature
from repro.hw.node import SD530


def make_policy(**cfg_overrides) -> MinEnergyPolicy:
    cfg = EarConfig(**cfg_overrides)
    ctx = PolicyContext(
        config=cfg,
        pstates=SD530.pstates,
        model=make_model(SD530, cfg),
        imc_max_ghz=2.4,
        imc_min_ghz=1.2,
    )
    return MinEnergyPolicy(ctx)


def sig(**overrides) -> Signature:
    kwargs = dict(
        iteration_time_s=0.45,
        dc_power_w=332.0,
        cpi=0.39,
        tpi=0.0018,
        gbs=28.0,
        vpi=0.0,
        avg_cpu_freq_ghz=2.4,
        avg_imc_freq_ghz=2.4,
    )
    kwargs.update(overrides)
    return Signature(**kwargs)


class TestDescentFloors:
    def test_hw_start_at_silicon_minimum_settles_immediately(self):
        """HW already chose the floor: no step is possible -> READY."""
        policy = make_policy()
        state, freqs = policy.node_policy(sig(avg_imc_freq_ghz=1.2))
        assert state is PolicyState.READY
        assert freqs.imc_max_ghz == pytest.approx(1.2)
        assert policy.stage is Stage.STABLE

    def test_hw_start_one_step_above_minimum(self):
        policy = make_policy()
        state, freqs = policy.node_policy(sig(avg_imc_freq_ghz=1.3))
        assert state is PolicyState.CONTINUE
        assert freqs.imc_max_ghz == pytest.approx(1.2)
        # next window, no guard trip: floor reached -> READY
        state, freqs = policy.node_policy(sig(avg_imc_freq_ghz=1.2))
        assert state is PolicyState.READY

    def test_hw_reading_outside_silicon_range_is_clamped(self):
        """A garbage avg-IMC reading must not produce an illegal start."""
        policy = make_policy()
        _, freqs = policy.node_policy(sig(avg_imc_freq_ghz=0.4))
        assert freqs.imc_max_ghz >= 1.2 - 1e-9


class TestSiteCaps:
    def test_not_guided_start_respects_site_cap(self):
        """NG-U starts from the *configured* ceiling, not the silicon max,
        when a site default cap is set."""
        policy = make_policy(hw_guided_imc=False, default_imc_max_ghz=2.0)
        _, freqs = policy.node_policy(sig())
        assert freqs.imc_max_ghz <= 2.0 + 1e-9

    def test_default_freqs_with_cap_below_hw_min(self):
        """A cap below the silicon floor pins min = max at the cap."""
        policy = make_policy(default_imc_max_ghz=1.0)
        f = policy.default_freqs()
        assert f.imc_min_ghz <= f.imc_max_ghz


class TestValidateEdges:
    def test_validate_before_any_decision_is_ok(self):
        assert make_policy().validate(sig())

    def test_stable_state_reentry_reruns_policy(self):
        """node_policy called while STABLE (EARL race) must not crash:
        the safe interpretation is a fresh selection."""
        policy = make_policy(use_explicit_ufs=False)
        policy.node_policy(sig())
        assert policy.stage is Stage.STABLE
        state, freqs = policy.node_policy(sig())
        assert state is PolicyState.READY
        assert freqs.cpu_ghz > 0


class TestCompRefEdges:
    def test_comp_ref_after_reset_mid_run(self):
        """CPU selection from a non-default state goes through COMP_REF
        even when it selects the default frequency (the signature was
        not measured there)."""
        policy = make_policy()
        # memory-bound first: CPU drops, stage = COMP_REF
        mem = sig(cpi=3.13, tpi=0.0904, gbs=177.0)
        state, _ = policy.node_policy(mem)
        assert policy.stage is Stage.COMP_REF
        # now the phase flips to cpu-bound *during* COMP_REF: the
        # reference is taken at whatever arrived and descent starts
        state, _ = policy.node_policy(sig(avg_cpu_freq_ghz=2.0, cpi=0.4))
        assert policy.stage is Stage.IMC_FREQ_SEL
