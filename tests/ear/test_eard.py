"""EARD: the privileged node daemon."""

import pytest

from repro.ear.eard import Eard
from repro.ear.policies import NodeFreqs
from repro.errors import MsrPermissionError


@pytest.fixture()
def eard(node):
    return Eard(node)


class TestBoot:
    def test_reads_silicon_uncore_range_at_start(self, eard):
        """The paper: the available range 'can be read from this MSR
        register after the boot'."""
        assert eard.imc_max_ghz == pytest.approx(2.4)
        assert eard.imc_min_ghz == pytest.approx(1.2)


class TestFrequencyControl:
    def test_apply_freqs_reaches_both_scopes(self, eard, node):
        eard.apply_freqs(NodeFreqs(cpu_ghz=2.0, imc_max_ghz=1.8, imc_min_ghz=1.2))
        assert node.core_target_ghz == pytest.approx(2.0)
        for s in node.sockets:
            limits = s.msr.read_uncore_limits()
            assert limits.max_ratio == 18
            assert limits.min_ratio == 12

    def test_restore_defaults(self, eard, node):
        eard.apply_freqs(NodeFreqs(cpu_ghz=1.2, imc_max_ghz=1.2, imc_min_ghz=1.2))
        eard.restore_defaults(NodeFreqs(cpu_ghz=2.4, imc_max_ghz=2.4, imc_min_ghz=1.2))
        assert node.core_target_ghz == pytest.approx(2.4)

    def test_unprivileged_code_cannot_bypass_eard(self, node):
        """EARL-side code has no privilege: direct MSR writes fail."""
        with pytest.raises(MsrPermissionError):
            node.set_core_freq(2.0)


class TestSensors:
    def test_energy_reading_is_latched(self, eard, node):
        from repro.hw.node import OperatingPoint

        op = OperatingPoint(
            n_active_cores=40,
            activity=1.0,
            vpi=0.0,
            traffic_gbs=10.0,
            effective_core_ghz=2.4,
        )
        node.advance(op, 2.5)
        reading = eard.read_dc_energy()
        assert reading.timestamp_s == pytest.approx(2.0)
        assert reading.joules > 0

    def test_current_frequency_views(self, eard, node):
        assert eard.current_cpu_target_ghz() == pytest.approx(2.4)
        assert eard.current_imc_freq_ghz() == pytest.approx(2.4)

    def test_effective_cpu_falls_back_to_target(self, eard):
        """Before any accounting, the effective view is the target."""
        assert eard.current_effective_cpu_ghz() == pytest.approx(2.4)

    def test_epb_reaches_all_sockets(self, eard, node):
        eard.set_epb(15)
        for s in node.sockets:
            assert s.msr.read_epb() == 15

    def test_powersave_epb_lowers_uncore_end_to_end(self, node):
        """EPB is one of the HW UFS inputs (paper section IV): a
        powersave hint sinks the uncore on a pinned, lightly-loaded
        socket."""
        from repro.ear.eard import Eard
        from repro.workloads.generator import synthetic_profile
        from repro.hw.node import SD530

        profile = synthetic_profile(
            name="epb.probe",
            node_config=SD530,
            core_share=0.9,
            unc_share=0.05,
            mem_share=0.03,
        )
        node.set_core_freq(2.0, privileged=True)
        profile.execute_iteration(node)
        balanced_imc = node.uncore_freq_ghz
        Eard(node).set_epb(15)
        profile.execute_iteration(node)
        assert node.uncore_freq_ghz < balanced_imc

    def test_rapl_read(self, eard, node):
        from repro.hw.node import OperatingPoint

        op = OperatingPoint(
            n_active_cores=40,
            activity=1.0,
            vpi=0.0,
            traffic_gbs=10.0,
            effective_core_ghz=2.4,
        )
        node.advance(op, 1.0)
        assert eard.read_rapl_pck_joules() > 0
