"""EARD hardening: MSR retry/backoff, wrap-aware RAPL, sensor views."""

import pytest

from repro.ear.eard import Eard
from repro.ear.policies.api import NodeFreqs
from repro.errors import TransientMsrError
from repro.hw.rapl import SKL_ENERGY_UNIT_J

FREQS = NodeFreqs(cpu_ghz=2.1, imc_max_ghz=2.0, imc_min_ghz=1.2)


class FlakyMsr:
    """Injector stub: the first ``n_failures`` write attempts fail."""

    def __init__(self, n_failures: int) -> None:
        self.n_failures = n_failures
        self.attempts = 0

    def check_msr_write(self) -> None:
        self.attempts += 1
        if self.attempts <= self.n_failures:
            raise TransientMsrError(f"transient failure {self.attempts}")

    def filter_energy_reading(self, reading):
        return reading


class TestMsrRetry:
    def test_clean_apply_needs_no_retry(self, node):
        eard = Eard(node)
        assert eard.apply_freqs(FREQS) is True
        assert not eard.degraded
        assert eard.health.msr_retries == 0
        assert node.core_target_ghz == pytest.approx(2.1)

    def test_transient_failures_retried_to_success(self, node):
        inj = FlakyMsr(3)
        eard = Eard(node, injector=inj, msr_write_attempts=5)
        assert eard.apply_freqs(FREQS) is True
        assert not eard.degraded
        assert inj.attempts == 4  # 3 failures + the landing write
        assert eard.health.msr_retries == 3
        assert eard.health.msr_apply_failures == 0
        assert node.core_target_ghz == pytest.approx(2.1)

    def test_exhausted_retries_degrade_not_raise(self, node):
        before = node.core_target_ghz
        eard = Eard(node, injector=FlakyMsr(10**9), msr_write_attempts=3)
        assert eard.apply_freqs(FREQS) is False  # swallowed, reported
        assert eard.degraded
        assert eard.health.msr_retries == 2
        assert eard.health.msr_apply_failures == 1
        # hardware keeps the previous selection
        assert node.core_target_ghz == pytest.approx(before)

    def test_success_after_exhaustion_clears_degraded(self, node):
        inj = FlakyMsr(3)
        eard = Eard(node, injector=inj, msr_write_attempts=2)
        assert eard.apply_freqs(FREQS) is False
        assert eard.degraded
        assert eard.apply_freqs(FREQS) is True  # inj recovered (3 < 2+2)
        assert not eard.degraded


class TestRaplWrapAccounting:
    def test_accumulation_matches_energy_across_wraps(self, node):
        """Satellite fix: the raw register sum under-reports by one full
        wrap every ~22 min at 200 W; the accumulated deltas must not."""
        eard = Eard(node)
        wrap_j = (1 << 32) * SKL_ENERGY_UNIT_J  # ~262 kJ
        added = 0.0
        # ~1.5 wraps per socket, polled well inside the wrap period
        for _ in range(80):
            for counter in node.rapl.pck:
                counter.add_energy(5000.0)
            added += 5000.0 * len(node.rapl.pck)
            eard.poll_rapl()
        assert added > wrap_j  # the scenario actually wraps
        accumulated = eard.read_rapl_pck_joules()
        assert accumulated == pytest.approx(added, rel=1e-6)
        # the naive raw sum lost at least one full wrap per socket
        naive = node.rapl.pck_joules_total()
        assert accumulated - naive >= wrap_j

    def test_no_double_counting_on_idle_polls(self, node):
        eard = Eard(node)
        for counter in node.rapl.pck:
            counter.add_energy(1234.0)
        first = eard.read_rapl_pck_joules()
        second = eard.read_rapl_pck_joules()  # nothing happened since
        assert second == first


class TestSocketAveragedSensors:
    def test_effective_cpu_averages_busy_sockets(self, node):
        """Satellite fix: the old code returned socket 0's view only."""
        eard = Eard(node)
        node.sockets[0].last_effective_ghz = 2.0
        node.sockets[1].last_effective_ghz = 3.0
        assert eard.current_effective_cpu_ghz() == pytest.approx(2.5)

    def test_effective_cpu_skips_idle_sockets(self, node):
        eard = Eard(node)
        node.sockets[0].last_effective_ghz = 2.0
        node.sockets[1].last_effective_ghz = 0.0  # never ran
        assert eard.current_effective_cpu_ghz() == pytest.approx(2.0)

    def test_effective_cpu_falls_back_to_target(self, node):
        eard = Eard(node)
        for s in node.sockets:
            s.last_effective_ghz = 0.0
        assert eard.current_effective_cpu_ghz() == pytest.approx(
            node.core_target_ghz
        )

    def test_imc_freq_averages_sockets(self, node):
        eard = Eard(node)
        node.sockets[0].uncore.set_ratio(24)
        node.sockets[1].uncore.set_ratio(18)
        expected = (
            node.sockets[0].uncore.freq_ghz + node.sockets[1].uncore.freq_ghz
        ) / 2
        assert eard.current_imc_freq_ghz() == pytest.approx(expected)
        assert eard.current_imc_freq_ghz() != node.sockets[0].uncore.freq_ghz
