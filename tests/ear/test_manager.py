"""ClusterManager: the EARGM actuation loop."""

from dataclasses import asdict

import pytest

from repro.ear.config import EarConfig
from repro.ear.eargm import Eargm, EargmConfig, WarningLevel
from repro.ear.manager import ClusterManager
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.hw.node import SD530
from repro.sim.engine import run_workload
from repro.workloads.generator import synthetic_workload
from repro.workloads.kernels import bt_mz_c_openmp


def make_manager(budget_j=1e9, horizon_s=1e4, **kwargs) -> ClusterManager:
    return ClusterManager(
        Eargm(EargmConfig(budget_j=budget_j, horizon_s=horizon_s)), **kwargs
    )


def small_job():
    return bt_mz_c_openmp().scaled_iterations(0.25)


class TestSubmission:
    def test_job_recorded_in_accounting(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        rec = mgr.accounting.job(job.job_id)
        assert rec.workload == "BT-MZ.C"
        assert rec.dc_energy_j == pytest.approx(job.result.dc_energy_j)

    def test_consumption_reported_to_eargm(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        assert mgr.eargm.consumed_j == pytest.approx(job.result.dc_energy_j)
        assert mgr.total_energy_j == pytest.approx(job.result.dc_energy_j)

    def test_history_kept(self):
        mgr = make_manager()
        mgr.submit(small_job())
        mgr.submit(small_job(), seed=2)
        assert [j.job_id for j in mgr.history] == [1, 2]

    def test_config_overrides_per_job(self):
        mgr = make_manager()
        job = mgr.submit(small_job(), cpu_policy_th=0.03)
        rec = mgr.accounting.job(job.job_id)
        assert rec.cpu_policy_th == 0.03


class TestActuation:
    def test_healthy_budget_no_cap(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        assert job.level_before is WarningLevel.OK
        assert job.pstate_offset_applied == 0
        assert job.result.avg_cpu_freq_ghz > 2.3

    def test_exhausted_budget_caps_default_frequency(self):
        mgr = make_manager(budget_j=1e4, horizon_s=500.0)
        first = mgr.submit(small_job())
        second = mgr.submit(small_job(), seed=2)
        assert first.pstate_offset_applied == 0
        assert second.level_before is WarningLevel.PANIC
        assert second.pstate_offset_applied == 3
        # the cap reaches the hardware: the whole job ran slower
        assert (
            second.result.avg_cpu_freq_ghz < first.result.avg_cpu_freq_ghz - 0.2
        )

    def test_capped_job_draws_less_power(self):
        mgr_free = make_manager()
        mgr_tight = make_manager(budget_j=1e4, horizon_s=500.0)
        mgr_tight.submit(small_job())  # exhaust the budget
        free = mgr_free.submit(small_job(), seed=3)
        capped = mgr_tight.submit(small_job(), seed=3)
        assert capped.result.avg_dc_power_w < free.result.avg_dc_power_w

    def test_base_config_respected(self):
        mgr = ClusterManager(
            Eargm(EargmConfig(budget_j=1e9, horizon_s=1e4)),
            base_config=EarConfig(use_explicit_ufs=False),
        )
        job = mgr.submit(small_job())
        assert job.result.policy == "min_energy"
        # no explicit UFS: the uncore ceiling was never constrained
        assert job.result.avg_imc_freq_ghz > 2.3


class TestPoolRouting:
    """Satellite: submission goes through the ExperimentPool without
    changing a single bit of the serial result."""

    def test_pooled_submit_bit_identical_to_direct_run(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        mgr = make_manager(pool=pool)
        job = mgr.submit(small_job(), seed=11)
        direct = run_workload(small_job(), ear_config=EarConfig(), seed=11)
        assert asdict(job.result) == asdict(direct)

    def test_repeat_submit_hits_the_run_cache(self):
        cache = RunCache()
        pool = ExperimentPool(jobs=1, cache=cache)
        mgr = make_manager(pool=pool)
        first = mgr.submit(small_job(), seed=3)
        assert pool.stats.simulations == 1
        second = mgr.submit(small_job(), seed=3)
        assert pool.stats.simulations == 1  # second run never simulated
        assert cache.stats.hits >= 1
        assert asdict(first.result) == asdict(second.result)
        # distinct accounting rows nonetheless: two submissions, two jobs
        assert len(mgr.accounting.jobs()) == 2

    def test_changed_cap_is_a_different_cache_key(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        tight = make_manager(budget_j=1e4, horizon_s=500.0, pool=pool)
        tight.submit(small_job(), seed=5)  # exhausts the budget, offset 0
        assert pool.stats.simulations == 1
        tight.submit(small_job(), seed=5)  # same seed, now capped: re-run
        assert pool.stats.simulations == 2


class TestHeterogeneousNodes:
    """Satellite: accounting rows carry per-node durations, not the
    job wall time copied N times."""

    def wide_job(self):
        return synthetic_workload(
            name="hetero",
            node_config=SD530,
            core_share=0.7,
            unc_share=0.1,
            mem_share=0.15,
            n_nodes=3,
            n_iterations=40,
        )

    def test_node_rows_use_per_node_clocks(self):
        mgr = make_manager()
        job = mgr.submit(self.wide_job(), seed=2, node_speed_spread=0.25)
        rec = mgr.accounting.job(job.job_id)
        assert len(rec.nodes) == 3
        for row, node in zip(rec.nodes, job.result.nodes):
            assert node.seconds > 0
            assert row.seconds == pytest.approx(node.seconds)
            assert row.avg_dc_power_w == pytest.approx(
                node.dc_energy_j / node.seconds
            )

    def test_spread_differentiates_node_energy(self):
        mgr = make_manager()
        job = mgr.submit(self.wide_job(), seed=2, node_speed_spread=0.25)
        energies = [n.dc_energy_j for n in job.result.nodes]
        assert len(set(energies)) > 1

    def test_job_seconds_is_slowest_node(self):
        mgr = make_manager()
        job = mgr.submit(self.wide_job(), seed=2, node_speed_spread=0.25)
        rec = mgr.accounting.job(job.job_id)
        assert rec.seconds == pytest.approx(max(n.seconds for n in rec.nodes))


class TestLongHorizonWalk:
    """Satellite: a campaign that walks every warning level.

    OK -> WARNING1 -> WARNING2 -> (recovery) OK -> PANIC, asserting at
    each step that the recommended cap reaches the next job's
    configuration and is released after recovery.
    """

    def probe_job(self):
        return synthetic_workload(
            name="walk",
            node_config=SD530,
            core_share=0.8,
            unc_share=0.08,
            mem_share=0.1,
            n_iterations=60,
        )

    @staticmethod
    def idle_until_ratio(eargm, target: float) -> None:
        """Report zero-energy time until pace ratio drops to ``target``."""
        cfg = eargm.config
        t_target = eargm.consumed_j * cfg.horizon_s / (cfg.budget_j * target)
        idle = t_target - eargm.elapsed_s
        assert idle > 0, "can only steer the pace ratio down with idle time"
        eargm.report(0.0, idle)

    def test_walks_all_levels_with_cap_propagation(self):
        wl = self.probe_job()
        probe = run_workload(wl, ear_config=EarConfig(), seed=1)
        energy, horizon = probe.dc_energy_j, 40.0 * probe.time_s
        pool = ExperimentPool(jobs=1, cache=RunCache())
        mgr = ClusterManager(
            Eargm(EargmConfig(budget_j=6.0 * energy, horizon_s=horizon)),
            pool=pool,
        )
        eargm = mgr.eargm

        j1 = mgr.submit(wl, seed=1)
        assert j1.level_before is WarningLevel.OK
        assert j1.pstate_offset_applied == 0

        self.idle_until_ratio(eargm, 0.5)
        j2 = mgr.submit(wl, seed=1)
        assert j2.level_before is WarningLevel.OK

        self.idle_until_ratio(eargm, 0.90)
        j3 = mgr.submit(wl, seed=1)
        assert j3.level_before is WarningLevel.WARNING1
        assert j3.pstate_offset_applied == 1

        # j3's own consumption pushes the pace past warning2 (but the
        # absolute budget is still healthy: no panic).
        j4 = mgr.submit(wl, seed=1)
        assert j4.level_before is WarningLevel.WARNING2
        assert j4.pstate_offset_applied == 2
        # the cap reached the hardware, graded: j4 slower than j3 slower
        # than the uncapped j1
        assert j3.result.avg_cpu_freq_ghz < j1.result.avg_cpu_freq_ghz
        assert j4.result.avg_cpu_freq_ghz < j3.result.avg_cpu_freq_ghz

        # recovery: a long idle stretch drops the pace back to OK and
        # the default cap is released
        self.idle_until_ratio(eargm, 0.5)
        j5 = mgr.submit(wl, seed=1)
        assert j5.level_before is WarningLevel.OK
        assert j5.pstate_offset_applied == 0

        # keep the campaign going until the absolute budget is gone
        last = j5
        for _ in range(15):
            if eargm.level() is WarningLevel.PANIC:
                break
            last = mgr.submit(wl, seed=1)
        else:
            pytest.fail("budget never exhausted")
        assert eargm.consumed_j > eargm.config.budget_j
        panicked = mgr.submit(wl, seed=1)
        assert panicked.level_before is WarningLevel.PANIC
        assert panicked.pstate_offset_applied == 3
        assert last.job_id < panicked.job_id
