"""ClusterManager: the EARGM actuation loop."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.eargm import Eargm, EargmConfig, WarningLevel
from repro.ear.manager import ClusterManager
from repro.workloads.kernels import bt_mz_c_openmp


def make_manager(budget_j=1e9, horizon_s=1e4) -> ClusterManager:
    return ClusterManager(Eargm(EargmConfig(budget_j=budget_j, horizon_s=horizon_s)))


def small_job():
    return bt_mz_c_openmp().scaled_iterations(0.25)


class TestSubmission:
    def test_job_recorded_in_accounting(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        rec = mgr.accounting.job(job.job_id)
        assert rec.workload == "BT-MZ.C"
        assert rec.dc_energy_j == pytest.approx(job.result.dc_energy_j)

    def test_consumption_reported_to_eargm(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        assert mgr.eargm.consumed_j == pytest.approx(job.result.dc_energy_j)
        assert mgr.total_energy_j == pytest.approx(job.result.dc_energy_j)

    def test_history_kept(self):
        mgr = make_manager()
        mgr.submit(small_job())
        mgr.submit(small_job(), seed=2)
        assert [j.job_id for j in mgr.history] == [1, 2]

    def test_config_overrides_per_job(self):
        mgr = make_manager()
        job = mgr.submit(small_job(), cpu_policy_th=0.03)
        rec = mgr.accounting.job(job.job_id)
        assert rec.cpu_policy_th == 0.03


class TestActuation:
    def test_healthy_budget_no_cap(self):
        mgr = make_manager()
        job = mgr.submit(small_job())
        assert job.level_before is WarningLevel.OK
        assert job.pstate_offset_applied == 0
        assert job.result.avg_cpu_freq_ghz > 2.3

    def test_exhausted_budget_caps_default_frequency(self):
        mgr = make_manager(budget_j=1e4, horizon_s=500.0)
        first = mgr.submit(small_job())
        second = mgr.submit(small_job(), seed=2)
        assert first.pstate_offset_applied == 0
        assert second.level_before is WarningLevel.PANIC
        assert second.pstate_offset_applied == 3
        # the cap reaches the hardware: the whole job ran slower
        assert (
            second.result.avg_cpu_freq_ghz < first.result.avg_cpu_freq_ghz - 0.2
        )

    def test_capped_job_draws_less_power(self):
        mgr_free = make_manager()
        mgr_tight = make_manager(budget_j=1e4, horizon_s=500.0)
        mgr_tight.submit(small_job())  # exhaust the budget
        free = mgr_free.submit(small_job(), seed=3)
        capped = mgr_tight.submit(small_job(), seed=3)
        assert capped.result.avg_dc_power_w < free.result.avg_dc_power_w

    def test_base_config_respected(self):
        mgr = ClusterManager(
            Eargm(EargmConfig(budget_j=1e9, horizon_s=1e4)),
            base_config=EarConfig(use_explicit_ufs=False),
        )
        job = mgr.submit(small_job())
        assert job.result.policy == "min_energy"
        # no explicit UFS: the uncore ceiling was never constrained
        assert job.result.avg_imc_freq_ghz > 2.3
