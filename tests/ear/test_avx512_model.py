"""The paper's AVX512-aware model (section V-A)."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import Avx512Model, DefaultModel, make_model, steady_state_signature
from repro.hw.node import SD530
from repro.workloads.kernels import dgemm_mkl
from repro.workloads.generator import synthetic_profile


@pytest.fixture()
def models(sd530_coefficients):
    return (
        Avx512Model(sd530_coefficients, SD530.pstates),
        DefaultModel(sd530_coefficients, SD530.pstates),
    )


def scalar_sig():
    profile = synthetic_profile(
        name="scalar", node_config=SD530, core_share=0.9, unc_share=0.05, mem_share=0.05
    )
    return steady_state_signature(profile, SD530, f_cpu_ghz=2.4)


def dgemm_sig():
    profile = dgemm_mkl().calibrated().main_phase
    return steady_state_signature(profile, SD530, f_cpu_ghz=2.4)


class TestScalarEquivalence:
    def test_vpi_zero_reduces_to_default(self, models):
        avx, default = models
        sig = scalar_sig()
        for to_ps in (1, 4, 8):
            a = avx.project(sig, 1, to_ps)
            d = default.project(sig, 1, to_ps)
            assert a.time_s == pytest.approx(d.time_s)
            assert a.power_w == pytest.approx(d.power_w)


class TestLicenceClamping:
    def test_no_speedup_promised_above_licence(self, models):
        """Projections to any state above the licence frequency must
        predict the same time: the silicon cannot deliver more."""
        avx, _ = models
        sig = dgemm_sig()  # measured at effective 2.2 GHz -> from_ps 3
        from_ps = SD530.pstates.closest_pstate(sig.avg_cpu_freq_ghz)
        t_nominal = avx.project(sig, from_ps, 1).time_s
        t_licence = avx.project(sig, from_ps, 3).time_s
        assert t_nominal == pytest.approx(t_licence)

    def test_below_licence_predicts_full_slowdown(self, models):
        """The AVX component scales purely with the clock below the
        licence state — vector-dense kernels are execution bound."""
        avx, _ = models
        sig = dgemm_sig()
        from_ps = SD530.pstates.closest_pstate(sig.avg_cpu_freq_ghz)
        pred = avx.project(sig, from_ps, SD530.pstates.pstate_of(1.1))
        assert pred.time_s / sig.iteration_time_s == pytest.approx(2.0, rel=0.01)

    def test_partial_vpi_blends(self, models):
        avx, default = models
        profile = synthetic_profile(
            name="mixed",
            node_config=SD530,
            core_share=0.9,
            unc_share=0.05,
            mem_share=0.05,
            vpi=0.5,
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        from_ps = SD530.pstates.closest_pstate(sig.avg_cpu_freq_ghz)
        a = avx.project(sig, from_ps, 6)
        d = default.project(sig, from_ps, 6)
        # the blend must sit between the pure-default and pure-AVX ends
        assert a.time_s != pytest.approx(d.time_s)


class TestPolicyConsequence:
    def test_min_energy_keeps_dgemm_near_licence(self, sd530_coefficients):
        """Table IV: DGEMM's ME frequency is the licence frequency, not
        something deep below it."""
        from repro.ear.policies import MinEnergyPolicy, PolicyContext

        cfg = EarConfig(use_explicit_ufs=False)
        ctx = PolicyContext(
            config=cfg,
            pstates=SD530.pstates,
            model=make_model(SD530, cfg),
            imc_max_ghz=2.4,
            imc_min_ghz=1.2,
        )
        policy = MinEnergyPolicy(ctx)
        _, freqs = policy.node_policy(dgemm_sig())
        assert freqs.cpu_ghz >= 2.1
