"""EARGM energy-budget control."""

import pytest

from repro.ear.eargm import Eargm, EargmConfig, WarningLevel
from repro.errors import ConfigError


def make(budget_j=1000.0, horizon_s=100.0) -> Eargm:
    return Eargm(EargmConfig(budget_j=budget_j, horizon_s=horizon_s))


class TestLevels:
    def test_starts_ok(self):
        assert make().level() is WarningLevel.OK

    def test_on_pace_consumption_is_ok(self):
        gm = make()
        assert gm.report(energy_j=80.0, seconds=10.0) is WarningLevel.OK

    def test_warning1_at_85_percent_pace(self):
        gm = make()
        assert gm.report(energy_j=88.0, seconds=10.0) is WarningLevel.WARNING1

    def test_warning2_at_95_percent_pace(self):
        gm = make()
        assert gm.report(energy_j=96.0, seconds=10.0) is WarningLevel.WARNING2

    def test_over_pace_is_warning2_not_panic(self):
        # 150 % of the pro-rated pace but only 15 % of the absolute
        # budget: the strongest graded reaction, not a panic.
        gm = make()
        assert gm.report(energy_j=150.0, seconds=10.0) is WarningLevel.WARNING2

    def test_front_loaded_job_does_not_panic(self):
        # Regression: a burst seconds into the horizon used to trip
        # PANIC (pro-rated ratio >= 1) with >97 % of the budget left.
        gm = make()
        assert gm.report(energy_j=25.0, seconds=1.0) is WarningLevel.WARNING2
        assert gm.recommended_max_pstate_offset() == 2
        # settling back onto pace clears the warning entirely
        assert gm.report(energy_j=25.0, seconds=89.0) is WarningLevel.OK

    def test_panic_when_budget_exhausted(self):
        gm = make()
        gm.report(energy_j=1100.0, seconds=100.0)
        assert gm.level() is WarningLevel.PANIC

    def test_panic_on_absolute_exhaustion_even_mid_horizon(self):
        gm = make()
        assert gm.report(energy_j=1001.0, seconds=10.0) is WarningLevel.PANIC

    def test_graded_pstate_offsets(self):
        gm = make()
        assert gm.recommended_max_pstate_offset() == 0
        gm.report(energy_j=88.0, seconds=10.0)
        assert gm.recommended_max_pstate_offset() == 1
        gm.report(energy_j=120.0, seconds=10.0)
        assert gm.recommended_max_pstate_offset() >= 2

    def test_accumulators(self):
        gm = make()
        gm.report(energy_j=10.0, seconds=5.0)
        gm.report(energy_j=20.0, seconds=5.0)
        assert gm.consumed_j == pytest.approx(30.0)
        assert gm.elapsed_s == pytest.approx(10.0)


class TestValidation:
    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            EargmConfig(budget_j=0.0, horizon_s=10.0)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            EargmConfig(budget_j=1.0, horizon_s=1.0, warning1=0.9, warning2=0.8)

    def test_negative_report_rejected(self):
        with pytest.raises(ConfigError):
            make().report(energy_j=-1.0, seconds=1.0)
