"""EARGM energy-budget control."""

import pytest

from repro.ear.eargm import Eargm, EargmConfig, WarningLevel
from repro.errors import ConfigError


def make(budget_j=1000.0, horizon_s=100.0) -> Eargm:
    return Eargm(EargmConfig(budget_j=budget_j, horizon_s=horizon_s))


class TestLevels:
    def test_starts_ok(self):
        assert make().level() is WarningLevel.OK

    def test_on_pace_consumption_is_ok(self):
        gm = make()
        assert gm.report(energy_j=80.0, seconds=10.0) is WarningLevel.OK

    def test_warning1_at_85_percent_pace(self):
        gm = make()
        assert gm.report(energy_j=88.0, seconds=10.0) is WarningLevel.WARNING1

    def test_warning2_at_95_percent_pace(self):
        gm = make()
        assert gm.report(energy_j=96.0, seconds=10.0) is WarningLevel.WARNING2

    def test_over_pace_is_warning2_not_panic(self):
        # 150 % of the pro-rated pace but only 15 % of the absolute
        # budget: the strongest graded reaction, not a panic.
        gm = make()
        assert gm.report(energy_j=150.0, seconds=10.0) is WarningLevel.WARNING2

    def test_front_loaded_job_does_not_panic(self):
        # Regression: a burst seconds into the horizon used to trip
        # PANIC (pro-rated ratio >= 1) with >97 % of the budget left.
        gm = make()
        assert gm.report(energy_j=25.0, seconds=1.0) is WarningLevel.WARNING2
        assert gm.recommended_max_pstate_offset() == 2
        # settling back onto pace clears the warning entirely
        assert gm.report(energy_j=25.0, seconds=89.0) is WarningLevel.OK

    def test_panic_when_budget_exhausted(self):
        gm = make()
        gm.report(energy_j=1100.0, seconds=100.0)
        assert gm.level() is WarningLevel.PANIC

    def test_panic_on_absolute_exhaustion_even_mid_horizon(self):
        gm = make()
        assert gm.report(energy_j=1001.0, seconds=10.0) is WarningLevel.PANIC

    def test_graded_pstate_offsets(self):
        gm = make()
        assert gm.recommended_max_pstate_offset() == 0
        gm.report(energy_j=88.0, seconds=10.0)
        assert gm.recommended_max_pstate_offset() == 1
        gm.report(energy_j=120.0, seconds=10.0)
        assert gm.recommended_max_pstate_offset() >= 2

    def test_accumulators(self):
        gm = make()
        gm.report(energy_j=10.0, seconds=5.0)
        gm.report(energy_j=20.0, seconds=5.0)
        assert gm.consumed_j == pytest.approx(30.0)
        assert gm.elapsed_s == pytest.approx(10.0)


class TestRollingHorizons:
    def test_three_horizons_at_compliant_pace_stay_ok(self):
        # Regression: before rolling horizons the accumulators never
        # reset, so a compliant controller past one horizon_s ratcheted
        # toward permanent PANIC.  Three full horizons at half-budget
        # pace must grade OK the whole way.
        gm = make(budget_j=1000.0, horizon_s=100.0)
        for _ in range(30):  # 3 horizons of 10 s steps at 50 % pace
            assert gm.report(energy_j=50.0, seconds=10.0) is WarningLevel.OK
        assert gm.horizons_completed == 2  # boundary reports close horizons lazily
        assert gm.level() is WarningLevel.OK

    def test_rollover_cold_start_does_not_warn(self):
        # Regression: the first completion right after a rollover lands
        # with horizon_elapsed ~ 0, making the raw pace ratio blow up
        # (anything / ~0 -> WARNING2 at fully compliant pace).  The
        # grace floor keeps grading honest across the boundary.
        gm = make(budget_j=1000.0, horizon_s=100.0)
        gm.report(energy_j=500.0, seconds=100.0)  # one full compliant horizon
        # 5 J a hundredth of a second into the fresh window: on pace.
        # (the boundary closes lazily, on this report's arrival)
        assert gm.report(energy_j=5.0, seconds=0.01) is WarningLevel.OK
        assert gm.horizons_completed == 1
        # a genuine burst through the grace floor still warns
        assert gm.report(energy_j=900.0, seconds=0.01) is WarningLevel.WARNING2

    def test_level_recovers_after_exhausted_horizon(self):
        gm = make(budget_j=1000.0, horizon_s=100.0)
        assert gm.report(energy_j=1100.0, seconds=100.0) is WarningLevel.PANIC
        # next horizon starts fresh: compliant pace grades OK again
        assert gm.report(energy_j=40.0, seconds=10.0) is WarningLevel.OK
        assert gm.horizons_completed == 1
        assert gm.horizon_consumed_j == pytest.approx(40.0)

    def test_boundary_spanning_report_splits_pro_rata(self):
        gm = make(budget_j=1000.0, horizon_s=100.0)
        gm.report(energy_j=500.0, seconds=90.0)
        # 20 s interval: 10 s close the horizon, 10 s open the next,
        # energy split pro-rata (100 J each side).
        gm.report(energy_j=200.0, seconds=20.0)
        assert gm.horizons_completed == 1
        assert gm.horizon_elapsed_s == pytest.approx(10.0)
        assert gm.horizon_consumed_j == pytest.approx(100.0)

    def test_report_spanning_many_horizons(self):
        gm = make(budget_j=1000.0, horizon_s=100.0)
        # 3.5 horizons in one report at 40 % pace: rolls three times.
        assert gm.report(energy_j=1400.0, seconds=350.0) is WarningLevel.OK
        assert gm.horizons_completed == 3
        assert gm.horizon_elapsed_s == pytest.approx(50.0)
        assert gm.horizon_consumed_j == pytest.approx(200.0)

    def test_lifetime_accumulators_keep_counting(self):
        gm = make(budget_j=1000.0, horizon_s=100.0)
        gm.report(energy_j=600.0, seconds=150.0)
        assert gm.consumed_j == pytest.approx(600.0)
        assert gm.elapsed_s == pytest.approx(150.0)
        assert gm.horizon_elapsed_s == pytest.approx(50.0)

    def test_rollover_emits_telemetry(self):
        from repro.telemetry.recorder import EventRecorder

        rec = EventRecorder(node=0)
        gm = Eargm(
            EargmConfig(budget_j=1000.0, horizon_s=100.0), telemetry=rec
        )
        gm.report(energy_j=300.0, seconds=150.0)
        kinds = [e.kind for e in rec.events if e.subsystem == "eargm"]
        assert "horizon_rollover" in kinds


class TestValidation:
    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigError):
            EargmConfig(budget_j=0.0, horizon_s=10.0)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            EargmConfig(budget_j=1.0, horizon_s=1.0, warning1=0.9, warning2=0.8)

    def test_negative_report_rejected(self):
        with pytest.raises(ConfigError):
            make().report(energy_j=-1.0, seconds=1.0)
