"""Job accounting (eacct-like)."""

import pytest

from repro.ear.accounting import AccountingDB, JobRecord, NodeJobRecord
from repro.errors import ExperimentError


def record(job_id=1, workload="BT-MZ.C", policy="min_energy", n_nodes=2) -> JobRecord:
    nodes = tuple(
        NodeJobRecord(
            node_id=i,
            seconds=100.0,
            dc_energy_j=33000.0,
            avg_cpu_freq_ghz=2.38,
            avg_imc_freq_ghz=1.98,
        )
        for i in range(n_nodes)
    )
    return JobRecord(
        job_id=job_id,
        workload=workload,
        policy=policy,
        cpu_policy_th=0.05,
        unc_policy_th=0.02,
        nodes=nodes,
    )


class TestRecords:
    def test_job_aggregates(self):
        rec = record()
        assert rec.seconds == pytest.approx(100.0)
        assert rec.dc_energy_j == pytest.approx(66000.0)
        assert rec.avg_node_power_w == pytest.approx(330.0)
        assert rec.dc_energy_wh == pytest.approx(66000.0 / 3600.0)

    def test_node_power(self):
        n = record().nodes[0]
        assert n.avg_dc_power_w == pytest.approx(330.0)

    def test_empty_job(self):
        rec = JobRecord(
            job_id=9, workload="x", policy="none", cpu_policy_th=0, unc_policy_th=0
        )
        assert rec.seconds == 0.0
        assert rec.avg_node_power_w == 0.0


class TestDatabase:
    def test_insert_and_query(self):
        db = AccountingDB()
        db.insert(record(job_id=1))
        db.insert(record(job_id=2, workload="HPCG"))
        assert db.job(1).workload == "BT-MZ.C"
        assert [r.job_id for r in db.jobs(workload="HPCG")] == [2]
        assert len(db.jobs()) == 2

    def test_policy_filter(self):
        db = AccountingDB()
        db.insert(record(job_id=1, policy="min_energy"))
        db.insert(record(job_id=2, policy="monitoring"))
        assert [r.job_id for r in db.jobs(policy="monitoring")] == [2]

    def test_duplicate_id_rejected(self):
        db = AccountingDB()
        db.insert(record(job_id=1))
        with pytest.raises(ExperimentError):
            db.insert(record(job_id=1))

    def test_unknown_job_rejected(self):
        with pytest.raises(ExperimentError):
            AccountingDB().job(42)

    def test_job_id_allocation(self):
        db = AccountingDB()
        assert db.new_job_id() == 1
        assert db.new_job_id() == 2

    def test_total_energy(self):
        db = AccountingDB()
        db.insert(record(job_id=1))
        db.insert(record(job_id=2))
        assert db.total_energy_j() == pytest.approx(132000.0)

    def test_json_roundtrip(self):
        db = AccountingDB()
        db.insert(record(job_id=1))
        db.insert(record(job_id=7, workload="POP"))
        restored = AccountingDB.from_json(db.to_json())
        assert restored.job(7).workload == "POP"
        assert restored.total_energy_j() == pytest.approx(db.total_energy_j())
        # id allocation continues after the highest restored id
        assert restored.new_job_id() == 8

    def test_node_rows(self):
        db = AccountingDB()
        assert db.node_rows() == 0
        db.insert(record(job_id=1, n_nodes=2))
        db.insert(record(job_id=2, n_nodes=3))
        assert db.node_rows() == 5


class TestUpsertNodes:
    def one_node(self, job_id, node_id):
        rec = record(job_id=job_id, n_nodes=1)
        node = NodeJobRecord(
            node_id=node_id,
            seconds=50.0,
            dc_energy_j=11000.0,
            avg_cpu_freq_ghz=2.3,
            avg_imc_freq_ghz=2.0,
        )
        return JobRecord(
            job_id=rec.job_id,
            workload=rec.workload,
            policy=rec.policy,
            cpu_policy_th=rec.cpu_policy_th,
            unc_policy_th=rec.unc_policy_th,
            nodes=(node,),
        )

    def test_first_report_inserts(self):
        db = AccountingDB()
        db.upsert_nodes(self.one_node(1, 0))
        assert db.job(1).nodes[0].node_id == 0
        assert db.new_job_id() == 2

    def test_later_reports_grow_the_job(self):
        db = AccountingDB()
        db.upsert_nodes(self.one_node(1, 0))
        db.upsert_nodes(self.one_node(1, 3))
        rec = db.job(1)
        assert [n.node_id for n in rec.nodes] == [0, 3]
        assert rec.dc_energy_j == pytest.approx(22000.0)
        assert db.node_rows() == 2

    def test_conflicting_metadata_rejected(self):
        db = AccountingDB()
        db.upsert_nodes(self.one_node(1, 0))
        from dataclasses import replace

        bad = replace(self.one_node(1, 1), policy="min_time")
        with pytest.raises(ExperimentError, match="conflicting policy"):
            db.upsert_nodes(bad)

    def test_same_node_twice_rejected(self):
        db = AccountingDB()
        db.upsert_nodes(self.one_node(1, 0))
        with pytest.raises(ExperimentError, match="reported twice"):
            db.upsert_nodes(self.one_node(1, 0))


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        db = AccountingDB()
        db.insert(record(job_id=1))
        db.insert(record(job_id=4, workload="POP", policy="monitoring"))
        path = db.save(tmp_path / "eacct.json")
        restored = AccountingDB.load(path)
        assert restored.to_json() == db.to_json()
        assert restored.node_rows() == db.node_rows()
        assert [r.job_id for r in restored.jobs(policy="monitoring")] == [4]

    def test_save_creates_parent_dirs(self, tmp_path):
        path = AccountingDB().save(tmp_path / "deep" / "dir" / "eacct.json")
        assert path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="no accounting database"):
            AccountingDB.load(tmp_path / "absent.json")

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError, match="corrupt"):
            AccountingDB.load(path)
