"""Coefficient persistence (the learning-phase artefact lifecycle)."""

import json

import pytest

from repro.ear.models import (
    load_coefficients,
    save_coefficients,
    steady_state_signature,
)
from repro.ear.models.default_model import DefaultModel
from repro.errors import ModelError
from repro.hw.node import SD530
from repro.workloads.generator import synthetic_profile


class TestRoundtrip:
    def test_save_load_identical_projections(self, sd530_coefficients, tmp_path):
        path = tmp_path / "sd530.json"
        save_coefficients(sd530_coefficients, path)
        restored = load_coefficients(path)

        assert restored.node_name == sd530_coefficients.node_name
        assert restored.pstate_freqs_ghz == sd530_coefficients.pstate_freqs_ghz
        assert len(restored) == len(sd530_coefficients)

        profile = synthetic_profile(
            name="probe", node_config=SD530, core_share=0.6, unc_share=0.12, mem_share=0.25
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        for to_ps in (2, 5, 9, 14):
            t1, p1 = sd530_coefficients.project(sig, 1, to_ps)
            t2, p2 = restored.project(sig, 1, to_ps)
            assert t1 == pytest.approx(t2)
            assert p1 == pytest.approx(p2)

    def test_restored_table_drives_a_model(self, sd530_coefficients, tmp_path):
        path = tmp_path / "sd530.json"
        save_coefficients(sd530_coefficients, path)
        model = DefaultModel(load_coefficients(path), SD530.pstates)
        profile = synthetic_profile(
            name="probe", node_config=SD530, core_share=0.9, unc_share=0.05, mem_share=0.04
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        proj = model.project(sig, 1, 4)
        assert proj.time_s > sig.iteration_time_s


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_coefficients(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_coefficients(path)

    def test_wrong_version_rejected(self, sd530_coefficients, tmp_path):
        path = tmp_path / "v99.json"
        save_coefficients(sd530_coefficients, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError):
            load_coefficients(path)

    def test_truncated_table_rejected(self, sd530_coefficients, tmp_path):
        path = tmp_path / "trunc.json"
        save_coefficients(sd530_coefficients, path)
        payload = json.loads(path.read_text())
        payload["pairs"] = payload["pairs"][:10]
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError):
            load_coefficients(path)
