"""Coefficient persistence (the learning-phase artefact lifecycle)."""

import json

import pytest

from repro.ear.models import (
    load_coefficients,
    save_coefficients,
    steady_state_signature,
)
from repro.ear.models.default_model import DefaultModel
from repro.errors import ModelError
from repro.hw.node import SD530
from repro.workloads.generator import synthetic_profile


class TestRoundtrip:
    def test_save_load_identical_projections(self, sd530_coefficients, tmp_path):
        path = tmp_path / "sd530.json"
        save_coefficients(sd530_coefficients, path)
        restored = load_coefficients(path)

        assert restored.node_name == sd530_coefficients.node_name
        assert restored.pstate_freqs_ghz == sd530_coefficients.pstate_freqs_ghz
        assert len(restored) == len(sd530_coefficients)

        profile = synthetic_profile(
            name="probe", node_config=SD530, core_share=0.6, unc_share=0.12, mem_share=0.25
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        for to_ps in (2, 5, 9, 14):
            t1, p1 = sd530_coefficients.project(sig, 1, to_ps)
            t2, p2 = restored.project(sig, 1, to_ps)
            assert t1 == pytest.approx(t2)
            assert p1 == pytest.approx(p2)

    def test_restored_table_drives_a_model(self, sd530_coefficients, tmp_path):
        path = tmp_path / "sd530.json"
        save_coefficients(sd530_coefficients, path)
        model = DefaultModel(load_coefficients(path), SD530.pstates)
        profile = synthetic_profile(
            name="probe", node_config=SD530, core_share=0.9, unc_share=0.05, mem_share=0.04
        )
        sig = steady_state_signature(profile, SD530, f_cpu_ghz=2.4)
        proj = model.project(sig, 1, 4)
        assert proj.time_s > sig.iteration_time_s


class TestFormatV2:
    def test_source_defaults_to_analytic_round_trip(
        self, sd530_coefficients, tmp_path
    ):
        path = tmp_path / "sd530.json"
        save_coefficients(sd530_coefficients, path)
        assert load_coefficients(path).source == "analytic"

    def test_quality_round_trips(self, sd530_coefficients, tmp_path):
        from repro.ear.models import PairQuality, TableQuality
        from repro.ear.models.coefficients import CoefficientTable

        table = CoefficientTable(
            sd530_coefficients.node_name, sd530_coefficients.pstate_freqs_ghz
        )
        for (f, t), coeffs in sd530_coefficients.items():
            table.set(f, t, coeffs)
        table.source = "fitted"
        table.quality = TableQuality(
            n_observations=96,
            kernels=("BT-MZ.C", "STREAM"),
            min_r2_cpi=0.99,
            min_r2_power=0.9,
            max_rel_time_err=0.04,
            max_rel_power_err=0.06,
            avx512_licence_ghz=2.2,
            pairs=(
                PairQuality(
                    from_ps=0,
                    to_ps=1,
                    n_obs=6,
                    r2_cpi=0.999,
                    r2_power=0.95,
                    max_rel_time_err=0.01,
                    max_rel_power_err=0.02,
                ),
            ),
        )
        path = tmp_path / "fitted.json"
        save_coefficients(table, path)
        restored = load_coefficients(path)
        assert restored.source == "fitted"
        assert restored.quality == table.quality

    def test_v1_files_still_load(self, sd530_coefficients, tmp_path):
        # a pre-quality file: no source, no quality keys
        path = tmp_path / "v1.json"
        save_coefficients(sd530_coefficients, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 1
        payload.pop("source", None)
        payload.pop("quality", None)
        path.write_text(json.dumps(payload))
        restored = load_coefficients(path)
        assert restored.source == "fitted"
        assert restored.quality is None
        assert len(restored) == len(sd530_coefficients)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_coefficients(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_coefficients(path)

    def test_wrong_version_rejected(self, sd530_coefficients, tmp_path):
        path = tmp_path / "v99.json"
        save_coefficients(sd530_coefficients, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError):
            load_coefficients(path)

    def test_truncated_table_rejected(self, sd530_coefficients, tmp_path):
        path = tmp_path / "trunc.json"
        save_coefficients(sd530_coefficients, path)
        payload = json.loads(path.read_text())
        payload["pairs"] = payload["pairs"][:10]
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError):
            load_coefficients(path)
