"""DynAIS loop detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ear.dynais import Dynais, DynaisEvent
from repro.workloads.mpi_trace import allreduce_pattern, pencil_pattern, stencil_pattern


def feed(dynais: Dynais, events) -> list[DynaisEvent]:
    return [dynais.observe(e) for e in events]


class TestDetection:
    def test_locks_onto_simple_loop(self):
        d = Dynais(confirm=3)
        pattern = [1, 2, 3]
        out = feed(d, pattern * 6)
        assert DynaisEvent.NEW_LOOP in out
        assert d.in_loop
        assert d.period == 3

    def test_iteration_boundaries_fire_once_per_period(self):
        d = Dynais(confirm=3)
        pattern = [1, 2, 3, 4]
        out = feed(d, pattern * 10)
        boundaries = out.count(DynaisEvent.NEW_ITERATION)
        # after lock-on, one boundary per remaining period
        assert boundaries >= 5
        # never more boundaries than periods
        assert boundaries <= 10

    def test_random_stream_never_locks(self):
        d = Dynais()
        out = feed(d, [7, 3, 9, 1, 4, 8, 2, 6, 5, 10, 13, 11, 12, 15, 14])
        assert all(e is DynaisEvent.NO_LOOP for e in out)
        assert not d.in_loop

    def test_loop_end_detected(self):
        d = Dynais(confirm=3)
        feed(d, [1, 2] * 8)
        assert d.in_loop
        out = feed(d, [99])
        assert out[-1] is DynaisEvent.END_LOOP
        assert not d.in_loop

    def test_relocks_after_phase_change(self):
        d = Dynais(confirm=3)
        feed(d, [1, 2] * 8)
        feed(d, [99])  # END_LOOP
        out = feed(d, [5, 6, 7] * 6)
        assert DynaisEvent.NEW_LOOP in out
        assert d.period == 3

    def test_smallest_period_wins(self):
        """An outer loop of two identical halves reports the inner period."""
        d = Dynais(confirm=3)
        feed(d, [1, 2, 1, 2, 1, 2, 1, 2, 1, 2])
        assert d.period == 2

    def test_constant_stream_is_period_one(self):
        d = Dynais(confirm=3)
        feed(d, [5] * 10)
        assert d.period == 1


class TestRealPatterns:
    @pytest.mark.parametrize(
        "pattern",
        [stencil_pattern(4), allreduce_pattern(2), pencil_pattern()],
        ids=["stencil", "allreduce", "pencil"],
    )
    def test_locks_on_real_mpi_patterns(self, pattern):
        d = Dynais(confirm=3)
        out = feed(d, list(pattern) * 8)
        assert d.in_loop
        assert d.period == len(pattern)
        assert out.count(DynaisEvent.NEW_ITERATION) >= 3


class TestRobustness:
    def test_reset(self):
        d = Dynais(confirm=3)
        feed(d, [1, 2] * 8)
        d.reset()
        assert not d.in_loop
        assert feed(d, [1, 2])[0] is DynaisEvent.NO_LOOP

    def test_history_is_bounded(self):
        d = Dynais(max_period=8, confirm=3)
        feed(d, list(range(100000)) )
        assert len(d._history) <= 4 * 8 * 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Dynais(max_period=0)
        with pytest.raises(ValueError):
            Dynais(confirm=1)

    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=6),
        st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=40)
    def test_any_periodic_stream_locks(self, body, repeats):
        """Property: repeating any body enough times gets detected."""
        d = Dynais(confirm=3)
        out = feed(d, body * repeats * 3)
        assert d.in_loop
        assert d.period is not None
        assert d.period <= len(body)  # may find a sub-period
        assert len(body) % d.period == 0 or d.period <= len(body)
