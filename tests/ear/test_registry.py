"""Policy plugin registry and the policy API."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import make_model
from repro.ear.policies import (
    NodeFreqs,
    PolicyContext,
    PolicyPlugin,
    PolicyState,
    available_policies,
    create_policy,
    register_policy,
)
from repro.ear.policies.registry import _FACTORIES
from repro.errors import PolicyError
from repro.hw.node import SD530


def make_context(**cfg_overrides) -> PolicyContext:
    cfg = EarConfig(**cfg_overrides)
    return PolicyContext(
        config=cfg,
        pstates=SD530.pstates,
        model=make_model(SD530, cfg),
        imc_max_ghz=2.4,
        imc_min_ghz=1.2,
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = available_policies()
        assert "min_energy" in names
        assert "min_time" in names
        assert "monitoring" in names

    def test_create_by_name(self):
        policy = create_policy("min_energy", make_context())
        assert isinstance(policy, PolicyPlugin)
        assert policy.name == "min_energy"

    def test_unknown_name_raises(self):
        with pytest.raises(PolicyError):
            create_policy("does_not_exist", make_context())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PolicyError):
            register_policy("min_energy")(lambda ctx: None)

    def test_custom_plugin_roundtrip(self):
        """Users extend EAR by registering plugins — the paper's
        'policies have been implemented as plugins' mechanism."""

        @register_policy("test_fixed_freq")
        class FixedFreqPolicy(PolicyPlugin):
            name = "test_fixed_freq"

            def __init__(self, ctx):
                self.ctx = ctx

            def node_policy(self, sig):
                return PolicyState.READY, self.default_freqs()

            def validate(self, sig):
                return True

            def default_freqs(self):
                return NodeFreqs(cpu_ghz=2.0, imc_max_ghz=2.0, imc_min_ghz=1.2)

        try:
            policy = create_policy("test_fixed_freq", make_context())
            state, freqs = policy.node_policy(None)
            assert state is PolicyState.READY
            assert freqs.cpu_ghz == 2.0
        finally:
            _FACTORIES.pop("test_fixed_freq", None)

    def test_factory_returning_wrong_type_rejected(self):
        _FACTORIES["test_bad"] = lambda ctx: object()
        try:
            with pytest.raises(PolicyError):
                create_policy("test_bad", make_context())
        finally:
            _FACTORIES.pop("test_bad", None)


class TestNodeFreqs:
    def test_spans_both_scopes(self):
        f = NodeFreqs(cpu_ghz=2.4, imc_max_ghz=2.4, imc_min_ghz=1.2)
        assert f.cpu_ghz == 2.4
        assert f.imc_max_ghz == 2.4

    def test_inverted_imc_range_rejected(self):
        with pytest.raises(PolicyError):
            NodeFreqs(cpu_ghz=2.4, imc_max_ghz=1.2, imc_min_ghz=2.4)

    def test_zero_cpu_rejected(self):
        with pytest.raises(PolicyError):
            NodeFreqs(cpu_ghz=0.0, imc_max_ghz=2.4, imc_min_ghz=1.2)

    def test_with_imc_max_keeps_range_valid(self):
        f = NodeFreqs(cpu_ghz=2.4, imc_max_ghz=2.4, imc_min_ghz=2.0)
        g = f.with_imc_max(1.8)
        assert g.imc_max_ghz == pytest.approx(1.8)
        assert g.imc_min_ghz <= g.imc_max_ghz
