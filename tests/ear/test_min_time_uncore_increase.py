"""min_time's upward uncore search (the paper's future-work strategy)."""

import pytest

from repro.ear.config import EarConfig
from repro.hw.node import SD530
from repro.sim.engine import run_workload
from repro.workloads.generator import synthetic_workload


def memory_workload(n_iterations=200):
    return synthetic_workload(
        name="membound",
        node_config=SD530,
        core_share=0.12,
        unc_share=0.2,
        mem_share=0.6,
        n_iterations=n_iterations,
    )


def cpu_workload(n_iterations=200):
    return synthetic_workload(
        name="cpubound",
        node_config=SD530,
        core_share=0.92,
        unc_share=0.04,
        mem_share=0.03,
        n_iterations=n_iterations,
    )


class TestUpwardSearch:
    def test_raises_capped_uncore_for_memory_bound(self):
        """Under a conservative site cap, min_time recovers the lost
        bandwidth by walking the uncore ceiling back up."""
        cfg = EarConfig(policy="min_time", default_imc_max_ghz=1.8)
        r = run_workload(memory_workload(), ear_config=cfg, seed=1)
        final = [d.freqs.imc_max_ghz for d in r.decisions if d.freqs][-1]
        assert final > 2.2
        assert r.avg_imc_freq_ghz > 1.9

    def test_upward_search_recovers_time(self):
        wl = memory_workload()
        capped_me = run_workload(
            wl,
            ear_config=EarConfig(policy="min_energy", default_imc_max_ghz=1.8),
            seed=1,
        )
        capped_mt = run_workload(
            wl,
            ear_config=EarConfig(policy="min_time", default_imc_max_ghz=1.8),
            seed=1,
        )
        assert capped_mt.time_s < capped_me.time_s * 0.97

    def test_cpu_bound_still_descends_under_cap(self):
        """A CPU-bound code has nothing to gain from more uncore: the
        inherited guarded descent runs instead."""
        cfg = EarConfig(policy="min_time", default_imc_max_ghz=2.0)
        r = run_workload(cpu_workload(), ear_config=cfg, seed=1)
        final = [d.freqs.imc_max_ghz for d in r.decisions if d.freqs][-1]
        assert final < 2.0

    def test_uncapped_memory_bound_does_not_search_up(self):
        """Already at the ceiling: nothing to raise, settles promptly."""
        cfg = EarConfig(policy="min_time")
        r = run_workload(memory_workload(), ear_config=cfg, seed=1)
        assert r.avg_imc_freq_ghz > 2.2

    def test_site_cap_respected_by_min_energy(self):
        """min_energy treats the cap as its ceiling (no upward moves)."""
        cfg = EarConfig(policy="min_energy", default_imc_max_ghz=1.8)
        r = run_workload(memory_workload(), ear_config=cfg, seed=1)
        for d in r.decisions:
            if d.freqs is not None:
                assert d.freqs.imc_max_ghz <= 1.8 + 1e-9


class TestDefaultPstateOffset:
    def test_offset_lowers_default_and_selection(self):
        wl = cpu_workload()
        free = run_workload(wl, ear_config=EarConfig(), seed=1)
        capped = run_workload(
            wl, ear_config=EarConfig(default_pstate_offset=3), seed=1
        )
        assert capped.avg_cpu_freq_ghz < free.avg_cpu_freq_ghz - 0.2

    def test_offset_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            EarConfig(default_pstate_offset=99)
