"""EAR configuration validation."""

import pytest

from repro.ear.config import EarConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = EarConfig()
        assert cfg.policy == "min_energy"
        assert cfg.cpu_policy_th == 0.05
        assert cfg.unc_policy_th == 0.02
        assert cfg.use_explicit_ufs
        assert cfg.hw_guided_imc
        assert cfg.imc_step_ghz == pytest.approx(0.1)
        assert not cfg.move_imc_min
        assert cfg.signature_min_time_s == 10.0
        assert cfg.signature_change_th == 0.15

    def test_overrides(self):
        cfg = EarConfig().with_overrides(cpu_policy_th=0.03)
        assert cfg.cpu_policy_th == 0.03
        assert cfg.unc_policy_th == 0.02


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("cpu_policy_th", -0.1),
            ("cpu_policy_th", 0.6),
            ("unc_policy_th", -0.01),
            ("imc_step_ghz", 0.0),
            ("signature_min_time_s", 0.0),
            ("signature_change_th", 0.0),
            ("signature_change_th", 1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            EarConfig(**{field: value})

    def test_zero_thresholds_allowed(self):
        """Figure 4 runs unc_policy_th = 0 %."""
        assert EarConfig(unc_policy_th=0.0).unc_policy_th == 0.0
