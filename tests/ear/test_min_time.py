"""min_time_to_solution and the monitoring policy."""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import make_model, steady_state_signature
from repro.ear.policies import (
    MinTimePolicy,
    MonitoringPolicy,
    PolicyContext,
    PolicyState,
)
from repro.hw.node import SD530
from repro.workloads.generator import synthetic_profile


def make_context(**cfg_overrides) -> PolicyContext:
    cfg = EarConfig(**cfg_overrides)
    return PolicyContext(
        config=cfg,
        pstates=SD530.pstates,
        model=make_model(SD530, cfg),
        imc_max_ghz=2.4,
        imc_min_ghz=1.2,
    )


def sig_for(core_share: float, f_cpu: float = 2.4):
    stall = 1.0 - core_share
    profile = synthetic_profile(
        name="probe",
        node_config=SD530,
        core_share=core_share,
        unc_share=0.25 * stall,
        mem_share=0.75 * stall,
        activity=1.0 - 0.55 * stall,
    )
    return steady_state_signature(profile, SD530, f_cpu_ghz=f_cpu)


class TestMinTime:
    def test_cpu_bound_climbs_to_turbo(self):
        """A compute-bound code gains the full frequency ratio: climb."""
        policy = MinTimePolicy(make_context(use_explicit_ufs=False))
        _, freqs = policy.node_policy(sig_for(0.97))
        assert freqs.cpu_ghz == pytest.approx(2.6)

    def test_memory_bound_stays_at_nominal(self):
        """Extra clock buys a bandwidth-bound code nothing: stay."""
        policy = MinTimePolicy(make_context(use_explicit_ufs=False))
        _, freqs = policy.node_policy(sig_for(0.1))
        assert freqs.cpu_ghz == pytest.approx(2.4)

    def test_eufs_extension_trims_uncore(self):
        """The paper's future work: min_time + the guarded descent."""
        policy = MinTimePolicy(make_context())
        state, freqs = policy.node_policy(sig_for(0.97))
        # iterative IMC stage engaged after the climb
        assert state is PolicyState.CONTINUE

    def test_invalid_gain_threshold_rejected(self):
        with pytest.raises(ValueError):
            MinTimePolicy(make_context(), min_eff_gain=0.0)


class TestMonitoring:
    def test_returns_defaults_ready(self):
        policy = MonitoringPolicy(make_context())
        state, freqs = policy.node_policy(sig_for(0.8))
        assert state is PolicyState.READY
        assert freqs.cpu_ghz == pytest.approx(2.4)

    def test_never_applies_frequencies(self):
        assert MonitoringPolicy.applies_frequencies is False

    def test_validate_tracks_signature(self):
        policy = MonitoringPolicy(make_context())
        policy.node_policy(sig_for(0.9))
        assert policy.validate(sig_for(0.9))
        assert not policy.validate(sig_for(0.1))
