"""Signature construction and change detection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.ear.signature import Signature, relative_change, signature_changed
from repro.hw.counters import CounterSnapshot


def sig(**overrides) -> Signature:
    kwargs = dict(
        iteration_time_s=0.5,
        dc_power_w=330.0,
        cpi=0.6,
        tpi=0.005,
        gbs=30.0,
        vpi=0.0,
        avg_cpu_freq_ghz=2.4,
        avg_imc_freq_ghz=2.4,
    )
    kwargs.update(overrides)
    return Signature(**kwargs)


class TestConstruction:
    def test_energy_per_iteration(self):
        assert sig().energy_per_iteration_j == pytest.approx(165.0)

    def test_from_window(self):
        window = CounterSnapshot(
            seconds=12.0,
            iterations=24,
            instructions=1e12,
            cycles=6e11,
            bytes_transferred=3.6e11,
            avx512_instructions=0.0,
        )
        s = Signature.from_window(
            window,
            dc_energy_j=4000.0,
            dc_seconds=12.0,
            avg_cpu_freq_ghz=2.4,
            avg_imc_freq_ghz=2.2,
        )
        assert s.iteration_time_s == pytest.approx(0.5)
        assert s.dc_power_w == pytest.approx(333.33, rel=1e-3)
        assert s.cpi == pytest.approx(0.6)
        assert s.gbs == pytest.approx(30.0)
        assert s.iterations == 24

    def test_empty_window_rejected(self):
        window = CounterSnapshot(0.0, 0, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(SignatureError):
            Signature.from_window(
                window,
                dc_energy_j=1.0,
                dc_seconds=1.0,
                avg_cpu_freq_ghz=2.4,
                avg_imc_freq_ghz=2.4,
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("iteration_time_s", 0.0),
            ("dc_power_w", -1.0),
            ("cpi", 0.0),
            ("tpi", -0.1),
            ("vpi", 1.5),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(SignatureError):
            sig(**{field: value})


class TestRelativeChange:
    def test_basic(self):
        assert relative_change(100.0, 110.0) == pytest.approx(0.1)

    def test_symmetric_in_magnitude(self):
        assert relative_change(100.0, 90.0) == pytest.approx(0.1)

    def test_tiny_base(self):
        assert relative_change(0.0, 0.0) == 0.0
        assert relative_change(0.0, 1.0) == float("inf")

    @given(st.floats(min_value=0.1, max_value=1e6))
    def test_no_change_is_zero(self, x):
        assert relative_change(x, x) == 0.0


class TestChangeDetection:
    def test_unchanged_signature(self):
        assert not signature_changed(sig(), sig(), 0.15)

    def test_cpi_change_beyond_threshold(self):
        assert signature_changed(sig(), sig(cpi=0.75), 0.15)

    def test_cpi_change_below_threshold(self):
        assert not signature_changed(sig(), sig(cpi=0.65), 0.15)

    def test_gbs_change_detected(self):
        assert signature_changed(sig(), sig(gbs=50.0), 0.15)

    def test_busy_wait_traffic_jitter_ignored(self):
        """0.1 GB/s signatures (CUDA hosts) must not flap the detector."""
        a = sig(gbs=0.09)
        b = sig(gbs=0.18)
        assert not signature_changed(a, b, 0.15)
