"""End-to-end telemetry guarantees.

The four contracts the subsystem ships with:

1. determinism — the same seed yields the identical event stream;
2. zero-cost default — a run with telemetry on has bit-identical
   physics to the same run with telemetry off;
3. process transparency — snapshots survive the experiment pool's
   worker processes and merge deterministically;
4. cache neutrality — wanting telemetry never changes a request's
   cache key, and the pool upgrades telemetry-free entries in place.
"""

import json

import pytest

from repro.ear.config import EarConfig
from repro.experiments.parallel import ExperimentPool, RunCache, RunRequest
from repro.sim.engine import run_workload
from repro.sim.faults import FaultPlan
from repro.telemetry import ladder_event_counts, node_events
from tests.conftest import make_fast_workload

FAULT_PLAN = FaultPlan(
    seed=7,
    meter_stall_rate=0.05,
    meter_dropout_rate=0.03,
    counter_corruption_rate=0.08,
    msr_failure_rate=0.08,
    rapl_wrap_rate=0.03,
    throttle_rate=0.02,
)


def run_once(*, telemetry: bool, fault_plan=None, n_iterations=200, seed=3):
    wl = make_fast_workload(n_iterations=n_iterations)
    return run_workload(
        wl,
        ear_config=EarConfig(),
        seed=seed,
        telemetry=telemetry,
        fault_plan=fault_plan,
    )


class TestDeterminism:
    def test_same_seed_identical_event_stream(self):
        a = run_once(telemetry=True, fault_plan=FAULT_PLAN)
        b = run_once(telemetry=True, fault_plan=FAULT_PLAN)
        assert a.events == b.events
        assert [n.telemetry for n in a.nodes] == [n.telemetry for n in b.nodes]

    def test_different_seed_different_stream(self):
        a = run_once(telemetry=True, fault_plan=FAULT_PLAN, seed=3)
        b = run_once(telemetry=True, fault_plan=FAULT_PLAN, seed=4)
        assert a.events != b.events


class TestCleanPathEquality:
    def test_telemetry_does_not_perturb_physics(self):
        on = run_once(telemetry=True)
        off = run_once(telemetry=False)
        assert on.time_s == off.time_s
        assert on.dc_energy_j == off.dc_energy_j
        assert on.pck_energy_j == off.pck_energy_j
        assert on.avg_cpu_freq_ghz == off.avg_cpu_freq_ghz
        assert on.avg_imc_freq_ghz == off.avg_imc_freq_ghz
        assert on.decisions == off.decisions

    def test_telemetry_does_not_perturb_fault_schedule(self):
        on = run_once(telemetry=True, fault_plan=FAULT_PLAN)
        off = run_once(telemetry=False, fault_plan=FAULT_PLAN)
        assert on.health == off.health
        assert on.time_s == off.time_s
        assert on.dc_energy_j == off.dc_energy_j

    def test_off_run_carries_no_telemetry(self):
        off = run_once(telemetry=False)
        assert not off.has_telemetry
        assert off.events == ()
        with pytest.raises(ValueError):
            node_events(off, 0)


class TestFaultedRunReplay:
    """The JSONL export replays the run: every policy descent step and
    every degradation-ladder reaction appears as an event."""

    @pytest.fixture(scope="class")
    def faulted(self):
        return run_once(telemetry=True, fault_plan=FAULT_PLAN, n_iterations=300)

    @pytest.fixture(scope="class")
    def jsonl_rows(self, faulted):
        from repro.telemetry import events_to_jsonl

        return [json.loads(line) for line in events_to_jsonl(faulted).splitlines()]

    def test_every_imc_descent_step_replayed(self, faulted, jsonl_rows):
        # each CONTINUE decision during IMC descent lowers the ceiling by
        # one 0.1 GHz step; the event stream must carry every one of them
        decided = [
            d.freqs.imc_max_ghz
            for d in faulted.decisions
            if d.policy_state is not None
            and d.policy_state.name == "CONTINUE"
            and d.freqs is not None
        ]
        stepped = [
            r["imc_max_ghz"]
            for r in jsonl_rows
            if r["kind"] == "imc_step" and r["node"] == 0
        ]
        assert decided, "descent never started — workload/fixture drifted"
        assert stepped == decided

    def test_ladder_reactions_replayed_one_to_one(self, faulted, jsonl_rows):
        h = faulted.health

        def count(kind):
            return sum(1 for r in jsonl_rows if r["kind"] == kind)

        assert h.faults_injected > 0, "fault plan never fired"
        assert count("meter_stall") == h.meter_stalls
        assert count("meter_dropout") == h.meter_dropouts
        assert count("counter_corruption") == h.counter_corruptions
        assert count("msr_failure") == h.msr_failures_injected
        assert count("rapl_wrap_storm") == h.rapl_wrap_storms
        assert count("throttle_start") == h.throttle_events
        assert count("sample_rejected") == h.samples_rejected
        assert count("window_rejected") == h.windows_rejected
        assert count("window_stalled") == h.windows_stalled
        assert count("watchdog_trip") == h.watchdog_restores

    def test_ladder_counts_view_matches(self, faulted, jsonl_rows):
        counts = dict(ladder_event_counts(faulted))
        total = sum(counts.values())
        ladder_kinds = {
            "meter_stall", "meter_dropout", "counter_corruption", "msr_failure",
            "rapl_wrap_storm", "throttle_start", "sample_rejected",
            "window_rejected", "window_stalled", "watchdog_trip",
            "watchdog_clear", "policy_disabled", "apply_failed",
        }
        assert total == sum(1 for r in jsonl_rows if r["kind"] in ladder_kinds)


class TestPoolIntegration:
    def make_requests(self, *, telemetry: bool, seeds=(1, 2)):
        wl = make_fast_workload(n_iterations=120)
        return [
            RunRequest(
                workload=wl,
                ear_config=EarConfig(),
                seed=s,
                telemetry=telemetry,
                fault_plan=FAULT_PLAN,
            )
            for s in seeds
        ]

    def test_cache_key_invariant_under_telemetry(self):
        plain, with_tel = (
            self.make_requests(telemetry=False)[0],
            self.make_requests(telemetry=True)[0],
        )
        assert plain.key() == with_tel.key()

    def test_snapshots_survive_worker_processes(self):
        pool = ExperimentPool(jobs=2, cache=RunCache())
        results = pool.run_many(self.make_requests(telemetry=True))
        assert len(results) == 2
        assert all(r.has_telemetry for r in results)
        assert all(len(r.events) > 0 for r in results)
        # merged in submission order and identical to a serial execution
        serial = [req.execute() for req in self.make_requests(telemetry=True)]
        assert [r.events for r in results] == [r.events for r in serial]

    def test_pool_upgrades_cached_plain_entry(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        (plain,) = pool.run_many(self.make_requests(telemetry=False, seeds=(1,)))
        assert not plain.has_telemetry
        (upgraded,) = pool.run_many(self.make_requests(telemetry=True, seeds=(1,)))
        assert upgraded.has_telemetry
        assert upgraded.time_s == plain.time_s  # same physics, more info
        # the cache entry now carries telemetry: a third request hits
        sims_before = pool.stats.simulations
        (hit,) = pool.run_many(self.make_requests(telemetry=True, seeds=(1,)))
        assert pool.stats.simulations == sims_before
        assert hit.has_telemetry

    def test_plain_request_happily_reuses_telemetry_entry(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        pool.run_many(self.make_requests(telemetry=True, seeds=(1,)))
        sims_before = pool.stats.simulations
        (result,) = pool.run_many(self.make_requests(telemetry=False, seeds=(1,)))
        assert pool.stats.simulations == sims_before
        assert result.has_telemetry  # superset info is fine

    def test_mixed_batch_executes_once_with_telemetry(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        reqs = self.make_requests(telemetry=False, seeds=(1,)) + self.make_requests(
            telemetry=True, seeds=(1,)
        )
        results = pool.run_many(reqs)
        assert pool.stats.simulations == 1
        assert all(r.has_telemetry for r in results)
        assert results[0] is results[1]
