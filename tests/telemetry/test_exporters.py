"""Exporter unit tests on hand-built snapshots (no simulation)."""

import json

from repro.telemetry.exporters import (
    events_to_jsonl,
    metrics_to_prometheus,
    stage_timing_summary,
)
from repro.telemetry.recorder import EventRecorder, NodeTelemetry, TelemetryEvent


def make_snapshot() -> NodeTelemetry:
    rec = EventRecorder(node=0)
    rec.event("policy", "stage", time_s=0.0, stage="CPU_FREQ_SEL")
    rec.event("policy", "stage", time_s=10.0, stage="IMC_FREQ_SEL")
    rec.event("policy", "imc_step", time_s=10.0, imc_max_ghz=2.3)
    rec.counter("eard.applies", 3.0)
    rec.gauge("eard.rapl_pck_joules", 123.5)
    rec.observe("engine.iteration_s", 0.5)
    rec.observe("engine.iteration_s", 0.7)
    return rec.snapshot()


class TestJsonl:
    def test_one_json_object_per_event(self):
        snap = make_snapshot()
        lines = events_to_jsonl(snap).splitlines()
        assert len(lines) == len(snap.events)
        first = json.loads(lines[0])
        assert first == {
            "time_s": 0.0,
            "node": 0,
            "subsystem": "policy",
            "kind": "stage",
            "stage": "CPU_FREQ_SEL",
        }

    def test_payload_inlined(self):
        rows = [json.loads(line) for line in events_to_jsonl(make_snapshot()).splitlines()]
        step = [r for r in rows if r["kind"] == "imc_step"][0]
        assert step["imc_max_ghz"] == 2.3

    def test_empty(self):
        assert events_to_jsonl(NodeTelemetry(node=0)) == ""


class TestPrometheus:
    def test_families_and_labels(self):
        text = metrics_to_prometheus(make_snapshot())
        assert "# TYPE repro_eard_applies counter" in text
        assert 'repro_eard_applies{node="0"} 3' in text
        assert "# TYPE repro_eard_rapl_pck_joules gauge" in text
        assert 'repro_eard_rapl_pck_joules{node="0"} 123.5' in text

    def test_timers_expand_to_count_and_total(self):
        text = metrics_to_prometheus(make_snapshot())
        assert 'repro_engine_iteration_s_count{node="0"} 2' in text
        assert 'repro_engine_iteration_s_seconds_total{node="0"} 1.2' in text

    def test_metric_names_sanitised(self):
        rec = EventRecorder(node=0)
        rec.counter("earl.samples-rejected")
        text = metrics_to_prometheus(rec.snapshot())
        assert "repro_earl_samples_rejected" in text

    def test_multi_node_sorted(self):
        a = EventRecorder(node=1)
        a.counter("c")
        b = EventRecorder(node=0)
        b.counter("c")
        text = metrics_to_prometheus([a.snapshot(), b.snapshot()])
        assert text.index('node="0"') < text.index('node="1"')


class TestStageTiming:
    def test_timer_rows(self):
        rows = stage_timing_summary(make_snapshot(), end_s=30.0)
        timer = [r for r in rows if r["name"] == "engine.iteration_s"][0]
        assert timer["count"] == 2
        assert timer["mean_s"] == 0.6

    def test_stage_spans_from_transition_events(self):
        rows = stage_timing_summary(make_snapshot(), end_s=30.0)
        by_name = {r["name"]: r for r in rows}
        assert by_name["stage.CPU_FREQ_SEL"]["total_s"] == 10.0
        # the open IMC_FREQ_SEL span closes at end_s
        assert by_name["stage.IMC_FREQ_SEL"]["total_s"] == 20.0

    def test_events_only_input(self):
        events = [
            TelemetryEvent(
                node=0, time_s=0.0, subsystem="policy", kind="stage",
                payload=(("stage", "STABLE"),),
            )
        ]
        snap = NodeTelemetry(node=0, events=tuple(events))
        rows = stage_timing_summary(snap, end_s=5.0)
        assert rows == [
            {"node": 0, "name": "stage.STABLE", "count": 1, "total_s": 5.0, "mean_s": 5.0}
        ]


class TestJsonlTypeFidelity:
    def test_enum_and_numpy_payloads_round_trip(self):
        import enum

        import numpy as np

        class Phase(enum.Enum):
            STABLE = 1

        rec = EventRecorder(node=0)
        rec.events.append(  # bypass Scalar typing to exercise export canonicalization
            TelemetryEvent(
                node=0,
                time_s=1.0,
                subsystem="policy",
                kind="decision",
                payload=(
                    ("phase", Phase.STABLE),
                    ("freq", np.float64(2.3)),
                    ("count", np.int64(7)),
                    ("flag", np.bool_(True)),
                ),
            )
        )
        line = events_to_jsonl(rec.snapshot()).splitlines()[0]
        row = json.loads(line)
        assert row["phase"] == "STABLE"
        assert row["freq"] == 2.3 and isinstance(row["freq"], float)
        assert row["count"] == 7 and isinstance(row["count"], int)
        assert row["flag"] is True

    def test_non_canonical_payload_fails_loudly(self):
        import pytest

        rec = EventRecorder(node=0)
        rec.events.append(
            TelemetryEvent(
                node=0, time_s=0.0, subsystem="x", kind="y",
                payload=(("bad", object()),),
            )
        )
        with pytest.raises(TypeError, match="x/y"):
            events_to_jsonl(rec.snapshot())


class TestPrometheusFidelity:
    def test_sanitization_collisions_get_unique_families(self):
        # 'earl.window' and 'earl/window' both sanitize to
        # repro_earl_window: the exporter must not emit two identical
        # # TYPE blocks (invalid exposition format).
        rec = EventRecorder(node=0)
        rec.counter("earl.window", 1.0)
        rec.counter("earl/window", 2.0)
        text = metrics_to_prometheus(rec.snapshot())
        assert text.count("# TYPE repro_earl_window counter") == 1
        assert "# TYPE repro_earl_window_2 counter" in text
        from repro.telemetry.stream import validate_exposition

        validate_exposition(text)

    def test_full_precision_values(self):
        # %g kept 6 significant digits; large joule counters must not
        # silently lose precision between scrapes.
        rec = EventRecorder(node=0)
        rec.counter("eard.dc_energy_j", 123456789.25)
        text = metrics_to_prometheus(rec.snapshot())
        assert "123456789.25" in text
        assert "1.23457e+08" not in text

    def test_output_is_exposition_valid(self):
        from repro.telemetry.stream import validate_exposition

        kinds = validate_exposition(metrics_to_prometheus(make_snapshot()))
        assert kinds["repro_eard_applies"] == "counter"
        assert kinds["repro_eard_rapl_pck_joules"] == "gauge"
