"""Streaming telemetry layer: ring, aggregator and strict checker."""

import json

import pytest

from repro.telemetry.recorder import EventRecorder
from repro.telemetry.stream import EventRing, MetricsAggregator, validate_exposition


def events(n, node=0, subsystem="svc", kind="tick"):
    rec = EventRecorder(node=node)
    for i in range(n):
        rec.event(subsystem, kind, time_s=float(i), seq=i)
    return rec.events


class TestEventRing:
    def test_bounded_with_totals(self):
        ring = EventRing(capacity=10)
        ring.extend(events(25))
        assert len(ring) == 10
        assert ring.total_seen == 25
        assert ring.dropped == 15

    def test_tail_returns_most_recent_jsonl(self):
        ring = EventRing(capacity=10)
        ring.extend(events(25))
        rows = [json.loads(line) for line in ring.tail(3)]
        assert [r["seq"] for r in rows] == [22, 23, 24]

    def test_tail_bounds(self):
        ring = EventRing(capacity=4)
        ring.extend(events(2))
        assert len(ring.tail(100)) == 2
        assert ring.tail(0) == []
        assert len(ring.tail()) == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestMetricsAggregator:
    def make_snapshot(self, node=0, applies=3.0):
        rec = EventRecorder(node=node)
        rec.counter("eard.applies", applies)
        rec.gauge("eard.power_w", 100.0 + node)
        rec.observe("engine.iteration_s", 0.5)
        return rec.snapshot()

    def test_update_source_replaces_not_accumulates(self):
        agg = MetricsAggregator()
        agg.update_source("cluster:a", [self.make_snapshot(applies=3.0)])
        agg.update_source("cluster:a", [self.make_snapshot(applies=5.0)])
        text = agg.render()
        assert 'repro_eard_applies{node="0"} 5.0' in text

    def test_sources_merge_per_node(self):
        agg = MetricsAggregator()
        agg.update_source("a", [self.make_snapshot(node=0)])
        agg.update_source("b", [self.make_snapshot(node=1)])
        text = agg.render()
        assert 'node="0"' in text and 'node="1"' in text
        validate_exposition(text)

    def test_service_level_series(self):
        agg = MetricsAggregator()
        agg.set_gauge("service.pending", 4, labels='cluster="default"')
        agg.set_counter("service.submitted", 10, labels='cluster="default"')
        kinds = validate_exposition(agg.render())
        assert kinds["repro_service_pending"] == "gauge"
        assert kinds["repro_service_submitted"] == "counter"

    def test_bounded_series_count(self):
        agg = MetricsAggregator()
        for round_ in range(50):
            agg.update_source("a", [self.make_snapshot(applies=float(round_))])
        assert agg.series_count() == 3

    def test_render_is_exposition_valid_with_collisions(self):
        agg = MetricsAggregator()
        rec = EventRecorder(node=0)
        rec.counter("earl.window", 1.0)
        rec.counter("earl/window", 2.0)
        agg.update_source("a", [rec.snapshot()])
        validate_exposition(agg.render())


class TestValidateExposition:
    def test_accepts_valid_text(self):
        text = '# TYPE a counter\na{node="0"} 1.0\na{node="1"} +Inf\n'
        assert validate_exposition(text) == {"a": "counter"}

    def test_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate # TYPE"):
            validate_exposition("# TYPE a counter\na 1\n# TYPE a counter\na 2\n")

    def test_rejects_undeclared_family(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_exposition("a 1\n")

    def test_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition('# TYPE a counter\na{x="1"} 1\na{x="1"} 2\n')

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            validate_exposition("# TYPE a counter\na one\n")

    def test_rejects_bad_label(self):
        with pytest.raises(ValueError, match="bad label"):
            validate_exposition('# TYPE a counter\na{1x="y"} 1\n')

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="bad metric kind"):
            validate_exposition("# TYPE a widget\na 1\n")
