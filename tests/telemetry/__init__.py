"""Telemetry subsystem tests."""
