"""Recorder API unit tests: the event model, the null sink, snapshots."""

import pickle

import pytest

from repro.telemetry.recorder import (
    NULL_RECORDER,
    EventRecorder,
    NodeTelemetry,
    NullRecorder,
    TelemetryEvent,
    merge_events,
)


class TestNullRecorder:
    def test_disabled(self):
        assert NULL_RECORDER.enabled is False

    def test_all_hooks_are_noops(self):
        rec = NullRecorder()
        rec.event("earl", "decision", cpu_ghz=2.4)
        rec.counter("x")
        rec.gauge("y", 1.0)
        rec.observe("z", 0.5)
        assert rec.snapshot() is None


class TestEventRecorder:
    def test_enabled(self):
        assert EventRecorder(node=0).enabled is True

    def test_events_stamped_with_node_and_clock(self):
        t = 0.0
        rec = EventRecorder(node=3, clock=lambda: t)
        rec.event("policy", "imc_step", imc_max_ghz=2.3)
        t = 10.5
        rec.event("policy", "imc_step", imc_max_ghz=2.2)
        snap = rec.snapshot()
        assert [e.time_s for e in snap.events] == [0.0, 10.5]
        assert all(e.node == 3 for e in snap.events)

    def test_explicit_time_overrides_clock(self):
        rec = EventRecorder(node=0, clock=lambda: 99.0)
        rec.event("eargm", "level_change", time_s=5.0, level="WARNING2")
        assert rec.snapshot().events[0].time_s == 5.0

    def test_payload_order_is_deterministic(self):
        a = EventRecorder(node=0)
        a.event("e", "k", b=1, a=2)
        b = EventRecorder(node=0)
        b.event("e", "k", b=1, a=2)
        assert a.snapshot() == b.snapshot()

    def test_counters_accumulate(self):
        rec = EventRecorder(node=0)
        rec.counter("earl.samples_rejected")
        rec.counter("earl.samples_rejected", 2.0)
        snap = rec.snapshot()
        assert dict(snap.counters)["earl.samples_rejected"] == 3.0

    def test_gauges_keep_last_value(self):
        rec = EventRecorder(node=0)
        rec.gauge("eard.rapl_pck_joules", 10.0)
        rec.gauge("eard.rapl_pck_joules", 20.0)
        assert dict(rec.snapshot().gauges)["eard.rapl_pck_joules"] == 20.0

    def test_timers_count_and_sum(self):
        rec = EventRecorder(node=0)
        rec.observe("engine.iteration_s", 0.5)
        rec.observe("engine.iteration_s", 1.5)
        (name, count, total) = rec.snapshot().timers[0]
        assert (name, count, total) == ("engine.iteration_s", 2, 2.0)


class TestSnapshot:
    def test_snapshot_is_frozen_and_picklable(self):
        rec = EventRecorder(node=1)
        rec.event("earl", "decision", cpu_ghz=2.4)
        rec.counter("c")
        snap = rec.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        with pytest.raises(Exception):
            snap.node = 2

    def test_event_to_dict_flattens_payload(self):
        e = TelemetryEvent(
            node=0, time_s=1.0, subsystem="policy", kind="imc_step",
            payload=(("imc_max_ghz", 2.3),),
        )
        d = e.to_dict()
        assert d["imc_max_ghz"] == 2.3
        assert d["kind"] == "imc_step"
        assert e.payload_dict == {"imc_max_ghz": 2.3}


class TestMergeEvents:
    def test_sorted_by_time_then_node(self):
        a = NodeTelemetry(
            node=1,
            events=(
                TelemetryEvent(node=1, time_s=5.0, subsystem="e", kind="k"),
                TelemetryEvent(node=1, time_s=1.0, subsystem="e", kind="k"),
            ),
        )
        b = NodeTelemetry(
            node=0,
            events=(TelemetryEvent(node=0, time_s=5.0, subsystem="e", kind="k"),),
        )
        merged = merge_events([a, b])
        assert [(e.time_s, e.node) for e in merged] == [(1.0, 1), (5.0, 0), (5.0, 1)]

    def test_empty(self):
        assert merge_events([]) == ()
