"""Shared fixtures.

Coefficient training is cached per node type inside
:mod:`repro.ear.models.coefficients`; the session fixtures below warm
that cache once so individual tests don't pay for it repeatedly.
"""

from __future__ import annotations

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import train_coefficients
from repro.hw.node import GPU_NODE, SD530, Node
from repro.workloads.generator import synthetic_workload


@pytest.fixture(scope="session")
def sd530_coefficients():
    """Trained coefficient table for the main testbed node type."""
    return train_coefficients(SD530)


@pytest.fixture(scope="session")
def gpu_coefficients():
    return train_coefficients(GPU_NODE)


@pytest.fixture()
def node() -> Node:
    """A fresh SD530 node."""
    return Node(SD530)


@pytest.fixture()
def gpu_node() -> Node:
    return Node(GPU_NODE)


@pytest.fixture()
def ear_config() -> EarConfig:
    """The paper's default configuration (5 % / 2 %, eUFS on)."""
    return EarConfig()


def make_fast_workload(
    *,
    core_share: float = 0.85,
    unc_share: float = 0.06,
    mem_share: float = 0.05,
    n_nodes: int = 1,
    n_iterations: int = 150,
    vpi: float = 0.0,
):
    """A small synthetic workload for engine/policy tests (~75 s sim)."""
    return synthetic_workload(
        name=f"fast-{core_share:.2f}-{mem_share:.2f}",
        node_config=SD530,
        core_share=core_share,
        unc_share=unc_share,
        mem_share=mem_share,
        vpi=vpi,
        n_nodes=n_nodes,
        n_iterations=n_iterations,
    )


@pytest.fixture()
def fast_workload():
    return make_fast_workload()


@pytest.fixture()
def memory_workload():
    return make_fast_workload(core_share=0.12, unc_share=0.2, mem_share=0.6)
