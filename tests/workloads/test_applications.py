"""The paper's application catalogue: anchors match Table V."""

import pytest

from repro.experiments.paper_data import TABLE5
from repro.workloads.applications import (
    afid,
    bqcd,
    bt_mz_d,
    dumses,
    gromacs_ion_channel,
    gromacs_lignocellulose,
    hpcg,
    mpi_applications,
    pop,
)

PAPER_LAYOUT = {
    "BQCD": (4, 40),
    "BT-MZ": (4, 160),
    "GROMACS(I)": (4, 160),
    "GROMACS(II)": (16, 640),
    "HPCG": (4, 160),
    "POP": (10, 384),
    "DUMSES": (13, 512),
    "AFiD": (15, 576),
}


class TestCatalogue:
    def test_eight_configurations_in_paper_order(self):
        names = [wl.name for wl in mpi_applications()]
        assert names == list(PAPER_LAYOUT)

    @pytest.mark.parametrize("workload", mpi_applications(), ids=lambda w: w.name)
    def test_anchors_match_table5(self, workload):
        expected = TABLE5[workload.name]
        p = workload.main_phase
        assert p.ref_cpi == pytest.approx(expected["cpi"], rel=0.05)
        assert p.ref_gbs == pytest.approx(expected["gbs"], rel=0.05)
        assert p.ref_dc_power_w == pytest.approx(expected["dc_power_w"], rel=0.02)
        assert workload.total_ref_time_s == pytest.approx(expected["time_s"], rel=0.05)

    @pytest.mark.parametrize("workload", mpi_applications(), ids=lambda w: w.name)
    def test_cluster_layout_matches_paper(self, workload):
        nodes, procs = PAPER_LAYOUT[workload.name]
        assert workload.n_nodes == nodes
        assert workload.n_processes == procs

    @pytest.mark.parametrize("workload", mpi_applications(), ids=lambda w: w.name)
    def test_all_apps_have_mpi_patterns(self, workload):
        assert workload.main_phase.mpi_events


class TestApplicationClasses:
    def test_cpu_bound_class(self):
        """The paper: BQCD, GROMACS x2, BT-MZ are CPU bound."""
        for wl in (bqcd(), bt_mz_d(), gromacs_ion_channel(), gromacs_lignocellulose()):
            assert wl.main_phase.s_core > 0.5, wl.name

    def test_memory_bound_class(self):
        """The paper: HPCG, POP, DUMSES, AFiD are memory bound."""
        for wl in (hpcg(), pop(), dumses(), afid()):
            p = wl.main_phase
            assert p.s_unc + p.s_mem > 0.35, wl.name
            assert p.uncore_demand > 0.9, wl.name

    def test_hpcg_is_the_most_memory_bound(self):
        shares = {
            wl.name: wl.main_phase.s_unc + wl.main_phase.s_mem
            for wl in mpi_applications()
        }
        assert max(shares, key=shares.get) == "HPCG"

    def test_gromacs_scaling_reduces_hw_follow(self):
        """640 ranks spend more time in MPI than 160: the UFS monitor
        sees less busy a socket (1.45 vs 2.04 GHz in Table VI)."""
        assert (
            gromacs_lignocellulose().main_phase.hw_follow_factor
            < gromacs_ion_channel().main_phase.hw_follow_factor
        )
