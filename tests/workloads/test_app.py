"""Workload container semantics."""

import pytest

from repro.errors import ExperimentError
from repro.hw.node import SD530
from repro.workloads.app import Workload
from repro.workloads.generator import synthetic_profile


def make(n_iterations=100, n_phases=1) -> Workload:
    phases = tuple(
        (
            synthetic_profile(
                name=f"p{i}",
                node_config=SD530,
                core_share=0.8,
                unc_share=0.1,
                mem_share=0.05,
            ),
            n_iterations,
        )
        for i in range(n_phases)
    )
    return Workload(
        name="wl",
        node_config=SD530,
        n_nodes=2,
        n_processes=80,
        phases=phases,
    )


class TestBasics:
    def test_total_ref_time(self):
        wl = make(n_iterations=100, n_phases=2)
        assert wl.total_ref_time_s == pytest.approx(100.0)

    def test_main_phase_is_longest(self):
        p_long = synthetic_profile(
            name="long", node_config=SD530, core_share=0.8, unc_share=0.1, mem_share=0.05,
            iteration_s=2.0,
        )
        p_short = synthetic_profile(
            name="short", node_config=SD530, core_share=0.8, unc_share=0.1, mem_share=0.05,
        )
        wl = Workload(
            name="wl", node_config=SD530, n_nodes=1, n_processes=1,
            phases=((p_short, 10), (p_long, 10)),
        )
        assert wl.main_phase.name == "long"

    def test_needs_phases(self):
        with pytest.raises(ExperimentError):
            Workload(name="w", node_config=SD530, n_nodes=1, n_processes=1, phases=())

    def test_needs_positive_iterations(self):
        p = synthetic_profile(
            name="p", node_config=SD530, core_share=0.8, unc_share=0.1, mem_share=0.05
        )
        with pytest.raises(ExperimentError):
            Workload(
                name="w", node_config=SD530, n_nodes=1, n_processes=1, phases=((p, 0),)
            )

    def test_needs_nodes(self):
        p = synthetic_profile(
            name="p", node_config=SD530, core_share=0.8, unc_share=0.1, mem_share=0.05
        )
        with pytest.raises(ExperimentError):
            Workload(
                name="w", node_config=SD530, n_nodes=0, n_processes=1, phases=((p, 1),)
            )


class TestCalibration:
    def test_calibrated_is_idempotent(self):
        wl = make().calibrated()
        assert wl.calibrated() is wl

    def test_calibrated_preserves_structure(self):
        wl = make(n_phases=2)
        cal = wl.calibrated()
        assert cal.name == wl.name
        assert len(cal.phases) == 2
        assert [n for _, n in cal.phases] == [n for _, n in wl.phases]


class TestScaling:
    def test_scaled_iterations(self):
        wl = make(n_iterations=100)
        assert wl.scaled_iterations(0.25).phases[0][1] == 25

    def test_scaling_never_drops_to_zero(self):
        wl = make(n_iterations=3)
        assert wl.scaled_iterations(0.01).phases[0][1] == 1

    def test_invalid_factor_rejected(self):
        with pytest.raises(ExperimentError):
            make().scaled_iterations(0.0)
