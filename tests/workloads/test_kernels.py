"""The paper's kernel catalogue: anchors match Table II."""

import pytest

from repro.experiments.paper_data import TABLE2
from repro.hw.node import SD530
from repro.workloads.kernels import (
    bt_cuda_d,
    bt_mz_c_mpi,
    bt_mz_c_openmp,
    dgemm_mkl,
    lu_cuda_d,
    lu_d_mpi,
    single_node_kernels,
    sp_mz_c_openmp,
)


class TestCatalogue:
    def test_five_kernels_in_paper_order(self):
        names = [wl.name for wl in single_node_kernels()]
        assert names == ["BT-MZ.C", "SP-MZ.C", "BT.CUDA.D", "LU.CUDA.D", "DGEMM"]

    @pytest.mark.parametrize("workload", single_node_kernels(), ids=lambda w: w.name)
    def test_anchors_match_table2(self, workload):
        expected = TABLE2[workload.name]
        p = workload.main_phase
        assert p.ref_cpi == pytest.approx(expected["cpi"], rel=0.05)
        assert p.ref_gbs == pytest.approx(expected["gbs"], rel=0.05)
        assert p.ref_dc_power_w == pytest.approx(expected["dc_power_w"], rel=0.02)
        assert workload.total_ref_time_s == pytest.approx(expected["time_s"], rel=0.05)

    def test_single_node_kernels_use_one_node(self):
        for wl in single_node_kernels():
            assert wl.n_nodes == 1


class TestKernelClasses:
    def test_openmp_kernels_are_cpu_bound(self):
        for wl in (bt_mz_c_openmp(), sp_mz_c_openmp()):
            assert wl.main_phase.s_core > 0.7
            assert wl.node_config is SD530

    def test_cuda_kernels_offload(self):
        for wl in (bt_cuda_d(), lu_cuda_d()):
            p = wl.main_phase
            assert p.gpus_busy == 1
            assert p.n_active_cores == 1
            assert p.s_fixed > 0.9  # GPU time dominates
            assert wl.node_config.gpus

    def test_lu_cuda_polls_the_uncore(self):
        """LU's busy-wait polls memory: the HW UFS monitor stays busy."""
        assert lu_cuda_d().main_phase.uncore_demand == 1.0
        assert bt_cuda_d().main_phase.uncore_demand == 0.0

    def test_dgemm_is_pure_avx512(self):
        assert dgemm_mkl().main_phase.vpi == 1.0


class TestMotivationKernels:
    def test_bt_mz_mpi_layout(self):
        wl = bt_mz_c_mpi()
        assert wl.n_nodes == 4
        assert wl.n_processes == 160
        assert wl.main_phase.mpi_events  # drives DynAIS

    def test_lu_mpi_layout(self):
        wl = lu_d_mpi()
        assert wl.n_nodes == 2
        assert wl.n_processes == 2

    def test_lu_more_memory_bound_than_bt(self):
        lu = lu_d_mpi().main_phase
        bt = bt_mz_c_mpi().main_phase
        assert lu.s_unc + lu.s_mem > bt.s_unc + bt.s_mem
        assert lu.ref_cpi > bt.ref_cpi
