"""Synthetic workload generator and the training corpus."""

import pytest

from repro.hw.node import GPU_NODE, SD530
from repro.workloads.generator import (
    synthetic_profile,
    synthetic_workload,
    training_corpus,
)


class TestSyntheticProfile:
    def test_cpi_tracks_stall_share(self):
        low = synthetic_profile(
            name="low", node_config=SD530, core_share=0.95, unc_share=0.03, mem_share=0.02
        )
        high = synthetic_profile(
            name="high", node_config=SD530, core_share=0.2, unc_share=0.2, mem_share=0.6
        )
        assert high.ref_cpi > low.ref_cpi

    def test_traffic_proportional_to_stall(self):
        """The property that makes EAR's (CPI, TPI) basis exact."""
        quarter = synthetic_profile(
            name="q", node_config=SD530, core_share=0.75, unc_share=0.0625, mem_share=0.1875
        )
        half = synthetic_profile(
            name="h", node_config=SD530, core_share=0.5, unc_share=0.125, mem_share=0.375
        )
        assert half.ref_gbs == pytest.approx(2 * quarter.ref_gbs, rel=1e-6)

    def test_spin_profile_single_core(self):
        p = synthetic_profile(
            name="spin",
            node_config=GPU_NODE,
            core_share=0.02,
            unc_share=0.01,
            mem_share=0.01,
            spin=True,
        )
        assert p.n_active_cores == 1
        assert p.hw_active_fraction == pytest.approx(1.0 / 32.0)

    def test_shares_validated(self):
        with pytest.raises(ValueError):
            synthetic_profile(
                name="bad", node_config=SD530, core_share=0.8, unc_share=0.2, mem_share=0.2
            )

    def test_memory_rows_keep_uncore_demand(self):
        p = synthetic_profile(
            name="mem", node_config=SD530, core_share=0.2, unc_share=0.2, mem_share=0.6
        )
        assert p.uncore_demand > 0.8


class TestTrainingCorpus:
    def test_deterministic(self):
        a = training_corpus(SD530)
        b = training_corpus(SD530)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.ref_cpi for p in a] == [p.ref_cpi for p in b]

    def test_spans_boundedness_space(self):
        corpus = training_corpus(SD530)
        cpis = [p.ref_cpi for p in corpus]
        assert min(cpis) < 0.4  # below every real kernel
        assert max(cpis) > 2.8  # beyond HPCG territory

    def test_gpu_corpus_includes_spin_profiles(self):
        corpus = training_corpus(GPU_NODE)
        spins = [p for p in corpus if p.n_active_cores == 1]
        assert len(spins) >= 4

    def test_sd530_corpus_has_no_spin_profiles(self):
        corpus = training_corpus(SD530)
        assert all(p.n_active_cores is None for p in corpus)

    def test_no_avx_rows(self):
        """AVX behaviour is the model's job, not the regression's."""
        assert all(p.vpi == 0.0 for p in training_corpus(SD530))

    def test_off_family_variants_present(self):
        names = [p.name for p in training_corpus(SD530)]
        assert any(".base" in n for n in names)
        assert any(".act" in n for n in names)


class TestSyntheticWorkload:
    def test_builds_runnable_workload(self):
        wl = synthetic_workload(
            node_config=SD530, core_share=0.8, unc_share=0.1, mem_share=0.05
        )
        assert wl.total_ref_time_s > 0
        assert wl.phases[0][1] == 120
