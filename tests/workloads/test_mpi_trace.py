"""MPI event-pattern synthesis."""

import pytest

from repro.workloads.mpi_trace import (
    MpiCall,
    allreduce_pattern,
    event,
    pencil_pattern,
    stencil_pattern,
)


class TestEventEncoding:
    def test_call_type_recoverable(self):
        assert event(MpiCall.SEND, 0) // 1000 == MpiCall.SEND

    def test_argument_hash_distinguishes_calls(self):
        assert event(MpiCall.ISEND, 0) != event(MpiCall.ISEND, 1)

    def test_negative_hash_rejected(self):
        with pytest.raises(ValueError):
            event(MpiCall.SEND, -1)


class TestPatterns:
    def test_stencil_shape(self):
        p = stencil_pattern(4)
        # 2 events per neighbour + waitall + allreduce
        assert len(p) == 10

    def test_stencil_without_reduce(self):
        assert len(stencil_pattern(4, with_reduce=False)) == 9

    def test_allreduce_shape(self):
        assert len(allreduce_pattern(2)) == 8

    def test_pencil_shape(self):
        assert len(pencil_pattern()) == 4

    def test_patterns_are_distinct(self):
        assert stencil_pattern(4) != allreduce_pattern(2)
        assert stencil_pattern(2) != stencil_pattern(3)

    def test_patterns_deterministic(self):
        assert pencil_pattern() == pencil_pattern()

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            stencil_pattern(0)
        with pytest.raises(ValueError):
            allreduce_pattern(0)
