"""Communication-intensity and multi-phase workload generators."""

import pytest

from repro.ear.config import EarConfig
from repro.hw.node import SD530
from repro.sim.engine import run_workload
from repro.workloads.generator import (
    alternating_phases_workload,
    communication_workload,
)


class TestCommunicationWorkload:
    def test_comm_fraction_reduces_compute_share(self):
        lo = communication_workload(comm_fraction=0.1, node_config=SD530)
        hi = communication_workload(comm_fraction=0.7, node_config=SD530)
        assert hi.main_phase.s_fixed > lo.main_phase.s_fixed
        assert hi.main_phase.s_core < lo.main_phase.s_core

    def test_spinning_ranks_look_idle_to_ufs(self):
        hi = communication_workload(comm_fraction=0.7, node_config=SD530)
        assert hi.main_phase.hw_active_fraction < 0.5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            communication_workload(comm_fraction=1.0, node_config=SD530)

    def test_eufs_benefit_grows_with_comm_intensity(self):
        """The future-work answer: the more time an application spends
        in MPI, the more uncore the explicit policy can reclaim."""
        savings = {}
        for cf in (0.0, 0.6):
            wl = communication_workload(
                comm_fraction=cf, node_config=SD530, n_nodes=1, n_iterations=150
            )
            base = run_workload(wl, seed=1)
            eu = run_workload(wl, ear_config=EarConfig(), seed=1)
            savings[cf] = 1 - eu.dc_energy_j / base.dc_energy_j
        assert savings[0.6] > savings[0.0] + 0.01

    def test_comm_time_is_frequency_invariant(self):
        wl = communication_workload(
            comm_fraction=0.8, node_config=SD530, n_nodes=1, n_iterations=60
        )
        base = run_workload(wl, seed=1, noise_sigma=0.0)
        slow = run_workload(wl, seed=1, noise_sigma=0.0, pin_cpu_ghz=1.2)
        # 80 % of the time is MPI: halving the clock costs < 25 %
        assert slow.time_s / base.time_s < 1.25


class TestAlternatingPhases:
    def test_structure(self):
        wl = alternating_phases_workload(node_config=SD530, n_blocks=2)
        assert len(wl.phases) == 4
        names = [p.name for p, _ in wl.phases]
        assert names == ["alt.compute", "alt.memory"] * 2

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            alternating_phases_workload(node_config=SD530, n_blocks=0)

    def test_policy_adapts_across_phases(self):
        """EARL must re-select when the phase flips: the CPU target has
        to visit both the nominal (compute) and a reduced (memory)
        frequency within one run."""
        wl = alternating_phases_workload(
            node_config=SD530, n_blocks=2, iterations_per_block=50
        )
        r = run_workload(wl, ear_config=EarConfig(), seed=1)
        cpu_targets = {
            round(d.freqs.cpu_ghz, 1) for d in r.decisions if d.freqs is not None
        }
        assert 2.4 in cpu_targets
        assert any(t <= 2.2 for t in cpu_targets)

    def test_phase_change_triggers_revalidation(self):
        from repro.ear.earl import EarlState

        # blocks long enough that the descent stabilises before the flip
        wl = alternating_phases_workload(
            node_config=SD530, n_blocks=2, iterations_per_block=220
        )
        r = run_workload(wl, ear_config=EarConfig(), seed=1)
        # at least one validate round must have failed (policy re-ran
        # after the machine had stabilised)
        stable_then_policy = False
        seen_stable = False
        for d in r.decisions:
            if d.earl_state is EarlState.VALIDATE_POLICY:
                seen_stable = True
            elif seen_stable and d.earl_state is EarlState.NODE_POLICY:
                stable_then_policy = True
                break
        assert stable_then_policy
