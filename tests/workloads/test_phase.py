"""Phase profiles: the analytic time model and calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.dram import DDR4_2400_12DIMM
from repro.hw.node import SD530, Node
from repro.workloads.phase import PhaseProfile


def profile(**overrides) -> PhaseProfile:
    kwargs = dict(
        name="test.phase",
        ref_iteration_s=0.5,
        ref_cpi=0.6,
        ref_gbs=30.0,
        ref_dc_power_w=320.0,
        s_core=0.7,
        s_unc=0.1,
        s_mem=0.1,
    )
    kwargs.update(overrides)
    return PhaseProfile(**kwargs)


def t(p, f_core=2.4, f_unc=2.4):
    return p.iteration_time_s(
        f_core_ghz=f_core,
        f_uncore_ghz=f_unc,
        ref_core_ghz=2.4,
        ref_uncore_ghz=2.4,
        dram=DDR4_2400_12DIMM,
    )


class TestTimeModel:
    def test_anchor_point_reproduced(self):
        assert t(profile()) == pytest.approx(0.5)

    def test_core_share_scales_with_core_clock(self):
        p = profile(s_core=1.0, s_unc=0.0, s_mem=0.0)
        assert t(p, f_core=1.2) == pytest.approx(1.0)

    def test_fixed_share_is_frequency_invariant(self):
        p = profile(s_core=0.0, s_unc=0.0, s_mem=0.0)
        assert t(p, f_core=1.2, f_unc=1.2) == pytest.approx(0.5)

    def test_uncore_share_scales_with_uncore_clock(self):
        p = profile(s_core=0.0, s_unc=1.0, s_mem=0.0)
        assert t(p, f_unc=1.2) == pytest.approx(1.0)

    def test_mem_share_follows_bandwidth_curve(self):
        p = profile(s_core=0.0, s_unc=0.0, s_mem=1.0)
        ratio = DDR4_2400_12DIMM.bandwidth_scale(2.4) / DDR4_2400_12DIMM.bandwidth_scale(1.2)
        assert t(p, f_unc=1.2) == pytest.approx(0.5 * ratio)

    @given(
        st.floats(min_value=1.0, max_value=2.4),
        st.floats(min_value=1.2, max_value=2.4),
    )
    @settings(max_examples=50)
    def test_time_never_below_anchor(self, f_core, f_unc):
        """Lowering either clock can only slow the iteration down."""
        assert t(profile(), f_core=f_core, f_unc=f_unc) >= 0.5 - 1e-9

    @given(st.floats(min_value=1.0, max_value=2.3))
    @settings(max_examples=50)
    def test_monotone_in_core_clock(self, f):
        p = profile()
        assert t(p, f_core=f) > t(p, f_core=f + 0.1)

    def test_zero_frequency_rejected(self):
        with pytest.raises(HardwareError):
            t(profile(), f_core=0.0)


class TestDerivedCounters:
    def test_bytes_per_iteration(self):
        assert profile().bytes_per_iteration() == pytest.approx(15e9)

    def test_instructions_from_cpi_anchor(self):
        p = profile()
        instr = p.instructions_per_iteration(ref_core_ghz=2.4, n_cores=40)
        cycles = 0.5 * 2.4e9 * 40
        assert instr == pytest.approx(cycles / 0.6)

    def test_partial_occupancy(self):
        p = profile(n_active_cores=1)
        instr_1 = p.instructions_per_iteration(ref_core_ghz=2.4, n_cores=40)
        instr_40 = profile().instructions_per_iteration(ref_core_ghz=2.4, n_cores=40)
        assert instr_1 == pytest.approx(instr_40 / 40)


class TestValidation:
    def test_shares_must_not_exceed_one(self):
        with pytest.raises(HardwareError):
            profile(s_core=0.8, s_unc=0.2, s_mem=0.2)

    def test_negative_share_rejected(self):
        with pytest.raises(HardwareError):
            profile(s_core=-0.1)

    def test_vpi_range(self):
        with pytest.raises(HardwareError):
            profile(vpi=1.2)

    def test_positive_anchor_required(self):
        with pytest.raises(HardwareError):
            profile(ref_iteration_s=0.0)

    def test_s_fixed_derived(self):
        assert profile().s_fixed == pytest.approx(0.1)


class TestCalibration:
    def test_calibrated_profile_hits_anchor_power(self):
        node = Node(SD530)
        p = profile().calibrate_activity(node)
        from dataclasses import replace

        op = replace(
            p.operating_point(node, effective_core_ghz=2.4), traffic_gbs=p.ref_gbs
        )
        assert node.power(op).dc_w == pytest.approx(320.0, rel=1e-9)

    def test_unreachable_power_raises(self):
        node = Node(SD530)
        with pytest.raises(HardwareError):
            profile(ref_dc_power_w=5000.0).calibrate_activity(node)

    def test_gpu_profile_calibrates_utilisation(self, gpu_node):
        p = profile(
            ref_dc_power_w=300.0,
            n_active_cores=1,
            gpus_busy=1,
            s_core=0.01,
            s_unc=0.01,
            s_mem=0.0,
            ref_gbs=0.1,
        ).calibrate_activity(gpu_node)
        assert 0.0 < p.gpu_utilisation <= 1.0


class TestExecuteIteration:
    def test_advances_node_and_returns_counters(self, node):
        p = profile().calibrate_activity(node)
        c = p.execute_iteration(node)
        assert c.seconds == pytest.approx(0.5, rel=0.01)
        assert node.elapsed_s == pytest.approx(c.seconds)
        assert c.instructions > 0
        assert c.cycles == pytest.approx(c.seconds * 2.4e9 * 40, rel=1e-6)

    def test_noise_scales_time(self, node):
        p = profile().calibrate_activity(node)
        c = p.execute_iteration(node, noise=1.1)
        assert c.seconds == pytest.approx(0.55, rel=0.01)

    def test_avx_profile_runs_at_licence_clock(self, node):
        p = profile(vpi=1.0).calibrate_activity(node)
        c = p.execute_iteration(node)
        assert c.cycles / c.seconds / 40 == pytest.approx(2.2e9, rel=1e-6)
