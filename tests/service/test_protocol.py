"""Wire-protocol round-trips and JobSpec validation."""

import pytest

from repro.errors import ConfigError
from repro.service.protocol import JobSpec, decode, encode, error, ok


class TestEnvelopes:
    def test_encode_decode_round_trip(self):
        msg = {"op": "submit", "workload": "synt.cpu.1n", "seed": 3}
        assert decode(encode(msg)) == msg

    def test_encode_is_one_line(self):
        line = encode({"op": "ping"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ConfigError):
            decode(b"not json\n")
        with pytest.raises(ConfigError):
            decode(b"[1,2,3]\n")

    def test_ok_and_error_envelopes(self):
        assert ok(x=1) == {"ok": True, "x": 1}
        err = error("backpressure", "try later", pending=5)
        assert err["ok"] is False
        assert err["error"] == "backpressure"
        assert err["pending"] == 5


class TestJobSpec:
    def test_from_payload_defaults(self):
        spec = JobSpec.from_payload({"workload": "synt.cpu.1n"})
        assert spec.seed == 1
        assert spec.scale == 1.0
        assert spec.cluster == "default"
        assert spec.submit_s is None

    def test_from_payload_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown job-spec"):
            JobSpec.from_payload({"workload": "x", "bogus": 1})

    def test_from_payload_requires_workload(self):
        with pytest.raises(ConfigError):
            JobSpec.from_payload({})

    def test_validation(self):
        with pytest.raises(ConfigError):
            JobSpec(workload="x", scale=0.0)
        with pytest.raises(ConfigError):
            JobSpec(workload="x", est_margin=0.5)
        with pytest.raises(ConfigError):
            JobSpec(workload="x", submit_s=-1.0)

    def test_none_values_accepted_in_payload(self):
        spec = JobSpec.from_payload(
            {"workload": "x", "policy": None, "submit_s": None, "tag": None}
        )
        assert spec.policy is None and spec.tag is None
