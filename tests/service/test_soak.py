"""Soak: tens of thousands of streamed submissions, bounded memory.

Two altitudes:

* the **simulation level** pins the strict per-outcome contract — at a
  compliant pace no job ever starts under a warning level across
  multiple EARGM horizons, and harvesting keeps the resident state
  bounded;
* the **service level** pushes 10k submissions through the real socket
  protocol and asserts the rolled-up contract — everything completes,
  nothing is rejected, horizons roll, the event ring and history stay
  at their caps, and the scrape endpoint stays exposition-valid.
"""

import asyncio

import pytest

from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceJob
from repro.ear.eargm import EargmConfig
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.service import EarService, ServiceClient, ServiceConfig, service_workloads
from repro.telemetry import validate_exposition

#: compliant-pace soak shape: jobs at scale 0.05 run ~6.5 s on one of 8
#: nodes (service rate ~0.8 jobs/s); a 1 s inter-arrival spacing keeps
#: the queue near-empty, and a 2400 s horizon with ~3x energy headroom
#: must therefore never leave OK.
N_JOBS = 10_000
SPACING_S = 1.0
HORIZON_S = 2400.0
BUDGET_J = 15e6
SCALE = 0.05
SEEDS = 6


def scaled_workloads():
    registry = service_workloads()
    return [
        registry[name].scaled_iterations(SCALE)
        for name in ("synt.cpu.1n", "synt.mixed.1n", "synt.mem.1n")
    ]


@pytest.mark.slow
class TestStreamingSimSoak:
    def test_rolling_horizons_never_leave_ok_at_compliant_pace(self):
        workloads = scaled_workloads()
        pool = ExperimentPool(jobs=1, cache=RunCache(max_memory_entries=64))
        config = ClusterConfig(
            n_nodes=8,
            ear_config=None,
            eargm=EargmConfig(budget_j=BUDGET_J, horizon_s=HORIZON_S),
            telemetry=True,
        )
        sim = ClusterSimulation((), config, pool=pool, streaming=True)
        completed = 0
        events_seen = 0
        for i in range(N_JOBS):
            wl = workloads[i % len(workloads)]
            sim.submit_job(
                TraceJob(
                    index=i,
                    submit_s=i * SPACING_S,
                    workload=wl,
                    seed=1 + i % SEEDS,
                    est_time_s=wl.total_ref_time_s * 1.3,
                )
            )
            if i % 1000 == 999:
                sim.drain_events()
                for outcome in sim.harvest_outcomes():
                    completed += 1
                    # the whole point: compliant pace never trips a cap
                    assert outcome.level_at_start.name == "OK", outcome
                    assert outcome.pstate_offset == 0
                assert sim.harvest_failures() == ()
                events_seen += len(sim.drain_telemetry_events())
                # harvested state stays bounded between chunks
                assert len(sim._outcomes) == 0
                assert len(sim.telemetry.events) == 0
        sim.drain_events()
        for outcome in sim.harvest_outcomes():
            completed += 1
            assert outcome.level_at_start.name == "OK"
            assert outcome.pstate_offset == 0
        events_seen += len(sim.drain_telemetry_events())

        assert completed == N_JOBS
        assert sim.eargm.horizons_completed >= 3
        assert sim.eargm.level().name == "OK"
        assert events_seen >= N_JOBS  # at least one event per job
        # the cache absorbed the repetition: only the unique
        # (workload, seed) combinations ever simulated
        unique = len({(i % len(workloads), i % SEEDS) for i in range(N_JOBS)})
        assert pool.stats.simulations == unique
        assert len(pool.cache) <= 64


@pytest.mark.slow
class TestServiceSoak:
    def test_service_sustains_10k_submissions(self, tmp_path):
        async def scenario():
            config = ServiceConfig(
                socket_path=str(tmp_path / "ear.sock"),
                policy="none",
                budget_mj=BUDGET_J / 1e6,
                horizon_s=HORIZON_S,
                max_pending=2 * N_JOBS,
                journal=False,
                events_ring=4096,
                history_limit=256,
                max_cache_entries=64,
            )
            service = EarService(config, pool=ExperimentPool(jobs=1, cache=RunCache()))
            await service.start()

            workloads = ("synt.cpu.1n", "synt.mixed.1n", "synt.mem.1n")

            def submit_share(offset, step):
                client = ServiceClient(config.socket_path, timeout=60.0)
                for i in range(offset, N_JOBS, step):
                    client.submit(
                        workloads[i % len(workloads)],
                        seed=1 + i % SEEDS,
                        scale=SCALE,
                        submit_s=i * SPACING_S,
                        tag=i,
                    )

            n_clients = 4
            await asyncio.gather(
                *(
                    asyncio.to_thread(submit_share, c, n_clients)
                    for c in range(n_clients)
                )
            )
            status = await asyncio.to_thread(
                ServiceClient(config.socket_path, timeout=600.0).drain
            )
            row = status["clusters"]["default"]
            assert row["submitted"] == N_JOBS
            assert row["completed"] == N_JOBS
            assert row["failed"] == 0
            assert row["rejected"] == 0
            assert row["pending"] == 0
            assert row["eargm"]["level"] == "OK"
            assert row["eargm"]["horizons_completed"] >= 3

            # bounded memory: ring and history pinned at their caps,
            # nothing left unharvested inside the simulation
            worker = service.workers["default"]
            assert len(service.ring) <= config.events_ring
            assert service.ring.total_seen >= N_JOBS
            assert service.ring.dropped > 0  # the ring really did bound
            assert len(worker.recent) <= config.history_limit
            assert len(worker.sim._outcomes) == 0
            assert len(worker.sim.telemetry.events) == 0
            assert len(service.pool.cache) <= 64

            # the scrape endpoint survives the soak exposition-valid
            client = ServiceClient(config.socket_path, timeout=60.0)
            http_status, body = await asyncio.to_thread(client.http_get, "/metrics")
            assert http_status == 200
            families = validate_exposition(body)
            assert "repro_service_jobs_completed" in families

            await service.shutdown()

        asyncio.run(scenario())
