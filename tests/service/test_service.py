"""Service-tier lifecycle: sockets, equivalence, scrape, SIGTERM drain."""

import asyncio
import json
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.cluster.scheduler import ClusterConfig, ClusterSimulation
from repro.cluster.traces import TraceJob
from repro.experiments.parallel import ExperimentPool, RunCache
from repro.service import (
    EarService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    service_workloads,
)
from repro.telemetry import validate_exposition

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def fresh_pool():
    return ExperimentPool(jobs=1, cache=RunCache())


def run_service(coro):
    """Run one async service scenario to completion."""
    return asyncio.run(coro)


def make_config(tmp_path, **kw):
    kw.setdefault("socket_path", str(tmp_path / "ear.sock"))
    kw.setdefault("journal", False)
    return ServiceConfig(**kw)


class TestLifecycle:
    def test_ping_submit_drain_status(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none")
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            ping = await asyncio.to_thread(client.ping)
            assert ping["protocol"] == 1
            receipt = await asyncio.to_thread(
                client.submit, "synt.cpu.1n", scale=0.2, count=3, seed=2
            )
            assert receipt["accepted"] == 3
            status = await asyncio.to_thread(client.drain)
            row = status["clusters"]["default"]
            assert row["completed"] == 3
            assert row["failed"] == 0
            assert row["pending"] == 0
            tail = await asyncio.to_thread(client.tail, 5)
            assert tail and all(json.loads(line) for line in tail)
            await service.shutdown()

        run_service(scenario())

    def test_unknown_workload_and_op_are_rejected(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none")
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            with pytest.raises(ServiceError, match="unknown_workload"):
                await asyncio.to_thread(client.submit, "no.such.workload")
            with pytest.raises(ServiceError, match="unknown_op"):
                await asyncio.to_thread(client.request, "frobnicate")
            await service.shutdown()

        run_service(scenario())

    def test_backpressure_rejects_over_bound(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none", max_pending=4, eager=False)
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            for _ in range(4):
                await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2)
            with pytest.raises(ServiceError, match="backpressure"):
                await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2)
            status = await asyncio.to_thread(client.status)
            assert status["clusters"]["default"]["rejected"] == 1
            await service.shutdown()

        run_service(scenario())

    def test_policy_mismatch_is_rejected(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none")
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2)
            with pytest.raises(ServiceError, match="policy_mismatch"):
                await asyncio.to_thread(
                    client.submit, "synt.cpu.1n", scale=0.2, policy="me"
                )
            await service.shutdown()

        run_service(scenario())

    def test_shutdown_while_pending_drains_first(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none", eager=False)
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2, count=3)
            await service.shutdown()  # graceful: drains the pending jobs
            worker = service.workers["default"]
            assert worker.stats.completed == 3
            assert len(worker.pending) == 0

        run_service(scenario())


class TestBatchEquivalence:
    """Streamed multi-client submission reproduces the batch campaign."""

    def _specs(self, n=8):
        names = ["synt.cpu.1n", "synt.mixed.1n", "synt.mem.1n"]
        return [
            dict(
                workload=names[i % len(names)],
                seed=10 + i,
                scale=0.2,
                submit_s=i * 8.0,
                tag=i,
            )
            for i in range(n)
        ]

    def _batch_report(self, specs):
        registry = service_workloads()
        trace = []
        for i, spec in enumerate(sorted(specs, key=lambda s: (s["submit_s"], s["tag"]))):
            wl = registry[spec["workload"]].scaled_iterations(spec["scale"])
            trace.append(
                TraceJob(
                    index=i,
                    submit_s=spec["submit_s"],
                    workload=wl,
                    seed=spec["seed"],
                    est_time_s=wl.total_ref_time_s * 1.3,
                )
            )
        config = ClusterConfig(n_nodes=8, ear_config=None, telemetry=True)
        return ClusterSimulation(tuple(trace), config, pool=fresh_pool()).run()

    def _serve_specs(self, tmp_path, specs, partitions, seed):
        """Submit specs over the socket from several concurrent clients."""

        async def scenario():
            config = make_config(
                tmp_path, policy="none", eager=False, history_limit=64
            )
            service = EarService(config, pool=fresh_pool())
            await service.start()

            shuffled = list(specs)
            random.Random(seed).shuffle(shuffled)
            shares = [shuffled[i::partitions] for i in range(partitions)]

            def submit_all(share):
                client = ServiceClient(config.socket_path)
                for spec in share:
                    client.submit(**spec)

            await asyncio.gather(
                *(asyncio.to_thread(submit_all, share) for share in shares)
            )
            await asyncio.to_thread(ServiceClient(config.socket_path).drain)
            outcomes = sorted(
                service.workers["default"].recent, key=lambda o: o.index
            )
            await service.shutdown()
            return outcomes

        return run_service(scenario())

    def test_multi_client_streams_match_batch(self, tmp_path):
        specs = self._specs()
        batch = self._batch_report(specs)
        outcomes = self._serve_specs(tmp_path, specs, partitions=3, seed=7)
        assert tuple(outcomes) == tuple(sorted(batch.jobs, key=lambda o: o.index))

    def test_submission_order_is_irrelevant(self, tmp_path):
        specs = self._specs()
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        first = self._serve_specs(tmp_path / "a", specs, partitions=2, seed=1)
        second = self._serve_specs(tmp_path / "b", specs, partitions=4, seed=99)
        assert tuple(first) == tuple(second)


class TestHttpEndpoints:
    def test_metrics_scrape_is_exposition_valid(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none", budget_mj=5.0, horizon_s=300.0)
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2, count=3)
            await asyncio.to_thread(client.drain)
            status, body = await asyncio.to_thread(client.http_get, "/metrics")
            assert status == 200
            families = validate_exposition(body)
            assert "repro_service_jobs_completed" in families
            assert families["repro_service_jobs_completed"] == "counter"
            assert "repro_service_eargm_horizons_completed" in families
            await service.shutdown()
            return body

        body = run_service(scenario())
        # a second scrape path: the JSON dialect returns the same text shape
        assert "# TYPE" in body

    def test_events_and_status_endpoints(self, tmp_path):
        async def scenario():
            config = make_config(tmp_path, policy="none")
            service = EarService(config, pool=fresh_pool())
            await service.start()
            client = ServiceClient(config.socket_path)
            await asyncio.to_thread(client.submit, "synt.cpu.1n", scale=0.2)
            await asyncio.to_thread(client.drain)
            status, body = await asyncio.to_thread(client.http_get, "/events?n=3")
            assert status == 200
            lines = [json.loads(line) for line in body.splitlines()]
            assert lines and all("subsystem" in line for line in lines)
            status, body = await asyncio.to_thread(client.http_get, "/status")
            assert status == 200
            payload = json.loads(body)
            assert payload["clusters"]["default"]["completed"] == 1
            status, _ = await asyncio.to_thread(client.http_get, "/nope")
            assert status == 404
            await service.shutdown()

        run_service(scenario())


@pytest.mark.slow
class TestSigtermDrain:
    def _spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        sock = str(tmp_path / "ear.sock")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--socket",
                sock,
                "--policy",
                "none",
                "--no-fsync",
                "--journal-dir",
                str(tmp_path / "journal"),
                *extra,
            ],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        client = ServiceClient(sock)
        client.wait_ready(timeout=30.0)
        return proc, client

    def test_sigterm_drains_and_leaves_resumable_journal(self, tmp_path):
        proc, client = self._spawn(tmp_path)
        try:
            client.submit("synt.cpu.1n", scale=0.2, count=3, seed=4)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        journal_dir = tmp_path / "journal"
        files = list(journal_dir.glob("*.jsonl"))
        assert len(files) == 1
        lines = [json.loads(x) for x in files[0].read_text().splitlines()]
        assert lines[-1]["record"] == "campaign_complete"
        completed = [x for x in lines if x["record"] == "completed"]
        assert len(completed) == 3

        # resume: the journal is extended, completed work is known
        proc2, client2 = self._spawn(tmp_path, "--resume")
        try:
            client2.shutdown()
            out2, _ = proc2.communicate(timeout=60)
        finally:
            if proc2.poll() is None:
                proc2.kill()
        assert proc2.returncode == 0, out2
        assert "resumed journal" in out2
        assert "3 runs already completed" in out2
        lines = [json.loads(x) for x in files[0].read_text().splitlines()]
        assert sum(1 for x in lines if x["record"] == "campaign_complete") == 2
