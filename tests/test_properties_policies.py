"""Property-based tests on the policy and controller layers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ear.config import EarConfig
from repro.ear.models import make_model
from repro.ear.policies import MinEnergyPolicy, PolicyContext, PolicyState
from repro.ear.signature import Signature
from repro.hw.msr import RAPL_POWER_UNIT_W, UncoreRatioLimit
from repro.hw.node import SD530, Node
from repro.hw.ufs import UfsController, UfsInputs

# -- strategies ---------------------------------------------------------------

signatures = st.builds(
    Signature,
    iteration_time_s=st.floats(min_value=0.05, max_value=5.0),
    dc_power_w=st.floats(min_value=120.0, max_value=450.0),
    cpi=st.floats(min_value=0.3, max_value=3.5),
    tpi=st.floats(min_value=0.0, max_value=0.1),
    gbs=st.floats(min_value=0.0, max_value=200.0),
    vpi=st.sampled_from([0.0, 0.3, 1.0]),
    avg_cpu_freq_ghz=st.sampled_from([2.4, 2.2, 2.0, 1.7, 1.2]),
    avg_imc_freq_ghz=st.floats(min_value=1.2, max_value=2.4),
)

ufs_inputs = st.builds(
    UfsInputs,
    fastest_active_ratio=st.integers(min_value=0, max_value=28),
    active_fraction=st.floats(min_value=0.0, max_value=1.0),
    vpi=st.floats(min_value=0.0, max_value=1.0),
    uncore_demand=st.floats(min_value=0.0, max_value=1.0),
    pinned=st.booleans(),
    epb=st.integers(min_value=0, max_value=15),
    follow_factor=st.one_of(st.none(), st.floats(min_value=0.3, max_value=1.2)),
)


def make_policy(**cfg):
    config = EarConfig(**cfg)
    ctx = PolicyContext(
        config=config,
        pstates=SD530.pstates,
        model=make_model(SD530, config),
        imc_max_ghz=2.4,
        imc_min_ghz=1.2,
    )
    return MinEnergyPolicy(ctx)


class TestUfsControllerProperties:
    @given(
        ufs_inputs,
        st.integers(min_value=12, max_value=24),
        st.integers(min_value=12, max_value=24),
    )
    @settings(max_examples=200)
    def test_target_always_within_msr_limits(self, inputs, a, b):
        lo, hi = min(a, b), max(a, b)
        ratio = UfsController().target_ratio(inputs, msr_min=lo, msr_max=hi)
        assert lo <= ratio <= hi

    @given(ufs_inputs)
    @settings(max_examples=100)
    def test_inverted_limits_honour_max_field(self, inputs):
        ratio = UfsController().target_ratio(inputs, msr_min=30, msr_max=18)
        assert ratio <= 18

    @given(ufs_inputs, st.integers(min_value=13, max_value=24))
    @settings(max_examples=100)
    def test_monotone_in_msr_max(self, inputs, hi):
        ctl = UfsController()
        wide = ctl.target_ratio(inputs, msr_min=12, msr_max=hi)
        narrow = ctl.target_ratio(inputs, msr_min=12, msr_max=hi - 1)
        assert narrow <= wide


class TestPolicyProperties:
    @given(signatures)
    @settings(max_examples=60, deadline=None)
    def test_decision_always_within_hardware_ranges(self, sig):
        policy = make_policy()
        state, freqs = policy.node_policy(sig)
        assert state in (PolicyState.READY, PolicyState.CONTINUE)
        assert 1.0 <= freqs.cpu_ghz <= 2.4
        assert 1.2 - 1e-9 <= freqs.imc_max_ghz <= 2.4 + 1e-9
        assert freqs.imc_min_ghz <= freqs.imc_max_ghz + 1e-9

    @given(signatures)
    @settings(max_examples=40, deadline=None)
    def test_me_never_selects_above_default(self, sig):
        """min_energy never overclocks: the default is its ceiling."""
        policy = make_policy(use_explicit_ufs=False)
        _, freqs = policy.node_policy(sig)
        assert freqs.cpu_ghz <= 2.4 + 1e-9

    @given(signatures, st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_eargm_offset_caps_selection(self, sig, offset):
        policy = make_policy(use_explicit_ufs=False, default_pstate_offset=offset)
        _, freqs = policy.node_policy(sig)
        cap = SD530.pstates.freq_of(SD530.pstates.nominal_pstate + offset)
        assert freqs.cpu_ghz <= cap + 1e-9

    @given(signatures)
    @settings(max_examples=40, deadline=None)
    def test_descent_sequence_is_monotone_until_ready(self, sig):
        """Feeding the same signature repeatedly: the uncore ceiling
        must descend strictly until READY, then stop changing."""
        policy = make_policy()
        state, freqs = policy.node_policy(sig)
        ceilings = [freqs.imc_max_ghz]
        for _ in range(25):
            if state is PolicyState.READY:
                break
            state, freqs = policy.node_policy(sig)
            ceilings.append(freqs.imc_max_ghz)
        assert state is PolicyState.READY
        descending = ceilings[:-1] if len(ceilings) > 1 else ceilings
        assert all(b < a + 1e-9 for a, b in zip(descending, descending[1:]))


class TestMsrProperties:
    @given(st.floats(min_value=RAPL_POWER_UNIT_W, max_value=4000.0))
    @settings(max_examples=100)
    def test_power_limit_roundtrip_within_unit(self, watts):
        node = Node(SD530)
        node.set_pkg_power_limit(watts, privileged=True)
        got = node.sockets[0].msr.read_pkg_power_limit_w()
        assert got == pytest.approx(watts, abs=RAPL_POWER_UNIT_W / 2 + 1e-9)

    @given(
        st.integers(min_value=12, max_value=24),
        st.integers(min_value=12, max_value=24),
    )
    @settings(max_examples=100)
    def test_uncore_limit_write_always_clamps_current(self, mn, mx):
        node = Node(SD530)
        node.set_uncore_limits(
            UncoreRatioLimit(min_ratio=mn, max_ratio=mx), privileged=True
        )
        current = node.sockets[0].uncore.current_ratio
        assert min(mn, mx) <= current <= mx
