"""Engine robustness: heterogeneity, heavy noise, sensor failure,
result export."""

import json

import pytest

from repro.ear.config import EarConfig
from repro.errors import ExperimentError
from repro.sim.engine import SimulationEngine, run_workload
from tests.conftest import make_fast_workload


class TestNodeHeterogeneity:
    def test_straggler_sets_the_pace(self):
        """Static per-node slowdown: the job runs at the slowest node's
        speed, not the average — the bulk-synchronous worst case."""
        wl = make_fast_workload(n_nodes=4)
        uniform = run_workload(wl, seed=1, noise_sigma=0.0)
        hetero = run_workload(
            wl, seed=1, noise_sigma=0.0, node_speed_spread=0.1
        )
        assert hetero.time_s > uniform.time_s * 1.02

    def test_slowdown_is_static_per_node(self):
        wl = make_fast_workload(n_nodes=4, n_iterations=60)
        engine = SimulationEngine(wl, seed=3, noise_sigma=0.0, node_speed_spread=0.1)
        engine.run()
        # the same node is the straggler throughout: its bank's compute
        # share of wall time is ~1.0 while others waited
        waits = []
        for node in engine.cluster:
            snap = engine.banks[node.node_id].snapshot()
            waits.append(snap.seconds)
        # every node accounts identical wall seconds (barrier semantics)
        assert max(waits) == pytest.approx(min(waits), rel=1e-9)

    def test_deterministic_given_seed(self):
        wl = make_fast_workload(n_nodes=3)
        a = run_workload(wl, seed=9, node_speed_spread=0.08)
        b = run_workload(wl, seed=9, node_speed_spread=0.08)
        assert a.time_s == b.time_s

    def test_policies_survive_heterogeneity(self):
        wl = make_fast_workload(n_nodes=3, n_iterations=200)
        r = run_workload(
            wl, ear_config=EarConfig(), seed=1, node_speed_spread=0.08
        )
        assert r.avg_imc_freq_ghz < 2.35  # descent still happened
        assert r.time_s > 0

    def test_spread_validated(self):
        with pytest.raises(ExperimentError):
            SimulationEngine(make_fast_workload(), node_speed_spread=0.5)


class TestHeavyNoise:
    def test_policy_remains_stable_under_noise(self):
        """3 % iteration jitter (10x default): the guard may settle a
        little higher, but the run completes and the penalty stays
        within the combined budget plus noise."""
        wl = make_fast_workload(n_iterations=250)
        base = run_workload(wl, seed=1, noise_sigma=0.03)
        managed = run_workload(
            wl, ear_config=EarConfig(), seed=1, noise_sigma=0.03
        )
        penalty = managed.time_s / base.time_s - 1.0
        assert penalty < 0.12

    def test_zero_iterations_of_drift_without_noise(self):
        wl = make_fast_workload(n_iterations=50)
        r1 = run_workload(wl, seed=1, noise_sigma=0.0)
        r2 = run_workload(wl, seed=99, noise_sigma=0.0)
        assert r1.time_s == pytest.approx(r2.time_s, rel=1e-12)


class TestSensorFailure:
    def test_stuck_energy_counter_never_crashes_earl(self):
        """If the Node Manager counter never publishes (update period
        beyond the run length), EARL gets no usable energy delta and
        must simply keep running without signatures."""
        wl = make_fast_workload(n_iterations=80)
        engine = SimulationEngine(wl, ear_config=EarConfig(), seed=1)
        for node in engine.cluster:
            node.dc_meter.update_period_s = 1e9  # effectively stuck
        result = engine.run()
        assert result.signatures == ()
        assert result.time_s > 0
        # frequencies stayed at the pinned defaults
        assert result.avg_imc_freq_ghz == pytest.approx(2.4)


class TestExport:
    def test_to_json_roundtrips(self):
        wl = make_fast_workload(n_iterations=60)
        r = run_workload(wl, ear_config=EarConfig(), seed=1, record_trace=True)
        payload = json.loads(r.to_json())
        assert payload["workload"] == r.workload
        assert payload["dc_energy_j"] == pytest.approx(r.dc_energy_j)
        assert len(payload["nodes"]) == r.n_nodes
        assert len(payload["signatures"]) == len(r.signatures)
        assert len(payload["freq_trace"]) == 60
        first_decision = payload["decisions"][0]
        assert first_decision["earl_state"] == "NODE_POLICY"
        assert first_decision["freqs"]["cpu_ghz"] > 0

    def test_export_without_traces(self):
        wl = make_fast_workload(n_iterations=30)
        r = run_workload(wl, seed=1)
        payload = r.to_dict()
        assert payload["decisions"] == []
        assert payload["freq_trace"] == []
