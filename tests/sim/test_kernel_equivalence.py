"""The batched kernel's scalar-equivalence gate.

Every case runs the same job once under each engine and requires:

* ``time_s`` and every per-node observable (energy, time, frequencies,
  CPI, GB/s) within **1e-9 relative** — the batched kernel reassociates
  floating-point sums but must not change physics;
* identical signature and decision *counts* for EAR runs — iteration
  times are drawn and computed bit-identically, so measurement windows
  must close on the same iterations and the policy must fire the same
  number of times.

If one of these ever fails, the batched kernel is wrong — the scalar
engine is the reference implementation, by construction.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.ear.config import EarConfig
from repro.hw.node import GRANITE_RAPIDS_NODE
from repro.sim.engine import SimulationEngine, run_workload
from repro.sim.faults import FaultPlan
from repro.workloads import applications, kernels

REL_TOL = 1e-9

_NODE_FIELDS = (
    "dc_energy_j",
    "pck_energy_j",
    "seconds",
    "avg_cpu_freq_ghz",
    "avg_imc_freq_ghz",
    "cpi",
    "gbs",
)


def assert_equivalent(scalar, batched, *, tol: float = REL_TOL) -> None:
    """The gate: batched result within ``tol`` relative of scalar."""
    assert batched.time_s == pytest.approx(scalar.time_s, rel=tol)
    assert len(batched.nodes) == len(scalar.nodes)
    for ns, nb in zip(scalar.nodes, batched.nodes):
        assert nb.node_id == ns.node_id
        for name in _NODE_FIELDS:
            vs, vb = getattr(ns, name), getattr(nb, name)
            assert vb == pytest.approx(vs, rel=tol, abs=1e-30), (
                f"node {ns.node_id} {name}: scalar {vs!r} vs batched {vb!r}"
            )
    assert len(batched.signatures) == len(scalar.signatures)
    assert len(batched.decisions) == len(scalar.decisions)


def both(workload, **kwargs):
    """Run the workload under both engines with identical settings."""
    scalar = run_workload(workload, engine="scalar", **kwargs)
    batched = run_workload(workload, engine="batched", **kwargs)
    return scalar, batched


# -- clean path (the vectorized kernel) -------------------------------------


def test_clean_multi_node_run_matches():
    wl = applications.gromacs_lignocellulose().scaled_iterations(0.1)
    assert_equivalent(*both(wl, seed=1))


def test_clean_run_iteration_times_bit_identical():
    # time_s is a sum of identical walls in identical order: exact.
    wl = applications.bqcd().scaled_iterations(0.05)
    scalar, batched = both(wl, seed=3)
    assert batched.time_s == scalar.time_s


def test_multi_phase_workload_matches():
    wl = applications.bt_mz_d().scaled_iterations(0.1)
    assert_equivalent(*both(wl, seed=2))


def test_zero_noise_matches():
    wl = kernels.sp_mz_c_openmp().scaled_iterations(0.1)
    assert_equivalent(*both(wl, seed=4, noise_sigma=0.0))


def test_node_speed_spread_matches():
    wl = applications.hpcg().scaled_iterations(0.1)
    assert_equivalent(*both(wl, seed=5, node_speed_spread=0.08))


def test_frequency_trace_matches():
    wl = kernels.bt_mz_c_openmp().scaled_iterations(0.1)
    scalar, batched = both(wl, seed=6, record_trace=True)
    assert_equivalent(scalar, batched)
    assert len(batched.freq_trace) == len(scalar.freq_trace)
    for ss, sb in zip(scalar.freq_trace, batched.freq_trace):
        assert sb.at_s == pytest.approx(ss.at_s, rel=REL_TOL)
        assert sb.cpu_target_ghz == ss.cpu_target_ghz
        assert sb.imc_freq_ghz == ss.imc_freq_ghz


# -- pinned frequencies (the learning-phase configuration) -----------------


def test_pinned_frequencies_match():
    wl = kernels.stream_triad().scaled_iterations(0.1)
    assert_equivalent(*both(wl, seed=7, pin_cpu_ghz=2.0, pin_uncore_ghz=1.8))


def test_pinned_observe_only_ear_matches():
    wl = kernels.dgemm_mkl().scaled_iterations(0.2)
    cfg = EarConfig(policy="monitoring")
    assert_equivalent(*both(wl, seed=8, ear_config=cfg, pin_cpu_ghz=2.2))


# -- EAR policies (the committed kernel) ------------------------------------


def test_default_policy_matches():
    wl = applications.gromacs_lignocellulose().scaled_iterations(0.2)
    scalar, batched = both(wl, seed=1, ear_config=EarConfig())
    assert_equivalent(scalar, batched)
    assert len(scalar.decisions) > 0  # the policy actually fired


def test_policy_decisions_identical():
    wl = applications.pop().scaled_iterations(0.2)
    scalar, batched = both(wl, seed=2, ear_config=EarConfig())
    for ds, db in zip(scalar.decisions, batched.decisions):
        # frequencies chosen and state machine path must match exactly;
        # signature floats may differ by reassociation ulps.
        assert db.freqs == ds.freqs
        assert db.earl_state == ds.earl_state
        assert db.policy_state == ds.policy_state
        assert db.at_s == pytest.approx(ds.at_s, rel=REL_TOL)


# -- non-MSR uncore backends ------------------------------------------------
#
# The batched kernel's plans cache flattened per-die uncore ratios and
# invalidate on the backend's write_generation; sysfs and TPMI exercise
# both (multi-die domains, non-MSR write counting, the TPMI ELC floor).


def test_sysfs_backend_run_matches():
    wl = applications.bqcd().scaled_iterations(0.1)
    wl = wl.retargeted(
        dataclasses.replace(
            wl.node_config, uncore_backend="sysfs", dies_per_socket=2
        )
    )
    assert_equivalent(*both(wl, seed=21))


def test_sysfs_backend_ear_run_matches():
    wl = applications.pop().scaled_iterations(0.2)
    wl = wl.retargeted(
        dataclasses.replace(wl.node_config, uncore_backend="sysfs")
    )
    assert_equivalent(*both(wl, seed=22, ear_config=EarConfig()))


def test_tpmi_backend_run_matches():
    wl = applications.hpcg().scaled_iterations(0.1)
    assert_equivalent(*both(wl.retargeted(GRANITE_RAPIDS_NODE), seed=23))


def test_tpmi_backend_ear_run_matches():
    wl = applications.gromacs_lignocellulose().scaled_iterations(0.2)
    scalar, batched = both(
        wl.retargeted(GRANITE_RAPIDS_NODE), seed=24, ear_config=EarConfig()
    )
    assert_equivalent(scalar, batched)


def test_tpmi_pinned_frequencies_match():
    wl = kernels.stream_triad().scaled_iterations(0.1)
    wl = wl.retargeted(GRANITE_RAPIDS_NODE)
    assert_equivalent(*both(wl, seed=25, pin_cpu_ghz=2.0, pin_uncore_ghz=1.8))


# -- fault injection --------------------------------------------------------

_FAULTY = FaultPlan(
    seed=11,
    meter_stall_rate=0.02,
    meter_dropout_rate=0.01,
    counter_corruption_rate=0.02,
    msr_failure_rate=0.05,
    rapl_wrap_rate=0.02,
    throttle_rate=0.03,
)


def test_faulted_run_matches():
    wl = applications.bt_mz_d().scaled_iterations(0.15)
    assert_equivalent(*both(wl, seed=3, fault_plan=_FAULTY))


def test_faulted_ear_run_matches():
    wl = applications.bt_mz_d().scaled_iterations(0.15)
    assert_equivalent(*both(wl, seed=3, ear_config=EarConfig(), fault_plan=_FAULTY))


# -- GPU workloads ----------------------------------------------------------


def test_gpu_offload_matches():
    wl = kernels.bt_cuda_d().scaled_iterations(0.2)
    assert_equivalent(*both(wl, seed=4))


def test_gpu_offload_with_ear_matches():
    wl = kernels.lu_cuda_d().scaled_iterations(0.2)
    assert_equivalent(*both(wl, seed=4, ear_config=EarConfig()))


# -- RAPL power cap (the trickiest branch: _power_capped_ghz) ---------------


def _capped_run(workload, engine: str, cap_w: float, **kwargs):
    eng = SimulationEngine(workload, engine=engine, **kwargs)
    for node in eng.cluster:
        node.set_pkg_power_limit(cap_w, privileged=True)
    return eng.run()


def test_power_capped_run_matches():
    wl = kernels.sp_mz_c_openmp().scaled_iterations(0.2)
    scalar = _capped_run(wl, "scalar", 120.0, seed=5)
    batched = _capped_run(wl, "batched", 120.0, seed=5)
    assert_equivalent(scalar, batched)
    # the cap actually bit: the sustained clock fell below nominal
    uncapped = run_workload(wl, seed=5, engine="scalar")
    assert scalar.time_s > uncapped.time_s


def test_power_capped_ear_run_matches():
    wl = kernels.sp_mz_c_openmp().scaled_iterations(0.25)
    scalar = _capped_run(wl, "scalar", 120.0, seed=6, ear_config=EarConfig())
    batched = _capped_run(wl, "batched", 120.0, seed=6, ear_config=EarConfig())
    assert_equivalent(scalar, batched)


# -- telemetry --------------------------------------------------------------


def test_telemetry_run_matches():
    wl = applications.gromacs_ion_channel().scaled_iterations(0.15)
    scalar, batched = both(wl, seed=7, ear_config=EarConfig(), telemetry=True)
    assert_equivalent(scalar, batched)
    for ns, nb in zip(scalar.nodes, batched.nodes):
        assert len(nb.telemetry.events) == len(ns.telemetry.events)


# -- engine selection plumbing ----------------------------------------------


def test_unknown_engine_rejected():
    wl = kernels.bt_mz_c_openmp().scaled_iterations(0.05)
    with pytest.raises(Exception):
        SimulationEngine(wl, engine="simd")


def test_default_engine_is_scalar():
    wl = kernels.bt_mz_c_openmp().scaled_iterations(0.05)
    assert SimulationEngine(wl).engine == "scalar"
