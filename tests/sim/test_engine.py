"""Simulation engine: determinism, barriers, pinning, EARL wiring."""

import pytest

from repro.ear.config import EarConfig
from repro.errors import ExperimentError
from repro.sim.engine import SimulationEngine, run_workload
from tests.conftest import make_fast_workload


class TestDeterminism:
    def test_same_seed_same_result(self, fast_workload):
        a = run_workload(fast_workload, seed=7)
        b = run_workload(fast_workload, seed=7)
        assert a.time_s == b.time_s
        assert a.dc_energy_j == b.dc_energy_j

    def test_different_seed_different_noise(self, fast_workload):
        a = run_workload(fast_workload, seed=1)
        b = run_workload(fast_workload, seed=2)
        assert a.time_s != b.time_s
        # ... but only by noise, not structurally
        assert a.time_s == pytest.approx(b.time_s, rel=0.01)

    def test_zero_noise_is_exact(self, fast_workload):
        r = run_workload(fast_workload, noise_sigma=0.0)
        assert r.time_s == pytest.approx(fast_workload.total_ref_time_s, rel=1e-9)


class TestBaselineRun:
    def test_no_policy_run_has_no_earl_traces(self, fast_workload):
        r = run_workload(fast_workload)
        assert r.policy == "none"
        assert r.signatures == ()
        assert r.decisions == ()

    def test_baseline_unpinned_uncore_at_max(self, fast_workload):
        r = run_workload(fast_workload, noise_sigma=0.0)
        assert r.avg_imc_freq_ghz == pytest.approx(2.4)

    def test_energy_equals_power_times_time(self, fast_workload):
        r = run_workload(fast_workload, noise_sigma=0.0)
        assert r.dc_energy_j == pytest.approx(
            r.avg_dc_power_w * r.time_s * r.n_nodes, rel=1e-6
        )

    def test_pck_subset_of_dc(self, fast_workload):
        r = run_workload(fast_workload, noise_sigma=0.0)
        assert 0 < r.pck_energy_j < r.dc_energy_j


class TestPolicyRun:
    def test_earl_traces_present(self, fast_workload):
        r = run_workload(fast_workload, ear_config=EarConfig())
        assert r.policy == "min_energy"
        assert len(r.signatures) >= 3
        assert len(r.decisions) >= 3

    def test_eufs_reduces_energy_on_cpu_bound(self, fast_workload):
        base = run_workload(fast_workload, seed=1)
        eufs = run_workload(fast_workload, ear_config=EarConfig(), seed=1)
        assert eufs.dc_energy_j < base.dc_energy_j
        assert eufs.avg_imc_freq_ghz < base.avg_imc_freq_ghz

    def test_per_node_earl_instances(self):
        wl = make_fast_workload(n_nodes=3)
        engine = SimulationEngine(wl, ear_config=EarConfig())
        assert len(engine.earls) == 3
        engine.run()
        # every node's MSRs were driven
        for node in engine.cluster:
            assert node.sockets[0].pinned


class TestBarrier:
    def test_multi_node_time_is_max_over_nodes(self):
        wl = make_fast_workload(n_nodes=4)
        multi = run_workload(wl, seed=3)
        single = run_workload(make_fast_workload(n_nodes=1), seed=3)
        # the barrier makes multi-node strictly slower than the mean node
        assert multi.time_s >= single.time_s * 0.99

    def test_all_nodes_account_wall_time(self):
        wl = make_fast_workload(n_nodes=3)
        engine = SimulationEngine(wl, seed=5)
        r = engine.run()
        for bank in engine.banks.values():
            assert bank.snapshot().seconds == pytest.approx(r.time_s, rel=1e-9)


class TestPinning:
    def test_pin_cpu(self, fast_workload):
        r = run_workload(fast_workload, pin_cpu_ghz=1.8, noise_sigma=0.0)
        assert r.avg_cpu_freq_ghz == pytest.approx(1.8, rel=0.02)

    def test_pin_uncore(self, fast_workload):
        r = run_workload(fast_workload, pin_uncore_ghz=1.5, noise_sigma=0.0)
        assert r.avg_imc_freq_ghz == pytest.approx(1.5)

    def test_pinning_slows_and_saves(self, fast_workload):
        base = run_workload(fast_workload, noise_sigma=0.0)
        pinned = run_workload(fast_workload, pin_uncore_ghz=1.2, noise_sigma=0.0)
        assert pinned.time_s > base.time_s
        assert pinned.avg_dc_power_w < base.avg_dc_power_w

    def test_pins_exclusive_with_policy(self, fast_workload):
        with pytest.raises(ExperimentError):
            SimulationEngine(
                fast_workload, ear_config=EarConfig(), pin_cpu_ghz=2.0
            )

    @pytest.mark.parametrize("pin", ["pin_cpu_ghz", "pin_uncore_ghz"])
    def test_zero_pin_still_exclusive_with_policy(self, fast_workload, pin):
        """A 0.0 pin is *set* (and invalid), not unset: the guard must
        not be fooled by falsy-but-not-None values."""
        with pytest.raises(ExperimentError, match="cannot pin"):
            SimulationEngine(fast_workload, ear_config=EarConfig(), **{pin: 0.0})


class TestTrace:
    def test_frequency_trace_recording(self, fast_workload):
        r = run_workload(fast_workload, ear_config=EarConfig(), record_trace=True)
        assert len(r.freq_trace) == 150
        assert r.freq_trace[-1].at_s == pytest.approx(r.time_s)
        # the descent must be visible in the trace
        imcs = [s.imc_freq_ghz for s in r.freq_trace]
        assert min(imcs) < max(imcs)

    def test_trace_off_by_default(self, fast_workload):
        assert run_workload(fast_workload).freq_trace == ()

    def test_negative_noise_rejected(self, fast_workload):
        with pytest.raises(ExperimentError):
            SimulationEngine(fast_workload, noise_sigma=-0.1)
