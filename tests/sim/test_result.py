"""RunResult aggregation."""

import pytest

from repro.sim.result import NodeResult, RunResult


def node(node_id=0, dc=1000.0, pck=600.0, cpu=2.38, imc=2.0, cpi=0.5, gbs=20.0):
    return NodeResult(
        node_id=node_id,
        dc_energy_j=dc,
        pck_energy_j=pck,
        avg_cpu_freq_ghz=cpu,
        avg_imc_freq_ghz=imc,
        cpi=cpi,
        gbs=gbs,
    )


def result(nodes, time_s=10.0):
    return RunResult(
        workload="w",
        n_nodes=len(nodes),
        policy="none",
        seed=0,
        time_s=time_s,
        nodes=tuple(nodes),
    )


class TestAggregation:
    def test_energy_sums_over_nodes(self):
        r = result([node(0), node(1)])
        assert r.dc_energy_j == pytest.approx(2000.0)
        assert r.pck_energy_j == pytest.approx(1200.0)

    def test_avg_power_is_per_node(self):
        """The paper reports average *node* power, not cluster power."""
        r = result([node(0), node(1)], time_s=10.0)
        assert r.avg_dc_power_w == pytest.approx(100.0)
        assert r.avg_pck_power_w == pytest.approx(60.0)

    def test_frequency_means(self):
        r = result([node(0, cpu=2.4, imc=2.4), node(1, cpu=2.0, imc=1.6)])
        assert r.avg_cpu_freq_ghz == pytest.approx(2.2)
        assert r.avg_imc_freq_ghz == pytest.approx(2.0)

    def test_counter_means(self):
        r = result([node(0, cpi=0.4, gbs=10.0), node(1, cpi=0.6, gbs=30.0)])
        assert r.cpi == pytest.approx(0.5)
        assert r.gbs == pytest.approx(20.0)

    def test_zero_time_guard(self):
        r = result([node(0)], time_s=0.0)
        assert r.avg_dc_power_w == 0.0
