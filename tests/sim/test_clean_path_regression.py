"""Clean-path regression: the fault layer must cost *nothing* when off.

The numbers below were captured from the tree immediately before the
fault-injection layer landed.  Every comparison is exact (``==``, not
approx): with no fault plan — or an all-zero one — the refactor must be
bit-identical, not merely statistically equivalent.  Any drift here
means the clean path now takes extra RNG draws or changed arithmetic.
"""

from repro.ear.config import EarConfig
from repro.hw.node import SD530
from repro.sim import run_workload
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultPlan
from repro.workloads.generator import synthetic_workload


def golden_a():
    return synthetic_workload(
        name="golden-a",
        node_config=SD530,
        core_share=0.85,
        unc_share=0.06,
        mem_share=0.05,
        n_nodes=2,
        n_iterations=150,
    )


def golden_m():
    return synthetic_workload(
        name="golden-m",
        node_config=SD530,
        core_share=0.12,
        unc_share=0.2,
        mem_share=0.6,
        n_nodes=1,
        n_iterations=150,
    )


class TestGoldenNumbers:
    def test_no_policy_run_unchanged(self):
        r = run_workload(golden_a(), seed=7)
        assert r.time_s == 75.08021888026748
        assert r.dc_energy_j == 48020.82796409208
        assert r.avg_cpu_freq_ghz == 2.380799999999999
        assert r.avg_imc_freq_ghz == 2.4

    def test_me_eufs_run_unchanged(self):
        r = run_workload(golden_a(), ear_config=EarConfig(), seed=7)
        assert r.time_s == 75.92402289522796
        assert r.dc_energy_j == 46774.318850211464
        assert r.avg_cpu_freq_ghz == 2.3808
        assert r.avg_imc_freq_ghz == 2.1138663890418825
        assert len(r.signatures) == 7
        assert len(r.decisions) == 7

    def test_me_without_eufs_run_unchanged(self):
        r = run_workload(
            golden_a(), ear_config=EarConfig(use_explicit_ufs=False), seed=7
        )
        assert r.time_s == 75.08021888026748
        assert r.dc_energy_j == 48020.82796409208
        assert len(r.signatures) == 7

    def test_memory_bound_run_unchanged(self):
        r = run_workload(golden_m(), ear_config=EarConfig(), seed=3)
        assert r.time_s == 77.11119046967409
        assert r.dc_energy_j == 27310.988096826568
        assert r.avg_cpu_freq_ghz == 2.1314352516087585
        assert r.avg_imc_freq_ghz == 2.315758922722863
        assert len(r.signatures) == 7


class TestDisabledPlanIdentity:
    def test_zero_plan_bit_identical_to_no_plan(self):
        base = run_workload(golden_a(), ear_config=EarConfig(), seed=7)
        zero = run_workload(
            golden_a(), ear_config=EarConfig(), seed=7, fault_plan=FaultPlan()
        )
        assert zero == base  # full structural equality, signatures included

    def test_clean_run_health_is_clean(self):
        r = run_workload(golden_a(), ear_config=EarConfig(), seed=7)
        assert r.health.clean
        assert r.health.faults_injected == 0
        assert r.health.degraded_s == 0.0
        for n in r.nodes:
            assert n.health is not None and n.health.clean

    def test_disabled_plan_builds_no_injectors(self):
        for plan in (None, FaultPlan()):
            engine = SimulationEngine(
                golden_a(), ear_config=EarConfig(), seed=7, fault_plan=plan
            )
            assert engine.injectors == {}
            for eard in (e.eard for e in engine.earls.values()):
                assert eard.injector is None
