"""Property tests for the engine's RNG draw-order contract.

The contract (documented on ``SimulationEngine.__init__``): the run
generator is consumed by exactly two features — the per-run node-speed
spread (one ``uniform`` at construction) and the per-iteration noise
(one ``normal`` per iteration) — and a feature that is *off* consumes
nothing.  That is what keeps e.g. a ``node_speed_spread=0`` run's noise
stream bit-aligned with a spread-free engine version, and what lets the
batched kernel pre-draw whole phases.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.workloads import kernels


def _state(engine: SimulationEngine):
    return engine._rng.bit_generator.state


def _wl():
    return kernels.bt_mz_c_openmp().scaled_iterations(0.05)


def test_zero_spread_draws_nothing_at_construction():
    eng = SimulationEngine(_wl(), seed=42, node_speed_spread=0.0)
    assert _state(eng) == np.random.default_rng(42).bit_generator.state
    assert (eng._node_slowdown == 1.0).all()


def test_nonzero_spread_draws_exactly_one_uniform_block():
    eng = SimulationEngine(_wl(), seed=42, node_speed_spread=0.1)
    ref = np.random.default_rng(42)
    expected = 1.0 + ref.uniform(0.0, 0.1, size=len(eng.cluster))
    assert (eng._node_slowdown == expected).all()
    assert _state(eng) == ref.bit_generator.state


def test_zero_sigma_run_consumes_no_draws():
    eng = SimulationEngine(_wl(), seed=7, noise_sigma=0.0)
    before = _state(eng)
    eng.run()
    assert _state(eng) == before


def test_zero_sigma_with_spread_consumes_only_the_spread():
    eng = SimulationEngine(
        _wl(), seed=7, noise_sigma=0.0, node_speed_spread=0.05
    )
    before = _state(eng)  # after the construction-time uniform
    eng.run()
    assert _state(eng) == before


def test_noise_stream_independent_of_spread_setting():
    """Turning the spread off must not shift the noise stream: the first
    normal draw of a spread-free run equals a fresh generator's."""
    eng = SimulationEngine(_wl(), seed=13, noise_sigma=0.01)
    noise = eng._iteration_noise(len(eng.cluster))
    ref = np.exp(np.random.default_rng(13).normal(0.0, 0.01, size=len(eng.cluster)))
    assert (noise == ref).all()


def test_batched_engine_consumes_rng_identically():
    """Both engines must leave the generator in the same final state —
    the block draw ``normal(size=(k, n))`` is bit-equivalent to ``k``
    sequential ``normal(size=n)`` draws."""
    a = SimulationEngine(_wl(), seed=3, engine="scalar")
    b = SimulationEngine(_wl(), seed=3, engine="batched")
    a.run()
    b.run()
    assert _state(a) == _state(b)


def test_block_normal_matches_sequential_rows():
    """The numpy property the batched kernel's noise pre-draw rests on."""
    k, n = 17, 5
    block = np.random.default_rng(99).normal(0.0, 0.003, size=(k, n))
    seq_rng = np.random.default_rng(99)
    rows = np.stack([seq_rng.normal(0.0, 0.003, size=n) for _ in range(k)])
    assert (block == rows).all()
