"""GPU-node end-to-end: the CUDA kernel path through the whole stack."""

import pytest

from repro.ear.config import EarConfig
from repro.sim.engine import run_workload
from repro.workloads.kernels import bt_cuda_d, lu_cuda_d

SCALE = 0.5


class TestGpuNodeRuns:
    def test_gpu_power_dominates_the_node(self):
        r = run_workload(bt_cuda_d().scaled_iterations(SCALE), seed=1)
        # two V100s (one busy, one idle) plus a mostly-idle host
        assert 250 < r.avg_dc_power_w < 340

    def test_host_counters_show_busy_wait(self):
        r = run_workload(bt_cuda_d().scaled_iterations(SCALE), seed=1)
        assert r.gbs < 0.5  # no host memory traffic
        assert 0.3 < r.cpi < 0.8  # the spin loop retires instructions

    def test_time_insensitive_to_host_clock(self):
        wl = bt_cuda_d().scaled_iterations(SCALE)
        base = run_workload(wl, seed=1, noise_sigma=0.0)
        slow = run_workload(wl, seed=1, noise_sigma=0.0, pin_cpu_ghz=1.0)
        assert slow.time_s / base.time_s < 1.05

    def test_eufs_collapses_uncore_without_penalty(self):
        wl = bt_cuda_d().scaled_iterations(SCALE)
        base = run_workload(wl, seed=1)
        eu = run_workload(wl, ear_config=EarConfig(), seed=1)
        assert eu.avg_imc_freq_ghz < 1.7
        assert eu.time_s / base.time_s < 1.01
        assert eu.dc_energy_j < base.dc_energy_j

    def test_polling_kernel_keeps_hw_uncore_up(self):
        """LU's memory-polling busy wait vs BT's pause loop: only the
        explicit policy can tell them apart (Table IV's contrast)."""
        lu_me = run_workload(
            lu_cuda_d().scaled_iterations(SCALE),
            ear_config=EarConfig(use_explicit_ufs=False),
            seed=1,
        )
        bt_me = run_workload(
            bt_cuda_d().scaled_iterations(SCALE),
            ear_config=EarConfig(use_explicit_ufs=False),
            seed=1,
        )
        assert lu_me.avg_imc_freq_ghz > 2.3
        assert bt_me.avg_imc_freq_ghz < 2.0

    def test_second_gpu_stays_idle(self):
        """The driver parks the unused V100; node power reflects one
        busy + one idle board."""
        from repro.sim.engine import SimulationEngine

        wl = bt_cuda_d().scaled_iterations(0.2)
        engine = SimulationEngine(wl, seed=1, noise_sigma=0.0)
        engine.run()
        node = engine.cluster.nodes[0]
        profile = wl.calibrated().main_phase
        op = profile.operating_point(node, effective_core_ghz=2.6)
        p = node.power(op)
        idle_w = node.config.gpus[1].idle_power_w
        busy_w = node.config.gpus[0].power_w(
            busy=True, utilisation=profile.gpu_utilisation
        )
        assert p.gpus_w == pytest.approx(busy_w + idle_w)
