"""Chaos suite: no fault schedule may crash a run or strand the node.

Every test here runs a full simulation under an aggressive fault plan
and checks the three contract properties of the robustness layer:

1. the run completes with a finite, well-formed result;
2. the run is exactly reproducible (same plan + seed => same bits);
3. whenever the watchdog fired (and no MSR apply was lost), the node
   ends the job on the policy's safe defaults.

Marked ``chaos`` so CI can sweep the suite separately across seeds.
"""

import math
import pickle

import pytest

from repro.ear.config import EarConfig
from repro.sim import run_workload
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultPlan
from tests.conftest import make_fast_workload

pytestmark = pytest.mark.chaos

SEEDS = (11, 23, 47)

#: one aggressive plan per fault channel, paired with the NodeHealth
#: counter that proves the channel actually fired.
CHANNELS = {
    "meter_stall": (
        FaultPlan(meter_stall_rate=0.3, meter_stall_reads=6),
        "meter_stalls",
    ),
    "meter_dropout": (FaultPlan(meter_dropout_rate=0.5), "meter_dropouts"),
    "counter_corruption": (
        FaultPlan(counter_corruption_rate=0.5),
        "counter_corruptions",
    ),
    "msr_failure": (
        FaultPlan(msr_failure_rate=0.8, msr_failure_burst=3),
        "msr_failures_injected",
    ),
    "rapl_wrap": (FaultPlan(rapl_wrap_rate=0.3), "rapl_wrap_storms"),
    "throttle": (
        FaultPlan(throttle_rate=0.15, throttle_duration_s=6.0),
        "throttle_events",
    ),
}

#: every channel at once, on a hair-trigger watchdog.
STORM = FaultPlan(
    meter_stall_rate=0.2,
    meter_stall_reads=8,
    meter_dropout_rate=0.2,
    counter_corruption_rate=0.3,
    msr_failure_rate=0.5,
    msr_failure_burst=2,
    rapl_wrap_rate=0.2,
    throttle_rate=0.1,
    throttle_duration_s=6.0,
)


def run_engine(plan, seed, **cfg):
    engine = SimulationEngine(
        make_fast_workload(),
        ear_config=EarConfig(**cfg),
        seed=seed,
        fault_plan=plan,
    )
    return engine, engine.run()


def assert_well_formed(result):
    assert result.time_s > 0 and math.isfinite(result.time_s)
    assert result.dc_energy_j > 0 and math.isfinite(result.dc_energy_j)
    assert math.isfinite(result.avg_cpu_freq_ghz)
    assert math.isfinite(result.avg_imc_freq_ghz)
    for sig in result.signatures:
        assert math.isfinite(sig.dc_power_w)
        assert math.isfinite(sig.cpi)


def assert_ladder_consistent(health):
    """Reaction counters must match the injected schedule."""
    # only corrupted reads can be implausible at ingress
    assert health.samples_rejected <= health.counter_corruptions
    # every injected MSR failure is either retried past or ends an apply
    assert health.msr_failures_injected == health.msr_retries + health.msr_apply_failures
    # a watchdog trip consumes watchdog_window_limit consecutive bad windows
    assert health.watchdog_restores <= health.windows_rejected + health.windows_stalled
    assert health.degraded_s >= 0.0


def assert_defaults_restored(engine):
    """Watchdog contract: a degraded node ends the job on defaults."""
    for earl in engine.earls.values():
        health = earl.health.snapshot()
        if not earl.degraded or health.msr_apply_failures > 0:
            continue  # not degraded, or the restoring write itself was lost
        defaults = earl.policy.default_freqs()
        node = earl.eard.node
        assert node.core_target_ghz == pytest.approx(defaults.cpu_ghz)
        limits = node.sockets[0].msr.read_uncore_limits()
        assert limits.max_ghz == pytest.approx(defaults.imc_max_ghz)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("channel", sorted(CHANNELS))
class TestSingleChannel:
    def test_run_survives_and_counts_faults(self, channel, seed):
        plan, counter = CHANNELS[channel]
        engine, result = run_engine(plan, seed)
        assert_well_formed(result)
        health = result.health
        assert getattr(health, counter) > 0, f"{channel} never fired"
        assert health.faults_injected > 0
        assert_ladder_consistent(health)
        assert_defaults_restored(engine)

    def test_run_is_deterministic(self, channel, seed):
        plan, _ = CHANNELS[channel]
        _, first = run_engine(plan, seed)
        _, second = run_engine(plan, seed)
        assert first == second
        assert first.health == second.health


@pytest.mark.parametrize("seed", SEEDS)
class TestStorm:
    def test_all_channels_at_once(self, seed):
        engine, result = run_engine(
            STORM, seed, stalled_poll_limit=5, watchdog_window_limit=2
        )
        assert_well_formed(result)
        health = result.health
        assert health.faults_injected > 0
        assert_ladder_consistent(health)
        assert_defaults_restored(engine)

    def test_storm_is_deterministic_and_picklable(self, seed):
        _, first = run_engine(STORM, seed, stalled_poll_limit=5)
        _, second = run_engine(STORM, seed, stalled_poll_limit=5)
        assert first == second
        # results cross process boundaries in the experiment pool
        assert pickle.loads(pickle.dumps(first)) == first


@pytest.mark.parametrize("seed", SEEDS)
def test_permanent_meter_stall_trips_watchdog(seed):
    """The nastiest meter fault: it never publishes again.  The run
    must finish, the watchdog must fire, and the node must end the job
    at the policy defaults."""
    plan = FaultPlan(meter_stall_rate=1.0, meter_stall_reads=10**6)
    engine, result = run_engine(
        plan, seed, stalled_poll_limit=5, watchdog_window_limit=2
    )
    assert_well_formed(result)
    health = result.health
    assert health.windows_stalled >= 2
    assert health.watchdog_restores == 1
    assert health.degraded_s > 0
    assert_defaults_restored(engine)
    assert all(earl.degraded for earl in engine.earls.values())


@pytest.mark.parametrize("seed", SEEDS)
def test_faults_survive_multi_node_runs(seed):
    """Injectors are per node and decorrelated; a 3-node faulted run
    completes and every node reports its own health."""
    result = run_workload(
        make_fast_workload(n_nodes=3, n_iterations=100),
        ear_config=EarConfig(),
        seed=seed,
        fault_plan=STORM,
    )
    assert_well_formed(result)
    healths = [n.health for n in result.nodes]
    assert all(h is not None for h in healths)
    assert all(h.faults_injected > 0 for h in healths)
    assert len(set(healths)) > 1, "per-node schedules should not be identical"
