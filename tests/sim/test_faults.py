"""Unit tests for the fault-injection layer itself."""

import pickle

import pytest

from repro.errors import ExperimentError, TransientMsrError
from repro.hw.node import SD530, Node
from repro.hw.rapl import RaplCounter
from repro.sim.faults import FaultInjector, FaultPlan, HealthMonitor, NodeHealth
from repro.workloads.phase import IterationCounters


def make_injector(plan: FaultPlan, *, run_seed: int = 7, node_id: int = 0):
    health = HealthMonitor()
    return FaultInjector(plan, run_seed=run_seed, node_id=node_id, health=health), health


SAMPLE = IterationCounters(
    seconds=0.5,
    instructions=1e9,
    cycles=2e9,
    bytes_transferred=5e8,
    avx512_instructions=0.0,
)


def counters_equal(a: IterationCounters, b: IterationCounters) -> bool:
    """Field-wise equality that treats NaN == NaN (corruption injects NaN)."""
    from dataclasses import astuple
    from math import isnan

    return all(
        x == y or (isnan(x) and isnan(y))
        for x, y in zip(astuple(a), astuple(b))
    )


class TestFaultPlan:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled

    def test_any_rate_enables(self):
        assert FaultPlan(meter_stall_rate=0.01).enabled
        assert FaultPlan(throttle_rate=0.01).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"meter_stall_rate": -0.1},
            {"counter_corruption_rate": 1.5},
            {"meter_stall_reads": 0},
            {"msr_failure_burst": 0},
            {"throttle_duration_s": 0.0},
            {"throttle_ghz": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            FaultPlan(**kwargs)

    def test_scaled_multiplies_and_clamps(self):
        plan = FaultPlan(meter_stall_rate=0.4, msr_failure_rate=0.1)
        double = plan.scaled(2.0)
        assert double.meter_stall_rate == pytest.approx(0.8)
        assert double.msr_failure_rate == pytest.approx(0.2)
        assert plan.scaled(10.0).meter_stall_rate == 1.0
        with pytest.raises(ExperimentError):
            plan.scaled(-1.0)

    def test_plan_is_picklable_and_hash_stable(self):
        plan = FaultPlan(seed=3, counter_corruption_rate=0.2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=5, counter_corruption_rate=0.3)
        a, _ = make_injector(plan)
        b, _ = make_injector(plan)
        out_a = [a.corrupt_counters(SAMPLE) for _ in range(200)]
        out_b = [b.corrupt_counters(SAMPLE) for _ in range(200)]
        assert all(counters_equal(x, y) for x, y in zip(out_a, out_b))

    def test_node_id_decorrelates(self):
        plan = FaultPlan(seed=5, counter_corruption_rate=0.3)
        a, _ = make_injector(plan, node_id=0)
        b, _ = make_injector(plan, node_id=1)
        out_a = [a.corrupt_counters(SAMPLE) for _ in range(200)]
        out_b = [b.corrupt_counters(SAMPLE) for _ in range(200)]
        assert not all(counters_equal(x, y) for x, y in zip(out_a, out_b))

    def test_injector_survives_pickling(self):
        plan = FaultPlan(seed=5, counter_corruption_rate=0.3)
        a, _ = make_injector(plan)
        b = pickle.loads(pickle.dumps(a))
        out_a = [a.corrupt_counters(SAMPLE) for _ in range(50)]
        out_b = [b.corrupt_counters(SAMPLE) for _ in range(50)]
        assert all(counters_equal(x, y) for x, y in zip(out_a, out_b))


class TestChannels:
    def test_corruption_ledger_counts_events(self):
        plan = FaultPlan(seed=1, counter_corruption_rate=1.0)
        inj, health = make_injector(plan)
        corrupted = [inj.corrupt_counters(SAMPLE) for _ in range(20)]
        assert health.counter_corruptions == 20
        assert all(c != SAMPLE for c in corrupted)

    def test_meter_stall_returns_stale_reading(self):
        from repro.ear.eard import EnergyReading

        plan = FaultPlan(seed=1, meter_stall_rate=1.0, meter_stall_reads=3)
        inj, health = make_injector(plan)
        first = inj.filter_energy_reading(EnergyReading(joules=100.0, timestamp_s=1.0))
        later = inj.filter_energy_reading(EnergyReading(joules=200.0, timestamp_s=2.0))
        assert later == first  # stalled: the fresh value never surfaces
        assert health.meter_stalls == 1

    def test_meter_dropout_zeroes_energy(self):
        from repro.ear.eard import EnergyReading

        plan = FaultPlan(seed=1, meter_dropout_rate=1.0)
        inj, health = make_injector(plan)
        reading = inj.filter_energy_reading(EnergyReading(joules=100.0, timestamp_s=1.0))
        assert reading.joules == 0.0
        assert reading.timestamp_s == 1.0
        assert health.meter_dropouts == 1

    def test_msr_failure_bursts_then_recovers(self):
        plan = FaultPlan(seed=1, msr_failure_rate=1.0, msr_failure_burst=1)
        inj, health = make_injector(plan)
        with pytest.raises(TransientMsrError):
            inj.check_msr_write()
        assert health.msr_failures_injected == 1

    def test_wrap_storm_moves_raw_counters(self):
        plan = FaultPlan(seed=1, rapl_wrap_rate=1.0)
        inj, health = make_injector(plan)
        node = Node(SD530)
        before = [c.raw() for c in node.rapl.pck]
        inj.on_iteration_start(node)
        after = [c.raw() for c in node.rapl.pck]
        assert health.rapl_wrap_storms == 1
        assert all(a != b for a, b in zip(after, before))

    def test_throttle_clamp_window(self):
        plan = FaultPlan(seed=1, throttle_rate=1.0, throttle_duration_s=5.0, throttle_ghz=1.5)
        inj, health = make_injector(plan)
        node = Node(SD530)
        inj.on_iteration_start(node)
        assert health.throttle_events == 1
        assert inj.throttle_clamp_ghz(0.0) == pytest.approx(1.5)
        assert inj.throttle_clamp_ghz(4.9) == pytest.approx(1.5)
        assert inj.throttle_clamp_ghz(5.1) is None


class TestRaplInjectionHook:
    def test_raw_jump_wraps_without_energy(self):
        c = RaplCounter()
        c.add_energy(100.0)
        raw_before = c.raw()
        c.inject_raw_jump((1 << 32) - 1)
        assert c.raw() == (raw_before - 1) % (1 << 32)

    def test_negative_jump_rejected(self):
        from repro.errors import HardwareError

        with pytest.raises(HardwareError):
            RaplCounter().inject_raw_jump(-1)


class TestNodeHealth:
    def test_merge_sums_fields(self):
        a = NodeHealth(meter_stalls=1, msr_retries=2, degraded_s=3.0)
        b = NodeHealth(meter_stalls=4, watchdog_restores=1)
        merged = NodeHealth.merge([a, b])
        assert merged.meter_stalls == 5
        assert merged.msr_retries == 2
        assert merged.watchdog_restores == 1
        assert merged.degraded_s == pytest.approx(3.0)

    def test_merge_empty_is_clean(self):
        assert NodeHealth.merge([]).clean

    def test_faults_injected_totals_schedule_side(self):
        h = NodeHealth(meter_stalls=1, counter_corruptions=2, throttle_events=3)
        assert h.faults_injected == 6
        assert not h.clean

    def test_monitor_degraded_span_accounting(self):
        m = HealthMonitor()
        m.enter_degraded(10.0)
        m.enter_degraded(12.0)  # idempotent: span start is kept
        m.exit_degraded(25.0)
        m.finish(30.0)  # no open span: no-op
        assert m.snapshot().degraded_s == pytest.approx(15.0)

    def test_monitor_finish_closes_open_span(self):
        m = HealthMonitor()
        m.enter_degraded(5.0)
        m.finish(9.0)
        assert m.snapshot().degraded_s == pytest.approx(4.0)
