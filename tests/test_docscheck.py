"""The docs-consistency checker: documented commands must parse."""

import pathlib

import pytest

from repro.cli import build_parser
from repro.docscheck import (
    Invocation,
    check_cli_doc,
    check_files,
    check_invocation,
    check_policy_docs,
    extract_invocations,
    main,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def parser():
    return build_parser()


def invocations(text):
    return list(extract_invocations(text, "doc.md"))


class TestExtraction:
    def test_fenced_block(self):
        text = "```bash\nrepro-ear run -w HPCG\n```\n"
        (inv,) = invocations(text)
        assert inv.command == "repro-ear run -w HPCG"
        assert inv.line == 2

    def test_inline_span(self):
        (inv,) = invocations("Use `repro-ear list` to see workloads.\n")
        assert inv.command == "repro-ear list"

    def test_backslash_continuation_joined(self):
        text = "```\nrepro-ear telemetry -w HPCG \\\n    --jsonl out.jsonl\n```\n"
        (inv,) = invocations(text)
        assert inv.command == "repro-ear telemetry -w HPCG --jsonl out.jsonl"

    def test_prompt_comment_and_placeholders_cleaned(self):
        text = "```\n$ repro-ear --jobs N run -w <name> # fast\n```\n"
        (inv,) = invocations(text)
        assert inv.command == "repro-ear --jobs 1 run -w 1"

    def test_prose_outside_backticks_ignored(self):
        assert invocations("repro-ear is the entry point.\n") == []


class TestCheckInvocation:
    def check(self, parser, command):
        return check_invocation(
            Invocation(path="doc.md", line=1, command=command), parser
        )

    def test_valid_invocation(self, parser):
        assert self.check(parser, "repro-ear run -w HPCG") is None

    def test_bare_program_and_subcommand_mentions(self, parser):
        assert self.check(parser, "repro-ear") is None
        assert self.check(parser, "repro-ear resilience") is None

    def test_global_flags_only_illustration(self, parser):
        assert self.check(parser, "repro-ear --jobs 4") is None

    def test_unknown_subcommand_fails(self, parser):
        failure = self.check(parser, "repro-ear lern")
        assert failure is not None
        assert "lern" in failure.error

    def test_unknown_flag_fails(self, parser):
        failure = self.check(parser, "repro-ear run -w X --warp-speed")
        assert failure is not None

    def test_bad_value_fails(self, parser):
        failure = self.check(parser, "repro-ear table not-a-number")
        assert failure is not None


class TestRepoDocs:
    DOCS = [
        REPO / "README.md",
        REPO / "EXPERIMENTS.md",
        *sorted((REPO / "docs").glob("*.md")),
    ]

    def test_every_documented_command_parses(self):
        invs, failures = check_files(self.DOCS)
        assert invs, "no documented commands found — extraction broke"
        assert not failures, [
            f"{f.invocation.path}:{f.invocation.line}: {f.error}"
            for f in failures
        ]

    def test_generated_cli_reference_is_current(self):
        assert check_cli_doc(REPO / "docs" / "CLI.md") is None

    def test_stale_cli_doc_detected(self, tmp_path):
        stale = tmp_path / "CLI.md"
        stale.write_text("# old\n")
        assert "stale" in check_cli_doc(stale)
        assert "missing" in check_cli_doc(tmp_path / "absent.md")


class TestPolicyDocs:
    def test_repo_policies_doc_complete(self):
        assert check_policy_docs(REPO / "docs" / "POLICIES.md") == []

    def test_missing_file_is_one_problem(self, tmp_path):
        (problem,) = check_policy_docs(tmp_path / "absent.md")
        assert "missing" in problem

    def test_undocumented_policy_reported(self, tmp_path):
        doc = tmp_path / "POLICIES.md"
        doc.write_text("## `min_energy` — the one section\n")
        problems = check_policy_docs(doc)
        # min_time / monitoring / min_energy_regions all lack headings.
        assert any("min_energy_regions" in p for p in problems)
        assert any("monitoring" in p for p in problems)
        assert not any("`min_energy`" in p for p in problems)

    def test_heading_required_not_prose(self, tmp_path):
        doc = tmp_path / "POLICIES.md"
        doc.write_text("The `monitoring` policy observes.\n")
        assert any("monitoring" in p for p in check_policy_docs(doc))


class TestMain:
    def test_exit_zero_on_clean_docs(self, tmp_path, capsys):
        doc = tmp_path / "ok.md"
        doc.write_text("Run `repro-ear list` first.\n")
        assert main([str(doc)]) == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_exit_one_on_drift(self, tmp_path, capsys):
        doc = tmp_path / "bad.md"
        doc.write_text("Run `repro-ear run --no-such-flag 1` first.\n")
        assert main([str(doc)]) == 1
        assert "bad.md:1" in capsys.readouterr().err

    def test_exit_one_on_stale_cli_doc(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("nothing here\n")
        stale = tmp_path / "CLI.md"
        stale.write_text("# old\n")
        assert main([str(doc), "--cli-doc", str(stale)]) == 1

    def test_exit_one_on_incomplete_policies_doc(self, tmp_path, capsys):
        doc = tmp_path / "ok.md"
        doc.write_text("nothing here\n")
        partial = tmp_path / "POLICIES.md"
        partial.write_text("## `min_energy`\n")
        assert main([str(doc), "--policies-doc", str(partial)]) == 1
        out = capsys.readouterr()
        assert "INCOMPLETE" in out.out

    def test_exit_zero_with_complete_policies_doc(self, tmp_path):
        doc = tmp_path / "ok.md"
        doc.write_text("nothing here\n")
        assert main([str(doc), "--policies-doc", str(REPO / "docs" / "POLICIES.md")]) == 0
