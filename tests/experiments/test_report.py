"""Report rendering helpers."""

from repro.experiments.report import (
    format_figure_series,
    format_table,
    ghz,
    pct,
    side_by_side,
)


class TestFormatters:
    def test_pct(self):
        assert pct(0.0817) == "+8.2%"
        assert pct(-0.01) == "-1.0%"

    def test_ghz(self):
        assert ghz(2.386) == "2.39"
        assert ghz(2.4) == "2.40"

    def test_side_by_side_pct(self):
        assert side_by_side(0.05, 0.08) == "+5.0% (paper +8.0%)"

    def test_side_by_side_absolute(self):
        assert side_by_side(1.98, 2.08, as_pct=False) == "1.98 (paper 2.08)"


class TestTable:
    def test_columns_aligned(self):
        text = format_table("T", ["a", "long_header"], [["xxxx", "1"], ["y", "2"]])
        lines = [l for l in text.splitlines() if "|" in l]
        pipes = {tuple(i for i, ch in enumerate(l) if ch == "|") for l in lines}
        assert len(pipes) == 1  # every row's separators line up

    def test_title_and_rule(self):
        text = format_table("My Title", ["h"], [["v"]])
        assert "My Title" in text
        assert "=" in text

    def test_non_string_cells_coerced(self):
        text = format_table("T", ["n"], [[42]])
        assert "42" in text


class TestFigureSeries:
    def test_renders_all_configs(self):
        series = [
            {
                "config": "me",
                "time_penalty": 0.01,
                "power_saving": 0.05,
                "energy_saving": 0.04,
                "avg_cpu_ghz": 2.38,
                "avg_imc_ghz": 2.4,
            },
            {
                "config": "me_eufs",
                "time_penalty": 0.02,
                "power_saving": 0.08,
                "energy_saving": 0.06,
                "avg_cpu_ghz": 2.38,
                "avg_imc_ghz": 1.98,
            },
        ]
        text = format_figure_series("Fig X", series)
        assert "me_eufs" in text
        assert "+8.0%" in text
        assert "1.98" in text
