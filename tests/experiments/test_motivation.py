"""The Figure-1 motivation sweep."""

import pytest

from repro.experiments.motivation import figure1, uncore_sweep
from repro.workloads.kernels import bt_mz_c_mpi, lu_d_mpi

SCALE = 0.3
SEEDS = (1,)


@pytest.fixture(scope="module")
def sweeps():
    return figure1(seeds=SEEDS, scale=SCALE)


class TestSweepStructure:
    def test_covers_full_uncore_range(self, sweeps):
        for sweep in sweeps.values():
            freqs = [p.uncore_ghz for p in sweep.points]
            assert freqs[0] == pytest.approx(2.4)
            assert freqs[-1] == pytest.approx(1.2)
            assert len(freqs) == 13  # 0.1 GHz steps

    def test_reference_is_hardware_ufs(self, sweeps):
        assert sweeps["BT-MZ"].hw_reference_imc_ghz > 2.3

    def test_pinned_points_hold_their_frequency(self, sweeps):
        for sweep in sweeps.values():
            for p in sweep.points:
                assert p.avg_imc_ghz == pytest.approx(p.uncore_ghz, abs=0.01)


class TestPaperObservations:
    def test_power_saving_grows_monotonically(self, sweeps):
        """Reducing the uncore step by step brings more power saving."""
        for sweep in sweeps.values():
            savings = [p.power_saving for p in sweep.points]
            assert all(b >= a - 1e-3 for a, b in zip(savings, savings[1:]))

    def test_power_saving_outpaces_time_penalty_for_bt(self, sweeps):
        """The paper's first observation, clearest on BT-MZ."""
        for p in sweeps["BT-MZ"].points:
            assert p.power_saving >= p.time_penalty - 1e-3

    def test_lowest_uncore_hurts_energy_for_lu(self, sweeps):
        """'at lowest uncore frequencies the time penalty outweighs
        energy saving' — LU's energy curve peaks then falls."""
        savings = [p.energy_saving for p in sweeps["LU"].points]
        peak = max(savings)
        assert savings[-1] < peak

    def test_lu_pays_more_time_than_bt(self, sweeps):
        bt_final = sweeps["BT-MZ"].points[-1].time_penalty
        lu_final = sweeps["LU"].points[-1].time_penalty
        assert lu_final > 2 * bt_final

    def test_gbs_penalty_tracks_time_for_bt(self, sweeps):
        """'time and memory bandwidth penalties have very closed
        results' for the less memory-dependent kernel."""
        for p in sweeps["BT-MZ"].points:
            assert p.gbs_penalty == pytest.approx(p.time_penalty, abs=0.01)


class TestCustomSweep:
    def test_partial_range(self):
        sweep = uncore_sweep(
            bt_mz_c_mpi(), cpu_ghz=2.4, seeds=(1,), scale=0.2, min_ratio=20, max_ratio=24
        )
        assert len(sweep.points) == 5

    def test_lower_cpu_reference(self):
        sweep = uncore_sweep(lu_d_mpi(), cpu_ghz=2.0, seeds=(1,), scale=0.2)
        assert sweep.cpu_ghz == pytest.approx(2.0)
