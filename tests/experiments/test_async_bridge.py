"""AsyncPoolBridge backpressure and the RunCache LRU bound."""

import asyncio
import threading
import time

import pytest

from repro.experiments.parallel import (
    AsyncPoolBridge,
    ExperimentPool,
    RunCache,
    RunRequest,
)
from tests.conftest import make_fast_workload


@pytest.fixture()
def workload():
    return make_fast_workload(n_iterations=60)


def _request(workload, **kwargs):
    defaults = dict(ear_config=None, seed=1, scale=0.3)
    defaults.update(kwargs)
    return RunRequest(workload=workload, **defaults)


class TestRunCacheLru:
    def test_unbounded_by_default(self, workload):
        cache = RunCache()
        pool = ExperimentPool(jobs=1, cache=cache)
        pool.run_many([_request(workload, seed=s) for s in range(1, 6)])
        assert len(cache) == 5
        assert cache.stats.memory_evictions == 0

    def test_bound_evicts_oldest(self, workload):
        cache = RunCache(max_memory_entries=3)
        pool = ExperimentPool(jobs=1, cache=cache)
        requests = [_request(workload, seed=s) for s in range(1, 6)]
        pool.run_many(requests)
        assert len(cache) == 3
        assert cache.stats.memory_evictions == 2
        # the oldest keys fell out, the newest survived
        assert cache.get(requests[0].key()) is None
        assert cache.get(requests[-1].key()) is not None

    def test_get_touches_recency(self, workload):
        cache = RunCache(max_memory_entries=2)
        pool = ExperimentPool(jobs=1, cache=cache)
        a, b, c = (_request(workload, seed=s) for s in (1, 2, 3))
        pool.run_many([a, b])
        assert cache.get(a.key()) is not None  # a becomes most recent
        pool.run_many([c])  # evicts b, not a
        assert cache.get(a.key()) is not None
        assert cache.get(b.key()) is None

    def test_disk_layer_survives_memory_eviction(self, workload, tmp_path):
        cache = RunCache(tmp_path, max_memory_entries=1)
        pool = ExperimentPool(jobs=1, cache=cache)
        a, b = _request(workload, seed=1), _request(workload, seed=2)
        pool.run_many([a, b])  # a evicted from memory, still on disk
        assert cache.get(a.key()) is not None
        assert cache.stats.disk_hits >= 1

    def test_concurrent_access_is_safe(self, workload):
        cache = RunCache(max_memory_entries=8)
        pool = ExperimentPool(jobs=1, cache=cache)
        pool.run_many([_request(workload, seed=s) for s in range(1, 5)])
        errors = []

        def hammer(offset):
            try:
                for i in range(200):
                    key = _request(workload, seed=1 + (offset + i) % 4).key()
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - only on race
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestAsyncPoolBridge:
    def test_call_runs_blocking_fn(self, workload):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        bridge = AsyncPoolBridge(pool)

        async def main():
            results = await bridge.call(pool.run_many, [_request(workload)])
            return results

        results = asyncio.run(main())
        assert len(results) == 1
        assert bridge.dispatched == 1
        assert bridge.inflight == 0

    def test_run_many_batches(self, workload):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        bridge = AsyncPoolBridge(pool, max_inflight=2)

        async def main():
            return await bridge.run_many(
                [_request(workload, seed=s) for s in (1, 2, 3)]
            )

        results = asyncio.run(main())
        assert len(results) == 3

    def test_max_inflight_is_enforced(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        bridge = AsyncPoolBridge(pool, max_inflight=2)
        active = []
        peak = []
        lock = threading.Lock()

        def blocking():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.02)
            with lock:
                active.pop()

        async def main():
            await asyncio.gather(*(bridge.call(blocking) for _ in range(6)))

        asyncio.run(main())
        assert max(peak) <= 2
        assert bridge.peak_inflight <= 2
        assert bridge.dispatched == 6

    def test_saturated_flag(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        bridge = AsyncPoolBridge(pool, max_inflight=1)
        release = threading.Event()
        seen = {}

        def blocking():
            release.wait(timeout=5)

        async def main():
            task = asyncio.get_running_loop().create_task(bridge.call(blocking))
            await asyncio.sleep(0.05)
            seen["saturated"] = bridge.saturated
            release.set()
            await task
            seen["after"] = bridge.saturated

        asyncio.run(main())
        assert seen["saturated"] is True
        assert seen["after"] is False
