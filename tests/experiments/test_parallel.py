"""Parallel execution layer: content-addressed cache + process pool."""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.parallel import (
    CACHE_FORMAT_VERSION,
    ExperimentPool,
    RunCache,
    RunRequest,
)
from repro.sim.engine import run_workload
from tests.conftest import make_fast_workload


@pytest.fixture()
def workload():
    return make_fast_workload(n_iterations=60)


def _request(workload, **kwargs):
    defaults = dict(ear_config=None, seed=1, scale=0.3)
    defaults.update(kwargs)
    return RunRequest(workload=workload, **defaults)


class TestRequestKeys:
    def test_key_is_deterministic(self, workload):
        assert _request(workload).key() == _request(workload).key()

    def test_distinct_per_config(self, workload):
        base = _request(workload).key()
        assert _request(workload, ear_config=EarConfig()).key() != base
        assert (
            _request(workload, ear_config=EarConfig(cpu_policy_th=0.03)).key()
            != _request(workload, ear_config=EarConfig()).key()
        )

    def test_distinct_per_seed(self, workload):
        assert _request(workload, seed=1).key() != _request(workload, seed=2).key()

    def test_distinct_per_scale(self, workload):
        assert (
            _request(workload, scale=0.3).key() != _request(workload, scale=0.5).key()
        )

    def test_distinct_per_pin(self, workload):
        assert (
            _request(workload, pin_cpu_ghz=2.4).key()
            != _request(workload, pin_cpu_ghz=2.3).key()
        )
        assert _request(workload, pin_cpu_ghz=2.4).key() != _request(workload).key()

    def test_distinct_per_workload(self, workload):
        other = make_fast_workload(n_iterations=61)
        assert _request(workload).key() != _request(other).key()

    def test_version_is_part_of_the_key(self, workload, monkeypatch):
        before = _request(workload).key()
        monkeypatch.setattr(
            "repro.experiments.parallel.CACHE_FORMAT_VERSION",
            CACHE_FORMAT_VERSION + 1,
        )
        assert _request(workload).key() != before

    def test_execute_matches_direct_run(self, workload):
        req = _request(workload, ear_config=EarConfig(), seed=3)
        direct = run_workload(
            workload.scaled_iterations(0.3), ear_config=EarConfig(), seed=3
        )
        assert req.execute().time_s == direct.time_s


class TestRunCacheMemory:
    def test_hit_miss_clear(self, workload):
        cache = RunCache()
        req = _request(workload)
        key = req.key()
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        result = req.execute()
        cache.put(key, result)
        assert cache.get(key) is result
        assert cache.stats.hits == 1
        cache.clear()
        assert cache.get(key) is None
        assert cache.stats.misses == 2


class TestRunCacheDisk:
    def test_round_trip_across_instances(self, workload, tmp_path):
        req = _request(workload)
        result = req.execute()
        RunCache(tmp_path).put(req.key(), result)

        fresh = RunCache(tmp_path)
        loaded = fresh.get(req.key())
        assert loaded is not None
        assert fresh.stats.disk_hits == 1
        assert loaded.time_s == result.time_s
        assert loaded.dc_energy_j == result.dc_energy_j
        assert loaded.nodes == result.nodes

    def test_version_bump_invalidates(self, workload, tmp_path):
        req = _request(workload)
        RunCache(tmp_path, version=1).put(req.key(), req.execute())
        newer = RunCache(tmp_path, version=2)
        assert newer.get(req.key()) is None
        # the stale file is dropped, not resurrected later
        assert RunCache(tmp_path, version=1).get(req.key()) is None

    def test_corrupt_entry_is_a_miss(self, workload, tmp_path):
        req = _request(workload)
        cache = RunCache(tmp_path)
        cache.put(req.key(), req.execute())
        for path in tmp_path.glob("*.run"):
            path.write_bytes(b"not a pickle")
        assert RunCache(tmp_path).get(req.key()) is None

    def test_clear_disk(self, workload, tmp_path):
        req = _request(workload)
        cache = RunCache(tmp_path)
        cache.put(req.key(), req.execute())
        cache.clear(disk=True)
        assert RunCache(tmp_path).get(req.key()) is None


class TestExperimentPool:
    def test_results_in_submission_order(self, workload):
        pool = ExperimentPool(cache=RunCache())
        requests = [_request(workload, seed=s) for s in (3, 1, 2)]
        results = pool.run_many(requests)
        assert [r.seed for r in results] == [3, 1, 2]

    def test_duplicates_execute_once(self, workload):
        pool = ExperimentPool(cache=RunCache())
        results = pool.run_many([_request(workload), _request(workload)])
        assert pool.stats.simulations == 1
        assert results[0] is results[1]

    def test_parallel_equals_serial(self, workload):
        requests = [
            _request(workload, ear_config=cfg, seed=s)
            for cfg in (None, EarConfig())
            for s in (1, 2)
        ]
        serial = ExperimentPool(jobs=1, cache=RunCache()).run_many(requests)
        parallel = ExperimentPool(jobs=2, cache=RunCache()).run_many(requests)
        for a, b in zip(serial, parallel):
            assert a.time_s == b.time_s
            assert a.dc_energy_j == b.dc_energy_j
            assert a.pck_energy_j == b.pck_energy_j
            assert a.nodes == b.nodes

    def test_run_averaged_parallel_equals_serial(self, workload):
        kw = dict(config_name="me_eufs", seeds=(1, 2, 3), scale=0.3)
        serial = ExperimentPool(jobs=1, cache=RunCache()).run_averaged(
            workload, EarConfig(), **kw
        )
        parallel = ExperimentPool(jobs=2, cache=RunCache()).run_averaged(
            workload, EarConfig(), **kw
        )
        assert serial.time_s == parallel.time_s
        assert serial.dc_energy_j == parallel.dc_energy_j
        assert serial.avg_imc_freq_ghz == parallel.avg_imc_freq_ghz

    def test_compare_batches_all_configs(self, workload):
        pool = ExperimentPool(cache=RunCache())
        cmp_ = pool.compare(
            workload,
            {"me": EarConfig(use_explicit_ufs=False), "me_eufs": EarConfig()},
            seeds=(1,),
            scale=0.3,
        )
        # none + me + me_eufs, one seed each, one batch
        assert pool.stats.simulations == 3
        assert pool.stats.batches == 1
        assert cmp_["me"].reference is cmp_["me_eufs"].reference

    def test_config_name_stamped_on_retrieval(self, workload):
        """The staleness bug: a warm cache must not leak the first
        requester's display name to later requesters."""
        pool = ExperimentPool(cache=RunCache())
        first = pool.run_averaged(
            workload, None, config_name="baseline", seeds=(1,), scale=0.3
        )
        second = pool.run_averaged(
            workload, None, config_name="reference", seeds=(1,), scale=0.3
        )
        assert first.config_name == "baseline"
        assert second.config_name == "reference"
        assert pool.stats.simulations == 1  # same physical runs
        assert first.time_s == second.time_s

    def test_warm_disk_cache_runs_nothing(self, workload, tmp_path):
        """Acceptance: a repeated invocation against a warm on-disk cache
        performs zero simulation runs, and the numbers are identical."""
        kw = dict(config_name="me", seeds=(1, 2, 3), scale=0.3)
        cold = ExperimentPool(jobs=1, cache=RunCache(tmp_path))
        a = cold.run_averaged(workload, EarConfig(), **kw)
        assert cold.stats.simulations == 3

        warm = ExperimentPool(jobs=2, cache=RunCache(tmp_path))
        b = warm.run_averaged(workload, EarConfig(), **kw)
        assert warm.stats.simulations == 0
        assert warm.cache.stats.disk_hits == 3
        assert a.time_s == b.time_s
        assert a.dc_energy_j == b.dc_energy_j

    def test_uncached_pool_always_simulates(self, workload):
        pool = ExperimentPool(cache=None)
        pool.run_many([_request(workload)])
        pool.run_many([_request(workload)])
        assert pool.stats.simulations == 2

    def test_clear_forgets_memoised_averages(self, workload):
        pool = ExperimentPool(cache=RunCache())
        a = pool.run_averaged(workload, None, config_name="x", seeds=(1,), scale=0.3)
        pool.clear()
        b = pool.run_averaged(workload, None, config_name="x", seeds=(1,), scale=0.3)
        assert a is not b
        assert a.time_s == b.time_s
