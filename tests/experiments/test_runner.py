"""Experiment runner: averaging, caching, comparisons."""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.runner import (
    AveragedResult,
    clear_run_cache,
    compare,
    run_averaged,
    standard_configs,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


class TestAveraging:
    def test_averages_over_seeds(self, fast_workload):
        avg = run_averaged(fast_workload, None, seeds=(1, 2, 3), scale=0.5)
        assert avg.n_runs == 3
        times = [r.time_s for r in avg.runs]
        assert avg.time_s == pytest.approx(sum(times) / 3)
        assert min(times) <= avg.time_s <= max(times)

    def test_three_runs_default(self, fast_workload):
        avg = run_averaged(fast_workload, None, scale=0.3)
        assert avg.n_runs == 3

    def test_from_runs_consistency(self, fast_workload):
        avg = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        rebuilt = AveragedResult.from_runs(avg.workload, "x", avg.runs)
        assert rebuilt.dc_energy_j == pytest.approx(avg.dc_energy_j)


class TestCaching:
    def test_identical_request_cached(self, fast_workload):
        a = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        b = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        assert a is b

    def test_different_config_not_cached(self, fast_workload):
        a = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        b = run_averaged(fast_workload, EarConfig(), seeds=(1,), scale=0.3)
        assert a is not b

    def test_clear(self, fast_workload):
        a = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        clear_run_cache()
        b = run_averaged(fast_workload, None, seeds=(1,), scale=0.3)
        assert a is not b
        assert a.time_s == b.time_s  # same seeds -> same numbers


class TestCachingRegressions:
    def test_config_name_not_stale_across_requesters(self, fast_workload):
        """Same (workload, config, seeds, scale) under two names must not
        return the first requester's name from the cache."""
        a = run_averaged(
            fast_workload, None, config_name="baseline", seeds=(1,), scale=0.3
        )
        b = run_averaged(
            fast_workload, None, config_name="reference", seeds=(1,), scale=0.3
        )
        assert a.config_name == "baseline"
        assert b.config_name == "reference"
        assert a.time_s == b.time_s  # still the same physical runs

    def test_generator_seeds_are_not_consumed(self, fast_workload):
        """A generator passed as ``seeds`` used to be eaten by the cache
        key and the run loop then saw it empty."""
        avg = run_averaged(fast_workload, None, seeds=iter((1, 2)), scale=0.3)
        assert avg.n_runs == 2
        explicit = run_averaged(fast_workload, None, seeds=(1, 2), scale=0.3)
        assert avg.time_s == explicit.time_s

    def test_jobs_override_matches_default_pool(self, fast_workload):
        serial = run_averaged(fast_workload, None, seeds=(1, 2), scale=0.3)
        clear_run_cache()
        parallel = run_averaged(
            fast_workload, None, seeds=(1, 2), scale=0.3, jobs=2
        )
        assert serial is not parallel
        assert serial.time_s == parallel.time_s
        assert serial.dc_energy_j == parallel.dc_energy_j


class TestComparison:
    def test_metrics_signs(self, fast_workload):
        cmp_ = compare(fast_workload, standard_configs(), seeds=(1,), scale=0.5)
        eu = cmp_["me_eufs"]
        assert eu.energy_saving > 0
        assert eu.time_penalty >= 0
        assert eu.power_saving > 0

    def test_reference_injected_when_missing(self, fast_workload):
        cmp_ = compare(
            fast_workload, {"me": EarConfig(use_explicit_ufs=False)}, seeds=(1,), scale=0.3
        )
        assert "me" in cmp_
        assert cmp_["me"].reference.config_name == "none"

    def test_efficiency_ratio(self, fast_workload):
        cmp_ = compare(fast_workload, standard_configs(), seeds=(1,), scale=0.5)
        eu = cmp_["me_eufs"]
        if eu.time_penalty > 0:
            assert eu.efficiency_ratio == pytest.approx(
                eu.energy_saving / eu.time_penalty
            )

    def test_standard_configs_shape(self):
        cfgs = standard_configs(cpu_policy_th=0.03)
        assert cfgs["none"] is None
        assert cfgs["me"].use_explicit_ufs is False
        assert cfgs["me"].cpu_policy_th == 0.03
        assert cfgs["me_eufs"].use_explicit_ufs is True

    def test_regions_config_is_opt_in(self):
        # default off: the paper tables keep their exact config set.
        assert "me_eufs_regions" not in standard_configs()
        cfgs = standard_configs(regions=True, unc_policy_th=0.04)
        regions = cfgs["me_eufs_regions"]
        assert regions.policy == "min_energy_regions"
        assert regions.unc_policy_th == 0.04
        # rides the same thresholds as the global eUFS config.
        assert regions.cpu_policy_th == cfgs["me_eufs"].cpu_policy_th
