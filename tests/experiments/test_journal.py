"""Campaign journal: crash-safe JSONL WAL + resume semantics."""

import json

import pytest

from repro.experiments.journal import (
    CampaignJournal,
    JournalState,
    campaign_id,
)
from repro.experiments.parallel import ExperimentPool, RunCache, RunRequest
from tests.conftest import make_fast_workload


@pytest.fixture()
def workload():
    return make_fast_workload(n_iterations=60)


def _request(workload, **kwargs):
    defaults = dict(ear_config=None, seed=1, scale=0.3)
    defaults.update(kwargs)
    return RunRequest(workload=workload, **defaults)


class TestCampaignId:
    def test_deterministic(self):
        assert campaign_id("learn", "SD530", ["k1", "k2"]) == campaign_id(
            "learn", "SD530", ["k1", "k2"]
        )

    def test_sensitive_to_every_part(self):
        base = campaign_id("learn", "SD530", ["k1"])
        assert campaign_id("cluster", "SD530", ["k1"]) != base
        assert campaign_id("learn", "SD650", ["k1"]) != base
        assert campaign_id("learn", "SD530", ["k2"]) != base

    def test_shape(self):
        cid = campaign_id("x")
        assert len(cid) == 16
        assert int(cid, 16) >= 0  # hex


class TestJournalRoundTrip:
    def test_records_replay(self, tmp_path):
        with CampaignJournal.for_campaign(
            "abc123", directory=tmp_path, meta={"kind": "learn"}
        ) as journal:
            journal.submitted("k1", workload="STREAM", seed=1)
            journal.submitted("k2", workload="STREAM", seed=2)
            journal.completed("k1")
            journal.failed("k2", error="ValueError('boom')", attempts=3)
            journal.finish(n_runs=2)

        state = CampaignJournal(tmp_path / "abc123.jsonl").replay()
        assert state.header == {"campaign": "abc123", "kind": "learn"}
        assert state.submitted == {"k1", "k2"}
        assert state.completed == {"k1"}
        assert state.failed == {"k2": "ValueError('boom')"}
        assert state.finished
        assert state.corrupt_lines == 0

    def test_appends_are_idempotent_per_key(self, tmp_path):
        with CampaignJournal.for_campaign("c", directory=tmp_path) as journal:
            for _ in range(3):
                journal.submitted("k1")
                journal.completed("k1")
        lines = (tmp_path / "c.jsonl").read_text().strip().split("\n")
        # header + one submitted + one completed
        assert len(lines) == 3

    def test_fresh_open_truncates_previous_campaign(self, tmp_path):
        with CampaignJournal.for_campaign("c", directory=tmp_path) as journal:
            journal.completed("old")
        with CampaignJournal.for_campaign("c", directory=tmp_path) as journal:
            journal.completed("new")
        state = CampaignJournal(tmp_path / "c.jsonl").replay()
        assert state.completed == {"new"}

    def test_resume_extends_previous_campaign(self, tmp_path):
        with CampaignJournal.for_campaign("c", directory=tmp_path) as journal:
            journal.completed("k1")
        with CampaignJournal.for_campaign(
            "c", directory=tmp_path, resume=True
        ) as journal:
            journal.completed("k1")  # replayed: no duplicate record
            journal.completed("k2")
        state = CampaignJournal(tmp_path / "c.jsonl").replay()
        assert state.completed == {"k1", "k2"}
        lines = (tmp_path / "c.jsonl").read_text().strip().split("\n")
        assert sum('"record": "completed"' in ln for ln in lines) == 2


class TestTornTail:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal.for_campaign("c", directory=tmp_path) as journal:
            journal.completed("k1")
            journal.completed("k2")
        # simulate a crash mid-append: a torn, non-JSON final line
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"record": "completed", "key": "k3", "cach')
        state = CampaignJournal(path).replay()
        assert state.completed == {"k1", "k2"}
        assert state.corrupt_lines == 1

    def test_garbage_mid_file_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "c.jsonl"
        records = [
            json.dumps({"record": "completed", "key": "k1"}),
            "not json at all",
            json.dumps(["a", "list"]),
            json.dumps({"record": "completed", "key": "k2"}),
        ]
        path.write_text("\n".join(records) + "\n")
        state = CampaignJournal(path).replay()
        assert state.completed == {"k1", "k2"}
        assert state.corrupt_lines == 2

    def test_missing_file_replays_empty(self, tmp_path):
        state = CampaignJournal(tmp_path / "nope.jsonl").replay()
        assert state.total == 0
        assert not state.finished


class TestJournalState:
    def test_coverage_and_describe(self):
        state = JournalState(
            submitted={"a", "b", "c", "d"},
            completed={"a", "b", "c"},
            failed={"d": "boom"},
        )
        assert state.total == 4
        assert state.coverage() == pytest.approx(0.75)
        assert state.describe() == "3/4 completed, 1 quarantined"

    def test_empty_state(self):
        state = JournalState()
        assert state.coverage() == 0.0


class TestPoolIntegration:
    def test_pool_journals_submissions_and_completions(self, workload, tmp_path):
        requests = [_request(workload, seed=s) for s in (1, 2)]
        journal = CampaignJournal.for_campaign("pool", directory=tmp_path)
        pool = ExperimentPool(jobs=1, cache=RunCache(), journal=journal)
        pool.run_many(requests)
        journal.close()

        state = journal.replay()
        keys = {r.key() for r in requests}
        assert state.submitted == keys
        assert state.completed == keys
        assert not state.failed

    def test_cache_hits_are_journaled_as_cached(self, workload, tmp_path):
        req = _request(workload)
        journal = CampaignJournal.for_campaign("pool", directory=tmp_path)
        pool = ExperimentPool(jobs=1, cache=RunCache(), journal=journal)
        pool.run_many([req])  # miss: simulated
        pool.run_many([req])  # hit: would journal cached=True if not replayed
        journal.close()
        lines = journal.path.read_text().strip().split("\n")
        completed = [json.loads(ln) for ln in lines if "completed" in ln]
        assert len(completed) == 1  # idempotent: one completion per key

    def test_resume_serves_completed_work_from_cache(self, workload, tmp_path):
        """Acceptance: resumed campaigns re-simulate nothing that
        completed before the interruption — 100% served from cache."""
        requests = [_request(workload, seed=s) for s in (1, 2, 3)]

        # "interrupted" first attempt: completes all three, then dies
        # before the trailer (no finish()).
        journal = CampaignJournal.for_campaign("c", directory=tmp_path)
        first = ExperimentPool(
            jobs=1, cache=RunCache(tmp_path / "cache"), journal=journal
        )
        first.run_many(requests)
        journal.close()
        assert first.stats.simulations == 3

        # resume: fresh process, same journal + disk cache
        resumed = CampaignJournal.for_campaign("c", directory=tmp_path, resume=True)
        state = resumed.replay()
        assert state.coverage() == 1.0
        assert not state.finished
        second = ExperimentPool(
            jobs=1, cache=RunCache(tmp_path / "cache"), journal=resumed
        )
        second.run_many(requests)
        resumed.finish()
        resumed.close()
        assert second.stats.simulations == 0  # >= 90% bar: all from cache
        assert second.cache.stats.disk_hits == 3
        assert resumed.replay().finished
