"""Resilient execution tier: retries, timeouts, crashes, quarantine.

The chaos tests (marked ``chaos``) sabotage real worker processes via
the ``REPRO_TEST_KILL_WORKER`` / ``REPRO_TEST_HANG_WORKER`` sentinel
hooks and assert the pool's acceptance bar: a batch that loses a worker
(or wedges one) still returns results bit-identical to the serial
execution.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import ExperimentPool, RunCache, RunRequest
from repro.experiments.resilient import (
    DEFAULT_RETRY_POLICY,
    AttemptRecord,
    FailedRun,
    RetryPolicy,
)
from tests.conftest import make_fast_workload


@pytest.fixture()
def workload():
    return make_fast_workload(n_iterations=60)


def _request(workload, **kwargs):
    defaults = dict(ear_config=None, seed=1, scale=0.3)
    defaults.update(kwargs)
    return RunRequest(workload=workload, **defaults)


class PoisonRequest(RunRequest):
    """A request whose execution always raises (module-level: picklable)."""

    def execute(self):
        raise ValueError("poison job")


def _poison(workload, **kwargs):
    defaults = dict(ear_config=None, seed=99, scale=0.3)
    defaults.update(kwargs)
    return PoisonRequest(workload=workload, **defaults)


#: retries without wall-clock delay, for fast deterministic tests.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)


class TestRetryPolicy:
    def test_defaults_are_conservative(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.timeout_s is None
        assert not DEFAULT_RETRY_POLICY.retry_task_errors

    def test_validation(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ExperimentError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.backoff_s("k1", 1) == policy.backoff_s("k1", 1)
        assert policy.backoff_s("k1", 1) != policy.backoff_s("k2", 1)
        # a different policy seed decorrelates the schedule
        assert policy.backoff_s("k1", 1) != RetryPolicy(seed=7).backoff_s("k1", 1)

    def test_backoff_is_exponential_and_bounded(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=1.0, jitter=0.25
        )
        for attempt in (1, 2, 3, 10):
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.backoff_s("key", attempt)
            assert base * 0.75 <= delay <= base * 1.25

    def test_backoff_without_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.0)
        assert policy.backoff_s("key", 1) == pytest.approx(0.1)
        assert policy.backoff_s("key", 2) == pytest.approx(0.2)

    def test_attempt_counting_starts_at_one(self):
        with pytest.raises(ExperimentError):
            RetryPolicy().backoff_s("key", 0)

    def test_task_errors_not_retried_by_default(self):
        assert RetryPolicy().attempts_for("task_error") == 1
        assert RetryPolicy(retry_task_errors=True).attempts_for("task_error") == 3
        assert RetryPolicy().attempts_for("worker_crash") == 3
        assert RetryPolicy().attempts_for("timeout") == 3


class TestFailedRun:
    def test_accessors(self):
        failed = FailedRun(
            key="k",
            workload="BT-MZ.C",
            seed=3,
            attempts=(
                AttemptRecord(1, "worker_crash", "SIGKILL", 0.05),
                AttemptRecord(2, "timeout"),
            ),
        )
        assert not failed.ok
        assert failed.error_kind == "timeout"
        assert failed.n_attempts == 2
        assert "BT-MZ.C seed 3" in failed.describe()

    def test_attempt_record_round_trips_to_json(self):
        rec = AttemptRecord(2, "task_error", "ValueError('x')", 0.1)
        assert rec.to_dict() == {
            "attempt": 2,
            "kind": "task_error",
            "error": "ValueError('x')",
            "backoff_s": 0.1,
        }


class TestQuarantine:
    def test_serial_poison_job_returns_failed_run(self, workload):
        pool = ExperimentPool(jobs=1, cache=RunCache(), retry=FAST_RETRY)
        good = _request(workload)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = pool.run_many([good, _poison(workload)])
        assert results[0].time_s > 0  # the good run is unaffected
        assert isinstance(results[1], FailedRun)
        assert results[1].error_kind == "task_error"
        assert results[1].n_attempts == 1  # deterministic errors: no retry
        assert "poison job" in results[1].error
        assert pool.stats.quarantined == 1
        assert pool.stats.retries == 0

    def test_serial_task_errors_retry_when_asked(self, workload):
        policy = RetryPolicy(
            max_attempts=3, retry_task_errors=True, backoff_base_s=0.0, jitter=0.0
        )
        pool = ExperimentPool(jobs=1, cache=RunCache(), retry=policy)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            (failed,) = pool.run_many([_poison(workload)])
        assert failed.n_attempts == 3
        assert [a.attempt for a in failed.attempts] == [1, 2, 3]
        assert pool.stats.retries == 2

    def test_parallel_poison_job_spares_the_batch(self, workload):
        pool = ExperimentPool(jobs=2, cache=RunCache(), retry=FAST_RETRY)
        requests = [
            _request(workload, seed=1),
            _poison(workload),
            _request(workload, seed=2),
        ]
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = pool.run_many(requests)
        assert results[0].seed == 1 and results[2].seed == 2
        assert isinstance(results[1], FailedRun)
        assert results[1].error_kind == "task_error"
        assert pool.stats.quarantined == 1

    def test_failed_runs_are_never_cached(self, workload):
        cache = RunCache()
        pool = ExperimentPool(jobs=1, cache=cache, retry=FAST_RETRY)
        poison = _poison(workload)
        with pytest.warns(RuntimeWarning):
            pool.run_many([poison])
        assert cache.get(poison.key()) is None


class TestDegradedAveraging:
    def _flaky(self, monkeypatch, bad_seed=2):
        real = RunRequest.execute

        def execute(self):
            if self.seed == bad_seed:
                raise ValueError(f"seed {bad_seed} poisoned")
            return real(self)

        monkeypatch.setattr(RunRequest, "execute", execute)

    def test_failed_seed_excluded_with_coverage(self, workload, monkeypatch):
        self._flaky(monkeypatch)
        pool = ExperimentPool(jobs=1, cache=RunCache(), retry=FAST_RETRY)
        with pytest.warns(RuntimeWarning, match="averaging over 2/3 seeds"):
            avg = pool.run_averaged(
                workload, None, config_name="x", seeds=(1, 2, 3), scale=0.3
            )
        assert avg.n_failed == 1
        assert avg.n_runs == 2
        assert {r.seed for r in avg.runs} == {1, 3}

    def test_all_seeds_failed_raises(self, workload, monkeypatch):
        self._flaky(monkeypatch)
        pool = ExperimentPool(jobs=1, cache=RunCache(), retry=FAST_RETRY)
        with pytest.raises(ExperimentError, match="all 1 seeded runs"), pytest.warns(
            RuntimeWarning
        ):
            pool.run_averaged(workload, None, config_name="x", seeds=(2,), scale=0.3)

    def test_degraded_average_is_not_memoised(self, workload, monkeypatch):
        self._flaky(monkeypatch)
        pool = ExperimentPool(jobs=1, cache=RunCache(), retry=FAST_RETRY)
        kw = dict(config_name="x", seeds=(1, 2), scale=0.3)
        with pytest.warns(RuntimeWarning):
            a = pool.run_averaged(workload, None, **kw)
        with pytest.warns(RuntimeWarning):
            b = pool.run_averaged(workload, None, **kw)
        assert a is not b  # the gap must not be pinned


class TestCacheWriteFailures:
    def test_counted_and_warned_once(self, workload, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)

        def boom(key, result):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_store_disk", boom)
        pool = ExperimentPool(jobs=1, cache=cache)
        with pytest.warns(RuntimeWarning, match="disk write"):
            pool.run_many([_request(workload, seed=s) for s in (1, 2)])
        assert cache.stats.write_failures == 2
        assert pool.stats.cache_write_failures == 2
        # served from the memory layer regardless
        assert pool.run_many([_request(workload, seed=1)])[0].time_s > 0
        assert pool.stats.simulations == 2

    def test_second_failure_does_not_rewarn(self, workload, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)
        monkeypatch.setattr(
            cache, "_store_disk", lambda key, result: (_ for _ in ()).throw(OSError())
        )
        pool = ExperimentPool(jobs=1, cache=cache)
        with pytest.warns(RuntimeWarning) as record:
            pool.run_many([_request(workload, seed=s) for s in (1, 2, 3)])
        assert (
            sum("disk write" in str(w.message) for w in record) == 1
        )


@pytest.mark.chaos
class TestChaos:
    """Real worker-process sabotage via the environment sentinels."""

    def _serial_baseline(self, requests):
        return ExperimentPool(jobs=1, cache=RunCache()).run_many(requests)

    def test_killed_worker_is_bit_identical_to_serial(
        self, workload, tmp_path, monkeypatch
    ):
        requests = [_request(workload, seed=s) for s in (1, 2, 3, 4)]
        serial = self._serial_baseline(requests)

        monkeypatch.setenv("REPRO_TEST_KILL_WORKER", str(tmp_path / "kill.sentinel"))
        pool = ExperimentPool(jobs=2, cache=RunCache(), retry=FAST_RETRY)
        survived = pool.run_many(requests)

        assert (tmp_path / "kill.sentinel").exists()  # the sabotage fired
        assert pool.stats.worker_crashes >= 1
        assert pool.stats.retries >= 1
        for a, b in zip(serial, survived):
            assert not isinstance(b, FailedRun)
            assert a.time_s == b.time_s
            assert a.dc_energy_j == b.dc_energy_j
            assert a.nodes == b.nodes

    def test_hung_worker_times_out_and_recovers(
        self, workload, tmp_path, monkeypatch
    ):
        requests = [_request(workload, seed=s) for s in (1, 2, 3)]
        serial = self._serial_baseline(requests)

        monkeypatch.setenv("REPRO_TEST_HANG_WORKER", str(tmp_path / "hang.sentinel"))
        policy = RetryPolicy(
            max_attempts=3, timeout_s=2.0, backoff_base_s=0.0, jitter=0.0
        )
        pool = ExperimentPool(jobs=2, cache=RunCache(), retry=policy)
        survived = pool.run_many(requests)

        assert (tmp_path / "hang.sentinel").exists()
        assert pool.stats.timeouts >= 1
        for a, b in zip(serial, survived):
            assert not isinstance(b, FailedRun)
            assert a.time_s == b.time_s
            assert a.dc_energy_j == b.dc_energy_j


@pytest.mark.chaos
class TestCliInterrupt:
    def test_sigint_exits_130_with_resume_hint(self, tmp_path):
        """Ctrl-C mid-campaign: exit 130, no traceback, journal intact."""
        src = Path(__file__).resolve().parents[2] / "src"
        hang = tmp_path / "hang.sentinel"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}".rstrip(":")
        env["REPRO_TEST_HANG_WORKER"] = str(hang)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "-j",
                "2",
                "--no-cache",
                "learn",
                "--grid",
                "coarse",
                "--kernels",
                "STREAM",
                "--out",
                "none",
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not hang.exists():  # a worker is now provably wedged
                assert time.monotonic() < deadline, "worker never started"
                assert proc.poll() is None, "CLI exited before the interrupt"
                time.sleep(0.1)
            time.sleep(0.5)
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted" in stderr
        assert "--resume" in stderr
        assert "Traceback" not in stderr
        journals = list((tmp_path / "results" / ".journal").glob("*.jsonl"))
        assert len(journals) == 1
