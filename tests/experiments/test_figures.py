"""Figure builders at reduced scale: series structure and ordering."""

import pytest

from repro.experiments import figures
from repro.experiments.runner import clear_run_cache

SCALE = 0.5
SEEDS = (1,)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


class TestFigure3:
    def test_threshold_monotonicity(self):
        """Deeper unc_policy_th -> lower uncore -> more power saving."""
        series = {s["config"]: s for s in figures.figure3_bqcd(seeds=SEEDS, scale=SCALE)}
        assert (
            series["me_eufs_3"]["avg_imc_ghz"]
            <= series["me_eufs_1"]["avg_imc_ghz"] + 0.01
        )
        assert (
            series["me_eufs_3"]["power_saving"]
            >= series["me_eufs_1"]["power_saving"] - 0.005
        )

    def test_me_alone_saves_nothing_for_bqcd(self):
        series = {s["config"]: s for s in figures.figure3_bqcd(seeds=SEEDS, scale=SCALE)}
        assert abs(series["me"]["energy_saving"]) < 0.01


class TestFigure4:
    def test_zero_threshold_still_saves_power(self):
        """unc_policy_th = 0 %: power savings at ~no iteration slowdown."""
        series = {s["config"]: s for s in figures.figure4_btmz(seeds=SEEDS, scale=SCALE)}
        zero = series["me_eufs_0"]
        assert zero["power_saving"] > 0.005
        assert zero["time_penalty"] < 0.02

    def test_depth_grows_with_threshold(self):
        series = {s["config"]: s for s in figures.figure4_btmz(seeds=SEEDS, scale=SCALE)}
        assert (
            series["me_eufs_2"]["avg_imc_ghz"] <= series["me_eufs_0"]["avg_imc_ghz"] + 0.01
        )


class TestFigure5:
    def test_both_explicit_variants_beat_me(self):
        data = figures.figure5_gromacs1(seeds=SEEDS, scale=SCALE)
        for series in data.values():
            by_cfg = {s["config"]: s for s in series}
            for variant in ("me_ngu", "me_eufs"):
                assert (
                    by_cfg[variant]["energy_saving"]
                    >= by_cfg["me"]["energy_saving"] - 0.01
                )

    def test_guided_and_not_guided_converge_similarly(self):
        data = figures.figure5_gromacs1(seeds=SEEDS, scale=SCALE)
        by_cfg = {s["config"]: s for s in data["cpu_th_5"]}
        assert by_cfg["me_eufs"]["avg_imc_ghz"] == pytest.approx(
            by_cfg["me_ngu"]["avg_imc_ghz"], abs=0.25
        )


class TestFigure6:
    def test_hardware_already_sinks_uncore(self):
        series = {s["config"]: s for s in figures.figure6_gromacs2(seeds=SEEDS, scale=SCALE)}
        assert series["me"]["avg_imc_ghz"] < 1.8
        assert series["me"]["power_saving"] > 0.05


class TestFigure7:
    def test_memory_bound_pair(self):
        data = figures.figure7_hpcg_pop(seeds=SEEDS, scale=SCALE)
        assert set(data) == {"HPCG", "POP"}
        for series in data.values():
            by_cfg = {s["config"]: s for s in series}
            assert by_cfg["me"]["energy_saving"] > 0
            assert (
                by_cfg["me_eufs"]["energy_saving"]
                >= by_cfg["me"]["energy_saving"] - 0.01
            )


class TestFigure8:
    def test_threshold_dial(self):
        data = figures.figure8_dumses_afid(seeds=SEEDS, scale=SCALE)
        for name, series in data.items():
            by_cfg = {s["config"]: s for s in series}
            # looser DVFS threshold -> lower CPU frequency
            assert (
                by_cfg["me_5"]["avg_cpu_ghz"] <= by_cfg["me_3"]["avg_cpu_ghz"] + 0.01
            ), name
