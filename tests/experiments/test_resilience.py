"""The resilience experiment and the fault plan's place in the cache key."""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.parallel import ExperimentPool, RunCache, RunRequest
from repro.experiments.resilience import reference_fault_plan, resilience_sweep
from repro.sim.faults import FaultPlan
from tests.conftest import make_fast_workload

PLAN = FaultPlan(seed=1, counter_corruption_rate=0.5, msr_failure_rate=0.5)


def request(plan=None, **overrides):
    kwargs = dict(
        workload=make_fast_workload(),
        ear_config=EarConfig(),
        seed=1,
        fault_plan=plan,
    )
    kwargs.update(overrides)
    return RunRequest(**kwargs)


class TestCacheKey:
    def test_fault_plan_changes_the_key(self):
        assert request().key() != request(PLAN).key()

    def test_different_plans_different_keys(self):
        other = FaultPlan(seed=2, counter_corruption_rate=0.5, msr_failure_rate=0.5)
        assert request(PLAN).key() != request(other).key()
        assert request(PLAN).key() != request(PLAN.scaled(2.0)).key()

    def test_disabled_plan_shares_the_clean_key(self):
        # an all-zero plan is bit-identical to no plan, so it may (and
        # should) reuse the clean run's cache entry
        assert request(FaultPlan()).key() == request().key()

    def test_cached_clean_run_never_serves_a_faulted_request(self):
        pool = ExperimentPool(jobs=1, cache=RunCache())
        (clean,) = pool.run_many([request()])
        assert pool.stats.simulations == 1
        assert clean.health.clean
        (faulted,) = pool.run_many([request(PLAN)])
        assert pool.stats.simulations == 2, "faulted request hit the clean cache"
        assert faulted.health.faults_injected > 0
        assert faulted != clean
        # and the converse: a clean request after the faulted one is a hit
        (clean_again,) = pool.run_many([request()])
        assert pool.stats.simulations == 2
        assert clean_again == clean

    def test_faulted_results_survive_the_disk_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        req = request(PLAN)
        pool = ExperimentPool(jobs=1, cache=cache)
        (first,) = pool.run_many([req])
        fresh = ExperimentPool(jobs=1, cache=RunCache(tmp_path))
        (reloaded,) = fresh.run_many([req])
        assert fresh.stats.simulations == 0
        assert reloaded == first
        assert reloaded.health == first.health


class TestReferencePlan:
    def test_reference_plan_covers_every_channel(self):
        plan = reference_fault_plan()
        assert plan.enabled
        assert plan.meter_stall_rate > 0
        assert plan.meter_dropout_rate > 0
        assert plan.counter_corruption_rate > 0
        assert plan.msr_failure_rate > 0
        assert plan.rapl_wrap_rate > 0
        assert plan.throttle_rate > 0


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return resilience_sweep(
            make_fast_workload(),
            EarConfig(),
            intensities=(0.0, 2.0),
            seeds=(1,),
        )

    def test_sweep_shape(self, sweep):
        assert sweep.config_name == "me_eufs"
        assert [p.intensity for p in sweep.points] == [0.0, 2.0]
        assert all(p.n_runs == 1 for p in sweep.points)

    def test_intensity_zero_is_the_clean_comparison(self, sweep):
        clean = sweep.points[0]
        assert clean.health.clean
        # the paper's standard me_eufs-vs-none comparison on this
        # workload: modest penalty, positive energy saving
        assert -0.05 < clean.time_penalty < 0.15
        assert clean.energy_saving > 0.0

    def test_faulted_point_reports_health(self, sweep):
        faulted = sweep.points[1]
        assert faulted.health.faults_injected > 0
        assert not faulted.health.clean
