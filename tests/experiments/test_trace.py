"""Trace rendering and descent summaries."""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.trace import (
    descent_summary,
    render_timeline,
    settled_imc_max_ghz,
)
from repro.sim.engine import run_workload
from tests.conftest import make_fast_workload


@pytest.fixture(scope="module")
def traced_run():
    wl = make_fast_workload(n_iterations=200)
    return run_workload(wl, ear_config=EarConfig(), seed=1, record_trace=True)


class TestTimeline:
    def test_renders_both_domains(self, traced_run):
        text = render_timeline(traced_run)
        assert "cpu [" in text
        assert "imc [" in text
        assert traced_run.workload in text

    def test_descent_visible_in_imc_row(self, traced_run):
        text = render_timeline(traced_run)
        imc_line = [l for l in text.splitlines() if "imc [" in l][0]
        # the sparkline must not be flat: at least two glyphs appear
        spark = imc_line.split("]")[-1].strip()
        assert len(set(spark)) >= 2

    def test_respects_width(self, traced_run):
        text = render_timeline(traced_run, width=20)
        imc_line = [l for l in text.splitlines() if "imc [" in l][0]
        spark = imc_line.split("]")[-1].strip()
        assert len(spark) <= 20

    def test_untraced_run_rejected(self):
        wl = make_fast_workload(n_iterations=30)
        result = run_workload(wl, ear_config=EarConfig(), seed=1)
        with pytest.raises(ValueError):
            render_timeline(result)


class TestDescentSummary:
    def test_one_row_per_decision(self, traced_run):
        rows = descent_summary(traced_run)
        assert len(rows) == len(traced_run.decisions)

    def test_rows_pair_decision_with_signature(self, traced_run):
        rows = descent_summary(traced_run)
        first = rows[0]
        assert first["earl_state"] == "NODE_POLICY"
        assert first["cpi"] > 0
        assert first["dc_power_w"] > 0
        assert first["imc_max_ghz"] is not None

    def test_imc_ceiling_decreases_through_descent(self, traced_run):
        ceilings = [
            r["imc_max_ghz"]
            for r in descent_summary(traced_run)
            if r["imc_max_ghz"] is not None and r["policy_state"] == "CONTINUE"
        ]
        assert ceilings == sorted(ceilings, reverse=True)


class TestSettledCeiling:
    def test_settled_value_matches_last_ready(self, traced_run):
        settled = settled_imc_max_ghz(traced_run)
        assert settled is not None
        assert 1.2 <= settled <= 2.4

    def test_none_without_decisions(self):
        wl = make_fast_workload(n_iterations=30)
        result = run_workload(wl, seed=1)  # no policy
        assert settled_imc_max_ghz(result) is None


@pytest.fixture(scope="module")
def telemetry_run():
    """A two-node run carrying per-node telemetry (and a node-0 trace)."""
    wl = make_fast_workload(n_iterations=200, n_nodes=2)
    return run_workload(
        wl, ear_config=EarConfig(), seed=1, record_trace=True, telemetry=True
    )


class TestNodeParameter:
    def test_header_names_the_node(self, traced_run):
        assert "node 0" in render_timeline(traced_run)

    def test_out_of_range_node_rejected(self, traced_run):
        with pytest.raises(ValueError, match="out of range"):
            render_timeline(traced_run, node=5)
        with pytest.raises(ValueError, match="out of range"):
            descent_summary(traced_run, node=-1)

    def test_nonzero_node_requires_telemetry(self, telemetry_run):
        # telemetry_run has it; a plain traced run does not
        wl = make_fast_workload(n_iterations=30, n_nodes=2)
        plain = run_workload(wl, ear_config=EarConfig(), seed=1, record_trace=True)
        with pytest.raises(ValueError):
            render_timeline(plain, node=1)
        with pytest.raises(ValueError):
            descent_summary(plain, node=1)

    def test_nonzero_node_renders_from_telemetry(self, telemetry_run):
        text = render_timeline(telemetry_run, node=1)
        assert "node 1" in text
        assert "cpu [" in text and "imc [" in text

    def test_descent_rows_label_their_node(self, telemetry_run):
        rows0 = descent_summary(telemetry_run, node=0)
        rows1 = descent_summary(telemetry_run, node=1)
        assert rows0 and all(r["node"] == 0 for r in rows0)
        assert rows1 and all(r["node"] == 1 for r in rows1)
        # telemetry-derived rows carry the same shape as decision rows
        assert set(rows0[0]) == set(rows1[0])
        assert rows1[0]["cpi"] > 0


class TestAxisDerivation:
    def test_axis_comes_from_hardware_ranges(self, traced_run):
        # SD530: CPU P-states span 1.0-2.6 GHz, uncore 1.2-2.4 GHz
        assert traced_run.cpu_freq_range_ghz == (1.0, 2.6)
        assert traced_run.imc_freq_range_ghz == (1.2, 2.4)
        text = render_timeline(traced_run)
        assert "axis 1.0-2.6" in text
        assert "axis 1.2-2.4" in text

    def test_axis_falls_back_to_data_extent(self, traced_run):
        import dataclasses

        legacy = dataclasses.replace(
            traced_run, cpu_freq_range_ghz=None, imc_freq_range_ghz=None
        )
        text = render_timeline(legacy)
        assert "axis" in text  # renders, axis from the samples themselves
