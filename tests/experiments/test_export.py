"""CSV export of experiment artefacts."""

import csv
import io

from repro.experiments.export import rows_to_csv, series_to_csv, write_csv


class TestRowsToCsv:
    def test_simple_rows(self):
        text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_nested_rows_flattened(self):
        """Table builders emit nested config dicts; columns dot-join."""
        text = rows_to_csv(
            [{"kernel": "BT", "me": {"time_penalty": 0.0, "energy_saving": 0.0}}]
        )
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["me.time_penalty"] == "0.0"

    def test_union_of_columns(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        header = text.splitlines()[0]
        assert header == "a,b"

    def test_heterogeneous_rows_keep_late_columns(self):
        """Regression pin: the header must be the union of all rows'
        keys, not the first row's — resilience exports carry health
        columns only on faulted rows, and a first-row-only header
        would silently drop them."""
        rows = [
            {"intensity": 0.0, "energy_saving": 0.09},
            {"intensity": 1.0, "energy_saving": 0.05, "health": {"faults": 12}},
        ]
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert text.splitlines()[0] == "intensity,energy_saving,health.faults"
        assert parsed[0]["health.faults"] == ""  # missing cell, not a crash
        assert parsed[1]["health.faults"] == "12"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_real_table_exports(self):
        from repro.experiments.tables import table2_kernel_characteristics

        rows = table2_kernel_characteristics(seeds=(1,), scale=0.2)
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 5
        assert "dc_power_w" in parsed[0]


class TestSeriesToCsv:
    def test_series_column_prepended(self):
        text = series_to_csv({"HPCG": [{"config": "me", "x": 1}]})
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["series"] == "HPCG"
        assert rows[0]["config"] == "me"


class TestWriteCsv:
    def test_writes_file(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", [{"a": 1}])
        assert path.read_text().startswith("a")
