"""Consistency of the transcribed paper data with the workload catalogue."""

from repro.experiments import paper_data
from repro.workloads.applications import mpi_applications
from repro.workloads.kernels import single_node_kernels


class TestCrossReferences:
    def test_every_kernel_has_table2_3_4_rows(self):
        for wl in single_node_kernels():
            assert wl.name in paper_data.TABLE2
            assert wl.name in paper_data.TABLE3
            assert wl.name in paper_data.TABLE4

    def test_every_application_has_table5_6_rows(self):
        for wl in mpi_applications():
            assert wl.name in paper_data.TABLE5
            assert wl.name in paper_data.TABLE6

    def test_table7_apps_subset_of_table5(self):
        assert set(paper_data.TABLE7) <= set(paper_data.TABLE5)

    def test_table7_omits_gromacs_i(self):
        """The paper's Table VII lists seven applications, without
        GROMACS(I)."""
        assert "GROMACS(I)" not in paper_data.TABLE7
        assert len(paper_data.TABLE7) == 7


class TestPlausibility:
    """Guard against transcription typos: the published numbers must
    satisfy the paper's own claims."""

    def test_pck_savings_exceed_dc_savings_in_table7(self):
        for app, row in paper_data.TABLE7.items():
            assert row["pck_saving"] > row["dc_saving"], app

    def test_hw_uncore_is_conservative_in_table4_and_6(self):
        for table in (paper_data.TABLE4, paper_data.TABLE6):
            for name, row in table.items():
                if name == "DGEMM":
                    continue  # AVX512 power rebalancing is the exception
                assert row["none"]["imc"] >= 2.35, name

    def test_eufs_never_raises_uncore(self):
        for table in (paper_data.TABLE4, paper_data.TABLE6):
            for name, row in table.items():
                assert row["me_eufs"]["imc"] <= row["me"]["imc"] + 1e-9, name

    def test_memory_bound_class_cut_cpu_in_table6(self):
        for app in ("HPCG", "POP", "DUMSES", "AFiD"):
            assert paper_data.TABLE6[app]["me"]["cpu"] < 2.3

    def test_frequencies_within_skylake_ranges(self):
        for table in (paper_data.TABLE4, paper_data.TABLE6):
            for name, row in table.items():
                for cfg in ("none", "me", "me_eufs"):
                    assert 1.0 <= row[cfg]["cpu"] <= 2.6, (name, cfg)
                    assert 1.2 <= row[cfg]["imc"] <= 2.4, (name, cfg)

    def test_table1_matches_motivation_narrative(self):
        bt = paper_data.TABLE1["BT-MZ.C.mpi"]
        lu = paper_data.TABLE1["LU.D.mpi"]
        # "even having clearly different performance profiles, the
        # uncore frequency selected by the hardware has been the same"
        assert bt["imc_ghz"] == lu["imc_ghz"]
        assert lu["cpi"] > 2 * bt["cpi"]
