"""Table builders at reduced scale: structure + paper-shape checks.

Full-length, full-fidelity regeneration happens in benchmarks/; here we
check every builder produces the right rows and the headline directions
hold even at 0.5 scale.
"""

import pytest

from repro.experiments import paper_data, tables
from repro.experiments.runner import clear_run_cache

SCALE = 0.5
SEEDS = (1, 2)


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_run_cache()
    yield
    clear_run_cache()


class TestTable1:
    def test_rows_and_hardware_choice(self):
        rows = tables.table1_kernel_metrics(seeds=SEEDS, scale=SCALE)
        assert [r["kernel"] for r in rows] == ["BT-MZ.C.mpi", "LU.D.mpi"]
        for row in rows:
            # the paper's point: HW picks max uncore for BOTH kernels
            assert row["imc_ghz"] > 2.3

    def test_profiles_differ_but_uncore_does_not(self):
        rows = tables.table1_kernel_metrics(seeds=SEEDS, scale=SCALE)
        bt, lu = rows
        assert lu["cpi"] > 2 * bt["cpi"]
        assert lu["gbs"] > 5 * bt["gbs"]
        assert abs(lu["imc_ghz"] - bt["imc_ghz"]) < 0.1


class TestTable2:
    def test_characteristics_match_paper(self):
        rows = tables.table2_kernel_characteristics(seeds=SEEDS, scale=SCALE)
        for row in rows:
            expected = paper_data.TABLE2[row["kernel"]]
            assert row["cpi"] == pytest.approx(expected["cpi"], rel=0.1)
            assert row["gbs"] == pytest.approx(expected["gbs"], rel=0.15)
            assert row["dc_power_w"] == pytest.approx(
                expected["dc_power_w"], rel=0.08
            )


class TestTable3:
    def test_eufs_beats_me_for_every_kernel(self):
        rows = tables.table3_kernel_savings(seeds=SEEDS, scale=SCALE)
        for row in rows:
            assert (
                row["me_eufs"]["energy_saving"] >= row["me"]["energy_saving"] - 0.01
            ), row["kernel"]

    def test_time_penalties_bounded(self):
        rows = tables.table3_kernel_savings(seeds=SEEDS, scale=SCALE)
        for row in rows:
            assert row["me_eufs"]["time_penalty"] < 0.07, row["kernel"]


class TestTable4:
    def test_eufs_lowers_uncore_everywhere(self):
        rows = tables.table4_kernel_frequencies(seeds=SEEDS, scale=SCALE)
        for row in rows:
            assert row["me_eufs"]["imc"] < row["none"]["imc"] - 0.05, row["kernel"]

    def test_openmp_kernels_keep_nominal_cpu(self):
        rows = {r["kernel"]: r for r in tables.table4_kernel_frequencies(seeds=SEEDS, scale=SCALE)}
        for kernel in ("BT-MZ.C", "SP-MZ.C"):
            assert rows[kernel]["me_eufs"]["cpu"] > 2.25


class TestTable5:
    def test_characteristics_match_paper(self):
        rows = tables.table5_application_characteristics(seeds=SEEDS, scale=SCALE)
        for row in rows:
            expected = paper_data.TABLE5[row["application"]]
            assert row["cpi"] == pytest.approx(expected["cpi"], rel=0.1)
            assert row["dc_power_w"] == pytest.approx(
                expected["dc_power_w"], rel=0.08
            )


class TestTable6:
    def test_memory_bound_apps_lower_cpu(self):
        rows = {r["application"]: r for r in tables.table6_application_frequencies(seeds=SEEDS, scale=SCALE)}
        for app in ("HPCG", "POP", "DUMSES", "AFiD"):
            assert rows[app]["me"]["cpu"] < 2.3, app

    def test_cpu_bound_apps_keep_cpu(self):
        rows = {r["application"]: r for r in tables.table6_application_frequencies(seeds=SEEDS, scale=SCALE)}
        for app in ("BQCD", "BT-MZ"):
            assert rows[app]["me"]["cpu"] > 2.3, app

    def test_hw_uncore_conservative_under_no_policy(self):
        rows = tables.table6_application_frequencies(seeds=SEEDS, scale=SCALE)
        for row in rows:
            assert row["none"]["imc"] > 2.3, row["application"]


class TestTable7:
    def test_pck_savings_exceed_dc_savings(self):
        rows = tables.table7_dc_vs_pck(seeds=SEEDS, scale=SCALE)
        assert [r["application"] for r in rows] == list(paper_data.TABLE7)
        for row in rows:
            assert row["pck_saving"] > row["dc_saving"], row["application"]

    def test_gap_is_not_constant(self):
        """'the difference is not constant' — the paper's argument for
        measuring DC node power."""
        rows = tables.table7_dc_vs_pck(seeds=SEEDS, scale=SCALE)
        gaps = [r["pck_saving"] - r["dc_saving"] for r in rows]
        assert max(gaps) - min(gaps) > 0.002
