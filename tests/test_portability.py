"""Micro-architecture portability: the stack on a Broadwell node type.

The related work the paper compares with ([18] Gholkar et al., [19]
André et al.) runs on Broadwell (Xeon E5-2620 v4): a different P-state
range (2.1 GHz nominal), a wider uncore range (2.7 GHz max), a smaller
ring-bus uncore, and no AVX-512.  Everything — learning phase, models,
policies, explicit UFS — must work there unchanged.
"""

import pytest

from repro.ear.config import EarConfig
from repro.ear.models import train_coefficients
from repro.hw.node import BROADWELL_NODE, Node
from repro.sim.engine import run_workload
from repro.workloads.generator import synthetic_workload


def broadwell_workload(core_share, unc_share, mem_share, n_iterations=200):
    return synthetic_workload(
        name="bdw",
        node_config=BROADWELL_NODE,
        core_share=core_share,
        unc_share=unc_share,
        mem_share=mem_share,
        n_iterations=n_iterations,
    )


class TestNodeType:
    def test_pstate_range(self):
        ps = BROADWELL_NODE.pstates
        assert ps.nominal_ghz == pytest.approx(2.1)
        assert ps.min_ghz == pytest.approx(1.2)
        # no AVX-512: the licence clamp is a no-op
        assert ps.avx512_clamp(1) == 1

    def test_uncore_range(self):
        node = Node(BROADWELL_NODE)
        limits = node.sockets[0].msr.read_uncore_limits()
        assert limits.max_ghz == pytest.approx(2.7)
        assert limits.min_ghz == pytest.approx(1.2)
        assert node.uncore_freq_ghz == pytest.approx(2.7)

    def test_learning_phase_trains(self):
        table = train_coefficients(BROADWELL_NODE)
        n = len(BROADWELL_NODE.pstates)
        assert len(table) == n * (n - 1)


class TestPoliciesPort:
    def test_eufs_descends_for_cpu_bound(self):
        wl = broadwell_workload(0.9, 0.05, 0.03)
        base = run_workload(wl, seed=1)
        eu = run_workload(wl, ear_config=EarConfig(), seed=1)
        assert base.avg_imc_freq_ghz == pytest.approx(2.7)
        assert eu.avg_imc_freq_ghz < 2.5
        assert eu.dc_energy_j < base.dc_energy_j
        assert eu.time_s / base.time_s < 1.04

    def test_dvfs_dives_for_memory_bound(self):
        wl = broadwell_workload(0.12, 0.2, 0.6)
        eu = run_workload(wl, ear_config=EarConfig(), seed=1)
        assert eu.avg_cpu_freq_ghz < 2.0
        # frequencies stay inside this part's ranges
        assert eu.avg_cpu_freq_ghz >= 1.2 - 1e-9
        assert 1.2 - 1e-9 <= eu.avg_imc_freq_ghz <= 2.7 + 1e-9

    def test_powercap_ports(self):
        from repro.sim.engine import SimulationEngine

        wl = broadwell_workload(0.9, 0.05, 0.03, n_iterations=50)
        engine = SimulationEngine(wl, seed=1, noise_sigma=0.0)
        for node in engine.cluster:
            node.set_pkg_power_limit(45.0, privileged=True)
        r = engine.run()
        assert r.avg_pck_power_w / 2 <= 46.0
