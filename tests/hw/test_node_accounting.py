"""Regression tests for the hot-path accounting fixes.

Pins the two per-socket accounting bugs found while flattening the
engine loop (active-core rounding, idle-socket clock) and the bulk
:meth:`Node.advance_energy` / :meth:`Node.power_affine` contracts the
batched kernel is built on.
"""

from __future__ import annotations

import pytest

from repro.errors import HardwareError
from repro.hw.node import GPU_NODE, SD530, Node, OperatingPoint


def _op(n_active: int, **kwargs) -> OperatingPoint:
    defaults = dict(
        n_active_cores=n_active,
        activity=1.0,
        vpi=0.0,
        traffic_gbs=0.0,
        effective_core_ghz=2.4,
    )
    defaults.update(kwargs)
    return OperatingPoint(**defaults)


# -- satellite: active-core rounding ----------------------------------------


def test_active_cores_distribution_sums_and_balances():
    node = Node(SD530)
    n_sockets = len(node.sockets)
    for n in range(node.config.n_cores + 1):
        dist = node.active_cores_per_socket(n)
        assert sum(dist) == n
        assert max(dist) - min(dist) <= 1
        # remainder lands on the low-numbered sockets
        assert list(dist) == sorted(dist, reverse=True)
        assert len(dist) == n_sockets


def test_active_cores_distribution_rejects_out_of_range():
    node = Node(SD530)
    with pytest.raises(HardwareError):
        node.active_cores_per_socket(-1)
    with pytest.raises(HardwareError):
        node.active_cores_per_socket(node.config.n_cores + 1)


def test_single_active_core_power_exceeds_idle_power():
    """1 active core on 2 sockets used to round to 0 active per socket,
    zeroing the spinning host core's dynamic power (every GPU-offload
    profile).  One busy core must cost more than none."""
    node = Node(GPU_NODE)
    p_idle = node.power(_op(0))
    p_one = node.power(_op(1))
    assert p_one.dc_w > p_idle.dc_w
    # and the extra power sits on socket 0, where the core was placed
    assert p_one.pck_w[0] > p_idle.pck_w[0]
    assert p_one.pck_w[1] == pytest.approx(p_idle.pck_w[1])


def test_single_active_core_frequency_accounted_on_socket_zero():
    node = Node(SD530)
    node.advance(_op(1, effective_core_ghz=2.4), 10.0)
    # the busy core raises socket 0's core-hours average above socket 1's
    assert node.sockets[0].average_freq_ghz() > node.sockets[1].average_freq_ghz()


def test_odd_core_count_not_dropped():
    node = Node(SD530)
    n = node.config.n_cores - 1  # odd split across two sockets
    p_odd = node.power(_op(n))
    p_even = node.power(_op(n - 1))
    assert p_odd.dc_w > p_even.dc_w


# -- satellite: idle-socket clock -------------------------------------------


def test_idle_socket_power_invariant_to_programmed_target():
    """A fully idle socket sits at the idle clock; its power must not
    track whatever IA32_PERF_CTL target happens to be programmed."""
    node = Node(SD530)
    op = _op(1, effective_core_ghz=2.0)
    node.set_core_freq(2.6, privileged=True)
    hi = node.power(op).pck_w[1]
    node.set_core_freq(1.2, privileged=True)
    lo = node.power(op).pck_w[1]
    assert hi == lo


def test_idle_node_power_uses_idle_clock():
    node = Node(SD530)
    node.set_core_freq(2.6, privileged=True)
    p = node.power(_op(0))
    # all cores idle: package carries only base + idle cores + uncore
    params = node.config.power
    expected_cores_w = node.sockets[0].n_cores * params.core_idle_w
    for s, pck in zip(node.sockets, p.pck_w):
        vu = params.vuncore.volts(s.uncore.freq_ghz)
        uncore_w = params.uncore_dyn_w * s.uncore.freq_ghz * vu * vu
        assert pck == pytest.approx(params.pck_base_w + expected_cores_w + uncore_w)


# -- batched-kernel contracts -----------------------------------------------


def test_power_affine_decomposes_power_exactly():
    node = Node(SD530)
    for traffic in (0.0, 12.5, 87.3):
        op = _op(node.config.n_cores, traffic_gbs=traffic, vpi=0.3, activity=0.8)
        p = node.power(op)
        p0, pck_slopes, dram_slope = node.power_affine(op)
        for w, w0, slope in zip(p.pck_w, p0.pck_w, pck_slopes):
            assert w == pytest.approx(w0 + slope * traffic, rel=1e-12)
        assert p.dram_w == pytest.approx(p0.dram_w + dram_slope * traffic, rel=1e-12)
        assert p.dc_w == pytest.approx(
            p0.dc_w + (sum(pck_slopes) + dram_slope) * traffic, rel=1e-12
        )


def test_advance_energy_matches_advance():
    """advance_energy(power * dt) must leave every sensor exactly where
    advance(op, dt) does — the committed kernel's equivalence basis."""
    op = _op(20, traffic_gbs=40.0, activity=0.9)
    dt = 3.7
    a, b = Node(SD530), Node(SD530)
    p = a.power(op)
    a.advance(op, dt)
    b.advance_energy(
        pck_j=[w * dt for w in p.pck_w],
        dram_j=p.dram_w * dt,
        dc_j=p.dc_w * dt,
        n_active_per_socket=b.active_cores_per_socket(op.n_active_cores),
        effective_ghz=op.effective_core_ghz,
        seconds=dt,
    )
    assert b.elapsed_s == a.elapsed_s
    assert b.pck_energy_j == a.pck_energy_j
    assert b.dc_meter.exact_joules == pytest.approx(a.dc_meter.exact_joules, rel=1e-12)
    for ca, cb in zip(a.rapl.pck, b.rapl.pck):
        assert cb.raw() == ca.raw()
    assert b.rapl.dram.raw() == a.rapl.dram.raw()
    assert b.average_cpu_freq_ghz() == a.average_cpu_freq_ghz()
    assert b.average_imc_freq_ghz() == a.average_imc_freq_ghz()


def test_advance_energy_zero_seconds_is_a_no_op():
    node = Node(SD530)
    node.advance_energy(
        pck_j=[1.0, 1.0],
        dram_j=1.0,
        dc_j=3.0,
        n_active_per_socket=(1, 0),
        effective_ghz=2.0,
        seconds=0.0,
    )
    assert node.elapsed_s == 0.0
    assert node.pck_energy_j == 0.0


def test_advance_energy_rejects_negative_time():
    node = Node(SD530)
    with pytest.raises(HardwareError):
        node.advance_energy(
            pck_j=[0.0, 0.0],
            dram_j=0.0,
            dc_j=0.0,
            n_active_per_socket=(0, 0),
            effective_ghz=2.0,
            seconds=-1.0,
        )
