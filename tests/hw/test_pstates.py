"""P-state tables and AVX-512 licence clamping."""

import pytest

from repro.errors import FrequencyError
from repro.hw.pstates import TURBO_PSTATE, XEON_6142M, XEON_6148, PState, PStateTable


class TestXeon6148Table:
    def test_turbo_is_pstate_zero(self):
        assert XEON_6148.freq_of(TURBO_PSTATE) == pytest.approx(2.6)

    def test_nominal_is_pstate_one(self):
        """EAR numbering: P-state 1 is the base frequency."""
        assert XEON_6148.freq_of(XEON_6148.nominal_pstate) == pytest.approx(2.4)

    def test_avx512_licence_is_pstate_three(self):
        """The paper: 2.2 GHz 'corresponding with pstate 3'."""
        assert XEON_6148.avx512_pstate == 3
        assert XEON_6148.freq_of(3) == pytest.approx(2.2)

    def test_min_pstate_frequency(self):
        assert XEON_6148.freq_of(XEON_6148.min_pstate) == pytest.approx(1.0)

    def test_length_covers_100mhz_grid(self):
        # turbo + 2.4 .. 1.0 inclusive = 1 + 15
        assert len(XEON_6148) == 16

    def test_frequencies_strictly_decreasing(self):
        freqs = XEON_6148.frequencies_ghz
        assert all(a > b for a, b in zip(freqs, freqs[1:]))

    def test_iteration_yields_pstates(self):
        states = list(XEON_6148)
        assert states[0] == PState(0, 2.6)
        assert states[1].index == 1

    def test_n_cores(self):
        assert XEON_6148.n_cores == 20
        assert XEON_6142M.n_cores == 16


class TestConversions:
    def test_pstate_of_exact(self):
        assert XEON_6148.pstate_of(2.3) == 2

    def test_pstate_of_snaps_to_grid(self):
        assert XEON_6148.pstate_of(2.2999999) == 2

    def test_pstate_of_unknown_raises(self):
        with pytest.raises(FrequencyError):
            XEON_6148.pstate_of(5.0)

    def test_freq_of_out_of_range_raises(self):
        with pytest.raises(FrequencyError):
            XEON_6148.freq_of(99)
        with pytest.raises(FrequencyError):
            XEON_6148.freq_of(-1)

    def test_closest_pstate_tie_prefers_higher_frequency(self):
        # 2.35 is equidistant from 2.4 (ps1) and 2.3 (ps2)
        assert XEON_6148.closest_pstate(2.35) == 1

    def test_closest_pstate_extremes(self):
        assert XEON_6148.closest_pstate(9.9) == 0
        assert XEON_6148.closest_pstate(0.1) == XEON_6148.min_pstate

    def test_clamp_pstate(self):
        assert XEON_6148.clamp_pstate(-5) == 0
        assert XEON_6148.clamp_pstate(999) == XEON_6148.min_pstate


class TestAvx512Clamp:
    def test_faster_than_licence_clamps(self):
        assert XEON_6148.avx512_clamp(0) == 3
        assert XEON_6148.avx512_clamp(1) == 3
        assert XEON_6148.avx512_clamp(3) == 3

    def test_slower_than_licence_passes(self):
        assert XEON_6148.avx512_clamp(7) == 7

    def test_ratio_property(self):
        assert PState(1, 2.4).ratio == 24


class TestValidation:
    def test_inconsistent_range_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable(
                name="bad",
                nominal_ghz=2.0,
                min_ghz=2.4,
                turbo_ghz=2.6,
                avx512_max_ghz=2.0,
                n_cores=4,
            )

    def test_avx_above_nominal_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable(
                name="bad",
                nominal_ghz=2.0,
                min_ghz=1.0,
                turbo_ghz=2.4,
                avx512_max_ghz=2.2,
                n_cores=4,
            )
