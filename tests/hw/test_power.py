"""Socket power model structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.power import PowerModelParams, VoltageCurve, socket_power

PARAMS = PowerModelParams()


def busy_socket(**overrides):
    kwargs = dict(
        f_core_ghz=2.4,
        f_uncore_ghz=2.4,
        n_active_cores=20,
        n_idle_cores=0,
        activity=1.0,
        vpi=0.0,
        socket_traffic_gbs=20.0,
    )
    kwargs.update(overrides)
    return socket_power(PARAMS, **kwargs)


class TestVoltageCurve:
    def test_floor_below_f0(self):
        v = VoltageCurve()
        assert v.volts(0.8) == pytest.approx(v.v0)

    def test_linear_above_f0(self):
        v = VoltageCurve()
        assert v.volts(2.0) == pytest.approx(v.v0 + v.slope)

    def test_zero_frequency_rejected(self):
        with pytest.raises(HardwareError):
            VoltageCurve().volts(0.0)


class TestStructure:
    def test_breakdown_adds_up(self):
        bd = busy_socket()
        assert bd.total_w == pytest.approx(bd.base_w + bd.cores_w + bd.uncore_w)

    def test_core_power_scales_superlinearly_with_frequency(self):
        """P ~ f·V(f)²: doubling frequency more than doubles core power."""
        lo = busy_socket(f_core_ghz=1.2).cores_w
        hi = busy_socket(f_core_ghz=2.4).cores_w
        assert hi > 2.0 * lo

    def test_uncore_power_rises_with_uncore_frequency(self):
        lo = busy_socket(f_uncore_ghz=1.2).uncore_w
        hi = busy_socket(f_uncore_ghz=2.4).uncore_w
        assert hi > lo
        # the swing is the explicit-UFS headroom: tens of watts/socket
        assert 10.0 < hi - lo < 40.0

    def test_avx512_surcharge(self):
        scalar = busy_socket(vpi=0.0).cores_w
        avx = busy_socket(vpi=1.0).cores_w
        assert avx == pytest.approx(scalar * PARAMS.avx512_factor)

    def test_partial_vpi_interpolates(self):
        scalar = busy_socket(vpi=0.0).cores_w
        half = busy_socket(vpi=0.5).cores_w
        full = busy_socket(vpi=1.0).cores_w
        assert half == pytest.approx((scalar + full) / 2)

    def test_idle_cores_cheap(self):
        idle = busy_socket(n_active_cores=0, n_idle_cores=20)
        assert idle.cores_w == pytest.approx(20 * PARAMS.core_idle_w)

    def test_activity_scales_dynamic_power(self):
        full = busy_socket(activity=1.0).cores_w
        half = busy_socket(activity=0.5).cores_w
        assert half == pytest.approx(full / 2)

    def test_traffic_term(self):
        quiet = busy_socket(socket_traffic_gbs=0.0).uncore_w
        loud = busy_socket(socket_traffic_gbs=50.0).uncore_w
        assert loud - quiet == pytest.approx(50.0 * PARAMS.uncore_bw_w_per_gbs)

    @given(
        st.floats(min_value=1.0, max_value=2.6),
        st.floats(min_value=1.2, max_value=2.4),
        st.floats(min_value=0.0, max_value=1.2),
    )
    def test_always_positive(self, f_core, f_unc, activity):
        bd = busy_socket(f_core_ghz=f_core, f_uncore_ghz=f_unc, activity=activity)
        assert bd.total_w > 0


class TestValidation:
    def test_negative_cores_rejected(self):
        with pytest.raises(HardwareError):
            busy_socket(n_active_cores=-1)

    def test_negative_activity_rejected(self):
        with pytest.raises(HardwareError):
            busy_socket(activity=-0.1)

    def test_vpi_out_of_range_rejected(self):
        with pytest.raises(HardwareError):
            busy_socket(vpi=1.5)

    def test_negative_traffic_rejected(self):
        with pytest.raises(HardwareError):
            busy_socket(socket_traffic_gbs=-1.0)

    def test_with_overrides(self):
        p = PARAMS.with_overrides(platform_w=100.0)
        assert p.platform_w == 100.0
        assert p.core_dyn_w == PARAMS.core_dyn_w
