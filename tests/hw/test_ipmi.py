"""Node Manager DC energy counter: 1 Hz latch semantics."""

import pytest

from repro.errors import HardwareError
from repro.hw.ipmi import NodeManagerEnergyCounter


class TestLatching:
    def test_read_before_first_second_is_zero(self):
        c = NodeManagerEnergyCounter()
        c.integrate(300.0, 0.5)
        assert c.read_joules() == 0.0
        assert c.exact_joules == pytest.approx(150.0)

    def test_latch_at_whole_second(self):
        c = NodeManagerEnergyCounter()
        c.integrate(300.0, 1.5)
        # latched at t=1.0 with 300 J; the last 0.5 s not yet published
        assert c.read_joules() == pytest.approx(300.0)
        assert c.read_timestamp_s() == pytest.approx(1.0)

    def test_multiple_periods_in_one_interval(self):
        c = NodeManagerEnergyCounter()
        c.integrate(100.0, 10.2)
        assert c.read_timestamp_s() == pytest.approx(10.0)
        assert c.read_joules() == pytest.approx(1000.0)

    def test_power_from_latched_pairs_is_unbiased(self):
        """Dividing energy deltas by *latch-time* deltas gives the true
        average power despite the 1 Hz quantisation — the reason EAR
        records the timestamps."""
        c = NodeManagerEnergyCounter()
        c.integrate(333.0, 0.7)
        e0, t0 = c.read_joules(), c.read_timestamp_s()
        c.integrate(333.0, 10.4)
        e1, t1 = c.read_joules(), c.read_timestamp_s()
        assert (e1 - e0) / (t1 - t0) == pytest.approx(333.0, rel=1e-6)

    def test_exact_energy_always_current(self):
        c = NodeManagerEnergyCounter()
        c.integrate(100.0, 0.25)
        c.integrate(200.0, 0.25)
        assert c.exact_joules == pytest.approx(75.0)
        assert c.now_s == pytest.approx(0.5)

    def test_negative_interval_rejected(self):
        with pytest.raises(HardwareError):
            NodeManagerEnergyCounter().integrate(100.0, -0.1)

    def test_negative_power_rejected(self):
        with pytest.raises(HardwareError):
            NodeManagerEnergyCounter().integrate(-5.0, 1.0)

    def test_custom_period(self):
        c = NodeManagerEnergyCounter(update_period_s=0.5)
        c.integrate(100.0, 0.6)
        assert c.read_timestamp_s() == pytest.approx(0.5)
