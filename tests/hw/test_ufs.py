"""Hardware UFS controller: the paper-calibrated behaviours."""

from repro.hw.ufs import UfsController, UfsInputs

CTL = UfsController()


def target(**kwargs):
    defaults = dict(
        fastest_active_ratio=24,
        active_fraction=1.0,
        vpi=0.0,
        uncore_demand=0.0,
        pinned=False,
        epb=6,
    )
    defaults.update(kwargs)
    return CTL.target_ratio(UfsInputs(**defaults), msr_min=12, msr_max=24)


class TestUnpinned:
    def test_loaded_unpinned_socket_holds_max(self):
        """Table I: HW keeps 2.39 GHz for both CPU- and memory-bound."""
        assert target() == 24

    def test_idle_socket_decays_to_floor(self):
        assert target(fastest_active_ratio=0) == 12

    def test_avx512_rebalances_power_away_from_uncore(self):
        """DGEMM under no policy: ~1.9-2.0 GHz uncore (Table IV)."""
        assert target(vpi=1.0) in (19, 20)

    def test_moderate_vector_mix_barely_moves(self):
        """GROMACS (VPI ~0.3) still gets max uncore when unpinned."""
        assert target(vpi=0.3) == 24


class TestPinned:
    def test_busy_pinned_socket_follows_core_up(self):
        """BT-MZ pinned at nominal keeps the uncore at max (Table I)."""
        assert target(pinned=True, fastest_active_ratio=24) == 24

    def test_spin_socket_sinks(self):
        """BT.CUDA: one spinning core out of 32 -> ~0.63 of its clock."""
        ratio = target(
            pinned=True, fastest_active_ratio=24, active_fraction=1.0 / 32.0
        )
        assert 14 <= ratio <= 16

    def test_follow_factor_override(self):
        """GROMACS(II)'s calibrated 0.64 follow factor -> ~1.45 GHz."""
        ratio = target(
            pinned=True,
            fastest_active_ratio=23,
            active_fraction=0.27,
            **{"follow_factor": 0.64},
        )
        assert ratio in (14, 15)

    def test_memory_demand_keeps_uncore_up_when_pinned_low(self):
        """HPCG pinned at 1.7 GHz still gets max uncore (Table VI)."""
        ratio = target(
            pinned=True, fastest_active_ratio=17, uncore_demand=1.0
        )
        assert ratio == 24

    def test_deep_pin_without_demand_follows_down(self):
        ratio = target(pinned=True, fastest_active_ratio=17)
        assert ratio < 24


class TestLimitsAndBias:
    def test_msr_max_caps_target(self):
        ratio = CTL.target_ratio(
            UfsInputs(
                fastest_active_ratio=24,
                active_fraction=1.0,
                vpi=0.0,
                uncore_demand=1.0,
                pinned=False,
            ),
            msr_min=12,
            msr_max=18,
        )
        assert ratio == 18

    def test_msr_min_floors_target(self):
        ratio = CTL.target_ratio(
            UfsInputs(
                fastest_active_ratio=10,
                active_fraction=0.01,
                vpi=0.0,
                uncore_demand=0.0,
                pinned=True,
            ),
            msr_min=16,
            msr_max=24,
        )
        assert ratio == 16

    def test_inverted_msr_range_honours_max(self):
        ratio = CTL.target_ratio(
            UfsInputs(
                fastest_active_ratio=24,
                active_fraction=1.0,
                vpi=0.0,
                uncore_demand=0.0,
                pinned=False,
            ),
            msr_min=30,
            msr_max=20,
        )
        assert ratio == 20

    def test_powersave_epb_lowers_target(self):
        balanced = target(pinned=True, fastest_active_ratio=20)
        powersave = target(pinned=True, fastest_active_ratio=20, epb=15)
        assert powersave < balanced

    def test_inputs_are_clamped(self):
        """Out-of-range monitor inputs must not explode the target."""
        assert target(active_fraction=5.0, uncore_demand=7.0) == 24
