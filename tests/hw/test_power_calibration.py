"""Power-model calibration against the paper's Tables II and V.

The anchors are exact by construction (the activity solve inverts the
affine power model), so these tests pin the *calibration machinery* and
the representability of every published operating point: if a model
coefficient drifts so far that an anchor needs an implausible activity,
``calibrate_activity`` raises and the table row fails here.
"""

import pytest

from repro.hw.node import Node
from repro.workloads.applications import mpi_applications
from repro.workloads.kernels import single_node_kernels


def nominal_dc_power(workload) -> float:
    """Model DC power at the anchor operating point after calibration."""
    wl = workload.calibrated()
    profile = wl.main_phase
    node = Node(wl.node_config)
    eff = profile._reference_effective_ghz(node)
    from dataclasses import replace

    op = replace(
        profile.operating_point(node, effective_core_ghz=eff),
        traffic_gbs=profile.ref_gbs,
    )
    return node.power(op).dc_w


@pytest.mark.parametrize("workload", single_node_kernels(), ids=lambda w: w.name)
def test_kernel_anchor_power_reproduced(workload):
    """Table II node powers are representable and reproduced exactly."""
    assert nominal_dc_power(workload) == pytest.approx(
        workload.main_phase.ref_dc_power_w, rel=1e-6
    )


@pytest.mark.parametrize("workload", mpi_applications(), ids=lambda w: w.name)
def test_application_anchor_power_reproduced(workload):
    """Table V node powers are representable and reproduced exactly."""
    assert nominal_dc_power(workload) == pytest.approx(
        workload.main_phase.ref_dc_power_w, rel=1e-6
    )


@pytest.mark.parametrize("workload", single_node_kernels(), ids=lambda w: w.name)
def test_calibrated_activity_physically_plausible(workload):
    """Activities must land in a plausible band — CPU-bound near 1,
    memory-bound well below."""
    wl = workload.calibrated()
    for profile, _ in wl.phases:
        if profile.gpus_busy:
            assert 0.0 < profile.gpu_utilisation <= 1.0
        else:
            assert 0.3 < profile.activity < 1.3


def test_memory_bound_activity_below_cpu_bound():
    """HPCG's stalled cores must burn less dynamic power per core than
    BT-MZ's retiring ones — the physical reason its power drops less
    than a CPU-bound code's when frequency falls."""
    from repro.workloads.applications import hpcg
    from repro.workloads.kernels import bt_mz_c_openmp

    a_mem = hpcg().calibrated().main_phase.activity
    a_cpu = bt_mz_c_openmp().calibrated().main_phase.activity
    assert a_mem < a_cpu
