"""Socket model: DVFS target, AVX-512 effective clock, accounting."""

import pytest

from repro.errors import FrequencyError, MsrPermissionError
from repro.hw.cpu import Socket
from repro.hw.msr import UncoreRatioLimit
from repro.hw.pstates import XEON_6148


@pytest.fixture()
def socket() -> Socket:
    return Socket(pstates=XEON_6148)


class TestReset:
    def test_starts_at_nominal_unpinned(self, socket):
        assert socket.target_freq_ghz == pytest.approx(2.4)
        assert not socket.pinned

    def test_uncore_limits_seeded_from_silicon(self, socket):
        limits = socket.msr.read_uncore_limits()
        assert limits.min_ratio == 12
        assert limits.max_ratio == 24

    def test_default_epb_balanced(self, socket):
        assert socket.msr.read_epb() == 6


class TestFrequencyControl:
    def test_set_target_pins(self, socket):
        socket.set_target_freq(2.0, privileged=True)
        assert socket.target_freq_ghz == pytest.approx(2.0)
        assert socket.pinned

    def test_unprivileged_set_denied(self, socket):
        with pytest.raises(MsrPermissionError):
            socket.set_target_freq(2.0)
        assert not socket.pinned

    def test_out_of_range_ratio_rejected(self, socket):
        with pytest.raises(FrequencyError):
            socket.set_target_freq(9.9, privileged=True)

    def test_uncore_msr_write_applies_to_domain(self, socket):
        socket.msr.write_uncore_limits(
            UncoreRatioLimit(min_ratio=12, max_ratio=18), privileged=True
        )
        assert socket.uncore.freq_ghz <= 1.8

    def test_perf_status_mirrors_ctl(self, socket):
        socket.set_target_freq(1.8, privileged=True)
        assert (socket.msr.read(0x198) >> 8) & 0xFF == 18


class TestEffectiveFrequency:
    def test_scalar_runs_at_target(self, socket):
        assert socket.effective_freq_ghz(0.0) == pytest.approx(2.4)

    def test_pure_avx512_clamped_to_licence(self, socket):
        assert socket.effective_freq_ghz(1.0) == pytest.approx(2.2)

    def test_mixed_vpi_harmonic_blend(self, socket):
        eff = socket.effective_freq_ghz(0.5)
        expected = 1.0 / (0.5 / 2.4 + 0.5 / 2.2)
        assert eff == pytest.approx(expected)
        assert 2.2 < eff < 2.4

    def test_below_licence_not_clamped(self, socket):
        socket.set_target_freq(1.8, privileged=True)
        assert socket.effective_freq_ghz(1.0) == pytest.approx(1.8)

    def test_invalid_vpi_rejected(self, socket):
        with pytest.raises(FrequencyError):
            socket.effective_freq_ghz(1.5)

    def test_last_effective_tracked(self, socket):
        socket.account(1.0, n_active=20, effective_ghz=2.2)
        assert socket.last_effective_ghz == pytest.approx(2.2)


class TestAveraging:
    def test_all_cores_busy_average_near_target(self, socket):
        socket.account(10.0, n_active=20, effective_ghz=2.4)
        # slight halt fraction: the paper's 2.38 vs 2.40
        assert 2.37 < socket.average_freq_ghz() < 2.40

    def test_idle_cores_drag_average_down(self, socket):
        socket.account(10.0, n_active=1, effective_ghz=2.4)
        avg = socket.average_freq_ghz()
        # 1 busy core at 2.4, 19 idle at 1.0
        assert 1.0 < avg < 1.2

    def test_reset_accounting(self, socket):
        socket.account(10.0, n_active=20, effective_ghz=2.4)
        socket.reset_accounting()
        socket.account(1.0, n_active=20, effective_ghz=1.2)
        assert socket.average_freq_ghz() < 1.25

    def test_negative_time_rejected(self, socket):
        with pytest.raises(FrequencyError):
            socket.account(-1.0, n_active=1, effective_ghz=2.4)
