"""RAPL counters: units, quantisation, 32-bit wrap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.rapl import SKL_ENERGY_UNIT_J, RaplCounter, RaplDomain


class TestCounter:
    def test_unit_is_2_to_minus_14(self):
        assert SKL_ENERGY_UNIT_J == pytest.approx(1.0 / 16384)

    def test_accumulates_in_units(self):
        c = RaplCounter()
        c.add_energy(1.0)
        assert c.joules() == pytest.approx(1.0, abs=SKL_ENERGY_UNIT_J)

    def test_residual_preserved_across_small_adds(self):
        """Adding many sub-unit chunks must not lose energy."""
        c = RaplCounter()
        for _ in range(1000):
            c.add_energy(SKL_ENERGY_UNIT_J / 10)
        assert c.joules() == pytest.approx(100 * SKL_ENERGY_UNIT_J, rel=0.02)

    def test_wraps_at_32_bits(self):
        c = RaplCounter()
        wrap_j = (1 << 32) * SKL_ENERGY_UNIT_J  # ~262 kJ
        c.add_energy(wrap_j + 5.0)
        assert c.joules() == pytest.approx(5.0, abs=0.01)

    def test_energy_cannot_decrease(self):
        with pytest.raises(HardwareError):
            RaplCounter().add_energy(-1.0)

    def test_delta_without_wrap(self):
        c = RaplCounter()
        before = c.raw()
        c.add_energy(100.0)
        after = c.raw()
        assert RaplCounter.delta_joules(before, after) == pytest.approx(100.0, abs=0.01)

    def test_delta_across_wrap(self):
        """A 200 W reader polling every 10 s survives the ~22 min wrap."""
        c = RaplCounter()
        wrap_j = (1 << 32) * SKL_ENERGY_UNIT_J
        c.add_energy(wrap_j - 1.0)
        before = c.raw()
        c.add_energy(3.0)  # crosses the wrap
        after = c.raw()
        assert after < before
        assert RaplCounter.delta_joules(before, after) == pytest.approx(3.0, abs=0.01)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=20))
    def test_deltas_sum_to_total(self, chunks):
        c = RaplCounter()
        total = 0.0
        prev = c.raw()
        for chunk in chunks:
            c.add_energy(chunk)
            cur = c.raw()
            total += RaplCounter.delta_joules(prev, cur)
            prev = cur
        assert total == pytest.approx(sum(chunks), abs=len(chunks) * SKL_ENERGY_UNIT_J)


class TestDomain:
    def test_per_socket_counters(self):
        dom = RaplDomain(n_sockets=2)
        dom.add_interval(pck_watts=[100.0, 120.0], dram_watts=20.0, seconds=10.0)
        assert dom.pck[0].joules() == pytest.approx(1000.0, abs=0.01)
        assert dom.pck[1].joules() == pytest.approx(1200.0, abs=0.01)
        assert dom.dram.joules() == pytest.approx(200.0, abs=0.01)
        assert dom.pck_joules_total() == pytest.approx(2200.0, abs=0.02)

    def test_socket_count_enforced(self):
        dom = RaplDomain(n_sockets=2)
        with pytest.raises(HardwareError):
            dom.add_interval(pck_watts=[100.0], dram_watts=0.0, seconds=1.0)

    def test_negative_interval_rejected(self):
        dom = RaplDomain(n_sockets=1)
        with pytest.raises(HardwareError):
            dom.add_interval(pck_watts=[100.0], dram_watts=0.0, seconds=-1.0)

    def test_zero_sockets_rejected(self):
        with pytest.raises(HardwareError):
            RaplDomain(n_sockets=0)
