"""Counter bank and snapshot arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.hw.counters import CounterBank
from repro.workloads.phase import IterationCounters


def iteration(seconds=0.5, instructions=1e9, cycles=5e8, nbytes=1e8, avx=0.0):
    return IterationCounters(
        seconds=seconds,
        instructions=instructions,
        cycles=cycles,
        bytes_transferred=nbytes,
        avx512_instructions=avx,
    )


class TestBank:
    def test_accumulates(self):
        bank = CounterBank()
        bank.add_iteration(iteration(), wall_seconds=0.5)
        bank.add_iteration(iteration(), wall_seconds=0.5)
        snap = bank.snapshot()
        assert snap.iterations == 2
        assert snap.seconds == pytest.approx(1.0)
        assert snap.instructions == pytest.approx(2e9)

    def test_wall_time_may_exceed_compute_time(self):
        bank = CounterBank()
        bank.add_iteration(iteration(seconds=0.5), wall_seconds=0.6)
        assert bank.snapshot().seconds == pytest.approx(0.6)

    def test_wall_below_compute_rejected(self):
        bank = CounterBank()
        with pytest.raises(SignatureError):
            bank.add_iteration(iteration(seconds=0.5), wall_seconds=0.4)


class TestSnapshotMetrics:
    def test_cpi(self):
        bank = CounterBank()
        bank.add_iteration(iteration(instructions=1e9, cycles=5e8), wall_seconds=0.5)
        assert bank.snapshot().cpi == pytest.approx(0.5)

    def test_tpi_counts_cache_lines(self):
        bank = CounterBank()
        bank.add_iteration(iteration(instructions=1e9, nbytes=64e9), wall_seconds=0.5)
        assert bank.snapshot().tpi == pytest.approx(1.0)

    def test_gbs(self):
        bank = CounterBank()
        bank.add_iteration(iteration(seconds=1.0, nbytes=5e9), wall_seconds=1.0)
        assert bank.snapshot().gbs == pytest.approx(5.0)

    def test_vpi(self):
        bank = CounterBank()
        bank.add_iteration(iteration(instructions=1e9, avx=25e7), wall_seconds=0.5)
        assert bank.snapshot().vpi == pytest.approx(0.25)

    def test_seconds_per_iteration(self):
        bank = CounterBank()
        for _ in range(4):
            bank.add_iteration(iteration(seconds=0.5), wall_seconds=0.5)
        assert bank.snapshot().seconds_per_iteration == pytest.approx(0.5)

    def test_empty_window_metrics_raise(self):
        snap = CounterBank().snapshot()
        with pytest.raises(SignatureError):
            _ = snap.cpi
        with pytest.raises(SignatureError):
            _ = snap.seconds_per_iteration


class TestDelta:
    def test_window_isolation(self):
        """A window's metrics must not depend on earlier windows."""
        bank = CounterBank()
        bank.add_iteration(iteration(cycles=9e8), wall_seconds=0.5)
        start = bank.snapshot()
        bank.add_iteration(iteration(cycles=4e8), wall_seconds=0.5)
        window = bank.snapshot().delta(start)
        assert window.iterations == 1
        assert window.cpi == pytest.approx(0.4)

    def test_wrong_order_rejected(self):
        bank = CounterBank()
        early = bank.snapshot()
        bank.add_iteration(iteration(), wall_seconds=0.5)
        late = bank.snapshot()
        with pytest.raises(SignatureError):
            early.delta(late)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=30))
    def test_delta_additivity(self, n1, n2):
        """snapshot(a+b).delta(0) == combining the two windows."""
        bank = CounterBank()
        s0 = bank.snapshot()
        for _ in range(n1):
            bank.add_iteration(iteration(), wall_seconds=0.5)
        s1 = bank.snapshot()
        for _ in range(n2):
            bank.add_iteration(iteration(), wall_seconds=0.5)
        s2 = bank.snapshot()
        total = s2.delta(s0)
        w1, w2 = s1.delta(s0), s2.delta(s1)
        assert total.iterations == w1.iterations + w2.iterations
        assert total.instructions == pytest.approx(w1.instructions + w2.instructions)
        assert total.seconds == pytest.approx(w1.seconds + w2.seconds)
