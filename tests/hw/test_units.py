"""Units and conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import units


class TestRatioConversions:
    def test_ghz_to_ratio_nominal(self):
        assert units.ghz_to_ratio(2.4) == 24

    def test_ratio_to_ghz_roundtrip_exact(self):
        assert units.ratio_to_ghz(24) == pytest.approx(2.4)

    def test_ghz_to_ratio_rounds_to_nearest(self):
        assert units.ghz_to_ratio(1.24) == 12
        assert units.ghz_to_ratio(1.26) == 13

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.ghz_to_ratio(-0.1)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            units.ratio_to_ghz(-1)

    @given(st.integers(min_value=0, max_value=80))
    def test_ratio_ghz_ratio_roundtrip(self, ratio):
        assert units.ghz_to_ratio(units.ratio_to_ghz(ratio)) == ratio

    @given(st.floats(min_value=0.0, max_value=8.0, allow_nan=False))
    def test_snap_idempotent(self, freq):
        snapped = units.snap_ghz(freq)
        assert units.snap_ghz(snapped) == pytest.approx(snapped)
        assert abs(snapped - freq) <= units.BCLK_GHZ / 2 + 1e-12


class TestClamp:
    def test_inside_range(self):
        assert units.clamp(5, 0, 10) == 5

    def test_below(self):
        assert units.clamp(-1, 0, 10) == 0

    def test_above(self):
        assert units.clamp(11, 0, 10) == 10

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            units.clamp(5, 10, 0)


class TestPowerHelpers:
    def test_watts(self):
        assert units.watts(1000.0, 10.0) == pytest.approx(100.0)

    def test_watts_empty_interval(self):
        assert units.watts(100.0, 0.0) == 0.0

    def test_joules_to_wh(self):
        assert units.joules_to_wh(3600.0) == pytest.approx(1.0)

    def test_gbs_from_bytes(self):
        assert units.gbs_from_bytes(2e9, 1.0) == pytest.approx(2.0)

    def test_gbs_zero_interval(self):
        assert units.gbs_from_bytes(1e9, 0.0) == 0.0

    def test_approx_equal(self):
        assert units.approx_equal(1.0, 1.0 + 1e-12)
        assert not units.approx_equal(1.0, 1.1)

    def test_cache_line_constant(self):
        assert units.CACHE_LINE_BYTES == 64
