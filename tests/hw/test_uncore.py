"""Uncore domain state: limits, clamping, time-weighted averaging."""

import pytest

from repro.errors import FrequencyError
from repro.hw.msr import UncoreRatioLimit
from repro.hw.uncore import UncoreDomain


class TestLimits:
    def test_starts_at_max(self):
        dom = UncoreDomain()
        assert dom.current_ratio == 24
        assert dom.freq_ghz == pytest.approx(2.4)

    def test_set_limits_reclamps_current(self):
        dom = UncoreDomain()
        dom.set_limits(UncoreRatioLimit(min_ratio=12, max_ratio=18))
        assert dom.current_ratio == 18

    def test_limits_intersect_silicon_range(self):
        dom = UncoreDomain()
        dom.set_limits(UncoreRatioLimit(min_ratio=2, max_ratio=60))
        assert dom.limits.min_ratio == 12
        assert dom.limits.max_ratio == 24

    def test_set_ratio_respects_limits(self):
        dom = UncoreDomain()
        dom.set_limits(UncoreRatioLimit(min_ratio=14, max_ratio=20))
        dom.set_ratio(24)
        assert dom.current_ratio == 20
        dom.set_ratio(5)
        assert dom.current_ratio == 14

    def test_pinned_limits_pin_frequency(self):
        dom = UncoreDomain()
        dom.set_limits(UncoreRatioLimit(min_ratio=18, max_ratio=18))
        dom.set_ratio(24)
        assert dom.freq_ghz == pytest.approx(1.8)

    def test_inverted_hw_range_rejected(self):
        with pytest.raises(FrequencyError):
            UncoreDomain(hw_min_ratio=24, hw_max_ratio=12)


class TestAccounting:
    def test_average_without_history_is_current(self):
        dom = UncoreDomain()
        assert dom.average_freq_ghz() == pytest.approx(2.4)

    def test_time_weighted_average(self):
        dom = UncoreDomain()
        dom.account(10.0)  # 10 s at 2.4
        dom.set_limits(UncoreRatioLimit(min_ratio=12, max_ratio=12))
        dom.account(10.0)  # 10 s at 1.2
        assert dom.average_freq_ghz() == pytest.approx(1.8)

    def test_reset_accounting(self):
        dom = UncoreDomain()
        dom.account(5.0)
        dom.reset_accounting()
        dom.set_limits(UncoreRatioLimit(min_ratio=12, max_ratio=12))
        dom.account(1.0)
        assert dom.average_freq_ghz() == pytest.approx(1.2)

    def test_negative_time_rejected(self):
        with pytest.raises(FrequencyError):
            UncoreDomain().account(-1.0)
