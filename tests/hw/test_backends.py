"""Contract suite for the uncore control backends.

Every backend — MSR, legacy sysfs, TPMI — must honour the same
behavioural contract behind :class:`~repro.hw.backends.UncoreBackend`:
limits land on the domains clamped into the silicon range, capability
flags tell the truth about die granularity, ratios round-trip through
pinned limits, accounting integrates under ``advance``, unprivileged
writes are refused, and every landed write emits exactly one
``uncore/limit_write`` event when telemetry is armed (and none — at
zero cost — when it is not).

The MSR backend additionally carries a regression gate: it must be
bit-identical to the direct register path it replaced, including the
socket MSR's ``write_generation`` plan-invalidation counter.
"""

import dataclasses

import pytest

from repro.errors import ConfigError, MsrPermissionError
from repro.hw.backends import (
    BACKEND_NAMES,
    MsrBackend,
    SysfsBackend,
    TpmiBackend,
    UncoreBackend,
    create_backend,
)
from repro.hw.msr import MSR_UNCORE_RATIO_LIMIT, UncoreRatioLimit
from repro.hw.node import GRANITE_RAPIDS_NODE, SD530, Node, OperatingPoint
from repro.hw.ufs import UfsInputs
from repro.telemetry.recorder import EventRecorder

_CLASSES = {"msr": MsrBackend, "sysfs": SysfsBackend, "tpmi": TpmiBackend}


def make_node(backend: str) -> Node:
    """A two-die-per-socket node driven by the given backend.

    TPMI gets the real Granite Rapids config; the others reuse SD530
    silicon with two dies so die-granularity claims are testable.
    """
    if backend == "tpmi":
        return Node(GRANITE_RAPIDS_NODE)
    return Node(
        dataclasses.replace(SD530, uncore_backend=backend, dies_per_socket=2)
    )


def busy_op(node: Node) -> OperatingPoint:
    """A fully-busy compute operating point for the node."""
    return OperatingPoint(
        n_active_cores=node.config.n_cores,
        activity=1.0,
        vpi=0.0,
        traffic_gbs=30.0,
        effective_core_ghz=2.4,
        uncore_demand=0.0,
    )


@pytest.fixture(params=BACKEND_NAMES)
def backend_node(request):
    """A fresh node per backend, with its backend alongside."""
    node = make_node(request.param)
    return node, node.uncore_backend


def mid_ratio(node: Node) -> int:
    """An in-range ratio strictly between the silicon bounds."""
    return (node.config.uncore_min_ratio + node.config.uncore_max_ratio) // 2


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_all_names_registered(self):
        assert set(BACKEND_NAMES) == set(_CLASSES)

    def test_create_returns_right_class(self, backend_node):
        node, backend = backend_node
        assert type(backend) is _CLASSES[backend.name]
        assert isinstance(backend, UncoreBackend)
        assert backend.node is node

    def test_unknown_backend_rejected(self):
        node = Node(SD530)
        with pytest.raises(ConfigError):
            create_backend("smbios", node)


# -- enumeration ------------------------------------------------------------


class TestEnumeration:
    def test_domains_cover_every_die(self, backend_node):
        node, backend = backend_node
        expected = tuple(
            (s.socket_id, d)
            for s in node.sockets
            for d in range(len(s.dies))
        )
        assert backend.domains() == expected
        assert len(expected) == node.config.n_sockets * node.config.dies_per_socket

    def test_silicon_range_matches_config(self, backend_node):
        node, backend = backend_node
        assert backend.silicon_range() == UncoreRatioLimit(
            min_ratio=node.config.uncore_min_ratio,
            max_ratio=node.config.uncore_max_ratio,
        )


# -- limit writes -----------------------------------------------------------


class TestLimitWrites:
    def test_unprivileged_write_refused(self, backend_node):
        node, backend = backend_node
        limits = UncoreRatioLimit(min_ratio=mid_ratio(node), max_ratio=mid_ratio(node))
        with pytest.raises(MsrPermissionError):
            backend.write_limits(limits)
        # nothing landed
        for si, d in backend.domains():
            assert backend.read_limits(si, d) == backend.silicon_range()

    def test_in_range_write_round_trips(self, backend_node):
        node, backend = backend_node
        lo, hi = node.config.uncore_min_ratio + 1, node.config.uncore_max_ratio - 1
        limits = UncoreRatioLimit(min_ratio=lo, max_ratio=hi)
        backend.write_limits(limits, privileged=True)
        for si, d in backend.domains():
            assert backend.read_limits(si, d) == limits

    def test_domains_clamped_into_silicon_range(self, backend_node):
        node, backend = backend_node
        wild = UncoreRatioLimit(min_ratio=1, max_ratio=100)
        backend.write_limits(wild, privileged=True)
        for s in node.sockets:
            for dom in s.dies:
                assert dom.hw_min_ratio <= dom.limits.min_ratio
                assert dom.limits.min_ratio <= dom.limits.max_ratio
                assert dom.limits.max_ratio <= dom.hw_max_ratio
                assert dom.limits.min_ratio <= dom.current_ratio <= dom.limits.max_ratio

    def test_die_granular_read_clamped(self, backend_node):
        # the sysfs/TPMI drivers clamp the *stored* value too (the raw
        # MSR keeps any 7-bit pattern and leaves clamping to hardware).
        node, backend = backend_node
        if not backend.die_granular:
            pytest.skip("raw-register backend stores unclamped bits")
        backend.write_limits(
            UncoreRatioLimit(min_ratio=1, max_ratio=100), privileged=True
        )
        for si, d in backend.domains():
            got = backend.read_limits(si, d)
            assert got == backend.silicon_range()

    def test_capability_flags_are_honest(self, backend_node):
        """die_granular=True targets one die; False sweeps the socket."""
        node, backend = backend_node
        r = mid_ratio(node)
        pinned = UncoreRatioLimit(min_ratio=r, max_ratio=r)
        before = backend.read_limits(0, 0)
        backend.write_limits(pinned, privileged=True, socket=0, die=1)
        if backend.die_granular:
            assert backend.read_limits(0, 1) == pinned
            assert backend.read_limits(0, 0) == before  # sibling untouched
        else:
            # MSR 0x620 is package-scoped: the die index is ignored and
            # every die of the socket moves together.
            for d in range(len(node.sockets[0].dies)):
                assert node.sockets[0].dies[d].limits == pinned
        # the untargeted socket never moves either way
        boot = UncoreRatioLimit(
            min_ratio=node.config.uncore_min_ratio,
            max_ratio=node.config.uncore_max_ratio,
        )
        for d in range(len(node.sockets[1].dies)):
            assert backend.read_limits(1, d) == boot

    def test_writable_min_flag(self, backend_node):
        node, backend = backend_node
        assert backend.writable_min  # all three simulated paths allow it
        lo = node.config.uncore_min_ratio + 2
        backend.write_limits(
            UncoreRatioLimit(min_ratio=lo, max_ratio=node.config.uncore_max_ratio),
            privileged=True,
        )
        assert backend.read_limits(0, 0).min_ratio == lo


# -- ratio observation & accounting -----------------------------------------


class TestRatioAndAccounting:
    def test_pinned_limits_pin_the_ratio(self, backend_node):
        node, backend = backend_node
        r = mid_ratio(node)
        backend.write_limits(
            UncoreRatioLimit(min_ratio=r, max_ratio=r), privileged=True
        )
        for si, d in backend.domains():
            assert backend.read_ratio(si, d) == r

    def test_accounting_under_advance(self, backend_node):
        node, backend = backend_node
        r = mid_ratio(node)
        backend.write_limits(
            UncoreRatioLimit(min_ratio=r, max_ratio=r), privileged=True
        )
        node.advance(busy_op(node), 5.0)
        assert node.average_imc_freq_ghz() == pytest.approx(r * 0.1)
        for s in node.sockets:
            for dom in s.dies:
                assert dom.average_freq_ghz() == pytest.approx(r * 0.1)

    def test_plan_invalidation_counter_moves(self, backend_node):
        """Every write must bump a generation the batched kernel sees."""
        node, backend = backend_node

        def tag() -> int:
            return backend.write_generation + sum(
                s.msr.write_generation for s in node.sockets
            )

        before = tag()
        backend.write_limits(backend.silicon_range(), privileged=True)
        assert tag() > before


# -- telemetry --------------------------------------------------------------


class TestTelemetry:
    def test_one_event_per_landed_write(self, backend_node):
        node, backend = backend_node
        rec = EventRecorder(node=node.node_id)
        backend.telemetry = rec
        r = mid_ratio(node)
        backend.write_limits(
            UncoreRatioLimit(min_ratio=r, max_ratio=r), privileged=True
        )
        events = [
            e for e in rec.events
            if e.subsystem == "uncore" and e.kind == "limit_write"
        ]
        # one register write per socket on MSR, one per die otherwise
        expected = (
            len(backend.domains())
            if backend.die_granular
            else len(node.sockets)
        )
        assert len(events) == expected
        for e in events:
            payload = e.payload_dict
            assert payload["backend"] == backend.name
            assert payload["new_min_ratio"] == r
            assert payload["new_max_ratio"] == r
            assert payload["old_min_ratio"] == node.config.uncore_min_ratio
            assert payload["old_max_ratio"] == node.config.uncore_max_ratio
            assert "die" in payload and "socket" in payload

    def test_targeted_write_emits_one_event(self, backend_node):
        node, backend = backend_node
        if not backend.die_granular:
            pytest.skip("no per-die targeting on the MSR path")
        rec = EventRecorder(node=node.node_id)
        backend.telemetry = rec
        backend.write_limits(
            backend.silicon_range(), privileged=True, socket=1, die=1
        )
        assert len(rec.events) == 1
        assert rec.events[0].payload_dict["socket"] == 1
        assert rec.events[0].payload_dict["die"] == 1

    def test_disabled_telemetry_changes_nothing(self, backend_node):
        """The NULL_RECORDER path lands identical state, silently."""
        node, backend = backend_node
        twin = make_node(backend.name)
        rec = EventRecorder(node=0)
        twin.uncore_backend.telemetry = rec
        r = mid_ratio(node)
        limits = UncoreRatioLimit(min_ratio=r, max_ratio=r)
        backend.write_limits(limits, privileged=True)  # NULL_RECORDER
        twin.uncore_backend.write_limits(limits, privileged=True)
        assert rec.events  # armed twin recorded
        for si, d in backend.domains():
            assert backend.read_limits(si, d) == twin.uncore_backend.read_limits(si, d)
            assert backend.read_ratio(si, d) == twin.uncore_backend.read_ratio(si, d)


# -- backend-specific semantics ---------------------------------------------


def _inputs(active: float) -> UfsInputs:
    return UfsInputs(
        fastest_active_ratio=24,
        active_fraction=active,
        vpi=0.0,
        uncore_demand=0.5,
        pinned=False,
    )


class TestUfsFloor:
    def test_only_tpmi_imposes_a_floor(self):
        for name in ("msr", "sysfs"):
            node = make_node(name)
            assert node.uncore_backend.ufs_floor_ratio(_inputs(1.0)) == 0

    def test_elc_floor_shape(self):
        backend = make_node("tpmi").uncore_backend
        hw_max = GRANITE_RAPIDS_NODE.uncore_max_ratio
        # idle: no floor; busy: half the silicon max; in between: ramp
        assert backend.ufs_floor_ratio(_inputs(0.0)) == 0
        assert backend.ufs_floor_ratio(_inputs(0.10)) == 0
        busy_floor = int(round(backend.elc_floor_frac * hw_max))
        assert backend.ufs_floor_ratio(_inputs(0.70)) == busy_floor
        assert backend.ufs_floor_ratio(_inputs(1.0)) == busy_floor
        mid = backend.ufs_floor_ratio(_inputs(0.425))
        assert 0 < mid < busy_floor

    def test_busy_gnr_die_respects_elc_floor(self):
        node = make_node("tpmi")
        backend = node.uncore_backend
        busy_floor = int(round(backend.elc_floor_frac * node.config.uncore_max_ratio))
        node.run_ufs(busy_op(node))
        for si, d in backend.domains():
            assert backend.read_ratio(si, d) >= busy_floor


class TestSysfsSemantics:
    def test_khz_files_floor_to_ratio_grid(self):
        node = make_node("sysfs")
        backend = node.uncore_backend
        backend.write_limits(
            UncoreRatioLimit(min_ratio=14, max_ratio=20), privileged=True
        )
        key = (0, 0)
        assert backend._min_khz[key] == 14 * 100_000
        assert backend._max_khz[key] == 20 * 100_000
        assert backend.read_limits(0, 0) == UncoreRatioLimit(14, 20)

    def test_write_latency_accumulates(self):
        node = make_node("sysfs")
        backend = node.uncore_backend
        assert backend.write_latency_s == 0.0
        backend.write_limits(backend.silicon_range(), privileged=True)
        n_files = 2 * len(backend.domains())  # min + max file per die
        assert backend.write_latency_s == pytest.approx(n_files * 250e-6)


# -- MSR regression: backend == direct register path ------------------------


class TestMsrRegression:
    def test_backend_matches_direct_register_writes(self):
        via_backend, direct = Node(SD530), Node(SD530)
        for limits in (
            UncoreRatioLimit(min_ratio=14, max_ratio=20),
            UncoreRatioLimit(min_ratio=12, max_ratio=12),
            UncoreRatioLimit(min_ratio=1, max_ratio=100),  # raw bits kept
        ):
            via_backend.set_uncore_limits(limits, privileged=True)
            for s in direct.sockets:
                s.msr.write_uncore_limits(limits, privileged=True)
            for sa, sb in zip(via_backend.sockets, direct.sockets):
                assert sa.msr.read(MSR_UNCORE_RATIO_LIMIT) == sb.msr.read(
                    MSR_UNCORE_RATIO_LIMIT
                )
                assert sa.msr.read_uncore_limits() == sb.msr.read_uncore_limits()
                assert sa.uncore.limits == sb.uncore.limits
                assert sa.uncore.current_ratio == sb.uncore.current_ratio
                assert sa.msr.write_generation == sb.msr.write_generation

    def test_msr_backend_never_bumps_its_own_generation(self):
        node = Node(SD530)
        node.set_uncore_limits(
            UncoreRatioLimit(min_ratio=15, max_ratio=22), privileged=True
        )
        # the socket MSRs already count writes; double-counting would
        # needlessly invalidate batched plans.
        assert node.uncore_backend.write_generation == 0
        assert all(s.msr.write_generation > 0 for s in node.sockets)
