"""Node model: power assembly, sensors, UFS integration."""

import pytest

from repro.errors import HardwareError
from repro.hw.msr import UncoreRatioLimit
from repro.hw.node import GPU_NODE, SD530, Cluster, Node, OperatingPoint


def busy_op(node: Node, **overrides) -> OperatingPoint:
    kwargs = dict(
        n_active_cores=node.config.n_cores,
        activity=1.0,
        vpi=0.0,
        traffic_gbs=30.0,
        effective_core_ghz=2.4,
        uncore_demand=0.0,
    )
    kwargs.update(overrides)
    return OperatingPoint(**kwargs)


class TestPowerAssembly:
    def test_dc_is_sum_of_components(self, node):
        p = node.power(busy_op(node))
        assert p.dc_w == pytest.approx(
            sum(p.pck_w) + p.dram_w + p.platform_w + p.gpus_w
        )

    def test_two_symmetric_sockets(self, node):
        p = node.power(busy_op(node))
        assert len(p.pck_w) == 2
        assert p.pck_w[0] == pytest.approx(p.pck_w[1])

    def test_no_gpus_on_sd530(self, node):
        assert node.power(busy_op(node)).gpus_w == 0.0

    def test_gpu_node_includes_boards(self, gpu_node):
        op = busy_op(gpu_node, n_active_cores=1, gpus_busy=1, gpu_utilisation=0.5)
        p = gpu_node.power(op)
        # one busy at 0.5 utilisation + one idle
        assert p.gpus_w > 2 * 25.0

    def test_too_many_active_cores_rejected(self, node):
        with pytest.raises(HardwareError):
            node.power(busy_op(node, n_active_cores=100))


class TestAdvance:
    def test_sensors_integrate(self, node):
        p = node.advance(busy_op(node), 10.0)
        assert node.dc_meter.exact_joules == pytest.approx(p.dc_w * 10.0)
        assert node.pck_energy_j == pytest.approx(p.pck_total_w * 10.0)
        assert node.rapl.pck_joules_total() == pytest.approx(
            p.pck_total_w * 10.0, rel=1e-3
        )
        assert node.elapsed_s == pytest.approx(10.0)

    def test_negative_time_rejected(self, node):
        with pytest.raises(HardwareError):
            node.advance(busy_op(node), -1.0)

    def test_frequency_averages_accumulate(self, node):
        node.advance(busy_op(node), 10.0)
        assert 2.3 < node.average_cpu_freq_ghz() < 2.4
        assert node.average_imc_freq_ghz() == pytest.approx(2.4)


class TestFrequencyControl:
    def test_set_core_freq_all_sockets(self, node):
        node.set_core_freq(1.8, privileged=True)
        for s in node.sockets:
            assert s.target_freq_ghz == pytest.approx(1.8)
            assert s.pinned

    def test_set_uncore_limits_all_sockets(self, node):
        node.set_uncore_limits(
            UncoreRatioLimit(min_ratio=12, max_ratio=18), privileged=True
        )
        assert node.uncore_freq_ghz <= 1.8


class TestUfsIntegration:
    def test_unpinned_busy_keeps_max(self, node):
        node.run_ufs(busy_op(node))
        assert node.uncore_freq_ghz == pytest.approx(2.4)

    def test_pinned_spin_socket_sinks(self, gpu_node):
        gpu_node.set_core_freq(2.4, privileged=True)
        op = busy_op(gpu_node, n_active_cores=1, hw_active_fraction=1.0 / 32.0)
        gpu_node.run_ufs(op)
        assert gpu_node.uncore_freq_ghz < 1.8

    def test_msr_limits_bound_controller(self, node):
        node.set_uncore_limits(
            UncoreRatioLimit(min_ratio=12, max_ratio=16), privileged=True
        )
        node.run_ufs(busy_op(node))
        assert node.uncore_freq_ghz == pytest.approx(1.6)


class TestCluster:
    def test_allocates_n_nodes(self):
        cluster = Cluster(SD530, 4)
        assert len(cluster) == 4
        assert [n.node_id for n in cluster] == [0, 1, 2, 3]

    def test_zero_nodes_rejected(self):
        with pytest.raises(HardwareError):
            Cluster(SD530, 0)

    def test_nodes_are_independent(self):
        cluster = Cluster(SD530, 2)
        cluster.nodes[0].set_core_freq(1.2, privileged=True)
        assert cluster.nodes[1].core_target_ghz == pytest.approx(2.4)


class TestNodeConfigs:
    def test_sd530_shape(self):
        assert SD530.n_cores == 40
        assert SD530.n_sockets == 2
        assert not SD530.gpus

    def test_gpu_node_shape(self):
        assert GPU_NODE.n_cores == 32
        assert len(GPU_NODE.gpus) == 2
