"""RAPL package power limit (MSR 0x610) and its enforcement."""

import pytest

from repro.sim.engine import SimulationEngine
from tests.conftest import make_fast_workload


class TestMsrEncoding:
    def test_disabled_by_default(self, node):
        assert node.sockets[0].msr.read_pkg_power_limit_w() is None

    def test_write_read_roundtrip(self, node):
        node.set_pkg_power_limit(120.0, privileged=True)
        assert node.sockets[0].msr.read_pkg_power_limit_w() == pytest.approx(120.0)

    def test_eighth_watt_units(self, node):
        node.set_pkg_power_limit(99.9, privileged=True)
        got = node.sockets[0].msr.read_pkg_power_limit_w()
        assert got == pytest.approx(99.875)  # snapped to 1/8 W

    def test_disable(self, node):
        node.set_pkg_power_limit(120.0, privileged=True)
        node.set_pkg_power_limit(None, privileged=True)
        assert node.sockets[0].msr.read_pkg_power_limit_w() is None

    def test_invalid_limits_rejected(self, node):
        with pytest.raises(ValueError):
            node.set_pkg_power_limit(0.0, privileged=True)
        with pytest.raises(ValueError):
            node.set_pkg_power_limit(9999.0, privileged=True)

    def test_unprivileged_write_denied(self, node):
        from repro.errors import MsrPermissionError

        with pytest.raises(MsrPermissionError):
            node.set_pkg_power_limit(100.0)


class TestEnforcement:
    def run_capped(self, cap_w, **wl_kwargs):
        wl = make_fast_workload(n_iterations=50, **wl_kwargs)
        engine = SimulationEngine(wl, seed=1, noise_sigma=0.0)
        if cap_w is not None:
            for node in engine.cluster:
                node.set_pkg_power_limit(cap_w, privileged=True)
        return engine.run()

    def test_uncapped_socket_exceeds_tight_cap(self):
        free = self.run_capped(None)
        assert free.avg_dc_power_w > 280  # there is something to cap

    def test_cap_throttles_cores_and_power(self):
        free = self.run_capped(None)
        capped = self.run_capped(95.0)
        assert capped.avg_cpu_freq_ghz < free.avg_cpu_freq_ghz - 0.1
        assert capped.avg_dc_power_w < free.avg_dc_power_w
        assert capped.time_s > free.time_s

    def test_cap_actually_respected(self):
        capped = self.run_capped(95.0)
        # per-socket PCK power must be at/below the cap
        per_socket = capped.avg_pck_power_w / 2
        assert per_socket <= 95.0 + 1.0

    def test_generous_cap_changes_nothing(self):
        free = self.run_capped(None)
        roomy = self.run_capped(200.0)
        assert roomy.time_s == pytest.approx(free.time_s, rel=1e-9)

    def test_floor_is_min_frequency(self):
        starved = self.run_capped(30.0)  # unreachably low cap
        assert starved.avg_cpu_freq_ghz <= 1.05


class TestPowercapUfsInteraction:
    def test_lower_uncore_buys_core_headroom(self):
        """The emergent effect: under a tight package cap, pinning the
        uncore low frees budget and the cores run *faster*."""
        wl = make_fast_workload(n_iterations=60)

        def run(pin_uncore):
            engine = SimulationEngine(
                wl, seed=1, noise_sigma=0.0, pin_uncore_ghz=pin_uncore
            )
            for node in engine.cluster:
                node.set_pkg_power_limit(100.0, privileged=True)
            return engine.run()

        uncore_high = run(2.4)
        uncore_low = run(1.4)
        assert uncore_low.avg_cpu_freq_ghz > uncore_high.avg_cpu_freq_ghz + 0.05

    def test_eard_exposes_powercap(self, node):
        from repro.ear.eard import Eard

        eard = Eard(node)
        eard.set_pkg_power_limit(110.0)
        assert node.sockets[0].msr.read_pkg_power_limit_w() == pytest.approx(110.0)
