"""DRAM bandwidth/uncore curve."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.dram import DDR4_2400_12DIMM, DramConfig


class TestBandwidthCurve:
    def test_normalised_at_max_uncore(self):
        assert DDR4_2400_12DIMM.bandwidth_scale(2.4) == pytest.approx(1.0)

    def test_peak_bandwidth_at_max(self):
        assert DDR4_2400_12DIMM.bandwidth_gbs(2.4) == pytest.approx(205.0)

    def test_half_uncore_loses_about_a_quarter(self):
        """Skylake measurements: 2.4 -> 1.2 GHz costs ~25 % of peak."""
        scale = DDR4_2400_12DIMM.bandwidth_scale(1.2)
        assert 0.70 < scale < 0.85

    @given(st.floats(min_value=0.6, max_value=3.0, allow_nan=False))
    def test_monotonically_increasing(self, f):
        cfg = DDR4_2400_12DIMM
        assert cfg.bandwidth_scale(f + 0.1) > cfg.bandwidth_scale(f)

    def test_mild_extrapolation_above_max(self):
        scale = DDR4_2400_12DIMM.bandwidth_scale(2.6)
        assert 1.0 < scale < 1.1

    def test_zero_uncore_rejected(self):
        with pytest.raises(HardwareError):
            DDR4_2400_12DIMM.bandwidth_scale(0.0)

    @given(
        st.floats(min_value=0.3, max_value=2.0),
        st.floats(min_value=1.2, max_value=3.0),
    )
    def test_saturating_shape(self, f_half, f):
        """Marginal gain per GHz decreases as frequency grows."""
        cfg = DramConfig(peak_node_gbs=100.0, f_half_ghz=f_half)
        g1 = cfg.bandwidth_scale(f + 0.1) - cfg.bandwidth_scale(f)
        g2 = cfg.bandwidth_scale(f + 0.6) - cfg.bandwidth_scale(f + 0.5)
        assert g2 < g1


class TestDramPower:
    def test_static_floor(self):
        assert DDR4_2400_12DIMM.power_w(0.0) == pytest.approx(
            DDR4_2400_12DIMM.static_power_w
        )

    def test_traffic_term(self):
        cfg = DDR4_2400_12DIMM
        p = cfg.power_w(100.0)
        assert p == pytest.approx(cfg.static_power_w + 100.0 * cfg.power_w_per_gbs)

    def test_negative_traffic_rejected(self):
        with pytest.raises(HardwareError):
            DDR4_2400_12DIMM.power_w(-1.0)


class TestValidation:
    def test_zero_peak_rejected(self):
        with pytest.raises(HardwareError):
            DramConfig(peak_node_gbs=0.0)

    def test_bad_curve_constants_rejected(self):
        with pytest.raises(HardwareError):
            DramConfig(peak_node_gbs=100.0, f_half_ghz=0.0)
