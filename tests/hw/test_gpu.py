"""GPU power model."""

import pytest

from repro.errors import HardwareError
from repro.hw.gpu import TESLA_V100, GpuModel


class TestPower:
    def test_idle_power(self):
        assert TESLA_V100.power_w(busy=False) == pytest.approx(
            TESLA_V100.idle_power_w
        )

    def test_full_utilisation(self):
        assert TESLA_V100.power_w(busy=True) == pytest.approx(
            TESLA_V100.active_power_w
        )

    def test_partial_utilisation_interpolates(self):
        p = TESLA_V100.power_w(busy=True, utilisation=0.5)
        mid = (TESLA_V100.active_power_w + TESLA_V100.idle_power_w) / 2
        assert p == pytest.approx(mid)

    def test_idle_ignores_utilisation(self):
        assert TESLA_V100.power_w(busy=False, utilisation=0.0) == pytest.approx(
            TESLA_V100.idle_power_w
        )

    def test_utilisation_range_enforced(self):
        with pytest.raises(HardwareError):
            TESLA_V100.power_w(busy=True, utilisation=1.5)


class TestValidation:
    def test_active_below_idle_rejected(self):
        with pytest.raises(HardwareError):
            GpuModel(name="bad", active_power_w=10.0, idle_power_w=20.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(HardwareError):
            GpuModel(name="bad", active_power_w=10.0, idle_power_w=-1.0)
