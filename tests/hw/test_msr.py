"""MSR register file: bit-accurate 0x620, privilege model, hooks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MsrPermissionError, UnknownMsrError
from repro.hw.msr import (
    MSR_IA32_ENERGY_PERF_BIAS,
    MSR_IA32_PERF_CTL,
    MSR_UNCORE_RATIO_LIMIT,
    MsrFile,
    UncoreRatioLimit,
)


class TestUncoreRatioLimitEncoding:
    def test_paper_layout_max_bits_6_0(self):
        """Bits 6:0 hold the max ratio (paper section IV)."""
        limits = UncoreRatioLimit(min_ratio=0, max_ratio=24)
        assert limits.encode() == 24

    def test_paper_layout_min_bits_14_8(self):
        limits = UncoreRatioLimit(min_ratio=12, max_ratio=0)
        assert limits.encode() == 12 << 8

    def test_decode_skylake_default(self):
        # min 1.2 GHz (12) in bits 14:8, max 2.4 GHz (24) in bits 6:0
        value = (12 << 8) | 24
        limits = UncoreRatioLimit.decode(value)
        assert limits.min_ratio == 12
        assert limits.max_ratio == 24

    def test_ghz_views(self):
        limits = UncoreRatioLimit.from_ghz(1.2, 2.4)
        assert limits.min_ghz == pytest.approx(1.2)
        assert limits.max_ghz == pytest.approx(2.4)

    def test_pinned(self):
        assert UncoreRatioLimit(min_ratio=18, max_ratio=18).pinned()
        assert not UncoreRatioLimit(min_ratio=12, max_ratio=24).pinned()

    def test_inverted_range_normalises_to_max(self):
        """The hardware honours the max field when min > max."""
        limits = UncoreRatioLimit(min_ratio=30, max_ratio=20)
        assert limits.min_ghz == pytest.approx(2.0)

    def test_seven_bit_limit_enforced(self):
        with pytest.raises(ValueError):
            UncoreRatioLimit(min_ratio=0, max_ratio=128)

    @given(
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=127),
    )
    def test_encode_decode_roundtrip(self, mn, mx):
        limits = UncoreRatioLimit(min_ratio=mn, max_ratio=mx)
        assert UncoreRatioLimit.decode(limits.encode()) == limits

    @given(st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_decode_encode_preserves_fields(self, value):
        decoded = UncoreRatioLimit.decode(value)
        redecoded = UncoreRatioLimit.decode(decoded.encode())
        assert decoded == redecoded


class TestMsrFile:
    def make(self) -> MsrFile:
        msr = MsrFile()
        msr.implement(MSR_UNCORE_RATIO_LIMIT, UncoreRatioLimit(12, 24).encode())
        msr.implement(MSR_IA32_PERF_CTL)
        msr.implement(MSR_IA32_ENERGY_PERF_BIAS, 6)
        return msr

    def test_read_reset_value(self):
        msr = self.make()
        assert msr.read_uncore_limits() == UncoreRatioLimit(12, 24)

    def test_unknown_msr_read(self):
        with pytest.raises(UnknownMsrError):
            MsrFile().read(0x1234)

    def test_unknown_msr_write(self):
        with pytest.raises(UnknownMsrError):
            self.make().write(0x1234, 0, privileged=True)

    def test_unprivileged_write_denied(self):
        """Only EARD may write MSRs — the EARL/EARD privilege split."""
        msr = self.make()
        with pytest.raises(MsrPermissionError):
            msr.write(MSR_UNCORE_RATIO_LIMIT, 0)
        # state unchanged after the denied write
        assert msr.read_uncore_limits() == UncoreRatioLimit(12, 24)

    def test_privileged_write(self):
        msr = self.make()
        msr.write_uncore_limits(UncoreRatioLimit(12, 18), privileged=True)
        assert msr.read_uncore_limits().max_ratio == 18

    def test_write_hook_invoked(self):
        msr = self.make()
        seen = []
        msr.on_write(MSR_UNCORE_RATIO_LIMIT, seen.append)
        msr.write_uncore_limits(UncoreRatioLimit(12, 20), privileged=True)
        assert seen == [UncoreRatioLimit(12, 20).encode()]

    def test_hook_not_invoked_on_denied_write(self):
        msr = self.make()
        seen = []
        msr.on_write(MSR_UNCORE_RATIO_LIMIT, seen.append)
        with pytest.raises(MsrPermissionError):
            msr.write(MSR_UNCORE_RATIO_LIMIT, 0)
        assert seen == []

    def test_perf_ctl_ratio_field(self):
        msr = self.make()
        msr.write_perf_ctl_ratio(23, privileged=True)
        assert msr.read_perf_ctl_ratio() == 23
        # ratio lives in bits 15:8
        assert msr.read(MSR_IA32_PERF_CTL) == 23 << 8

    def test_perf_ctl_ratio_range(self):
        msr = self.make()
        with pytest.raises(ValueError):
            msr.write_perf_ctl_ratio(256, privileged=True)

    def test_epb_range(self):
        msr = self.make()
        msr.write_epb(15, privileged=True)
        assert msr.read_epb() == 15
        with pytest.raises(ValueError):
            msr.write_epb(16, privileged=True)

    def test_values_masked_to_64_bits(self):
        msr = self.make()
        msr.write(MSR_IA32_PERF_CTL, (1 << 70) | 42, privileged=True)
        assert msr.read(MSR_IA32_PERF_CTL) == 42

    def test_is_implemented(self):
        msr = self.make()
        assert msr.is_implemented(MSR_IA32_PERF_CTL)
        assert not msr.is_implemented(0xDEAD)
