"""Command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import parallel


@pytest.fixture(autouse=True)
def _isolated_execution(tmp_path, monkeypatch):
    """Point the CLI's persistent cache at a temp dir and restore the
    process-default pool afterwards (``main`` reconfigures it)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    saved = parallel.default_pool()
    yield
    parallel._default_pool = saved


class TestList:
    def test_lists_workloads_and_policies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BT-MZ.C" in out
        assert "HPCG" in out
        assert "min_energy" in out


class TestRun:
    def test_run_all_configs(self, capsys):
        assert main(["run", "-w", "BT-MZ.C", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me_eufs" in out
        assert "time penalty" in out

    def test_run_single_config(self, capsys):
        assert main(["run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me" in out
        assert "me_eufs" not in out

    def test_unknown_workload_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "NOPE"])

    def test_unknown_config_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "BT-MZ.C", "-p", "warp_speed"])

    def test_workload_name_case_insensitive(self, capsys):
        assert main(["run", "-w", "bt-mz.c", "-p", "me", "--scale", "0.2"]) == 0


class TestTable:
    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    def test_kernel_tables_render(self, capsys, number):
        assert main(["table", str(number), "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert f"Table" in out
        assert "BT-MZ.C" in out

    def test_invalid_table(self):
        with pytest.raises(SystemExit):
            main(["table", "9", "--scale", "0.2"])


class TestFigureAndSweep:
    def test_figure4_renders(self, capsys):
        assert main(["figure", "4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "BT-MZ" in out
        assert "me_eufs_0" in out

    def test_invalid_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "2", "--scale", "0.2"])

    def test_sweep_renders(self, capsys):
        assert main(["sweep", "-w", "BT-MZ.C.mpi", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "uncore GHz" in out
        assert "2.40" in out


class TestTimelineAndCampaign:
    def test_timeline_renders(self, capsys):
        # long enough that the descent settles (READY reached)
        assert main(["timeline", "-w", "BT-MZ.C", "--scale", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "frequency timeline" in out
        assert "imc [" in out
        assert "settled uncore ceiling" in out

    def test_export_csv_to_stdout(self, capsys):
        assert main(["export", "2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("kernel,")
        assert "BT-MZ.C" in out

    def test_export_csv_to_file(self, tmp_path, capsys):
        target = str(tmp_path / "t2.csv")
        assert main(["export", "2", "-o", target, "--scale", "0.1"]) == 0
        assert (tmp_path / "t2.csv").read_text().startswith("kernel,")

    def test_export_invalid_table(self):
        with pytest.raises(SystemExit):
            main(["export", "12", "--scale", "0.1"])

    def test_campaign_runs_under_budget_control(self, capsys):
        assert main(["campaign", "--scale", "0.05", "--budget-mj", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "BQCD" in out
        # the tight budget must escalate at some point
        assert "WARNING" in out or "PANIC" in out


class TestExecutionFlags:
    def test_jobs_flag_parallel_run(self, capsys):
        assert main(["--jobs", "2", "run", "-w", "BT-MZ.C", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me_eufs" in out
        assert parallel.default_pool().jobs == 2

    def test_no_cache_disables_caching(self, capsys):
        assert main(["--no-cache", "run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]) == 0
        assert parallel.default_pool().cache is None

    def test_warm_disk_cache_skips_simulations(self, capsys):
        args = ["run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]
        assert main(args) == 0
        first = parallel.default_pool().stats.simulations
        assert first > 0
        assert main(args) == 0  # fresh pool, same cache dir
        assert parallel.default_pool().stats.simulations == 0
        assert parallel.default_pool().cache.stats.disk_hits > 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "-3", "list"])
