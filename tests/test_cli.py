"""Command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import parallel


@pytest.fixture(autouse=True)
def _isolated_execution(tmp_path, monkeypatch):
    """Point the CLI's persistent cache at a temp dir and restore the
    process-default pool afterwards (``main`` reconfigures it)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    saved = parallel.default_pool()
    yield
    parallel._default_pool = saved


class TestList:
    def test_lists_workloads_and_policies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BT-MZ.C" in out
        assert "HPCG" in out
        assert "min_energy" in out


class TestRun:
    def test_run_all_configs(self, capsys):
        assert main(["run", "-w", "BT-MZ.C", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me_eufs" in out
        assert "time penalty" in out

    def test_run_single_config(self, capsys):
        assert main(["run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me" in out
        assert "me_eufs" not in out

    def test_unknown_workload_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "NOPE"])

    def test_unknown_config_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "-w", "BT-MZ.C", "-p", "warp_speed"])

    def test_workload_name_case_insensitive(self, capsys):
        assert main(["run", "-w", "bt-mz.c", "-p", "me", "--scale", "0.2"]) == 0


class TestTable:
    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    def test_kernel_tables_render(self, capsys, number):
        assert main(["table", str(number), "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert f"Table" in out
        assert "BT-MZ.C" in out

    def test_invalid_table(self):
        with pytest.raises(SystemExit):
            main(["table", "9", "--scale", "0.2"])


class TestFigureAndSweep:
    def test_figure4_renders(self, capsys):
        assert main(["figure", "4", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "BT-MZ" in out
        assert "me_eufs_0" in out

    def test_invalid_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "2", "--scale", "0.2"])

    def test_sweep_renders(self, capsys):
        assert main(["sweep", "-w", "BT-MZ.C.mpi", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "uncore GHz" in out
        assert "2.40" in out


class TestTimelineAndCampaign:
    def test_timeline_renders(self, capsys):
        # long enough that the descent settles (READY reached)
        assert main(["timeline", "-w", "BT-MZ.C", "--scale", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "frequency timeline" in out
        assert "imc [" in out
        assert "settled uncore ceiling" in out

    def test_export_csv_to_stdout(self, capsys):
        assert main(["export", "2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("kernel,")
        assert "BT-MZ.C" in out

    def test_export_csv_to_file(self, tmp_path, capsys):
        target = str(tmp_path / "t2.csv")
        assert main(["export", "2", "-o", target, "--scale", "0.1"]) == 0
        assert (tmp_path / "t2.csv").read_text().startswith("kernel,")

    def test_export_invalid_table(self):
        with pytest.raises(SystemExit):
            main(["export", "12", "--scale", "0.1"])

    def test_campaign_runs_under_budget_control(self, capsys):
        assert main(["campaign", "--scale", "0.05", "--budget-mj", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "BQCD" in out
        # the tight budget must escalate at some point
        assert "WARNING" in out or "PANIC" in out


class TestCluster:
    SMALL = ["cluster", "--n-jobs", "4", "--nodes", "4", "--scale", "0.2"]

    def test_single_policy_campaign(self, capsys):
        assert main(self.SMALL + ["-p", "me_eufs"]) == 0
        out = capsys.readouterr().out
        assert "cluster campaign" in out
        assert "min_energy" in out
        assert "eardbd rows" in out

    def test_compare_renders_all_policies(self, capsys):
        assert main(self.SMALL + ["--summary"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "me", "me_eufs"):
            assert name in out
        assert "saving" in out and "penalty" in out

    def test_budget_line_with_eargm(self, capsys):
        assert main(self.SMALL + ["-p", "none", "--budget-mj", "100"]) == 0
        out = capsys.readouterr().out
        assert "budget" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        target = tmp_path / "cluster.json"
        assert main(self.SMALL + ["-p", "me_eufs", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["me_eufs"]["n_jobs"] == 4
        assert len(payload["me_eufs"]["jobs"]) == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(self.SMALL + ["-p", "warp_speed"])


class TestEacct:
    def write_db(self, tmp_path, capsys):
        path = tmp_path / "eacct.json"
        assert (
            main(
                [
                    "cluster",
                    "--n-jobs",
                    "4",
                    "--nodes",
                    "4",
                    "--scale",
                    "0.2",
                    "-p",
                    "me_eufs",
                    "--summary",
                    "--accounting",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()  # discard the campaign rendering
        return path

    def test_lists_all_jobs(self, tmp_path, capsys):
        db = self.write_db(tmp_path, capsys)
        assert main(["eacct", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "4 job(s)" in out
        assert "min_energy" in out

    def test_job_filter(self, tmp_path, capsys):
        db = self.write_db(tmp_path, capsys)
        assert main(["eacct", "--db", str(db), "--job", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 job(s)" in out

    def test_policy_filter_empty(self, tmp_path, capsys):
        db = self.write_db(tmp_path, capsys)
        assert main(["eacct", "--db", str(db), "--policy", "min_time"]) == 0
        out = capsys.readouterr().out
        assert "0 job(s)" in out

    def test_json_round_trips_through_accounting_db(self, tmp_path, capsys):
        import json

        from repro.ear.accounting import AccountingDB

        db_path = self.write_db(tmp_path, capsys)
        assert main(["eacct", "--db", str(db_path), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4
        # the export is exactly what AccountingDB.load sees
        reloaded = AccountingDB.load(db_path)
        assert json.loads(reloaded.to_json()) == records

    def test_missing_db_fails_cleanly(self, tmp_path):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="no accounting database"):
            main(["eacct", "--db", str(tmp_path / "absent.json")])


class TestExecutionFlags:
    def test_jobs_flag_parallel_run(self, capsys):
        assert main(["--jobs", "2", "run", "-w", "BT-MZ.C", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "me_eufs" in out
        assert parallel.default_pool().jobs == 2

    def test_no_cache_disables_caching(self, capsys):
        assert main(["--no-cache", "run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]) == 0
        assert parallel.default_pool().cache is None

    def test_warm_disk_cache_skips_simulations(self, capsys):
        args = ["run", "-w", "BT-MZ.C", "-p", "me", "--scale", "0.2"]
        assert main(args) == 0
        first = parallel.default_pool().stats.simulations
        assert first > 0
        assert main(args) == 0  # fresh pool, same cache dir
        assert parallel.default_pool().stats.simulations == 0
        assert parallel.default_pool().cache.stats.disk_hits > 0

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--jobs", "-3", "list"])


class TestLearn:
    ARGS = ["learn", "--grid", "coarse", "--kernels", "BT-MZ.C,STREAM", "--scale", "0.1"]

    def test_learn_fits_and_saves(self, tmp_path, capsys):
        out = tmp_path / "coeffs"
        jsonl = tmp_path / "events.jsonl"
        assert main([*self.ARGS, "--out", str(out), "--jsonl", str(jsonl)]) == 0
        printed = capsys.readouterr().out
        assert "min R^2" in printed
        assert list(out.glob("*.json"))
        assert jsonl.exists()

    def test_learn_without_saving(self, tmp_path, capsys):
        assert main([*self.ARGS, "--out", "none"]) == 0
        assert "saved to" not in capsys.readouterr().out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit, match="unknown kernel"):
            main(["learn", "--kernels", "WARP-SPEED", "--out", "none"])

    def test_dump_docs_matches_generated_reference(self, capsys):
        import pathlib

        assert main(["--dump-docs"]) == 0
        dumped = capsys.readouterr().out
        repo = pathlib.Path(__file__).resolve().parent.parent
        assert dumped == (repo / "docs" / "CLI.md").read_text()
