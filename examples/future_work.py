#!/usr/bin/env python3
"""The paper's future-work directions, implemented and measured.

Section VIII of the paper names three open items; this reproduction
implements all three, and this script demonstrates each:

1. **min_time_to_solution + eUFS** — the time-first policy with the
   guarded uncore descent bolted on;
2. **increasing the uncore frequency** — min_time's upward search when
   a memory-bound job runs under a conservative site uncore cap;
3. **communication-intensive applications** — the eUFS benefit as a
   function of the MPI time share.

Run:  python examples/future_work.py
"""

from repro import EarConfig, run_workload
from repro.hw.node import SD530
from repro.workloads import communication_workload, synthetic_workload
from repro.workloads.kernels import bt_mz_c_openmp


def part1_min_time_eufs() -> None:
    print("1. min_time_to_solution with the eUFS stage (BT-MZ.C)")
    wl = bt_mz_c_openmp()
    base = run_workload(wl, seed=1)
    for eufs in (False, True):
        cfg = EarConfig(policy="min_time", use_explicit_ufs=eufs)
        r = run_workload(wl, ear_config=cfg, seed=1)
        print(
            f"   min_time{'+eUFS' if eufs else '     '}: "
            f"speedup {100 * (1 - r.time_s / base.time_s):+.1f}%  "
            f"power {100 * (1 - r.avg_dc_power_w / base.avg_dc_power_w):+.1f}%  "
            f"cpu {r.avg_cpu_freq_ghz:.2f}  imc {r.avg_imc_freq_ghz:.2f}"
        )
    print("   -> the descent claws back uncore power without giving up the climb\n")


def part2_uncore_increase() -> None:
    print("2. Raising the uncore: memory-bound job under a 1.8 GHz site cap")
    wl = synthetic_workload(
        name="membound",
        node_config=SD530,
        core_share=0.12,
        unc_share=0.2,
        mem_share=0.6,
        n_iterations=250,
    )
    rows = {
        "uncapped min_time": EarConfig(policy="min_time"),
        "capped  min_energy": EarConfig(policy="min_energy", default_imc_max_ghz=1.8),
        "capped  min_time": EarConfig(policy="min_time", default_imc_max_ghz=1.8),
    }
    for name, cfg in rows.items():
        r = run_workload(wl, ear_config=cfg, seed=1)
        print(f"   {name:<20} time {r.time_s:6.1f}s  imc {r.avg_imc_freq_ghz:.2f} GHz")
    print("   -> min_time detects the constrained ceiling and walks it back up\n")


def part3_communication_sweep() -> None:
    print("3. eUFS benefit vs communication intensity")
    for cf in (0.0, 0.25, 0.5, 0.75):
        wl = communication_workload(
            comm_fraction=cf, node_config=SD530, n_nodes=2, n_iterations=200
        )
        base = run_workload(wl, seed=1)
        eu = run_workload(wl, ear_config=EarConfig(), seed=1)
        print(
            f"   {cf:4.0%} MPI time: energy {100 * (1 - eu.dc_energy_j / base.dc_energy_j):+.1f}%  "
            f"time {100 * (eu.time_s / base.time_s - 1):+.1f}%  "
            f"imc {eu.avg_imc_freq_ghz:.2f} GHz"
        )
    print(
        "   -> the more time ranks spend spinning in MPI, the more uncore\n"
        "      the explicit policy reclaims — the savings *grow* with scale-out"
    )


def main() -> None:
    part1_min_time_eufs()
    part2_uncore_increase()
    part3_communication_sweep()


if __name__ == "__main__":
    main()
