#!/usr/bin/env python3
"""The motivation study (paper section II / figure 1) as a script.

Runs a kernel with the CPU pinned at the policy-selected frequency and
the uncore (a) left to the hardware and (b) pinned at every value from
2.4 GHz down to 1.2 GHz, then prints time penalty, DC power saving and
energy saving per point — the data behind figure 1 and the reason
explicit UFS exists: there is a band where power falls much faster
than time rises, and the hardware does not exploit it.

Run:  python examples/uncore_motivation.py [workload]
      (default BT-MZ.C.mpi; try LU.D.mpi for the memory-bound view)
"""

import sys

from repro.experiments import uncore_sweep
from repro.workloads import bt_mz_c_mpi, lu_d_mpi

WORKLOADS = {
    "BT-MZ.C.mpi": (bt_mz_c_mpi, 2.4),
    "LU.D.mpi": (lu_d_mpi, 2.3),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "BT-MZ.C.mpi"
    try:
        factory, cpu_ghz = WORKLOADS[name]
    except KeyError:
        raise SystemExit(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")

    workload = factory()
    print(f"{workload.name}: fixed-uncore sweep at CPU {cpu_ghz:.1f} GHz")
    sweep = uncore_sweep(workload, cpu_ghz=cpu_ghz, seeds=(1, 2, 3))
    print(f"reference: hardware UFS selected ~{sweep.hw_reference_imc_ghz:.2f} GHz\n")

    print(f"{'uncore':>7} {'time pen':>9} {'power save':>11} {'energy save':>12} {'GB/s pen':>9}")
    best = max(sweep.points, key=lambda p: p.energy_saving)
    for p in sweep.points:
        marker = "  <- best energy" if p is best else ""
        print(
            f"{p.uncore_ghz:6.1f}  {100 * p.time_penalty:8.2f}% "
            f"{100 * p.power_saving:10.2f}% {100 * p.energy_saving:11.2f}% "
            f"{100 * p.gbs_penalty:8.2f}%{marker}"
        )

    print(
        f"\nThe energy-optimal uncore frequency is {best.uncore_ghz:.1f} GHz — "
        f"{sweep.hw_reference_imc_ghz - best.uncore_ghz:.1f} GHz below what the "
        "hardware chose. That gap is what the explicit-UFS policy harvests."
    )


if __name__ == "__main__":
    main()
