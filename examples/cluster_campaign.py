#!/usr/bin/env python3
"""A full cluster campaign: accounting and the energy-control service.

Runs the paper's application list under ME+eU, records every job in the
accounting database (EAR's ``eacct`` service) and feeds the consumption
into EARGM, the global energy manager, against a cluster energy budget
— exercising all three EAR services (optimisation, accounting, control)
in one script.

Run:  python examples/cluster_campaign.py
"""

from repro import AccountingDB, EarConfig, Eargm, EargmConfig, run_workload
from repro.ear.accounting import JobRecord, NodeJobRecord
from repro.experiments.tables import app_thresholds
from repro.workloads import mpi_applications


def main() -> None:
    db = AccountingDB()
    # a deliberately tight budget so the campaign crosses warning levels
    eargm = Eargm(EargmConfig(budget_j=1.35e7, horizon_s=4500.0))

    print(f"{'job':>4} {'application':<12} {'nodes':>5} {'time':>8} {'energy':>10} "
          f"{'avg power':>10} {'budget':>9}")
    for workload in mpi_applications():
        cfg = EarConfig(cpu_policy_th=app_thresholds(workload.name))
        result = run_workload(workload, ear_config=cfg, seed=1)

        job_id = db.new_job_id()
        db.insert(
            JobRecord(
                job_id=job_id,
                workload=workload.name,
                policy=cfg.policy,
                cpu_policy_th=cfg.cpu_policy_th,
                unc_policy_th=cfg.unc_policy_th,
                nodes=tuple(
                    NodeJobRecord(
                        node_id=n.node_id,
                        seconds=result.time_s,
                        dc_energy_j=n.dc_energy_j,
                        avg_cpu_freq_ghz=n.avg_cpu_freq_ghz,
                        avg_imc_freq_ghz=n.avg_imc_freq_ghz,
                    )
                    for n in result.nodes
                ),
            )
        )
        level = eargm.report(result.dc_energy_j, result.time_s)
        print(
            f"{job_id:>4} {workload.name:<12} {workload.n_nodes:>5} "
            f"{result.time_s:7.1f}s {result.dc_energy_j / 1e6:8.2f}MJ "
            f"{result.avg_dc_power_w:9.1f}W {level.name:>9}"
        )

    print("\n--- eacct summary -------------------------------------------")
    total_wh = sum(r.dc_energy_wh for r in db.jobs())
    print(f"jobs: {len(db.jobs())}   campaign energy: {total_wh:.0f} Wh")
    heaviest = max(db.jobs(), key=lambda r: r.dc_energy_j)
    print(
        f"heaviest job: {heaviest.workload} "
        f"({heaviest.dc_energy_j / 1e6:.1f} MJ over {len(heaviest.nodes)} nodes)"
    )
    print(
        f"EARGM: consumed {eargm.consumed_j / 1e6:.1f} MJ of "
        f"{eargm.config.budget_j / 1e6:.0f} MJ budget -> {eargm.level().name}; "
        f"recommended default-frequency cap: "
        f"{eargm.recommended_max_pstate_offset()} P-state(s) below nominal"
    )


if __name__ == "__main__":
    main()
