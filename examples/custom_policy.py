#!/usr/bin/env python3
"""Writing a custom energy policy plugin.

EAR's policies are plugins behind a small API (the paper: "Given that
EARL defines a policy API and a plugin mechanism, different policies
can be easily evaluated").  This example implements and evaluates a
*memory-aware static* policy: one shot, no iteration — it reads the
first signature, classifies the application by its TPI, and picks a
(CPU, uncore) pair from a fixed table.  A deliberately simple contrast
to min_energy's model-driven search; on clearly-classified workloads it
gets most of the saving in a single step, but it has no guard, so a
misclassified workload pays more than the 5 % budget.

Run:  python examples/custom_policy.py
"""

from repro import EarConfig, run_workload
from repro.ear.policies import (
    NodeFreqs,
    PolicyPlugin,
    PolicyState,
    register_policy,
)
from repro.workloads import bt_mz_c_openmp, hpcg, sp_mz_c_openmp


@register_policy("static_classifier")
class StaticClassifierPolicy(PolicyPlugin):
    """Classify by TPI once, apply a fixed operating point, done."""

    name = "static_classifier"

    #: (tpi threshold, cpu GHz, uncore max GHz) — first match wins.
    TABLE = (
        (0.05, 1.9, 2.4),  # strongly memory-bound: deep DVFS, uncore up
        (0.01, 2.2, 2.2),  # mixed: moderate both
        (0.00, 2.4, 1.9),  # CPU-bound: nominal clock, uncore down
    )

    def __init__(self, ctx):
        self.ctx = ctx
        self._choice: NodeFreqs | None = None

    def node_policy(self, sig):
        for tpi_floor, cpu, imc in self.TABLE:
            if sig.tpi >= tpi_floor:
                self._choice = NodeFreqs(
                    cpu_ghz=cpu, imc_max_ghz=imc, imc_min_ghz=self.ctx.imc_min_ghz
                )
                break
        return PolicyState.READY, self._choice

    def validate(self, sig):
        return True  # static: never re-evaluates (that's the trade-off)

    def default_freqs(self):
        return NodeFreqs(
            cpu_ghz=self.ctx.pstates.nominal_ghz,
            imc_max_ghz=self.ctx.imc_max_ghz,
            imc_min_ghz=self.ctx.imc_min_ghz,
        )


def main() -> None:
    print(f"{'workload':<10} {'policy':<18} {'time pen':>9} {'energy save':>12} {'cpu':>5} {'imc':>5}")
    for factory in (bt_mz_c_openmp, sp_mz_c_openmp, hpcg):
        workload = factory()
        base = run_workload(workload, seed=1)
        for policy in ("min_energy", "static_classifier"):
            r = run_workload(
                workload, ear_config=EarConfig(policy=policy), seed=1
            )
            print(
                f"{workload.name:<10} {policy:<18} "
                f"{100 * (r.time_s / base.time_s - 1):8.1f}% "
                f"{100 * (1 - r.dc_energy_j / base.dc_energy_j):11.1f}% "
                f"{r.avg_cpu_freq_ghz:5.2f} {r.avg_imc_freq_ghz:5.2f}"
            )
    print(
        "\nThe static policy is competitive when the classification is right\n"
        "but has no guard and no iteration — min_energy's measured descent\n"
        "is what keeps the penalty bounded on every workload."
    )


if __name__ == "__main__":
    main()
