#!/usr/bin/env python3
"""Quickstart: run one kernel under EAR's three standard configurations.

Reproduces the paper's core comparison on the BT-MZ class C kernel:

* ``none``    — nominal frequency, hardware UFS (the baseline),
* ``me``      — min_energy_to_solution, hardware UFS ("ME"),
* ``me_eufs`` — min_energy_to_solution + explicit UFS ("ME+eU",
  the paper's contribution).

Run:  python examples/quickstart.py
"""

from repro import EarConfig, run_workload
from repro.workloads import bt_mz_c_openmp


def main() -> None:
    workload = bt_mz_c_openmp()
    print(f"Workload: {workload.name} — {workload.description}")
    print(f"Nodes: {workload.n_nodes}, reference time ~{workload.total_ref_time_s:.0f} s\n")

    configs = {
        "none (nominal + HW UFS)": None,
        "ME   (min_energy, HW UFS)": EarConfig(use_explicit_ufs=False),
        "ME+eU (min_energy + explicit UFS)": EarConfig(),
    }

    results = {
        name: run_workload(workload, ear_config=cfg, seed=1)
        for name, cfg in configs.items()
    }
    baseline = results["none (nominal + HW UFS)"]

    print(f"{'configuration':<36} {'time':>8} {'power':>8} {'energy':>9} {'CPU':>5} {'IMC':>5}")
    for name, r in results.items():
        print(
            f"{name:<36} {r.time_s:7.1f}s {r.avg_dc_power_w:7.1f}W "
            f"{r.dc_energy_j / 1e3:8.1f}kJ {r.avg_cpu_freq_ghz:5.2f} {r.avg_imc_freq_ghz:5.2f}"
        )

    eufs = results["ME+eU (min_energy + explicit UFS)"]
    print(
        f"\nME+eU vs baseline: "
        f"{100 * (1 - eufs.dc_energy_j / baseline.dc_energy_j):+.1f}% energy, "
        f"{100 * (eufs.time_s / baseline.time_s - 1):+.1f}% time, "
        f"uncore {baseline.avg_imc_freq_ghz:.2f} -> {eufs.avg_imc_freq_ghz:.2f} GHz"
    )

    print("\nPolicy decisions on node 0 (the figure-2 state machine at work):")
    for d in eufs.decisions[:10]:
        state = d.policy_state.name if d.policy_state else "validate"
        freqs = (
            f"cpu {d.freqs.cpu_ghz:.1f}  imc_max {d.freqs.imc_max_ghz:.1f}"
            if d.freqs
            else ""
        )
        print(f"  t={d.at_s:6.1f}s  {state:<9} {freqs}")


if __name__ == "__main__":
    main()
