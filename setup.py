"""Setuptools shim.

The environment is offline and has no `wheel` package, so PEP 660
editable installs (which build a wheel) cannot run; this shim lets
`pip install -e . --no-build-isolation` fall back to the legacy
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
