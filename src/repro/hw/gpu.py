"""GPU device model for the CUDA kernel experiments.

The paper's CUDA runs use nodes with two NVIDIA Tesla V100 where the
kernel occupies *one* GPU and one host core busy-waits; the second GPU's
power "is automatically reduced by the NVIDIA driver".  The policies
never touch the GPU — it only matters as (a) a node power contribution
insensitive to CPU/uncore frequency and (b) the reason the host-side
signature shows near-zero memory traffic.

The model is therefore deliberately simple: an active GPU burns its
``active_power_w`` while a kernel is resident; an idle GPU ramps down to
``idle_power_w`` after the driver's persistence timeout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareError

__all__ = ["GpuModel", "TESLA_V100"]


@dataclass(frozen=True)
class GpuModel:
    """Power behaviour of one GPU board.

    Attributes
    ----------
    name:
        Device name, for reports.
    active_power_w:
        Board power while executing kernels (well below TDP for the
        NAS-GPU kernels, which do not saturate the device).
    idle_power_w:
        Board power after the driver ramps an unused device down.
    sm_clock_ghz:
        Nominal SM clock; GPU execution time in the workload profiles is
        defined at this clock and does not depend on host frequencies.
    """

    name: str
    active_power_w: float
    idle_power_w: float
    sm_clock_ghz: float = 1.38

    def __post_init__(self) -> None:
        if self.active_power_w < self.idle_power_w:
            raise HardwareError(
                f"{self.name}: active power {self.active_power_w} below idle "
                f"power {self.idle_power_w}"
            )
        if self.idle_power_w < 0:
            raise HardwareError("idle power cannot be negative")

    def power_w(self, *, busy: bool, utilisation: float = 1.0) -> float:
        """Board power for a given state.

        ``utilisation`` scales the dynamic part for kernels that do not
        fill the device.
        """
        if not 0.0 <= utilisation <= 1.0:
            raise HardwareError(f"utilisation must be in [0, 1], got {utilisation}")
        if not busy:
            return self.idle_power_w
        return self.idle_power_w + (self.active_power_w - self.idle_power_w) * utilisation


#: Tesla V100 as configured in the paper's GPU nodes (1.38 GHz).  The
#: NAS-GPU kernels do not saturate the device, so per-profile
#: utilisation scales the dynamic part during calibration.
TESLA_V100 = GpuModel(name="NVIDIA Tesla V100", active_power_w=140.0, idle_power_w=25.0)
