"""Compute-node model: sockets + DRAM + GPUs + sensors.

A :class:`Node` is the unit the EAR daemon manages: it owns two (or
more) sockets with their MSR files and uncore domains, the DRAM, any
GPUs, and the power sensors (RAPL per domain, Node Manager DC energy for
the whole node).  The simulation engine drives it with *operating
points* — a description of what the workload is doing right now — and
time intervals; the node turns those into power, energy-counter updates
and frequency accounting.

The DC node power is assembled exactly the way the paper argues it must
be measured: packages + DRAM + constant platform + GPUs, i.e. everything
behind the PSU, not just the RAPL package domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Sequence

from ..errors import HardwareError
from .backends import create_backend
from .dram import DDR4_2400_12DIMM, DramConfig
from .gpu import TESLA_V100, GpuModel
from .ipmi import NodeManagerEnergyCounter
from .power import PowerModelParams, socket_power
from .pstates import XEON_6142M, XEON_6148, XEON_6747P, XEON_E5_2620V4, PStateTable
from .rapl import RaplDomain
from .ufs import UfsController, UfsInputs
from .units import ghz_to_ratio
from .cpu import Socket

__all__ = [
    "OperatingPoint",
    "NodePower",
    "NodeConfig",
    "Node",
    "SD530",
    "GPU_NODE",
    "BROADWELL_NODE",
    "GRANITE_RAPIDS_NODE",
]


@dataclass(frozen=True)
class OperatingPoint:
    """What the workload is doing on a node right now.

    The engine derives one operating point per (phase, iteration)
    segment; all quantities are node-wide and distributed evenly across
    sockets (the paper's workloads are balanced within a node).
    """

    #: cores executing application work across the whole node.
    n_active_cores: int
    #: per-active-core dynamic activity (instruction throughput proxy).
    activity: float
    #: AVX-512 instruction fraction.
    vpi: float
    #: main-memory traffic for the whole node, GB/s.
    traffic_gbs: float
    #: effective core clock being sustained, GHz.
    effective_core_ghz: float
    #: LLC/IMC pressure seen by the HW UFS controller, 0..1.
    uncore_demand: float = 0.0
    #: fraction of cores the UFS monitor counts as truly busy.
    hw_active_fraction: float | None = None
    #: pinned-socket uncore/core follow factor override (None = derive
    #: from the active fraction).
    hw_follow_factor: float | None = None
    #: number of GPUs running kernels.
    gpus_busy: int = 0
    #: utilisation of the busy GPUs.
    gpu_utilisation: float = 1.0


@dataclass(frozen=True)
class NodePower:
    """Instantaneous power decomposition of a node, watts."""

    pck_w: tuple[float, ...]
    dram_w: float
    platform_w: float
    gpus_w: float

    @property
    def pck_total_w(self) -> float:
        """Both sockets' package power, in watts."""
        return sum(self.pck_w)

    @property
    def dc_w(self) -> float:
        """Node DC power: packages, DRAM and platform, in watts."""
        return self.pck_total_w + self.dram_w + self.platform_w + self.gpus_w


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to instantiate identical nodes of one type."""

    name: str
    pstates: PStateTable
    dram: DramConfig
    power: PowerModelParams
    n_sockets: int = 2
    gpus: tuple[GpuModel, ...] = ()
    idle_core_freq_ghz: float | None = None
    #: silicon uncore frequency range (BCLK ratios).
    uncore_max_ratio: int = 24
    uncore_min_ratio: int = 12
    #: uncore control path for this generation — a key into
    #: :data:`repro.hw.backends.BACKEND_NAMES` (``"msr"`` is the
    #: paper's Skylake-SP register path and the default).
    uncore_backend: str = "msr"
    #: uncore dies per package; >1 only on TPMI-era multi-die parts.
    dies_per_socket: int = 1

    @property
    def n_cores(self) -> int:
        """Total cores across the node's sockets."""
        return self.n_sockets * self.pstates.n_cores


#: The paper's main testbed node: Lenovo ThinkSystem SD530,
#: 2x Xeon Gold 6148, 12x8 GB DDR4-2400.
SD530 = NodeConfig(
    name="Lenovo ThinkSystem SD530 (2x Xeon Gold 6148)",
    pstates=XEON_6148,
    dram=DDR4_2400_12DIMM,
    power=PowerModelParams(),
)

#: A Broadwell node like the related work's testbeds ([18], [19]):
#: 2x Xeon E5-2620 v4, 4-channel DDR4-2133.  The smaller ring-bus
#: uncore has a lower dynamic coefficient; no AVX-512.
BROADWELL_NODE = NodeConfig(
    name="Broadwell node (2x Xeon E5-2620 v4)",
    pstates=XEON_E5_2620V4,
    dram=DramConfig(peak_node_gbs=110.0, f_max_ghz=2.7),
    power=PowerModelParams(
        pck_base_w=14.0,
        uncore_dyn_w=8.0,
        platform_w=55.0,
    ),
    uncore_max_ratio=27,
    uncore_min_ratio=12,
)

#: The GPU node used for CUDA kernels: 2x Xeon Gold 6142M + 2x V100.
#: The 16-core die has a smaller mesh, hence the lower uncore coefficient.
GPU_NODE = NodeConfig(
    name="GPU node (2x Xeon Gold 6142M, 2x Tesla V100)",
    pstates=XEON_6142M,
    dram=DDR4_2400_12DIMM,
    power=PowerModelParams(platform_w=60.0, uncore_dyn_w=12.0),
    gpus=(TESLA_V100, TESLA_V100),
)

#: A Granite Rapids node: 2x Xeon 6747P, DDR5, two uncore (compute)
#: dies per package, controlled through the TPMI backend with ELC
#: hints.  The uncore range is wider at both ends than Skylake's
#: (0.8 .. 2.5 GHz) and the mesh spans two dies, hence the larger
#: dynamic uncore coefficient.
GRANITE_RAPIDS_NODE = NodeConfig(
    name="Granite Rapids node (2x Xeon 6747P)",
    pstates=XEON_6747P,
    dram=DramConfig(
        peak_node_gbs=430.0,
        f_half_ghz=1.2,
        f_max_ghz=3.2,
        static_power_w=22.0,
        power_w_per_gbs=0.12,
    ),
    power=PowerModelParams(
        pck_base_w=32.0,
        core_dyn_w=1.55,
        uncore_dyn_w=22.0,
        platform_w=78.0,
    ),
    uncore_max_ratio=25,
    uncore_min_ratio=8,
    uncore_backend="tpmi",
    dies_per_socket=2,
)


class Node:
    """A live compute node instance."""

    def __init__(self, config: NodeConfig, node_id: int = 0) -> None:
        self.config = config
        self.node_id = node_id
        from .uncore import UncoreDomain

        if config.dies_per_socket < 1:
            raise HardwareError(
                f"dies_per_socket must be >= 1, got {config.dies_per_socket}"
            )

        def _die(die_id: int) -> UncoreDomain:
            return UncoreDomain(
                hw_min_ratio=config.uncore_min_ratio,
                hw_max_ratio=config.uncore_max_ratio,
                die_id=die_id,
            )

        self.sockets = [
            Socket(
                pstates=config.pstates,
                socket_id=i,
                idle_core_freq_ghz=config.idle_core_freq_ghz,
                uncore=_die(0),
                extra_dies=tuple(_die(d) for d in range(1, config.dies_per_socket)),
            )
            for i in range(config.n_sockets)
        ]
        #: the generation's uncore control path (limit reads/writes and
        #: the ELC floor all go through this).
        self.uncore_backend = create_backend(config.uncore_backend, self)
        self.rapl = RaplDomain(n_sockets=config.n_sockets)
        self.dc_meter = NodeManagerEnergyCounter()
        self.ufs = UfsController()
        self._elapsed_s = 0.0
        #: exact package-domain energy (no RAPL wrap) — harness ground truth.
        self._pck_energy_j = 0.0

    # -- frequency control (EARD acts through these) -------------------------

    def set_core_freq(self, freq_ghz: float, *, privileged: bool = False) -> None:
        """Pin the core clock on every socket."""
        for s in self.sockets:
            s.set_target_freq(freq_ghz, privileged=privileged)

    def set_uncore_limits(self, limits, *, privileged: bool = False) -> None:
        """Program the uncore limits on every domain, via the backend."""
        self.uncore_backend.write_limits(limits, privileged=privileged)

    def set_pkg_power_limit(
        self, watts: float | None, *, privileged: bool = False
    ) -> None:
        """Arm (or disable) the RAPL PL1 package cap on every socket."""
        for s in self.sockets:
            s.msr.write_pkg_power_limit(watts, privileged=privileged)

    @property
    def core_target_ghz(self) -> float:
        """The programmed (pre-licence) core clock target."""
        return self.sockets[0].target_freq_ghz

    @property
    def uncore_freq_ghz(self) -> float:
        """The uncore's current frequency (socket 0, die mean), in GHz."""
        return self.sockets[0].uncore_freq_ghz

    @property
    def elapsed_s(self) -> float:
        """Simulated time this node has executed, in seconds."""
        return self._elapsed_s

    # -- hardware control loop -------------------------------------------------

    def run_ufs(self, op: OperatingPoint) -> None:
        """Let the HW UFS controller converge for the current workload.

        Called by the engine at segment boundaries; the 10 ms loop
        period is far below segment durations, so the converged target
        is applied directly.
        """
        per_socket_active = op.n_active_cores / len(self.sockets)
        backend = self.uncore_backend
        for si, s in enumerate(self.sockets):
            if op.hw_active_fraction is not None:
                active_frac = op.hw_active_fraction
            else:
                active_frac = min(1.0, per_socket_active / s.n_cores)
            inputs = UfsInputs(
                fastest_active_ratio=(
                    ghz_to_ratio(op.effective_core_ghz) if per_socket_active > 0 else 0
                ),
                active_fraction=active_frac,
                vpi=op.vpi,
                uncore_demand=op.uncore_demand,
                pinned=s.pinned,
                epb=s.msr.read_epb(),
                follow_factor=op.hw_follow_factor,
            )
            # the backend's floor is 0 everywhere except TPMI's ELC,
            # so the MSR path is bit-identical to the pre-backend loop.
            floor = backend.ufs_floor_ratio(inputs)
            for d, dom in enumerate(s.dies):
                limits = backend.read_limits(si, d)
                ratio = self.ufs.target_ratio(
                    inputs,
                    msr_min=max(limits.min_ratio, dom.hw_min_ratio, floor),
                    msr_max=min(limits.max_ratio, dom.hw_max_ratio),
                )
                dom.set_ratio(ratio)

    # -- power & energy ---------------------------------------------------------

    def active_cores_per_socket(self, n_active_cores: int) -> tuple[int, ...]:
        """Distribute node-wide active cores over the sockets.

        The remainder lands on the lowest-numbered sockets (socket 0
        first), so a single active core — the typical GPU-offload host
        pattern — is never rounded away: 1 core on 2 sockets is (1, 0),
        not the (0, 0) that ``round(0.5)`` used to produce.
        """
        if n_active_cores < 0 or n_active_cores > self.config.n_cores:
            raise HardwareError(
                f"{n_active_cores} active cores on a "
                f"{self.config.n_cores}-core node"
            )
        base, rem = divmod(n_active_cores, len(self.sockets))
        return tuple(
            base + (1 if i < rem else 0) for i in range(len(self.sockets))
        )

    def power(self, op: OperatingPoint) -> NodePower:
        """Instantaneous power breakdown at an operating point."""
        per_socket_gbs = op.traffic_gbs / len(self.sockets)
        pck = []
        for s, n_active in zip(
            self.sockets, self.active_cores_per_socket(op.n_active_cores)
        ):
            bd = socket_power(
                self.config.power,
                # a fully idle socket's cores sit at the idle clock, not
                # whatever target happens to be programmed.
                f_core_ghz=op.effective_core_ghz if n_active else s.idle_core_freq_ghz,
                f_uncore_ghz=s.uncore_freq_ghz,
                n_active_cores=n_active,
                n_idle_cores=s.n_cores - n_active,
                activity=op.activity,
                vpi=op.vpi,
                socket_traffic_gbs=per_socket_gbs,
            )
            pck.append(bd.total_w)
        dram_w = self.config.dram.power_w(op.traffic_gbs)
        gpus_w = 0.0
        for i, gpu in enumerate(self.config.gpus):
            gpus_w += gpu.power_w(busy=i < op.gpus_busy, utilisation=op.gpu_utilisation)
        return NodePower(
            pck_w=tuple(pck),
            dram_w=dram_w,
            platform_w=self.config.power.platform_w,
            gpus_w=gpus_w,
        )

    def power_affine(self, op: OperatingPoint) -> tuple[NodePower, tuple[float, ...], float]:
        """Node power as an affine function of memory traffic.

        Returns ``(power at zero traffic, per-socket package slopes,
        DRAM slope)``, all slopes in watts per *node* GB/s, such that
        :meth:`power` at traffic ``g`` decomposes exactly into the
        zero-traffic breakdown plus ``slope * g`` per domain.  The
        batched kernel relies on this: with traffic ``bytes / t``, the
        traffic term contributes a time-invariant energy per iteration,
        so a whole chunk's energy is closed-form in ``sum(t)``.
        """
        p0 = self.power(
            OperatingPoint(
                n_active_cores=op.n_active_cores,
                activity=op.activity,
                vpi=op.vpi,
                traffic_gbs=0.0,
                effective_core_ghz=op.effective_core_ghz,
                uncore_demand=op.uncore_demand,
                hw_active_fraction=op.hw_active_fraction,
                hw_follow_factor=op.hw_follow_factor,
                gpus_busy=op.gpus_busy,
                gpu_utilisation=op.gpu_utilisation,
            )
        )
        n_sockets = len(self.sockets)
        pck_slope = self.config.power.uncore_bw_w_per_gbs / n_sockets
        return (
            p0,
            tuple(pck_slope for _ in range(n_sockets)),
            self.config.dram.power_w_per_gbs,
        )

    def advance(self, op: OperatingPoint, seconds: float) -> NodePower:
        """Spend ``seconds`` at an operating point: integrate all sensors."""
        if seconds < 0:
            raise HardwareError("cannot advance negative time")
        p = self.power(op)
        self.rapl.add_interval(
            pck_watts=list(p.pck_w), dram_watts=p.dram_w, seconds=seconds
        )
        self.dc_meter.integrate(p.dc_w, seconds)
        self._pck_energy_j += p.pck_total_w * seconds
        for s, n_active in zip(
            self.sockets, self.active_cores_per_socket(op.n_active_cores)
        ):
            s.account(
                seconds,
                n_active=n_active,
                effective_ghz=op.effective_core_ghz,
            )
        self._elapsed_s += seconds
        return p

    def advance_energy(
        self,
        *,
        pck_j: Sequence[float],
        dram_j: float,
        dc_j: float,
        n_active_per_socket: Sequence[int],
        effective_ghz: float,
        seconds: float,
    ) -> None:
        """Integrate one interval whose per-domain energies are precomputed.

        The batched kernel evaluates the power model once per chunk (in
        the affine form of :meth:`power_affine`) and commits intervals
        through this method; it is equivalent to :meth:`advance` when
        the energies equal ``power(op) * seconds``.
        """
        if seconds < 0:
            raise HardwareError("cannot advance negative time")
        if seconds == 0:
            return
        for counter, joules in zip(self.rapl.pck, pck_j):
            counter.add_energy(joules)
        self.rapl.dram.add_energy(dram_j)
        self.dc_meter.integrate(dc_j / seconds, seconds)
        self._pck_energy_j += sum(pck_j)
        for s, n_active in zip(self.sockets, n_active_per_socket):
            s.account(seconds, n_active=n_active, effective_ghz=effective_ghz)
        self._elapsed_s += seconds

    # -- aggregated observations ---------------------------------------------

    @property
    def pck_energy_j(self) -> float:
        """Exact package energy since boot (harness ground truth)."""
        return self._pck_energy_j

    def average_cpu_freq_ghz(self) -> float:
        """Node-average CPU frequency over all cores and the whole run."""
        return sum(s.average_freq_ghz() for s in self.sockets) / len(self.sockets)

    def average_imc_freq_ghz(self) -> float:
        """Node-average uncore (IMC) frequency over the whole run."""
        return sum(s.average_uncore_freq_ghz() for s in self.sockets) / len(
            self.sockets
        )


@dataclass
class Cluster:
    """A homogeneous set of nodes allocated to one job."""

    config: NodeConfig
    n_nodes: int
    nodes: list[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise HardwareError("a cluster needs at least one node")
        if not self.nodes:
            self.nodes = [Node(self.config, node_id=i) for i in range(self.n_nodes)]

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
