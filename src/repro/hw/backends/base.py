"""The abstract uncore-control backend interface.

The paper drives the uncore through exactly one mechanism — the
Skylake-SP ``UNCORE_RATIO_LIMIT`` MSR (0x620) — but Intel has shipped
three incompatible control paths across generations:

* the **MSR** path (Haswell-EP through Ice Lake): one package-wide
  min/max ratio register per socket;
* the legacy **sysfs** driver (``intel_uncore_frequency``): one
  directory of kHz-denominated ``min_freq_khz``/``max_freq_khz`` files
  per die, written independently;
* the Granite-Rapids **TPMI** interface: per-die uncore domains with
  die-granular clamping and Efficiency Latency Control (ELC) hints
  biasing the firmware's frequency selection.

A :class:`UncoreBackend` abstracts the differences behind one surface:
domain enumeration, limit read/write, current-ratio observation and
capability flags, so EARD's apply path and the UFS model are written
once and run on any generation.  The MSR implementation wraps today's
register path bit-identically and stays the default.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

from ...telemetry.recorder import NULL_RECORDER, Recorder
from ..msr import UncoreRatioLimit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cpu import Socket
    from ..node import Node
    from ..ufs import UfsInputs

__all__ = ["UncoreBackend"]


class UncoreBackend(ABC):
    """One generation's uncore frequency-limit control path.

    A backend belongs to one :class:`~repro.hw.node.Node` and drives
    that node's :class:`~repro.hw.uncore.UncoreDomain` objects — the
    domains stay the single source of truth for the physics (current
    ratio, accounting); the backend models *how limits reach them*
    (register layout, units, per-die granularity, privileges).

    Class-level capability flags describe what the control path can do:

    ``die_granular``
        Limits can target one die without touching its siblings.  The
        MSR path cannot (0x620 is package-scoped).
    ``writable_min``
        The minimum limit is software-writable.  All three simulated
        paths allow it; a backend for a locked platform would not.
    """

    #: registry key (``"msr"``/``"sysfs"``/``"tpmi"``).
    name: ClassVar[str]
    die_granular: ClassVar[bool]
    writable_min: ClassVar[bool]

    def __init__(self, node: "Node") -> None:
        self.node = node
        #: event sink for ``uncore/limit_write``; the engine swaps in the
        #: node's recorder when telemetry is armed.
        self.telemetry: Recorder = NULL_RECORDER
        #: bumped on every non-MSR limit write; the batched kernel folds
        #: it into its plan-invalidation tag next to the sockets'
        #: :attr:`~repro.hw.msr.MsrFile.write_generation` (MSR-path
        #: writes are already counted there, so :class:`MsrBackend`
        #: leaves this at zero).
        self.write_generation = 0

    # -- enumeration -------------------------------------------------------

    def domains(self) -> tuple[tuple[int, int], ...]:
        """All controllable ``(socket_id, die)`` domains of the node."""
        return tuple(
            (s.socket_id, d)
            for s in self.node.sockets
            for d in range(len(s.dies))
        )

    def silicon_range(self) -> UncoreRatioLimit:
        """The hardware uncore ratio range, as EARD reads it at start-up."""
        return self.read_limits(0, 0)

    # -- limit access ------------------------------------------------------

    @abstractmethod
    def read_limits(self, socket: int, die: int = 0) -> UncoreRatioLimit:
        """The limits currently programmed for one domain."""

    @abstractmethod
    def write_limits(
        self,
        limits: UncoreRatioLimit,
        *,
        privileged: bool = False,
        socket: int | None = None,
        die: int | None = None,
    ) -> None:
        """Program limits; ``socket``/``die`` of None fan out to all.

        Non-die-granular backends ignore ``die`` (every die of the
        targeted socket gets the same limits, as MSR 0x620 does).
        """

    def read_ratio(self, socket: int, die: int = 0) -> int:
        """The ratio a domain is running right now."""
        return self.node.sockets[socket].dies[die].current_ratio

    # -- control-loop hints ------------------------------------------------

    def ufs_floor_ratio(self, inputs: "UfsInputs") -> int:
        """Extra lower bound the control path imposes on the UFS target.

        Zero everywhere except TPMI, whose ELC hints clamp busy domains
        above an efficiency floor.
        """
        return 0

    # -- shared helpers ----------------------------------------------------

    def _emit_limit_write(
        self,
        socket: "Socket",
        die: int,
        old: UncoreRatioLimit | None,
        new: UncoreRatioLimit,
    ) -> None:
        """One ``uncore/limit_write`` event, 1:1 with a landed write.

        Callers read ``old`` (and invoke this at all) only under
        ``telemetry.enabled``, so the clean path stays zero-cost.
        """
        self.telemetry.event(
            "uncore",
            "limit_write",
            backend=self.name,
            socket=socket.socket_id,
            die=die,
            old_min_ratio=None if old is None else old.min_ratio,
            old_max_ratio=None if old is None else old.max_ratio,
            new_min_ratio=new.min_ratio,
            new_max_ratio=new.max_ratio,
        )

    def _target_sockets(self, socket: int | None) -> list["Socket"]:
        if socket is None:
            return list(self.node.sockets)
        return [self.node.sockets[socket]]
