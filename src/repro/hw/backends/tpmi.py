"""The Granite-Rapids TPMI uncore backend (per-die domains + ELC).

Granite Rapids moved uncore control from model-specific registers to
the Topology-Aware Register and PM Capsule Interface (TPMI): each
compute die is its own uncore domain with an independently clampable
min/max ratio, and the firmware's frequency selection is biased by
Efficiency Latency Control (ELC) hints — below a low-utilisation
threshold the domain may sink to its floor ratio, above a high
threshold it is held at or above an efficiency floor so latency-bound
phases are not starved.

The simulation models the parts the EAR policies interact with:
die-granular limit writes (privileged, mailbox-backed), per-die limit
state independent of MSR 0x620, and the ELC floor folded into the UFS
convergence as an extra lower bound when the socket is busy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import MsrPermissionError
from ..msr import UncoreRatioLimit
from .base import UncoreBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ufs import UfsInputs

__all__ = ["TpmiBackend"]


class TpmiBackend(UncoreBackend):
    """Per-die TPMI uncore domains with ELC hints."""

    name = "tpmi"
    die_granular = True
    writable_min = True

    #: ELC utilisation thresholds (fractions of cores busy) and the
    #: efficiency floor as a fraction of the silicon maximum ratio.
    elc_low_threshold = 0.15
    elc_high_threshold = 0.70
    elc_floor_frac = 0.5

    def __init__(self, node) -> None:
        super().__init__(node)
        #: per-domain limit registers, keyed by (socket, die) and
        #: initialised to the silicon range at power-on.
        self._limits: dict[tuple[int, int], UncoreRatioLimit] = {}
        for s in node.sockets:
            for d, dom in enumerate(s.dies):
                self._limits[(s.socket_id, d)] = UncoreRatioLimit(
                    min_ratio=dom.hw_min_ratio, max_ratio=dom.hw_max_ratio
                )

    def read_limits(self, socket: int, die: int = 0) -> UncoreRatioLimit:
        """The TPMI limit register of one die."""
        return self._limits[(self.node.sockets[socket].socket_id, die)]

    def write_limits(
        self,
        limits: UncoreRatioLimit,
        *,
        privileged: bool = False,
        socket: int | None = None,
        die: int | None = None,
    ) -> None:
        """Clamp the targeted dies (die-granular, privileged mailbox)."""
        if not privileged:
            raise MsrPermissionError("TPMI uncore mailbox writes require ring 0")
        for s in self._target_sockets(socket):
            dies = range(len(s.dies)) if die is None else (die,)
            for d in dies:
                dom = s.dies[d]
                old = self._limits[(s.socket_id, d)] if self.telemetry.enabled else None
                lo = min(max(limits.min_ratio, dom.hw_min_ratio), dom.hw_max_ratio)
                hi = min(max(limits.max_ratio, dom.hw_min_ratio), dom.hw_max_ratio)
                new = UncoreRatioLimit(min_ratio=lo, max_ratio=hi)
                self._limits[(s.socket_id, d)] = new
                dom.set_limits(new)
                self.write_generation += 1
                if self.telemetry.enabled:
                    self._emit_limit_write(s, d, old, new)

    def ufs_floor_ratio(self, inputs: "UfsInputs") -> int:
        """The ELC efficiency floor for the observed utilisation.

        A busy socket (active fraction at or above the high threshold)
        is held at ``elc_floor_frac`` of the silicon maximum; below the
        low threshold there is no floor; between the thresholds the
        floor ramps linearly, mirroring how the firmware blends the two
        hints.
        """
        active = min(max(inputs.active_fraction, 0.0), 1.0)
        if active < self.elc_low_threshold:
            return 0
        hw_max = self.node.sockets[0].dies[0].hw_max_ratio
        if active >= self.elc_high_threshold:
            frac = self.elc_floor_frac
        else:
            span = self.elc_high_threshold - self.elc_low_threshold
            frac = self.elc_floor_frac * (active - self.elc_low_threshold) / span
        return int(round(frac * hw_max))
