"""Uncore control backends: one interface over three Intel control paths.

See :mod:`repro.hw.backends.base` for the interface and the design
rationale.  :func:`create_backend` is the registry entry point a
:class:`~repro.hw.node.Node` uses at construction; the backend name
lives on :class:`~repro.hw.node.NodeConfig` (``uncore_backend``,
default ``"msr"``) so it participates in run-cache keys and the
learning phase's per-node-type coefficient resolution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import ConfigError
from .base import UncoreBackend
from .msr import MsrBackend
from .sysfs import SysfsBackend
from .tpmi import TpmiBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..node import Node

__all__ = [
    "BACKEND_NAMES",
    "MsrBackend",
    "SysfsBackend",
    "TpmiBackend",
    "UncoreBackend",
    "create_backend",
]

_REGISTRY: dict[str, type[UncoreBackend]] = {
    MsrBackend.name: MsrBackend,
    SysfsBackend.name: SysfsBackend,
    TpmiBackend.name: TpmiBackend,
}

#: the valid ``NodeConfig.uncore_backend`` values, registry order.
BACKEND_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def create_backend(name: str, node: "Node") -> UncoreBackend:
    """Instantiate the named backend for one node."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown uncore backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        ) from None
    return cls(node)
