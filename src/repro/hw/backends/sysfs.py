"""The legacy ``intel_uncore_frequency`` sysfs uncore backend.

The pre-TPMI Linux driver exposes one directory per die under
``/sys/devices/system/cpu/intel_uncore_frequency/`` with independent
``min_freq_khz``/``max_freq_khz`` files.  Three semantics differ from
the raw MSR path and are modelled here:

* values are **kHz**, not BCLK ratios — reads floor to the 100 MHz
  ratio grid the silicon actually snaps to;
* min and max are **separate files**, written one syscall each, and
  each die is addressed independently;
* every file write costs a VFS round trip plus the driver's own MSR
  mailbox — orders of magnitude slower than a direct ``wrmsr``.  The
  accumulated cost is tracked in :attr:`SysfsBackend.write_latency_s`
  (and reported per write in telemetry) rather than injected into the
  simulated physics, which the 10 ms-scale UFS loop would not resolve.
"""

from __future__ import annotations

from ...errors import MsrPermissionError
from ..msr import UncoreRatioLimit
from .base import UncoreBackend

__all__ = ["SysfsBackend"]

#: one BCLK ratio step expressed in the driver's kHz unit (100 MHz).
_RATIO_KHZ = 100_000

#: modelled cost of one sysfs file write (VFS + driver mailbox).
_FILE_WRITE_LATENCY_S = 250e-6


class SysfsBackend(UncoreBackend):
    """Per-die kHz min/max files with root-only writes."""

    name = "sysfs"
    die_granular = True
    writable_min = True

    def __init__(self, node) -> None:
        super().__init__(node)
        #: the ``*_freq_khz`` file contents, keyed by (socket, die);
        #: initialised by the driver probe to the silicon range.
        self._min_khz: dict[tuple[int, int], int] = {}
        self._max_khz: dict[tuple[int, int], int] = {}
        for s in node.sockets:
            for d, dom in enumerate(s.dies):
                self._min_khz[(s.socket_id, d)] = dom.hw_min_ratio * _RATIO_KHZ
                self._max_khz[(s.socket_id, d)] = dom.hw_max_ratio * _RATIO_KHZ
        #: accumulated modelled syscall latency of all limit writes.
        self.write_latency_s = 0.0

    def read_limits(self, socket: int, die: int = 0) -> UncoreRatioLimit:
        """Read both files of one die, floored to the ratio grid."""
        key = (self.node.sockets[socket].socket_id, die)
        return UncoreRatioLimit(
            min_ratio=self._min_khz[key] // _RATIO_KHZ,
            max_ratio=self._max_khz[key] // _RATIO_KHZ,
        )

    def write_limits(
        self,
        limits: UncoreRatioLimit,
        *,
        privileged: bool = False,
        socket: int | None = None,
        die: int | None = None,
    ) -> None:
        """Write min/max files on the targeted dies.

        The driver clamps stored values into the silicon range (unlike
        the raw MSR, which stores any 7-bit pattern and leaves clamping
        to the hardware control loop).
        """
        if not privileged:
            raise MsrPermissionError(
                "intel_uncore_frequency sysfs files are root-writable only"
            )
        for s in self._target_sockets(socket):
            dies = range(len(s.dies)) if die is None else (die,)
            for d in dies:
                dom = s.dies[d]
                old = self.read_limits(s.socket_id, d) if self.telemetry.enabled else None
                lo = min(max(limits.min_ratio, dom.hw_min_ratio), dom.hw_max_ratio)
                hi = min(max(limits.max_ratio, dom.hw_min_ratio), dom.hw_max_ratio)
                # two independent file writes, max first like the driver
                # (raising max before min never produces min > max).
                self._max_khz[(s.socket_id, d)] = hi * _RATIO_KHZ
                self._min_khz[(s.socket_id, d)] = lo * _RATIO_KHZ
                self.write_latency_s += 2 * _FILE_WRITE_LATENCY_S
                dom.set_limits(UncoreRatioLimit(min_ratio=lo, max_ratio=hi))
                self.write_generation += 1
                if self.telemetry.enabled:
                    self._emit_limit_write(
                        s, d, old, self.read_limits(s.socket_id, d)
                    )
