"""The Skylake-SP MSR 0x620 uncore backend (the paper's control path)."""

from __future__ import annotations

from ..msr import UncoreRatioLimit
from .base import UncoreBackend

__all__ = ["MsrBackend"]


class MsrBackend(UncoreBackend):
    """Package-scoped ``UNCORE_RATIO_LIMIT`` control, bit-identical to
    the pre-backend register path.

    Reads and writes go straight through each socket's
    :class:`~repro.hw.msr.MsrFile`; the register's write hook applies
    the limits to the socket's uncore domain exactly as before, and the
    MSR's own ``write_generation`` keeps invalidating the batched
    kernel's plans, so every existing golden is unchanged.
    """

    name = "msr"
    #: 0x620 is one register per package — no per-die addressing.
    die_granular = False
    writable_min = True

    def read_limits(self, socket: int, die: int = 0) -> UncoreRatioLimit:
        """Decode the socket's 0x620 register (die index is ignored)."""
        return self.node.sockets[socket].msr.read_uncore_limits()

    def write_limits(
        self,
        limits: UncoreRatioLimit,
        *,
        privileged: bool = False,
        socket: int | None = None,
        die: int | None = None,
    ) -> None:
        """Write 0x620 on the targeted sockets (``die`` is ignored)."""
        for s in self._target_sockets(socket):
            if self.telemetry.enabled:
                old = s.msr.read_uncore_limits()
                s.msr.write_uncore_limits(limits, privileged=privileged)
                self._emit_limit_write(s, 0, old, s.msr.read_uncore_limits())
            else:
                s.msr.write_uncore_limits(limits, privileged=privileged)
