"""Simulated Model Specific Register (MSR) file.

EAR manipulates the hardware exclusively through MSRs (via ``msr-tools``
or the ``/dev/cpu/*/msr`` interface), so the simulation reproduces that
interface faithfully:

* ``UNCORE_RATIO_LIMIT`` (0x620) — the register at the heart of the
  paper.  Bits 6:0 hold the **maximum** uncore ratio and bits 14:8 the
  **minimum** uncore ratio (multiples of the 100 MHz BCLK).  Writing
  the same value to both fields pins the uncore; narrowing the range
  constrains the hardware UFS control loop.
* ``IA32_PERF_CTL`` (0x199) — target core ratio in bits 15:8.
* RAPL energy status registers (0x611 package, 0x619 DRAM) — 32-bit
  wrapping energy counters in units defined by 0x606.
* ``IA32_ENERGY_PERF_BIAS`` (0x1B0) — the EPB hint that biases the
  hardware UFS heuristic (section IV of the paper).

Writes require the *privileged* flag — on a real cluster only the EAR
daemon (EARD) runs with enough rights to touch MSRs, and the simulation
keeps that split: the EARL policy code never writes an MSR directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..errors import MsrPermissionError, UnknownMsrError
from .units import ghz_to_ratio, ratio_to_ghz

__all__ = [
    "MSR_UNCORE_RATIO_LIMIT",
    "MSR_PKG_POWER_LIMIT",
    "RAPL_POWER_UNIT_W",
    "MSR_IA32_PERF_CTL",
    "MSR_IA32_PERF_STATUS",
    "MSR_RAPL_POWER_UNIT",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_DRAM_ENERGY_STATUS",
    "MSR_IA32_ENERGY_PERF_BIAS",
    "UncoreRatioLimit",
    "MsrFile",
]

MSR_IA32_PERF_CTL = 0x199
MSR_IA32_PERF_STATUS = 0x198
MSR_IA32_ENERGY_PERF_BIAS = 0x1B0
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_DRAM_ENERGY_STATUS = 0x619
MSR_UNCORE_RATIO_LIMIT = 0x620

#: RAPL power-limit unit: 1/8 W (PL1 field, bits 14:0; enable bit 15).
RAPL_POWER_UNIT_W = 0.125

_MASK64 = (1 << 64) - 1

_UNCORE_MAX_SHIFT = 0
_UNCORE_MAX_MASK = 0x7F
_UNCORE_MIN_SHIFT = 8
_UNCORE_MIN_MASK = 0x7F


@dataclass(frozen=True)
class UncoreRatioLimit:
    """Decoded view of MSR 0x620.

    ``min_ratio``/``max_ratio`` are BCLK multiples: ratio 24 = 2.4 GHz.
    The hardware interprets an inverted range (min > max) by honouring
    the max field, so the decoder normalises it the same way.
    """

    min_ratio: int
    max_ratio: int

    def __post_init__(self) -> None:
        for name, r in (("min_ratio", self.min_ratio), ("max_ratio", self.max_ratio)):
            if not 0 <= r <= _UNCORE_MAX_MASK:
                raise ValueError(f"{name}={r} does not fit in 7 bits")

    @property
    def min_ghz(self) -> float:
        """The encoded minimum uncore frequency, in GHz."""
        return ratio_to_ghz(min(self.min_ratio, self.max_ratio))

    @property
    def max_ghz(self) -> float:
        """The encoded maximum uncore frequency, in GHz."""
        return ratio_to_ghz(self.max_ratio)

    def encode(self) -> int:
        """Pack into the 64-bit register layout (bits 6:0 max, 14:8 min)."""
        return ((self.min_ratio & _UNCORE_MIN_MASK) << _UNCORE_MIN_SHIFT) | (
            (self.max_ratio & _UNCORE_MAX_MASK) << _UNCORE_MAX_SHIFT
        )

    @classmethod
    def decode(cls, value: int) -> "UncoreRatioLimit":
        """Unpack from the 64-bit register layout."""
        max_ratio = (value >> _UNCORE_MAX_SHIFT) & _UNCORE_MAX_MASK
        min_ratio = (value >> _UNCORE_MIN_SHIFT) & _UNCORE_MIN_MASK
        return cls(min_ratio=min_ratio, max_ratio=max_ratio)

    @classmethod
    def from_ghz(cls, min_ghz: float, max_ghz: float) -> "UncoreRatioLimit":
        """Build limits from frequencies in GHz (snapped to 100 MHz)."""
        return cls(min_ratio=ghz_to_ratio(min_ghz), max_ratio=ghz_to_ratio(max_ghz))

    def pinned(self) -> bool:
        """True when min == max, i.e. the uncore frequency is fixed."""
        return self.min_ratio == self.max_ratio


@dataclass
class MsrFile:
    """One socket's MSR register file.

    The file starts with every implemented register present (reset
    values must be seeded by the socket model) and rejects access to
    unknown addresses, like the real ``/dev/cpu/N/msr`` driver returns
    ``EIO`` for unimplemented MSRs.

    Write hooks let the socket model react immediately to a write (for
    instance re-clamping the uncore frequency when 0x620 changes),
    mirroring how an MSR write takes effect on real silicon.
    """

    registers: Dict[int, int] = field(default_factory=dict)
    _write_hooks: Dict[int, Callable[[int], None]] = field(default_factory=dict)
    #: bumped on every successful write.  Cheap cache-invalidation tag:
    #: anything derived from register state (the batched kernel's
    #: per-node physics plans) is stale iff this changed.
    write_generation: int = 0

    def implement(self, address: int, reset_value: int = 0) -> None:
        """Declare an MSR as implemented with a reset value."""
        self.registers[address] = reset_value & _MASK64

    def is_implemented(self, address: int) -> bool:
        """Whether this model implements the given MSR address."""
        return address in self.registers

    def on_write(self, address: int, hook: Callable[[int], None]) -> None:
        """Register a side-effect hook invoked after a successful write."""
        self._write_hooks[address] = hook

    def read(self, address: int) -> int:
        """Read an MSR (no privilege needed, like ``rdmsr``)."""
        try:
            return self.registers[address]
        except KeyError:
            raise UnknownMsrError(f"MSR 0x{address:x} is not implemented") from None

    def write(self, address: int, value: int, *, privileged: bool = False) -> None:
        """Write an MSR; requires the privileged flag (EARD context)."""
        if not privileged:
            raise MsrPermissionError(
                f"unprivileged write to MSR 0x{address:x} denied"
            )
        if address not in self.registers:
            raise UnknownMsrError(f"MSR 0x{address:x} is not implemented")
        self.registers[address] = value & _MASK64
        self.write_generation += 1
        hook = self._write_hooks.get(address)
        if hook is not None:
            hook(value & _MASK64)

    # -- typed helpers for the registers the simulator cares about --------

    def read_uncore_limits(self) -> UncoreRatioLimit:
        """Read UNCORE_RATIO_LIMIT (0x620); no privilege needed."""
        return UncoreRatioLimit.decode(self.read(MSR_UNCORE_RATIO_LIMIT))

    def write_uncore_limits(
        self, limits: UncoreRatioLimit, *, privileged: bool = False
    ) -> None:
        """Write UNCORE_RATIO_LIMIT (0x620); privileged."""
        self.write(MSR_UNCORE_RATIO_LIMIT, limits.encode(), privileged=privileged)

    def read_perf_ctl_ratio(self) -> int:
        """Target core ratio from IA32_PERF_CTL bits 15:8."""
        return (self.read(MSR_IA32_PERF_CTL) >> 8) & 0xFF

    def write_perf_ctl_ratio(self, ratio: int, *, privileged: bool = False) -> None:
        """Write the PERF_CTL target ratio; privileged."""
        if not 0 <= ratio <= 0xFF:
            raise ValueError(f"core ratio {ratio} does not fit in 8 bits")
        self.write(MSR_IA32_PERF_CTL, (ratio & 0xFF) << 8, privileged=privileged)

    def read_pkg_power_limit_w(self) -> float | None:
        """PL1 package power cap in watts; None when disabled."""
        raw = self.read(MSR_PKG_POWER_LIMIT)
        if not raw & (1 << 15):
            return None
        return (raw & 0x7FFF) * RAPL_POWER_UNIT_W

    def write_pkg_power_limit(
        self, watts: float | None, *, privileged: bool = False
    ) -> None:
        """Set (or disable, with ``None``) the PL1 package power cap."""
        if watts is None:
            self.write(MSR_PKG_POWER_LIMIT, 0, privileged=privileged)
            return
        if watts <= 0:
            raise ValueError(f"power limit must be positive, got {watts}")
        ticks = int(round(watts / RAPL_POWER_UNIT_W))
        if ticks > 0x7FFF:
            raise ValueError(f"power limit {watts} W does not fit in the PL1 field")
        self.write(MSR_PKG_POWER_LIMIT, (1 << 15) | ticks, privileged=privileged)

    def read_epb(self) -> int:
        """Energy/Performance Bias hint, 0 (performance) .. 15 (powersave)."""
        return self.read(MSR_IA32_ENERGY_PERF_BIAS) & 0xF

    def write_epb(self, epb: int, *, privileged: bool = False) -> None:
        """Write the energy/performance-bias MSR; privileged."""
        if not 0 <= epb <= 15:
            raise ValueError(f"EPB {epb} out of range 0..15")
        self.write(MSR_IA32_ENERGY_PERF_BIAS, epb, privileged=privileged)
