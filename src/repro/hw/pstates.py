"""CPU P-state tables and AVX-512 licence frequency limits.

EAR numbers P-states the way the Linux ``intel_pstate``/ACPI tables do:
**P-state 0 is the turbo marker**, P-state 1 is the nominal (base)
frequency, and each further P-state lowers the clock by 100 MHz.  The
paper relies on this numbering: on the Xeon Gold 6148 the nominal
frequency is 2.4 GHz and "the maximum CPU frequency for AVX512 when all
the cores are running is 2.2 GHz, corresponding with pstate 3".

Wide-vector (AVX-512) instructions draw enough current that the core
must drop to a *licence frequency* when all cores execute them; the
:class:`PStateTable` records that limit so both the hardware model and
the AVX512-aware energy model (section V-A of the paper) can clamp
requested frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import FrequencyError
from .units import ghz_to_ratio, ratio_to_ghz, snap_ghz

__all__ = [
    "PState",
    "PStateTable",
    "XEON_6148",
    "XEON_6142M",
    "XEON_6747P",
    "XEON_E5_2620V4",
    "TURBO_PSTATE",
]

#: Index of the turbo P-state in every table.
TURBO_PSTATE: int = 0


@dataclass(frozen=True)
class PState:
    """A single CPU performance state.

    Attributes
    ----------
    index:
        EAR-style P-state number (0 = turbo, 1 = nominal, ...).
    freq_ghz:
        The frequency the core clock runs at in this state.  For the
        turbo state this is the *all-core* turbo frequency; single-core
        turbo opportunism is handled by the socket model.
    """

    index: int
    freq_ghz: float

    @property
    def ratio(self) -> int:
        """BCLK multiplier programmed into IA32_PERF_CTL for this state."""
        return ghz_to_ratio(self.freq_ghz)


@dataclass(frozen=True)
class PStateTable:
    """The DVFS capabilities of one processor model.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"Intel Xeon Gold 6148"``.
    nominal_ghz:
        Base (non-turbo) frequency; P-state 1.
    min_ghz:
        Lowest supported core frequency.
    turbo_ghz:
        All-core turbo frequency; P-state 0.
    avx512_max_ghz:
        Licence limit when all cores execute AVX-512.
    n_cores:
        Physical cores per socket (hyper-threading is not modelled; the
        paper does not use it either).
    """

    name: str
    nominal_ghz: float
    min_ghz: float
    turbo_ghz: float
    avx512_max_ghz: float
    n_cores: int
    _freqs: tuple[float, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        if not (self.min_ghz <= self.nominal_ghz <= self.turbo_ghz):
            raise FrequencyError(
                f"{self.name}: inconsistent frequency range "
                f"min={self.min_ghz} nominal={self.nominal_ghz} turbo={self.turbo_ghz}"
            )
        if not (self.min_ghz <= self.avx512_max_ghz <= self.nominal_ghz):
            raise FrequencyError(
                f"{self.name}: AVX512 licence frequency {self.avx512_max_ghz} "
                f"outside [{self.min_ghz}, {self.nominal_ghz}]"
            )
        steps = ghz_to_ratio(self.nominal_ghz) - ghz_to_ratio(self.min_ghz)
        freqs = [self.turbo_ghz] + [
            ratio_to_ghz(ghz_to_ratio(self.nominal_ghz) - i) for i in range(steps + 1)
        ]
        object.__setattr__(self, "_freqs", tuple(freqs))

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._freqs)

    def __iter__(self) -> Iterator[PState]:
        for i, f in enumerate(self._freqs):
            yield PState(i, f)

    @property
    def frequencies_ghz(self) -> Sequence[float]:
        """All frequencies, turbo first, then nominal downward."""
        return self._freqs

    @property
    def nominal_pstate(self) -> int:
        """P-state index of the nominal frequency (always 1)."""
        return 1

    @property
    def min_pstate(self) -> int:
        """P-state index of the lowest frequency."""
        return len(self._freqs) - 1

    @property
    def avx512_pstate(self) -> int:
        """P-state index of the AVX-512 all-core licence frequency."""
        return self.pstate_of(self.avx512_max_ghz)

    # -- conversions -------------------------------------------------------

    def freq_of(self, pstate: int) -> float:
        """Frequency (GHz) of a P-state index."""
        if not 0 <= pstate < len(self._freqs):
            raise FrequencyError(
                f"{self.name}: P-state {pstate} out of range 0..{len(self._freqs) - 1}"
            )
        return self._freqs[pstate]

    def pstate_of(self, freq_ghz: float) -> int:
        """P-state index whose frequency matches ``freq_ghz`` exactly.

        The frequency is snapped to the 100 MHz grid first.
        """
        f = snap_ghz(freq_ghz)
        for i, tf in enumerate(self._freqs):
            if abs(tf - f) < 1e-9:
                return i
        raise FrequencyError(f"{self.name}: no P-state at {freq_ghz} GHz")

    def closest_pstate(self, freq_ghz: float) -> int:
        """P-state whose frequency is closest to ``freq_ghz``.

        Ties resolve to the *higher* frequency (lower index), which is
        the conservative choice for performance.
        """
        best, best_d = 0, float("inf")
        for i, tf in enumerate(self._freqs):
            d = abs(tf - freq_ghz)
            if d < best_d - 1e-12:
                best, best_d = i, d
        return best

    def clamp_pstate(self, pstate: int) -> int:
        """Clamp an arbitrary integer into the valid P-state range."""
        return min(max(pstate, 0), len(self._freqs) - 1)

    def avx512_clamp(self, pstate: int) -> int:
        """Clamp a requested P-state to the AVX-512 licence limit.

        Requesting a state *faster* than the licence frequency while all
        cores run AVX-512 yields the licence state; slower requests are
        honoured.  This mirrors how the hardware throttles and how the
        paper's AVX512 energy model limits the target P-state.
        """
        return max(self.clamp_pstate(pstate), self.avx512_pstate)


#: The 20-core Skylake-SP part used in the paper's main testbed
#: (Lenovo ThinkSystem SD530, 2 sockets per node).
XEON_6148 = PStateTable(
    name="Intel Xeon Gold 6148",
    nominal_ghz=2.4,
    min_ghz=1.0,
    turbo_ghz=2.6,
    avx512_max_ghz=2.2,
    n_cores=20,
)

#: The 16-core part in the GPU nodes used for the CUDA kernels.
XEON_6142M = PStateTable(
    name="Intel Xeon Gold 6142M",
    nominal_ghz=2.6,
    min_ghz=1.0,
    turbo_ghz=2.8,
    avx512_max_ghz=2.2,
    n_cores=16,
)

#: A 48-core Granite Rapids part: the first generation whose uncore is
#: controlled through TPMI per-die domains with ELC hints instead of
#: MSR 0x620.  The deep DVFS floor (800 MHz) and the wide range between
#: nominal and all-core turbo are characteristic of the generation.
XEON_6747P = PStateTable(
    name="Intel Xeon 6747P",
    nominal_ghz=2.7,
    min_ghz=0.8,
    turbo_ghz=3.1,
    avx512_max_ghz=2.3,
    n_cores=48,
)

#: The Broadwell part used by the related work the paper compares with
#: (Gholkar et al. [18], André et al. [19]).  No AVX-512 units, so the
#: licence frequency equals the nominal frequency (the clamp is a no-op)
#: — included to show the policies port across micro-architectures.
XEON_E5_2620V4 = PStateTable(
    name="Intel Xeon E5-2620 v4",
    nominal_ghz=2.1,
    min_ghz=1.2,
    turbo_ghz=2.3,
    avx512_max_ghz=2.1,
    n_cores=8,
)
