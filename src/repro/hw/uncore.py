"""Uncore clock domain of one socket (LLC slices + IMC + mesh).

Since Haswell-EP the uncore runs in its own frequency domain, clamped by
the ``UNCORE_RATIO_LIMIT`` MSR and steered by a hardware control loop
(:mod:`repro.hw.ufs`).  This module holds the domain state: the current
ratio, the MSR-imposed limits and the bookkeeping needed to report the
*average* IMC frequency over time, which is what EAR's signature exposes
and what the paper's Tables IV/VI report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrequencyError
from .msr import UncoreRatioLimit
from .units import BCLK_GHZ, ratio_to_ghz

__all__ = ["UncoreDomain", "UNCORE_MAX_RATIO_DEFAULT", "UNCORE_MIN_RATIO_DEFAULT"]

#: Skylake-SP uncore range used throughout the paper: 2.4 GHz .. 1.2 GHz.
UNCORE_MAX_RATIO_DEFAULT = 24
UNCORE_MIN_RATIO_DEFAULT = 12


@dataclass
class UncoreDomain:
    """Frequency state of one socket's uncore.

    The current ratio always respects the MSR limits; re-clamping happens
    whenever the limits change (the MSR write hook calls :meth:`clamp`).
    Time-weighted accounting of the ratio supports the ``avg IMC
    frequency`` signature metric.
    """

    hw_min_ratio: int = UNCORE_MIN_RATIO_DEFAULT
    hw_max_ratio: int = UNCORE_MAX_RATIO_DEFAULT
    limits: UncoreRatioLimit = field(default=None)  # type: ignore[assignment]
    current_ratio: int = field(default=None)  # type: ignore[assignment]
    _ratio_seconds: float = 0.0
    _seconds: float = 0.0
    #: index within the socket; only non-zero on multi-die parts
    #: (Granite Rapids), where each compute die is its own domain.
    die_id: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.hw_min_ratio <= self.hw_max_ratio:
            raise FrequencyError(
                f"invalid hardware uncore range {self.hw_min_ratio}..{self.hw_max_ratio}"
            )
        if self.limits is None:
            self.limits = UncoreRatioLimit(
                min_ratio=self.hw_min_ratio, max_ratio=self.hw_max_ratio
            )
        if self.current_ratio is None:
            self.current_ratio = self.limits.max_ratio
        self.clamp()

    # -- limit handling ----------------------------------------------------

    def set_limits(self, limits: UncoreRatioLimit) -> None:
        """Apply new MSR limits (intersected with the silicon's range)."""
        self.limits = UncoreRatioLimit(
            min_ratio=max(limits.min_ratio, self.hw_min_ratio),
            max_ratio=min(max(limits.max_ratio, self.hw_min_ratio), self.hw_max_ratio),
        )
        self.clamp()

    def clamp(self) -> None:
        """Force the current ratio inside the active limits."""
        lo = min(self.limits.min_ratio, self.limits.max_ratio)
        hi = self.limits.max_ratio
        self.current_ratio = min(max(self.current_ratio, lo), hi)

    def set_ratio(self, ratio: int) -> None:
        """Controller-requested ratio; silently clamped into the limits."""
        self.current_ratio = ratio
        self.clamp()

    # -- observation ---------------------------------------------------------

    @property
    def freq_ghz(self) -> float:
        """Current uncore frequency in GHz."""
        return ratio_to_ghz(self.current_ratio)

    @property
    def hw_max_ghz(self) -> float:
        """Silicon maximum uncore frequency — the anchor the workload
        time model is referenced against.

        Deliberately ``hw_max_ratio * BCLK_GHZ`` rather than
        :func:`ratio_to_ghz`: the latter rounds to the decimal grid,
        which would shift the anchor the phase profiles were calibrated
        at by one part in 10^16.
        """
        return self.hw_max_ratio * BCLK_GHZ

    def account(self, seconds: float) -> None:
        """Record that the domain spent ``seconds`` at the current ratio."""
        if seconds < 0:
            raise FrequencyError("cannot account negative time")
        self._ratio_seconds += self.current_ratio * seconds
        self._seconds += seconds

    def average_freq_ghz(self) -> float:
        """Time-weighted average uncore frequency since the last reset."""
        if self._seconds <= 0:
            return self.freq_ghz
        return ratio_to_ghz(1) * (self._ratio_seconds / self._seconds)

    def reset_accounting(self) -> None:
        """Zero the uncore frequency-accounting accumulators."""
        self._ratio_seconds = 0.0
        self._seconds = 0.0
