"""DDR4 main-memory model: achievable bandwidth vs. uncore frequency.

The paper's whole premise is that the Integrated Memory Controller and
LLC live in the *uncore* clock domain, so lowering the uncore frequency
lowers the achievable memory bandwidth and raises LLC/memory latency.
Measurements on Skylake-SP (Hackenberg et al., Schöne et al. — the
paper's refs [4], [7]) show achievable bandwidth grows with uncore
frequency and saturates near the DRAM channel limit at the top of the
range.  We model that with a saturating curve

    ``BW(f) = BW_peak * g(f)``,  ``g(f) = (f / (f + f_half)) / norm``

normalised so ``g(f_max) == 1``.  ``f_half`` controls how starved the
memory system gets at low uncore frequency: with the default 1.0 GHz, a
2.4 → 1.2 GHz uncore drop costs about 26 % of peak bandwidth, in line
with the published Skylake measurements.

Latency is modelled in the uncore domain directly by the workload model
(cycles spent in LLC/IMC queues scale with ``1/f_uncore``), so this
module only deals with throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareError

__all__ = ["DramConfig", "DDR4_2400_12DIMM"]


@dataclass(frozen=True)
class DramConfig:
    """Main memory configuration of one node.

    Attributes
    ----------
    peak_node_gbs:
        Achievable node memory bandwidth (GB/s) with the uncore at its
        maximum frequency (e.g. STREAM-like limit, not the theoretical
        pin bandwidth).
    f_half_ghz:
        Half-saturation constant of the bandwidth/uncore curve.
    f_max_ghz:
        Uncore frequency at which ``peak_node_gbs`` is reached; the
        curve is normalised at this point.
    static_power_w:
        DIMM background power for the whole node (refresh, PLLs).
    power_w_per_gbs:
        Incremental DRAM power per GB/s of traffic.
    """

    peak_node_gbs: float
    f_half_ghz: float = 1.0
    f_max_ghz: float = 2.4
    static_power_w: float = 18.0
    power_w_per_gbs: float = 0.16

    def __post_init__(self) -> None:
        if self.peak_node_gbs <= 0:
            raise HardwareError("peak_node_gbs must be positive")
        if self.f_half_ghz <= 0 or self.f_max_ghz <= 0:
            raise HardwareError("bandwidth curve constants must be positive")

    def bandwidth_scale(self, f_uncore_ghz: float) -> float:
        """Fraction of peak bandwidth available at a given uncore clock.

        Monotonically increasing in ``f_uncore_ghz`` and equal to 1.0 at
        ``f_max_ghz``.  Values above ``f_max_ghz`` extrapolate smoothly
        (slightly above 1), matching the mild overclock headroom real
        parts exhibit.
        """
        if f_uncore_ghz <= 0:
            raise HardwareError(f"uncore frequency must be positive, got {f_uncore_ghz}")
        norm = self.f_max_ghz / (self.f_max_ghz + self.f_half_ghz)
        return (f_uncore_ghz / (f_uncore_ghz + self.f_half_ghz)) / norm

    def bandwidth_gbs(self, f_uncore_ghz: float) -> float:
        """Achievable node bandwidth (GB/s) at a given uncore clock."""
        return self.peak_node_gbs * self.bandwidth_scale(f_uncore_ghz)

    def power_w(self, traffic_gbs: float) -> float:
        """DRAM power for the node at a given traffic level."""
        if traffic_gbs < 0:
            raise HardwareError("traffic cannot be negative")
        return self.static_power_w + self.power_w_per_gbs * traffic_gbs


#: 12 x 8 GB dual-rank DDR4-2400 DIMMs per node (the paper's SD530 nodes).
#: ~200 GB/s STREAM-class achievable bandwidth across both sockets; the
#: paper's HPCG run reports 177 GB/s sustained.
DDR4_2400_12DIMM = DramConfig(peak_node_gbs=205.0)
