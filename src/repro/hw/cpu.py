"""Socket (package) model: cores, DVFS target, AVX-512 throttling.

One :class:`Socket` owns an MSR file, an uncore domain and the core
frequency state.  The core clock is set through ``IA32_PERF_CTL``
(userspace-governor style, as EAR does through EARD) and the *effective*
clock a workload sees accounts for the AVX-512 licence limit: with a
high fraction of 512-bit instructions in flight the silicon cannot hold
frequencies above the licence frequency regardless of what was
requested.

The socket also keeps aperf/mperf-style accounting so the node can
report the time-weighted average CPU frequency across all cores —
including halted/idle cores, which is how the paper computes the
"avg CPU frequency" rows of Tables IV and VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrequencyError
from .msr import (
    MSR_DRAM_ENERGY_STATUS,
    MSR_IA32_ENERGY_PERF_BIAS,
    MSR_IA32_PERF_CTL,
    MSR_IA32_PERF_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MSR_UNCORE_RATIO_LIMIT,
    MsrFile,
    UncoreRatioLimit,
)
from .pstates import PStateTable
from .uncore import UncoreDomain
from .units import ghz_to_ratio, ratio_to_ghz

__all__ = ["Socket"]

#: Fraction of cycles even a fully busy core spends halted (interrupts,
#: scheduler ticks); makes the measured average frequency land slightly
#: below the programmed one, as in the paper's tables (2.38 vs 2.40).
_BUSY_HALT_FRACTION = 0.008


@dataclass
class Socket:
    """One processor package.

    Parameters
    ----------
    pstates:
        DVFS capability table of this processor model.
    socket_id:
        Index within the node (0 or 1 on the paper's two-socket nodes).
    idle_core_freq_ghz:
        The frequency idle cores report; with the ``powersave`` governor
        real idle cores sink to the minimum P-state.
    """

    pstates: PStateTable
    socket_id: int = 0
    idle_core_freq_ghz: float | None = None
    msr: MsrFile = field(default_factory=MsrFile)
    uncore: UncoreDomain = field(default_factory=UncoreDomain)
    #: additional uncore dies beyond :attr:`uncore` (die 0); empty on
    #: single-die parts, populated on Granite Rapids-class processors.
    extra_dies: tuple[UncoreDomain, ...] = ()
    #: True when software pinned the core ratio (EAR acquired control);
    #: False means the out-of-the-box HWP governor drives frequency.
    pinned: bool = False
    #: clock the busy cores last sustained (aperf/mperf view); AVX-512
    #: licence throttling makes this differ from the programmed target.
    last_effective_ghz: float = 0.0
    _freq_seconds: float = 0.0
    _seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_core_freq_ghz is None:
            self.idle_core_freq_ghz = self.pstates.min_ghz
        for addr in (
            MSR_IA32_PERF_CTL,
            MSR_IA32_PERF_STATUS,
            MSR_IA32_ENERGY_PERF_BIAS,
            MSR_RAPL_POWER_UNIT,
            MSR_PKG_POWER_LIMIT,
            MSR_PKG_ENERGY_STATUS,
            MSR_DRAM_ENERGY_STATUS,
            MSR_UNCORE_RATIO_LIMIT,
        ):
            self.msr.implement(addr)
        # reset values
        self.msr.write_perf_ctl_ratio(
            ghz_to_ratio(self.pstates.nominal_ghz), privileged=True
        )
        self.msr.write(MSR_IA32_ENERGY_PERF_BIAS, 6, privileged=True)
        self.msr.write_uncore_limits(
            UncoreRatioLimit(
                min_ratio=self.uncore.hw_min_ratio, max_ratio=self.uncore.hw_max_ratio
            ),
            privileged=True,
        )
        self.msr.on_write(MSR_UNCORE_RATIO_LIMIT, self._uncore_limit_written)
        self.msr.on_write(MSR_IA32_PERF_CTL, self._perf_ctl_written)
        self.pinned = False  # the reset writes above do not count as pinning

    # -- MSR side effects ----------------------------------------------------

    def _uncore_limit_written(self, value: int) -> None:
        # 0x620 is package-scoped: one write clamps every die.
        limits = UncoreRatioLimit.decode(value)
        for die in self.dies:
            die.set_limits(limits)

    def _perf_ctl_written(self, value: int) -> None:
        ratio = (value >> 8) & 0xFF
        lo = ghz_to_ratio(self.pstates.min_ghz)
        hi = ghz_to_ratio(self.pstates.turbo_ghz)
        if not lo <= ratio <= hi:
            raise FrequencyError(
                f"core ratio {ratio} outside supported range {lo}..{hi}"
            )
        self.pinned = True
        self.msr.registers[MSR_IA32_PERF_STATUS] = (ratio & 0xFF) << 8

    # -- frequency views -----------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Cores in this socket."""
        return self.pstates.n_cores

    @property
    def dies(self) -> tuple[UncoreDomain, ...]:
        """All uncore dies of this package, die 0 first."""
        return (self.uncore, *self.extra_dies)

    @property
    def uncore_freq_ghz(self) -> float:
        """Mean current uncore frequency over the package's dies.

        With a single die this is exactly ``uncore.freq_ghz``
        (``sum([x]) / 1 == x``), so every MSR-path golden is unchanged.
        """
        dies = self.dies
        return sum(d.freq_ghz for d in dies) / len(dies)

    def average_uncore_freq_ghz(self) -> float:
        """Mean time-weighted average uncore frequency over the dies."""
        dies = self.dies
        return sum(d.average_freq_ghz() for d in dies) / len(dies)

    @property
    def target_freq_ghz(self) -> float:
        """Frequency programmed through IA32_PERF_CTL."""
        return ratio_to_ghz(self.msr.read_perf_ctl_ratio())

    def set_target_freq(self, freq_ghz: float, *, privileged: bool = False) -> None:
        """Program the core clock (EARD privilege required)."""
        self.msr.write_perf_ctl_ratio(ghz_to_ratio(freq_ghz), privileged=privileged)

    def effective_freq_ghz(self, vpi: float) -> float:
        """Clock the cores actually sustain for a given AVX-512 mix.

        A workload with VPI (vector-per-instruction fraction) ``v``
        alternates between scalar cycles at the requested clock and
        AVX-512 cycles capped at the licence clock; the sustained clock
        is the time-weighted harmonic blend of the two.
        """
        if not 0.0 <= vpi <= 1.0:
            raise FrequencyError(f"vpi must be in [0, 1], got {vpi}")
        f_req = self.target_freq_ghz
        f_avx = min(f_req, self.pstates.avx512_max_ghz)
        if vpi == 0.0 or f_avx == f_req:
            return f_req
        return 1.0 / ((1.0 - vpi) / f_req + vpi / f_avx)

    # -- average frequency accounting -----------------------------------------

    def account(self, seconds: float, *, n_active: int, effective_ghz: float) -> None:
        """Record time spent with ``n_active`` cores at ``effective_ghz``.

        The remaining cores are accounted at the idle frequency, so the
        reported average matches "computed using all the cores".
        """
        if seconds < 0:
            raise FrequencyError("cannot account negative time")
        n_active = min(max(n_active, 0), self.n_cores)
        if n_active > 0:
            self.last_effective_ghz = effective_ghz
        busy = effective_ghz * (1.0 - _BUSY_HALT_FRACTION)
        idle = self.idle_core_freq_ghz
        mean = (n_active * busy + (self.n_cores - n_active) * idle) / self.n_cores
        self._freq_seconds += mean * seconds
        self._seconds += seconds
        for die in self.dies:
            die.account(seconds)

    def average_freq_ghz(self) -> float:
        """Time-weighted average core frequency over all cores."""
        if self._seconds <= 0:
            return self.target_freq_ghz
        return self._freq_seconds / self._seconds

    def reset_accounting(self) -> None:
        """Zero the frequency-accounting accumulators."""
        self._freq_seconds = 0.0
        self._seconds = 0.0
        for die in self.dies:
            die.reset_accounting()
