"""Simulated Intel Skylake-SP hardware substrate.

This subpackage replaces the paper's physical testbed (Lenovo SD530
nodes with Xeon Gold 6148 processors) with a calibrated analytic model
exposing the *same interfaces* the EAR framework uses on real silicon:
MSRs for frequency control, RAPL and IPMI/Node Manager counters for
energy, and the hardware UFS control loop the paper's explicit UFS
competes with.
"""

from .backends import (
    BACKEND_NAMES,
    MsrBackend,
    SysfsBackend,
    TpmiBackend,
    UncoreBackend,
    create_backend,
)
from .cpu import Socket
from .dram import DDR4_2400_12DIMM, DramConfig
from .gpu import TESLA_V100, GpuModel
from .ipmi import NodeManagerEnergyCounter
from .msr import (
    MSR_IA32_ENERGY_PERF_BIAS,
    MSR_IA32_PERF_CTL,
    MSR_PKG_ENERGY_STATUS,
    MSR_UNCORE_RATIO_LIMIT,
    MsrFile,
    UncoreRatioLimit,
)
from .node import (
    BROADWELL_NODE,
    GPU_NODE,
    GRANITE_RAPIDS_NODE,
    SD530,
    Cluster,
    Node,
    NodeConfig,
    NodePower,
    OperatingPoint,
)
from .power import PowerModelParams, SocketPowerBreakdown, VoltageCurve, socket_power
from .pstates import (
    TURBO_PSTATE,
    XEON_6142M,
    XEON_6148,
    XEON_6747P,
    XEON_E5_2620V4,
    PState,
    PStateTable,
)
from .rapl import RaplCounter, RaplDomain, SKL_ENERGY_UNIT_J
from .ufs import UfsController, UfsInputs
from .uncore import UNCORE_MAX_RATIO_DEFAULT, UNCORE_MIN_RATIO_DEFAULT, UncoreDomain
from .units import BCLK_GHZ, ghz_to_ratio, ratio_to_ghz, snap_ghz

__all__ = [
    "Socket",
    "DramConfig",
    "DDR4_2400_12DIMM",
    "GpuModel",
    "TESLA_V100",
    "NodeManagerEnergyCounter",
    "MsrFile",
    "UncoreRatioLimit",
    "MSR_UNCORE_RATIO_LIMIT",
    "MSR_IA32_PERF_CTL",
    "MSR_IA32_ENERGY_PERF_BIAS",
    "MSR_PKG_ENERGY_STATUS",
    "Node",
    "NodeConfig",
    "NodePower",
    "OperatingPoint",
    "Cluster",
    "SD530",
    "GPU_NODE",
    "BROADWELL_NODE",
    "GRANITE_RAPIDS_NODE",
    "XEON_E5_2620V4",
    "XEON_6747P",
    "UncoreBackend",
    "MsrBackend",
    "SysfsBackend",
    "TpmiBackend",
    "BACKEND_NAMES",
    "create_backend",
    "PowerModelParams",
    "SocketPowerBreakdown",
    "VoltageCurve",
    "socket_power",
    "PState",
    "PStateTable",
    "XEON_6148",
    "XEON_6142M",
    "TURBO_PSTATE",
    "RaplCounter",
    "RaplDomain",
    "SKL_ENERGY_UNIT_J",
    "UfsController",
    "UfsInputs",
    "UncoreDomain",
    "UNCORE_MAX_RATIO_DEFAULT",
    "UNCORE_MIN_RATIO_DEFAULT",
    "BCLK_GHZ",
    "ghz_to_ratio",
    "ratio_to_ghz",
    "snap_ghz",
]
