"""Per-node hardware-counter bank.

EARL reads performance counters (instructions, cycles, memory
transactions, AVX-512 retirements) through PAPI/perf on real systems;
the simulation accumulates the same quantities from the workload
model's ground truth.  Consumers take :class:`CounterSnapshot` s and
difference them — the same read-and-subtract pattern real counter code
uses — so a window's metrics never depend on when other windows were
taken.

The bank is duck-typed over its input: anything with ``seconds``,
``instructions``, ``cycles``, ``bytes_transferred`` and
``avx512_instructions`` attributes (the workload layer's
``IterationCounters``) can be accumulated, keeping this module free of
upward dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SignatureError
from .units import CACHE_LINE_BYTES

__all__ = ["CounterSnapshot", "CounterBank"]


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable point-in-time view of a node's counters."""

    seconds: float
    iterations: int
    instructions: float
    cycles: float
    bytes_transferred: float
    avx512_instructions: float

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Counter increments since an earlier snapshot."""
        if earlier.seconds > self.seconds + 1e-12:
            raise SignatureError("snapshots differenced in the wrong order")
        return CounterSnapshot(
            seconds=self.seconds - earlier.seconds,
            iterations=self.iterations - earlier.iterations,
            instructions=self.instructions - earlier.instructions,
            cycles=self.cycles - earlier.cycles,
            bytes_transferred=self.bytes_transferred - earlier.bytes_transferred,
            avx512_instructions=self.avx512_instructions - earlier.avx512_instructions,
        )

    # -- derived metrics over a delta window --------------------------------

    @property
    def cpi(self) -> float:
        """Cycles per instruction over the window."""
        if self.instructions <= 0:
            raise SignatureError("empty window: no instructions retired")
        return self.cycles / self.instructions

    @property
    def tpi(self) -> float:
        """Memory transactions (cache lines) per instruction."""
        if self.instructions <= 0:
            raise SignatureError("empty window: no instructions retired")
        return (self.bytes_transferred / CACHE_LINE_BYTES) / self.instructions

    @property
    def gbs(self) -> float:
        """Memory bandwidth over the window, GB/s."""
        if self.seconds <= 0:
            return 0.0
        return self.bytes_transferred / self.seconds / 1e9

    @property
    def vpi(self) -> float:
        """AVX-512 fraction of retired instructions."""
        if self.instructions <= 0:
            raise SignatureError("empty window: no instructions retired")
        return self.avx512_instructions / self.instructions

    @property
    def seconds_per_iteration(self) -> float:
        """Average per-iteration time in the window."""
        if self.iterations <= 0:
            raise SignatureError("empty window: no iterations")
        return self.seconds / self.iterations


class CounterBank:
    """Mutable accumulator fed by the engine after every iteration."""

    def __init__(self) -> None:
        self._seconds = 0.0
        self._iterations = 0
        self._instructions = 0.0
        self._cycles = 0.0
        self._bytes = 0.0
        self._avx512 = 0.0

    def add_iteration(self, counters, *, wall_seconds: float) -> None:
        """Record one application iteration.

        ``wall_seconds`` may exceed the iteration's own compute time
        when the node waited at the global barrier.
        """
        if wall_seconds < counters.seconds - 1e-9:
            raise SignatureError("wall time below compute time")
        self._seconds += wall_seconds
        self._iterations += 1
        self._instructions += counters.instructions
        self._cycles += counters.cycles
        self._bytes += counters.bytes_transferred
        self._avx512 += counters.avx512_instructions

    def add_bulk(
        self,
        *,
        iterations: int,
        wall_seconds: float,
        instructions: float,
        cycles: float,
        bytes_transferred: float,
        avx512_instructions: float,
    ) -> None:
        """Record many iterations in one shot (the batched kernel's flush).

        Equivalent to ``iterations`` calls of :meth:`add_iteration` with
        the pre-summed quantities; the bank only ever exposes sums, so
        per-iteration granularity carries no extra information.
        """
        if iterations < 0 or wall_seconds < 0:
            raise SignatureError("bulk increments cannot be negative")
        self._seconds += wall_seconds
        self._iterations += iterations
        self._instructions += instructions
        self._cycles += cycles
        self._bytes += bytes_transferred
        self._avx512 += avx512_instructions

    def snapshot(self) -> CounterSnapshot:
        """Freeze the accumulated counters into a snapshot."""
        return CounterSnapshot(
            seconds=self._seconds,
            iterations=self._iterations,
            instructions=self._instructions,
            cycles=self._cycles,
            bytes_transferred=self._bytes,
            avx512_instructions=self._avx512,
        )
