"""Intel Node Manager / IPMI DC energy counter.

EAR measures node power from the *DC energy* counter exposed by the
Intel Node Manager through IPMI.  The paper's footnotes pin down its
behaviour precisely: "INM offers an energy counter updated every 1 s"
and "energy readings to compute power have been done every 10 seconds"
— the 1 Hz update granularity is the reason EARL signatures need a
window of at least ten seconds to get a usable average power.

This module models exactly that: energy is integrated continuously by
the simulation, but a *read* only ever returns the value latched at the
last whole-second boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareError

__all__ = ["NodeManagerEnergyCounter"]


@dataclass
class NodeManagerEnergyCounter:
    """DC energy accumulator with 1 s publication granularity.

    ``update_period_s`` is configurable for tests but defaults to the
    Node Manager's 1 second.
    """

    update_period_s: float = 1.0
    _energy_j: float = 0.0
    _now_s: float = 0.0
    _latched_j: float = 0.0
    _latched_at_s: float = 0.0

    def integrate(self, watts: float, seconds: float) -> None:
        """Advance simulated time, accumulating energy at constant power."""
        if seconds < 0:
            raise HardwareError("time cannot go backwards")
        if watts < 0:
            raise HardwareError("DC power cannot be negative")
        start = self._now_s
        self._energy_j += watts * seconds
        self._now_s = start + seconds
        # Latch at every whole update period crossed within the interval.
        last_tick = int(self._now_s / self.update_period_s) * self.update_period_s
        if last_tick > self._latched_at_s:
            # Energy at the latch instant: linear within the interval.
            frac = (last_tick - start) / seconds if seconds > 0 else 0.0
            self._latched_j = self._energy_j - watts * seconds * (1.0 - frac)
            self._latched_at_s = last_tick

    def read_joules(self) -> float:
        """What an IPMI read returns: the last latched value."""
        return self._latched_j

    def read_timestamp_s(self) -> float:
        """Timestamp of the latched value (whole seconds)."""
        return self._latched_at_s

    @property
    def exact_joules(self) -> float:
        """Ground-truth energy — for the experiment harness only; EAR
        never sees this."""
        return self._energy_j

    @property
    def now_s(self) -> float:
        """The meter's notion of current time, in seconds."""
        return self._now_s
