"""Physical units, conversions and small numeric helpers.

The simulator uses a small, consistent set of base units throughout:

========  =============  ======================================
Quantity  Base unit      Notes
========  =============  ======================================
time      seconds (s)    wall-clock simulated time
frequency GHz            CPU / uncore clocks; 1 GHz = 10 ratio
energy    joules (J)     integrated node / package energy
power     watts (W)      instantaneous or averaged power
traffic   bytes          main-memory traffic
bandwidth GB/s           ``1e9`` bytes per second (decimal GB)
========  =============  ======================================

Frequencies are also manipulated as Intel *ratios*: the multiplier of the
100 MHz base clock (BCLK) that the hardware actually programs into MSRs.
A frequency of 2.4 GHz is ratio 24.  :func:`ghz_to_ratio` and
:func:`ratio_to_ghz` convert between the two representations, always
rounding to the hardware-representable grid.
"""

from __future__ import annotations

import math

__all__ = [
    "BCLK_GHZ",
    "GIGA",
    "MEGA",
    "KILO",
    "ghz_to_ratio",
    "ratio_to_ghz",
    "snap_ghz",
    "clamp",
    "watts",
    "joules_to_wh",
    "approx_equal",
    "gbs_from_bytes",
]

#: Intel base clock in GHz.  Uncore and core ratios are multiples of this.
BCLK_GHZ: float = 0.1

#: DRAM transaction granularity; TPI counts cache lines per instruction.
CACHE_LINE_BYTES: int = 64

GIGA: float = 1e9
MEGA: float = 1e6
KILO: float = 1e3


def ghz_to_ratio(freq_ghz: float) -> int:
    """Convert a frequency in GHz to the integer BCLK ratio.

    The hardware can only express multiples of 100 MHz; the value is
    rounded to the nearest ratio.

    >>> ghz_to_ratio(2.4)
    24
    >>> ghz_to_ratio(1.25)
    12
    """
    if freq_ghz < 0:
        raise ValueError(f"frequency must be non-negative, got {freq_ghz}")
    return int(round(freq_ghz / BCLK_GHZ))


def ratio_to_ghz(ratio: int) -> float:
    """Convert an integer BCLK ratio to GHz.

    The product is rounded to the representable decimal so frequencies
    coming off the 100 MHz grid compare cleanly (24 * 0.1 would
    otherwise be 2.4000000000000004).

    >>> ratio_to_ghz(24)
    2.4
    """
    if ratio < 0:
        raise ValueError(f"ratio must be non-negative, got {ratio}")
    return round(ratio * BCLK_GHZ, 10)


def snap_ghz(freq_ghz: float) -> float:
    """Snap a frequency to the 100 MHz hardware grid.

    >>> snap_ghz(2.3799999)
    2.4
    """
    return ratio_to_ghz(ghz_to_ratio(freq_ghz))


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the inclusive range ``[lo, hi]``.

    Raises :class:`ValueError` when the range is inverted, which almost
    always indicates a configuration bug (e.g. min ratio above max ratio).
    """
    if lo > hi:
        raise ValueError(f"invalid clamp range: lo={lo} > hi={hi}")
    return min(max(value, lo), hi)


def watts(energy_j: float, interval_s: float) -> float:
    """Average power over an interval; 0 W for an empty interval."""
    if interval_s <= 0:
        return 0.0
    return energy_j / interval_s


def joules_to_wh(energy_j: float) -> float:
    """Convert joules to watt-hours (used by accounting reports)."""
    return energy_j / 3600.0


def gbs_from_bytes(nbytes: float, interval_s: float) -> float:
    """Bandwidth in GB/s given traffic in bytes over an interval."""
    if interval_s <= 0:
        return 0.0
    return nbytes / interval_s / GIGA


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_: float = 1e-12) -> bool:
    """Tolerant float comparison used by invariant checks."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
