"""Hardware Uncore Frequency Scaling (UFS) controller.

Intel does not document the UFS heuristic; what is known publicly (the
paper's section IV, patent US9323316B2, and the Hackenberg/Schöne
measurement studies) is that the control loop

* runs every ~10 ms,
* honours the ``UNCORE_RATIO_LIMIT`` MSR min/max,
* follows the *fastest active core's* frequency,
* is biased by the Energy/Performance Bias hint (EPB), and
* keeps the uncore up when there is memory/LLC demand.

This module reconstructs that behaviour phenomenologically, calibrated
against the paper's own observations of what the hardware chose
(Tables I, IV and VI "ME"/"No policy" columns):

* an **unpinned** (HWP-governed) socket with active cores holds the
  uncore at the MSR maximum — the paper's "conservative" HW strategy
  (Table I: both a CPU-bound and a memory-bound kernel got 2.39 GHz);
* once software pins the core ratio, the uncore follows the fastest
  active core scaled by how busy the socket is — a socket with one
  spinning core out of 40 settles much lower (BT.CUDA: 1.51 GHz) than a
  fully loaded one (BT-MZ: 2.39 GHz);
* heavy AVX-512 use shifts package power budget from uncore to cores,
  observed as DGEMM's 1.98 GHz uncore even with all cores busy;
* workloads that hammer the LLC/IMC (memory-bound apps, busy-wait loops
  polling memory) keep the uncore near the maximum regardless
  (HPCG/DUMSES: 2.39 GHz at pinned 1.75/2.12 GHz core clocks) — the
  ``uncore_demand`` input captures this pressure;
* EPB nudges the target down one ratio per 3 points above the default.

Because the 10 ms reaction time is far below the shortest application
iteration (~100 ms), the simulation evaluates the converged target at
iteration boundaries instead of time-stepping the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UfsInputs", "UfsController"]


@dataclass(frozen=True)
class UfsInputs:
    """Snapshot of what the controller observes on one socket.

    Attributes
    ----------
    fastest_active_ratio:
        BCLK ratio of the fastest core currently executing, 0 if the
        socket is idle.
    active_fraction:
        Fraction of cores doing useful work (cores spinning in MPI or
        on a device handle count much less — they barely touch the
        execution units the monitor watches).
    vpi:
        AVX-512 instruction fraction currently retiring.
    uncore_demand:
        0..1 pressure on the LLC/IMC: ratio of the bandwidth (and
        latency concurrency) the workload would consume at maximum
        uncore frequency to the socket's capacity.
    pinned:
        True when software owns IA32_PERF_CTL (EAR took control).
    epb:
        Energy/Performance Bias hint, 0..15 (6 = balanced default).
    """

    fastest_active_ratio: int
    active_fraction: float
    vpi: float
    uncore_demand: float
    pinned: bool
    epb: int = 6
    #: uncore/core ratio the controller converges to for a pinned socket;
    #: ``None`` derives it from the active fraction.  Calibrated per
    #: workload class from the paper's Tables I/IV/VI: fully busy sockets
    #: hold the uncore at/above the core clock, sockets dominated by MPI
    #: spin waits sink well below it.
    follow_factor: float | None = None


@dataclass(frozen=True)
class UfsController:
    """Converged-target model of the hardware UFS loop.

    ``period_s`` is kept for documentation/trace purposes; the decision
    function itself is stateless given the converged inputs.
    """

    period_s: float = 0.010
    #: derived follow factor: base + slope * active_fraction.  A fully
    #: busy socket converges slightly *above* the core clock (Table I:
    #: 2.38 GHz cores, 2.39 GHz uncore), a near-idle one to ~0.63 of it
    #: (Table IV: BT.CUDA's spin core at 2.28 GHz got 1.51 GHz uncore).
    follow_base: float = 0.62
    follow_slope: float = 0.43
    #: relative uncore reduction at VPI = 1 (power-budget rebalancing;
    #: quadratic in VPI so moderate vector mixes are barely affected,
    #: while all-AVX512 DGEMM loses ~20 %: 2.4 -> ~1.9 GHz, Table IV).
    avx_shift: float = 0.20
    #: ratios removed per 3 EPB points above the balanced default.
    epb_step: int = 1

    def target_ratio(self, inputs: UfsInputs, *, msr_min: int, msr_max: int) -> int:
        """Ratio the control loop converges to under the MSR limits."""
        if msr_min > msr_max:
            # hardware honours the max field when the range is inverted
            msr_min = msr_max
        if inputs.fastest_active_ratio <= 0:
            return msr_min  # idle socket decays to the floor

        active = min(max(inputs.active_fraction, 0.0), 1.0)
        demand = min(max(inputs.uncore_demand, 0.0), 1.0)
        vpi = min(max(inputs.vpi, 0.0), 1.0)

        if inputs.pinned:
            factor = inputs.follow_factor
            if factor is None:
                factor = self.follow_base + self.follow_slope * active
            follow = inputs.fastest_active_ratio * factor
            wanted = max(follow, demand * msr_max)
        else:
            # HWP-governed sockets hold the uncore up whenever loaded.
            wanted = float(msr_max)

        wanted *= 1.0 - self.avx_shift * vpi * vpi
        wanted -= self.epb_step * ((inputs.epb - 6) // 3)
        ratio = int(round(wanted))
        return min(max(ratio, msr_min), msr_max)
