"""RAPL energy counters (package and DRAM domains).

RAPL exposes energy as 32-bit counters in units announced by
``MSR_RAPL_POWER_UNIT``; on Skylake-SP the energy unit is 2^-14 J
(~61 µJ) and the counter wraps roughly every 262 kJ — about 22 minutes
at 200 W, which is *shorter* than several of the paper's application
runs, so consumers must handle the wrap.  EAR (and this reproduction's
EARD) reads the counters periodically and accumulates the deltas.

Table VII of the paper compares RAPL package (PCK) savings against DC
node savings; this module provides the PCK side of that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HardwareError

__all__ = ["RaplCounter", "RaplDomain", "SKL_ENERGY_UNIT_J"]

#: Skylake energy status unit: 1 / 2**14 joules.
SKL_ENERGY_UNIT_J: float = 1.0 / (1 << 14)

_WRAP = 1 << 32


@dataclass
class RaplCounter:
    """A wrapping 32-bit energy counter.

    :meth:`add_energy` is driven by the power model integration;
    :meth:`raw` is what an MSR read returns; :meth:`delta_joules`
    implements the wrap-aware difference a well-written reader uses.
    """

    unit_j: float = SKL_ENERGY_UNIT_J
    _raw: int = 0
    _residual_j: float = 0.0

    def add_energy(self, joules: float) -> None:
        """Accumulate energy, quantising to the RAPL unit."""
        if joules < 0:
            raise HardwareError("energy cannot decrease")
        total = self._residual_j + joules
        ticks = int(total / self.unit_j)
        self._residual_j = total - ticks * self.unit_j
        self._raw = (self._raw + ticks) % _WRAP

    def raw(self) -> int:
        """Current 32-bit register value."""
        return self._raw

    def joules(self) -> float:
        """Energy represented by the current (wrapped) register value."""
        return self._raw * self.unit_j

    def inject_raw_jump(self, ticks: int) -> None:
        """Jump the raw register by ``ticks`` without energy semantics.

        Fault-injection hook: models counter corruption (SMM excursion,
        firmware hiccup) that makes the register leap — typically by
        nearly a full wrap, so a naive raw-sum reader goes *backwards*
        while a wrap-aware delta reader absorbs one bounded spurious
        increment.  Never called on the clean path.
        """
        if ticks < 0:
            raise HardwareError("raw jump cannot be negative")
        self._raw = (self._raw + ticks) % _WRAP

    @staticmethod
    def delta_joules(before_raw: int, after_raw: int, unit_j: float = SKL_ENERGY_UNIT_J) -> float:
        """Wrap-aware energy difference between two raw reads.

        Assumes at most one wrap between the reads, which holds for any
        sane polling period.
        """
        diff = (after_raw - before_raw) % _WRAP
        return diff * unit_j


@dataclass
class RaplDomain:
    """The RAPL domains of one node: per-socket PCK plus DRAM."""

    n_sockets: int = 2
    pck: list[RaplCounter] = field(default_factory=list)
    dram: RaplCounter = field(default_factory=RaplCounter)

    def __post_init__(self) -> None:
        if self.n_sockets <= 0:
            raise HardwareError("need at least one socket")
        if not self.pck:
            self.pck = [RaplCounter() for _ in range(self.n_sockets)]

    def add_interval(
        self, *, pck_watts: list[float], dram_watts: float, seconds: float
    ) -> None:
        """Integrate one interval of constant power into the counters."""
        if len(pck_watts) != self.n_sockets:
            raise HardwareError(
                f"expected {self.n_sockets} socket powers, got {len(pck_watts)}"
            )
        if seconds < 0:
            raise HardwareError("interval cannot be negative")
        for counter, watts in zip(self.pck, pck_watts):
            counter.add_energy(watts * seconds)
        self.dram.add_energy(dram_watts * seconds)

    def pck_joules_total(self) -> float:
        """Sum of (wrapped) package counters — use only for short windows."""
        return sum(c.joules() for c in self.pck)
