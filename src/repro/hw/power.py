"""Node power model: package (RAPL PCK), DRAM and full DC node power.

The paper is insistent (section VI, Table VII) that energy policies must
be judged on **DC node power** — everything the PSU draws — and not only
the RAPL package power that most related work uses, because the package
is only a (non-constant) fraction of the node.  The model therefore
produces three observables:

* per-socket package power (what RAPL PCK reports),
* DRAM power (what RAPL DRAM reports),
* DC node power = packages + DRAM + platform rest (+ GPUs),

with the classic CMOS structure ``P = P_static + a · C · f · V(f)²``:

* **core dynamic power** scales with core frequency and the square of
  the voltage/frequency curve, per active core, weighted by an
  *activity* factor (instruction throughput) and an AVX-512 surcharge —
  wide vector units burn considerably more power per cycle;
* **uncore power** has a leakage floor plus a dynamic part scaling with
  the uncore clock and voltage, plus a traffic term (LLC/IMC queues and
  links switch more when moving data) — this is the term the paper's
  explicit UFS harvests;
* **DRAM power** is delegated to :class:`repro.hw.dram.DramConfig`;
* **platform power** (fans, VRM losses, board, NIC, disks) is constant,
  which is exactly why DC-node relative savings are smaller than PCK
  relative savings (Table VII).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import HardwareError

__all__ = ["VoltageCurve", "PowerModelParams", "SocketPowerBreakdown", "socket_power"]


@dataclass(frozen=True)
class VoltageCurve:
    """Piecewise-linear voltage/frequency curve ``V(f) = v0 + slope·(f - f0)``.

    Below ``f0`` the voltage stays at ``v0`` (the retention floor).
    """

    v0: float = 0.70
    slope: float = 0.15
    f0_ghz: float = 1.0

    def volts(self, freq_ghz: float) -> float:
        """Operating voltage at a core frequency (linear V-f curve)."""
        if freq_ghz <= 0:
            raise HardwareError(f"frequency must be positive, got {freq_ghz}")
        return self.v0 + self.slope * max(0.0, freq_ghz - self.f0_ghz)


@dataclass(frozen=True)
class PowerModelParams:
    """Coefficients of the node power model.

    The defaults are calibrated against the paper's Table II / Table V
    nominal-frequency node powers for the SD530 testbed (two Xeon Gold
    6148, 12 DIMMs); see ``tests/hw/test_power_calibration.py``.
    """

    #: static package power per socket (W): fabric leakage, IO.
    pck_base_w: float = 20.0
    #: core dynamic coefficient: W per (GHz · V²) per fully-active core.
    core_dyn_w: float = 1.78
    #: power of an idle (halted) core in W.
    core_idle_w: float = 0.25
    #: multiplier on core dynamic power for AVX-512 work.
    avx512_factor: float = 1.28
    #: uncore dynamic coefficient: W per (GHz · V²) per socket.  The
    #: 20-core Skylake mesh + LLC + IMC is a large power consumer
    #: (~30 W/socket at 2.4 GHz), which is exactly the headroom the
    #: paper's explicit UFS harvests: a 2.4 -> 1.9 GHz uncore drop frees
    #: ~20 W per node, the ~7 % DC saving of Table III's OpenMP rows.
    uncore_dyn_w: float = 15.0
    #: uncore traffic coefficient: W per GB/s handled by the socket.
    uncore_bw_w_per_gbs: float = 0.28
    #: constant platform power per node (fans, board, VRs, NIC, disk).
    platform_w: float = 65.0
    #: core voltage curve.
    vcore: VoltageCurve = VoltageCurve()
    #: uncore voltage curve.
    vuncore: VoltageCurve = VoltageCurve()

    def with_overrides(self, **kwargs: float) -> "PowerModelParams":
        """Return a copy with some coefficients replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class SocketPowerBreakdown:
    """Per-socket power decomposition, all in watts."""

    base_w: float
    cores_w: float
    uncore_w: float

    @property
    def total_w(self) -> float:
        """Package power: base plus cores plus uncore, in watts."""
        return self.base_w + self.cores_w + self.uncore_w


def socket_power(
    params: PowerModelParams,
    *,
    f_core_ghz: float,
    f_uncore_ghz: float,
    n_active_cores: int,
    n_idle_cores: int,
    activity: float,
    vpi: float,
    socket_traffic_gbs: float,
) -> SocketPowerBreakdown:
    """Package power of one socket under a given operating point.

    Parameters
    ----------
    f_core_ghz, f_uncore_ghz:
        Effective core and uncore clocks.
    n_active_cores, n_idle_cores:
        Cores running application work vs. halted cores.
    activity:
        Per-active-core dynamic activity in ``[0, ~1.2]``; captures the
        instruction throughput of the workload (a stalled, memory-bound
        core burns less dynamic power than one retiring 2+ IPC).
    vpi:
        Fraction of instructions that are AVX-512 (the paper's VPI
        metric); scales the AVX surcharge.
    socket_traffic_gbs:
        Memory traffic flowing through this socket's uncore.
    """
    if n_active_cores < 0 or n_idle_cores < 0:
        raise HardwareError("core counts cannot be negative")
    if activity < 0:
        raise HardwareError(f"activity cannot be negative, got {activity}")
    if not 0.0 <= vpi <= 1.0:
        raise HardwareError(f"vpi must be in [0, 1], got {vpi}")
    if socket_traffic_gbs < 0:
        raise HardwareError("socket traffic cannot be negative")

    vc = params.vcore.volts(f_core_ghz)
    per_core = params.core_dyn_w * f_core_ghz * vc * vc * activity
    per_core *= 1.0 + (params.avx512_factor - 1.0) * vpi
    cores_w = n_active_cores * per_core + n_idle_cores * params.core_idle_w

    vu = params.vuncore.volts(f_uncore_ghz)
    uncore_w = (
        params.uncore_dyn_w * f_uncore_ghz * vu * vu
        + params.uncore_bw_w_per_gbs * socket_traffic_gbs
    )
    return SocketPowerBreakdown(base_w=params.pck_base_w, cores_w=cores_w, uncore_w=uncore_w)
