"""Energy accounting: the ``eacct`` service.

EAR's accounting service records per-job, per-node energy and
performance data in a database; administrators query it with ``eacct``.
The reproduction keeps an in-memory store with JSON export — enough to
support the experiment harness and the accounting-oriented tests, and
shaped like the real records (job id, node, time, DC energy, average
power, average frequencies, policy settings).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable

from ..errors import ExperimentError
from ..hw.units import joules_to_wh

__all__ = ["NodeJobRecord", "JobRecord", "AccountingDB"]


@dataclass(frozen=True)
class NodeJobRecord:
    """One node's share of one job."""

    node_id: int
    seconds: float
    dc_energy_j: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float

    @property
    def avg_dc_power_w(self) -> float:
        return self.dc_energy_j / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class JobRecord:
    """One job: workload + policy settings + per-node records."""

    job_id: int
    workload: str
    policy: str
    cpu_policy_th: float
    unc_policy_th: float
    nodes: tuple[NodeJobRecord, ...] = field(default_factory=tuple)

    @property
    def seconds(self) -> float:
        return max((n.seconds for n in self.nodes), default=0.0)

    @property
    def dc_energy_j(self) -> float:
        return sum(n.dc_energy_j for n in self.nodes)

    @property
    def dc_energy_wh(self) -> float:
        return joules_to_wh(self.dc_energy_j)

    @property
    def avg_node_power_w(self) -> float:
        if not self.nodes or self.seconds <= 0:
            return 0.0
        return self.dc_energy_j / self.seconds / len(self.nodes)


class AccountingDB:
    """In-memory job accounting with eacct-style queries."""

    def __init__(self) -> None:
        self._jobs: dict[int, JobRecord] = {}
        self._next_id = 1

    def insert(self, record: JobRecord) -> None:
        if record.job_id in self._jobs:
            raise ExperimentError(f"duplicate job id {record.job_id}")
        self._jobs[record.job_id] = record

    def new_job_id(self) -> int:
        jid = self._next_id
        self._next_id += 1
        return jid

    def job(self, job_id: int) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id}") from None

    def jobs(self, *, workload: str | None = None, policy: str | None = None) -> list[JobRecord]:
        """eacct-style filtered listing, insertion-ordered."""
        out = []
        for rec in self._jobs.values():
            if workload is not None and rec.workload != workload:
                continue
            if policy is not None and rec.policy != policy:
                continue
            out.append(rec)
        return out

    def total_energy_j(self, records: Iterable[JobRecord] | None = None) -> float:
        records = self._jobs.values() if records is None else records
        return sum(r.dc_energy_j for r in records)

    def to_json(self) -> str:
        """Serialise the whole store (for report artefacts)."""
        return json.dumps(
            [asdict(rec) for rec in self._jobs.values()], indent=2, sort_keys=True
        )

    @classmethod
    def from_json(cls, payload: str) -> "AccountingDB":
        db = cls()
        for item in json.loads(payload):
            nodes = tuple(NodeJobRecord(**n) for n in item.pop("nodes"))
            rec = JobRecord(nodes=nodes, **item)
            db.insert(rec)
            db._next_id = max(db._next_id, rec.job_id + 1)
        return db
