"""Energy accounting: the ``eacct`` service.

EAR's accounting service records per-job, per-node energy and
performance data in a database; administrators query it with ``eacct``.
The reproduction keeps an in-memory store with JSON export — enough to
support the experiment harness and the accounting-oriented tests, and
shaped like the real records (job id, node, time, DC energy, average
power, average frequencies, policy settings).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Iterable

from ..errors import ExperimentError
from ..hw.units import joules_to_wh

__all__ = ["NodeJobRecord", "JobRecord", "AccountingDB"]


@dataclass(frozen=True)
class NodeJobRecord:
    """One node's share of one job."""

    node_id: int
    seconds: float
    dc_energy_j: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float

    @property
    def avg_dc_power_w(self) -> float:
        """Average DC node power over the report interval."""
        return self.dc_energy_j / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class JobRecord:
    """One job: workload + policy settings + per-node records."""

    job_id: int
    workload: str
    policy: str
    cpu_policy_th: float
    unc_policy_th: float
    nodes: tuple[NodeJobRecord, ...] = field(default_factory=tuple)

    @property
    def seconds(self) -> float:
        """Job wall time from the per-node reports."""
        return max((n.seconds for n in self.nodes), default=0.0)

    @property
    def dc_energy_j(self) -> float:
        """Total DC energy of the job across its nodes, in joules."""
        return sum(n.dc_energy_j for n in self.nodes)

    @property
    def dc_energy_wh(self) -> float:
        """Total DC energy of the job, in watt-hours."""
        return joules_to_wh(self.dc_energy_j)

    @property
    def avg_node_power_w(self) -> float:
        """Mean of the per-node average DC powers."""
        if not self.nodes or self.seconds <= 0:
            return 0.0
        return self.dc_energy_j / self.seconds / len(self.nodes)


class AccountingDB:
    """In-memory job accounting with eacct-style queries."""

    def __init__(self) -> None:
        self._jobs: dict[int, JobRecord] = {}
        self._next_id = 1

    def insert(self, record: JobRecord) -> None:
        """Store a finished job's accounting row."""
        if record.job_id in self._jobs:
            raise ExperimentError(f"duplicate job id {record.job_id}")
        self._jobs[record.job_id] = record
        self._next_id = max(self._next_id, record.job_id + 1)

    def upsert_nodes(self, record: JobRecord) -> None:
        """Insert a job, or append node rows to an existing one.

        This is the EARDBD ingestion path: a daemon tier may flush a
        job's per-node reports across several batches, so the job row
        has to grow node by node.  Job-level metadata must match the
        stored record, and a node may only be reported once per job.
        """
        existing = self._jobs.get(record.job_id)
        if existing is None:
            self.insert(record)
            return
        for key in ("workload", "policy", "cpu_policy_th", "unc_policy_th"):
            if getattr(existing, key) != getattr(record, key):
                raise ExperimentError(
                    f"job {record.job_id}: conflicting {key} in node report"
                )
        seen = {n.node_id for n in existing.nodes}
        dup = seen.intersection(n.node_id for n in record.nodes)
        if dup:
            raise ExperimentError(
                f"job {record.job_id}: node(s) {sorted(dup)} reported twice"
            )
        self._jobs[record.job_id] = replace(
            existing, nodes=existing.nodes + record.nodes
        )

    def new_job_id(self) -> int:
        """Allocate the next job id."""
        jid = self._next_id
        self._next_id += 1
        return jid

    def job(self, job_id: int) -> JobRecord:
        """Look up one job row by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ExperimentError(f"unknown job {job_id}") from None

    def jobs(self, *, workload: str | None = None, policy: str | None = None) -> list[JobRecord]:
        """eacct-style filtered listing, insertion-ordered."""
        out = []
        for rec in self._jobs.values():
            if workload is not None and rec.workload != workload:
                continue
            if policy is not None and rec.policy != policy:
                continue
            out.append(rec)
        return out

    def total_energy_j(self, records: Iterable[JobRecord] | None = None) -> float:
        """Total DC energy over every stored job, in joules."""
        records = self._jobs.values() if records is None else records
        return sum(r.dc_energy_j for r in records)

    def node_rows(self) -> int:
        """Total per-node rows stored (the EARDBD reconciliation unit)."""
        return sum(len(rec.nodes) for rec in self._jobs.values())

    def to_json(self) -> str:
        """Serialise the whole store (for report artefacts)."""
        return json.dumps(
            [asdict(rec) for rec in self._jobs.values()], indent=2, sort_keys=True
        )

    @classmethod
    def from_json(cls, payload: str) -> "AccountingDB":
        """Rebuild a database from its JSON serialisation."""
        db = cls()
        for item in json.loads(payload):
            nodes = tuple(NodeJobRecord(**n) for n in item.pop("nodes"))
            db.insert(JobRecord(nodes=nodes, **item))
        return db

    def save(self, path: str | os.PathLike) -> Path:
        """Write the store as JSON; the file ``eacct`` queries later."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "AccountingDB":
        """Reload a store previously written by :meth:`save`."""
        path = Path(path)
        try:
            payload = path.read_text()
        except FileNotFoundError:
            raise ExperimentError(f"no accounting database at {path}") from None
        try:
            return cls.from_json(payload)
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            raise ExperimentError(f"corrupt accounting database {path}: {exc}") from None
