"""Application signatures.

The signature is EAR's central data structure: "a set of performance
and power metrics characterising application computational behaviour",
computed per measurement window and fed to the energy policy.  The
fields are exactly the ones the paper's section V lists as model
inputs — DC node power, iteration time, CPI, TPI, GB/s and VPI — plus
the average CPU/IMC frequencies the evaluation tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..errors import SignatureError
from ..hw.counters import CounterSnapshot

__all__ = ["Signature", "relative_change", "signature_changed"]


@dataclass(frozen=True)
class Signature:
    """One measurement window's characterisation of the application."""

    #: average wall time of one application iteration, seconds.
    iteration_time_s: float
    #: average DC node power over the window, watts.
    dc_power_w: float
    #: cycles per instruction.
    cpi: float
    #: main-memory transactions (cache lines) per instruction.
    tpi: float
    #: memory bandwidth, GB/s.
    gbs: float
    #: AVX-512 fraction of retired instructions.
    vpi: float
    #: average CPU frequency over the window, GHz (all cores).
    avg_cpu_freq_ghz: float
    #: average IMC (uncore) frequency over the window, GHz.
    avg_imc_freq_ghz: float
    #: number of application iterations aggregated.
    iterations: int = 1

    def __post_init__(self) -> None:
        # NaN compares False against every bound below, so corrupted
        # counter reads must be caught explicitly before feeding a
        # policy: every metric has to be a finite number.
        for f in fields(self):
            value = getattr(self, f.name)
            if not math.isfinite(value):
                raise SignatureError(f"{f.name} is not finite: {value!r}")
        if self.iteration_time_s <= 0:
            raise SignatureError("iteration time must be positive")
        if self.dc_power_w <= 0:
            raise SignatureError("DC power must be positive")
        if self.cpi <= 0:
            raise SignatureError("CPI must be positive")
        if self.tpi < 0 or self.gbs < 0:
            raise SignatureError("TPI/GBs cannot be negative")
        if not 0.0 <= self.vpi <= 1.0:
            raise SignatureError(f"VPI {self.vpi} outside [0, 1]")

    @property
    def energy_per_iteration_j(self) -> float:
        """Node energy per application iteration."""
        return self.dc_power_w * self.iteration_time_s

    @classmethod
    def from_window(
        cls,
        window: CounterSnapshot,
        *,
        dc_energy_j: float,
        dc_seconds: float,
        avg_cpu_freq_ghz: float,
        avg_imc_freq_ghz: float,
    ) -> "Signature":
        """Assemble a signature from a counter window + energy reading.

        ``dc_energy_j``/``dc_seconds`` come from differencing two Node
        Manager reads (and their timestamps — the counter only updates
        at 1 Hz, so dividing by the *latched* interval is what keeps
        the power estimate unbiased).
        """
        if window.iterations <= 0:
            raise SignatureError("cannot build a signature from an empty window")
        if dc_seconds <= 0:
            raise SignatureError("energy window has no duration")
        return cls(
            iteration_time_s=window.seconds_per_iteration,
            dc_power_w=dc_energy_j / dc_seconds,
            cpi=window.cpi,
            tpi=window.tpi,
            gbs=window.gbs,
            vpi=window.vpi,
            avg_cpu_freq_ghz=avg_cpu_freq_ghz,
            avg_imc_freq_ghz=avg_imc_freq_ghz,
            iterations=window.iterations,
        )

    def with_power(self, dc_power_w: float) -> "Signature":
        """Copy of this signature with the DC power replaced."""
        return replace(self, dc_power_w=dc_power_w)


def relative_change(old: float, new: float) -> float:
    """|new - old| / old, tolerant of tiny denominators."""
    if abs(old) < 1e-12:
        return 0.0 if abs(new) < 1e-12 else float("inf")
    return abs(new - old) / abs(old)


def signature_changed(ref: Signature, cur: Signature, threshold: float) -> bool:
    """EARL's phase-change test: CPI or GB/s moved beyond the threshold.

    The paper (section V-B, extension 6) uses CPI and GB/s variations to
    decide whether the application entered a new phase, with a 15 %
    default tolerance.
    """
    if relative_change(ref.cpi, cur.cpi) > threshold:
        return True
    # GB/s change only counts when there is non-trivial traffic to compare:
    # a busy-wait's 0.1 GB/s jitter must not look like a phase change.
    if min(ref.gbs, cur.gbs) > 0.5 and relative_change(ref.gbs, cur.gbs) > threshold:
        return True
    return False
