"""Cluster job manager: the EARGM actuation loop.

EAR's energy-control service does more than warn: past the warning
thresholds EARGM instructs the node daemons to lower the *default*
frequency, which drags every policy's search range down with it.  This
module closes that loop for the reproduction: a :class:`ClusterManager`
accepts jobs, runs each with the EARGM-recommended default-P-state cap
folded into its configuration, records the outcome in the accounting
database, and feeds consumption back to EARGM.

This completes the three-service picture the paper opens with
("energy accounting, energy control and energy optimisation") in one
executable component.  Execution goes through the shared
:class:`~repro.experiments.parallel.ExperimentPool`, so a repeated
campaign job (same workload, same cap, same seed) is a cache hit
instead of a re-simulation — serial results are bit-identical to a
direct :func:`~repro.sim.engine.run_workload` call because the pool's
:class:`~repro.experiments.parallel.RunRequest` defaults match the
engine's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.faults import FaultPlan
from ..sim.result import RunResult
from ..workloads.app import Workload
from .accounting import AccountingDB, JobRecord, NodeJobRecord
from .config import EarConfig
from .eargm import Eargm, WarningLevel

__all__ = ["SubmittedJob", "ClusterManager", "node_job_records"]


@dataclass(frozen=True)
class SubmittedJob:
    """Outcome of one managed job."""

    job_id: int
    workload: str
    level_before: WarningLevel
    pstate_offset_applied: int
    result: RunResult


def node_job_records(result: RunResult) -> tuple[NodeJobRecord, ...]:
    """Accounting rows for one run, with *per-node* durations.

    Each node's row divides that node's energy by that node's own
    elapsed seconds (``NodeResult.seconds``); results predating the
    per-node clock (seconds == 0) fall back to the job wall time.
    """
    return tuple(
        NodeJobRecord(
            node_id=n.node_id,
            seconds=n.seconds if n.seconds > 0 else result.time_s,
            dc_energy_j=n.dc_energy_j,
            avg_cpu_freq_ghz=n.avg_cpu_freq_ghz,
            avg_imc_freq_ghz=n.avg_imc_freq_ghz,
        )
        for n in result.nodes
    )


class ClusterManager:
    """Runs jobs under EARGM supervision.

    Parameters
    ----------
    eargm:
        The global energy manager holding the cluster budget.
    base_config:
        Site-default EAR configuration; per-job overrides (thresholds)
        can be passed to :meth:`submit`.
    accounting:
        Shared accounting database (``eacct``); a fresh one is created
        if not supplied.
    pool:
        Experiment pool executing the jobs; defaults to the
        process-default pool (cache-aware), so repeated campaign jobs
        hit the run cache.
    """

    def __init__(
        self,
        eargm: Eargm,
        base_config: EarConfig | None = None,
        accounting: AccountingDB | None = None,
        *,
        pool=None,
    ) -> None:
        from ..experiments.parallel import default_pool

        self.eargm = eargm
        self.base_config = base_config if base_config is not None else EarConfig()
        self.accounting = accounting if accounting is not None else AccountingDB()
        self.pool = pool if pool is not None else default_pool()
        self.history: list[SubmittedJob] = []

    def submit(
        self,
        workload: Workload,
        *,
        seed: int = 1,
        scale: float = 1.0,
        node_speed_spread: float = 0.0,
        fault_plan: FaultPlan | None = None,
        **config_overrides,
    ) -> SubmittedJob:
        """Run one job with the current budget-derived frequency cap."""
        from ..experiments.parallel import RunRequest

        level = self.eargm.level()
        offset = self.eargm.recommended_max_pstate_offset()
        cfg = self.base_config.with_overrides(
            default_pstate_offset=offset, **config_overrides
        )
        (result,) = self.pool.run_many(
            [
                RunRequest(
                    workload=workload,
                    ear_config=cfg,
                    seed=seed,
                    scale=scale,
                    node_speed_spread=node_speed_spread,
                    fault_plan=fault_plan,
                )
            ]
        )

        job_id = self.accounting.new_job_id()
        self.accounting.insert(
            JobRecord(
                job_id=job_id,
                workload=workload.name,
                policy=cfg.policy,
                cpu_policy_th=cfg.cpu_policy_th,
                unc_policy_th=cfg.unc_policy_th,
                nodes=node_job_records(result),
            )
        )
        self.eargm.report(result.dc_energy_j, result.time_s)
        job = SubmittedJob(
            job_id=job_id,
            workload=workload.name,
            level_before=level,
            pstate_offset_applied=offset,
            result=result,
        )
        self.history.append(job)
        return job

    @property
    def total_energy_j(self) -> float:
        """Campaign energy accounted so far, in joules."""
        return self.accounting.total_energy_j()
