"""EAR configuration (the ``ear.conf`` equivalent).

Every tunable the paper mentions lives here with its paper-default
value: the two policy thresholds (``cpu_policy_th`` 5 %,
``unc_policy_th`` 2 %), the uncore step (0.1 GHz), the HW-guided start
of the IMC search, the 15 % signature-change tolerance and the >= 10 s
signature period dictated by the Node Manager's energy counter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError

__all__ = ["EarConfig"]


@dataclass(frozen=True)
class EarConfig:
    """Runtime settings for EARL and its policies.

    Attributes
    ----------
    policy:
        Registered policy plugin name.
    cpu_policy_th:
        Maximum predicted time penalty allowed when lowering the CPU
        frequency (the DVFS stage).  The paper uses 0.03 and 0.05.
    unc_policy_th:
        Extra penalty budget for the uncore stage, expressed as the
        tolerated relative CPI increase / GB/s decrease.  Paper: 0.02.
    use_explicit_ufs:
        Enable the paper's contribution.  Off = plain
        min_energy_to_solution with hardware UFS ("ME" in the tables).
    hw_guided_imc:
        Start the IMC search from the hardware-selected uncore
        frequency instead of the maximum ("ME+eU" vs "ME+NG-U").
    imc_step_ghz:
        Uncore descent step; the paper settles on 0.1 GHz and moves the
        *maximum* limit only.
    move_imc_min:
        If True, pin the uncore (min = max) at each step instead of
        moving only the maximum limit — the alternative the paper
        rejected, kept for the ablation bench.
    signature_min_time_s:
        Minimum measurement window; bounded below by the 1 Hz energy
        counter (paper: >= 10 s).
    signature_change_th:
        Relative CPI / GB/s change that counts as a new application
        phase and re-triggers the policy (paper: 15 %).
    guard_epsilon:
        Measurement-significance floor for the uncore guard: CPI/GB/s
        movements below this are within counter/timing resolution and
        cannot be attributed to the last uncore step.  This is what
        lets the paper's ``unc_policy_th = 0 %`` configuration still
        descend a few steps (figure 4) — a *strictly* zero tolerance
        would revert on the first sub-resolution fluctuation.
    min_cpu_freq_ghz:
        Floor for the DVFS search (sysadmin-set in ear.conf).
    watchdog_window_limit:
        Consecutive bad measurement windows (stalled energy counter or
        rejected signature) after which EARL's watchdog restores the
        policy defaults and marks the node degraded.
    stalled_poll_limit:
        Consecutive failed energy polls (the 1 Hz counter not
        publishing) on a window past its minimum length before the
        window is declared stalled and fed to the watchdog, instead of
        being retried silently forever.
    use_avx512_model:
        Use the paper's AVX512-aware projection model; off = the
        default model from the 2020 EAR paper (for the ablation).
    """

    policy: str = "min_energy"
    cpu_policy_th: float = 0.05
    unc_policy_th: float = 0.02
    use_explicit_ufs: bool = True
    hw_guided_imc: bool = True
    imc_step_ghz: float = 0.1
    move_imc_min: bool = False
    signature_min_time_s: float = 10.0
    signature_change_th: float = 0.15
    guard_epsilon: float = 0.005
    min_cpu_freq_ghz: float = 1.0
    watchdog_window_limit: int = 3
    stalled_poll_limit: int = 25
    use_avx512_model: bool = True
    #: sysadmin default ceiling for the uncore (ear.conf-style); None =
    #: the silicon maximum.  A conservative site cap is the scenario in
    #: which min_time's upward uncore search (the paper's future-work
    #: "increasing the uncore frequency" strategy) pays off.
    default_imc_max_ghz: float | None = None
    #: P-states below nominal that the *default* frequency is capped to;
    #: this is EARGM's actuation knob — under energy-budget pressure the
    #: global manager lowers the default (and with it the policy's
    #: whole search range), cluster-wide.
    default_pstate_offset: int = 0
    #: where the projection model's coefficients come from.  ``None``
    #: (the default) trains the analytic per-node-type table in process
    #: — bit-identical to the pre-learning-phase behaviour.  A directory
    #: resolves ``<dir>/<node-slug>.json`` and falls back to the
    #: analytic table when no fitted file exists for the node type; a
    #: file path must load (missing/corrupt files fail loudly).  This is
    #: a compared dataclass field on purpose: the coefficient source
    #: changes policy decisions, so it must be part of the run-cache key.
    coefficients_path: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_policy_th <= 0.5:
            raise ConfigError(f"cpu_policy_th {self.cpu_policy_th} outside [0, 0.5]")
        if not 0.0 <= self.unc_policy_th <= 0.5:
            raise ConfigError(f"unc_policy_th {self.unc_policy_th} outside [0, 0.5]")
        if self.imc_step_ghz <= 0:
            raise ConfigError("imc_step_ghz must be positive")
        if self.signature_min_time_s <= 0:
            raise ConfigError("signature_min_time_s must be positive")
        if not 0.0 < self.signature_change_th < 1.0:
            raise ConfigError("signature_change_th must be in (0, 1)")
        if not 0.0 <= self.guard_epsilon <= 0.05:
            raise ConfigError("guard_epsilon must be in [0, 0.05]")
        if not 0 <= self.default_pstate_offset <= 8:
            raise ConfigError("default_pstate_offset must be in [0, 8]")
        if self.watchdog_window_limit < 1:
            raise ConfigError("watchdog_window_limit must be >= 1")
        if self.stalled_poll_limit < 1:
            raise ConfigError("stalled_poll_limit must be >= 1")
        if self.coefficients_path is not None and not str(self.coefficients_path).strip():
            raise ConfigError("coefficients_path must be None or a non-empty path")

    def with_overrides(self, **kwargs) -> "EarConfig":
        """Copy with some settings replaced (job-level overrides)."""
        return replace(self, **kwargs)
