"""The EAR energy-management framework (the paper's system).

Services:

* **optimisation** — :class:`Earl` + the policy plugins
  (``min_energy`` with explicit UFS is the paper's contribution);
* **monitoring/accounting** — :class:`AccountingDB`;
* **control** — :class:`Eargm`;
* node control — :class:`Eard` (the only privileged component).
"""

from .accounting import AccountingDB, JobRecord, NodeJobRecord
from .config import EarConfig
from .dynais import Dynais, DynaisEvent
from .eard import Eard, EnergyReading
from .eargm import Eargm, EargmConfig, WarningLevel
from .earl import Earl, EarlState, PolicyDecision
from .manager import ClusterManager, SubmittedJob
from .models import (
    Avx512Model,
    CoefficientTable,
    DefaultModel,
    EnergyModel,
    PairCoefficients,
    Projection,
    make_model,
    steady_state_signature,
    train_coefficients,
)
from .policies import (
    MinEnergyPolicy,
    MinTimePolicy,
    MonitoringPolicy,
    NodeFreqs,
    PolicyContext,
    PolicyPlugin,
    PolicyState,
    Stage,
    available_policies,
    create_policy,
    register_policy,
)
from .signature import Signature, relative_change, signature_changed

__all__ = [
    "EarConfig",
    "Earl",
    "EarlState",
    "PolicyDecision",
    "Eard",
    "EnergyReading",
    "Eargm",
    "EargmConfig",
    "WarningLevel",
    "ClusterManager",
    "SubmittedJob",
    "AccountingDB",
    "JobRecord",
    "NodeJobRecord",
    "Dynais",
    "DynaisEvent",
    "Signature",
    "relative_change",
    "signature_changed",
    "Avx512Model",
    "DefaultModel",
    "EnergyModel",
    "CoefficientTable",
    "PairCoefficients",
    "Projection",
    "make_model",
    "train_coefficients",
    "steady_state_signature",
    "MinEnergyPolicy",
    "MinTimePolicy",
    "MonitoringPolicy",
    "NodeFreqs",
    "PolicyContext",
    "PolicyPlugin",
    "PolicyState",
    "Stage",
    "available_policies",
    "create_policy",
    "register_policy",
]
