"""EARL: the EAR runtime library.

EARL lives inside the application (LD_PRELOAD on real systems; driven
by the simulation engine here), detects the iterative structure with
DynAIS, accumulates measurement windows of at least
``signature_min_time_s`` (bounded below by the 1 Hz Node Manager
energy counter), computes signatures and runs the policy state machine
— the paper's Code 1:

* ``NODE_POLICY``: hand the fresh signature to the policy; apply the
  frequencies it returns; move to ``VALIDATE_POLICY`` when the policy
  says ``READY``, stay when it says ``CONTINUE`` (iterative policies
  such as the explicit-UFS descent).
* ``VALIDATE_POLICY``: ask the policy whether the selection still fits;
  on failure restore the defaults and fall back to ``NODE_POLICY``.

Once stable, EARL keeps the same frequencies "until a significant
change is detected in the signature" (15 % by default), which the
validate step checks on every subsequent window.

The runtime is hardened against a hostile node — the degradation
ladder, from mildest to most severe reaction:

1. **Sample rejection**: counter reads that are non-finite or
   non-physical never enter the window accumulator.
2. **Window rejection**: a window whose signature cannot be computed
   (or is non-finite) is dropped and counted, not fed to the policy.
3. **Stall detection**: an energy counter that stops publishing no
   longer blocks the window forever; after ``stalled_poll_limit``
   failed polls the window is declared stalled.
4. **Watchdog**: ``watchdog_window_limit`` consecutive bad windows
   restore the policy defaults and mark the node degraded until a good
   signature arrives.
5. **Policy containment**: a :class:`PolicyError`/:class:`ModelError`
   escaping the policy disables it for the rest of the job and falls
   back to defaults, rather than killing the simulation.

Every rung is tallied in the shared health monitor and surfaced as
:class:`~repro.sim.faults.NodeHealth` on the run result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum, auto

from ..errors import ModelError, PolicyError, SignatureError
from ..hw.counters import CounterBank, CounterSnapshot
from ..workloads.phase import IterationCounters
from .config import EarConfig
from .dynais import Dynais, DynaisEvent
from .eard import Eard, EnergyReading
from .models import make_model
from .models.default_model import EnergyModel
from .policies.api import NodeFreqs, PolicyPlugin, PolicyState
from .policies.registry import PolicyContext, create_policy
from .signature import Signature

__all__ = ["EarlState", "PolicyDecision", "Earl"]


class EarlState(Enum):
    """EARL's top-level state (the paper's ``ear_state``)."""

    NODE_POLICY = auto()
    VALIDATE_POLICY = auto()


@dataclass(frozen=True)
class PolicyDecision:
    """Trace record of one policy invocation."""

    at_s: float
    earl_state: EarlState
    policy_state: PolicyState | None
    freqs: NodeFreqs | None
    signature: Signature


class Earl:
    """One EARL instance manages one node of one job."""

    def __init__(
        self,
        eard: Eard,
        config: EarConfig,
        *,
        model: EnergyModel | None = None,
        policy: PolicyPlugin | None = None,
    ) -> None:
        self.eard = eard
        self.config = config
        #: shared robustness tally (injector / EARD / EARL sides).
        self.health = eard.health
        #: shared event sink (same recorder as the daemon's).
        self.telemetry = eard.telemetry
        node_config = eard.node.config
        self.model = model if model is not None else make_model(node_config, config)
        ctx = PolicyContext(
            config=config,
            pstates=node_config.pstates,
            model=self.model,
            imc_max_ghz=eard.imc_max_ghz,
            imc_min_ghz=eard.imc_min_ghz,
            telemetry=self.telemetry,
        )
        self.policy = policy if policy is not None else create_policy(config.policy, ctx)
        self.dynais = Dynais()
        self.bank = CounterBank()
        self.state = EarlState.NODE_POLICY
        self.signatures: list[Signature] = []
        self.decisions: list[PolicyDecision] = []
        self._window_start: CounterSnapshot = self.bank.snapshot()
        self._energy_start: EnergyReading = eard.read_dc_energy()
        self._loop_detected = False
        #: degradation-ladder state
        self._stalled_polls = 0
        self._bad_windows = 0
        self._watchdog_tripped = False
        self._policy_disabled = False
        self.policy.on_app_start()
        # EAR pins the policy's default frequency at job start (the
        # ear.conf DEFAULT_FREQUENCY), so every signature — including
        # the very first — is measured with software in control of the
        # clock and the hardware UFS in its pinned regime.
        if self.policy.applies_frequencies:
            self.eard.apply_freqs(self.policy.default_freqs())

    # -- degraded-mode bookkeeping --------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the node runs fallback defaults (watchdog or
        disabled policy) instead of policy decisions."""
        return self._watchdog_tripped or self._policy_disabled

    def _restore_safe_defaults(self) -> None:
        if self.policy.applies_frequencies:
            self.eard.restore_defaults(self.policy.default_freqs())

    def _note_bad_window(self) -> None:
        """One rung-2/3 event: count it and maybe trip the watchdog."""
        self._bad_windows += 1
        if (
            self._bad_windows >= self.config.watchdog_window_limit
            and not self._watchdog_tripped
        ):
            self._watchdog_tripped = True
            self.health.watchdog_restores += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "earl", "watchdog_trip", bad_windows=self._bad_windows
                )
            self.health.enter_degraded(self.eard.node.elapsed_s)
            self._restore_safe_defaults()
            # the policy's iterative state refers to measurements taken
            # before the fault; start over once signatures return.
            self.state = EarlState.NODE_POLICY
            self.policy.reset()

    def _note_good_window(self) -> None:
        self._bad_windows = 0
        if self._watchdog_tripped:
            self._watchdog_tripped = False
            if self.telemetry.enabled:
                self.telemetry.event("earl", "watchdog_clear")
            self.health.exit_degraded(self.eard.node.elapsed_s)

    def _disable_policy(self) -> None:
        """Rung 5: contain a policy/model crash for the rest of the job."""
        self._policy_disabled = True
        self.health.policy_failures += 1
        if self.telemetry.enabled:
            self.telemetry.event("earl", "policy_disabled")
        self.health.enter_degraded(self.eard.node.elapsed_s)
        try:
            self._restore_safe_defaults()
        except (PolicyError, ModelError):
            # even default_freqs() misbehaves: leave hardware as-is;
            # the failure is already on the health record.
            pass

    # -- ingress validation -----------------------------------------------------

    @staticmethod
    def _counters_plausible(counters: IterationCounters, wall_seconds: float) -> bool:
        """Reject non-finite / non-physical counter reads at ingress.

        The window accumulator keeps running sums, so a single NaN
        sample would poison every later snapshot — corrupted reads must
        be dropped before they enter the bank.
        """
        values = (
            counters.seconds,
            counters.instructions,
            counters.cycles,
            counters.bytes_transferred,
            counters.avx512_instructions,
            wall_seconds,
        )
        if not all(math.isfinite(v) for v in values):
            return False
        if counters.seconds <= 0 or wall_seconds <= 0:
            return False
        if counters.instructions <= 0 or counters.cycles <= 0:
            return False
        if counters.bytes_transferred < 0 or counters.avx512_instructions < 0:
            return False
        return counters.avx512_instructions <= counters.instructions

    # -- engine interface -----------------------------------------------------

    def on_iteration(
        self,
        counters: IterationCounters,
        mpi_events: tuple[int, ...],
        wall_seconds: float,
    ) -> None:
        """Process one completed application iteration.

        For MPI codes DynAIS must lock onto the loop before windows
        start; non-MPI codes run time-guided (the paper's fallback) and
        every iteration counts.
        """
        if not self._counters_plausible(counters, wall_seconds):
            self.health.samples_rejected += 1
            if self.telemetry.enabled:
                self.telemetry.event("earl", "sample_rejected")
                self.telemetry.counter("earl.samples_rejected")
            return
        self.bank.add_iteration(counters, wall_seconds=wall_seconds)
        if mpi_events:
            for event in mpi_events:
                ev = self.dynais.observe(event)
                if ev is DynaisEvent.NEW_LOOP:
                    self._loop_detected = True
                    self._reset_window()
                    self.policy.on_new_loop()
                elif ev is DynaisEvent.END_LOOP:
                    self._loop_detected = False
                    self.policy.on_end_loop()
            if not self._loop_detected:
                return
        # Window long enough for a trustworthy power average?
        window = self.bank.snapshot().delta(self._window_start)
        if window.seconds < self.config.signature_min_time_s:
            return
        energy = self.eard.read_dc_energy()
        d_energy = energy.joules - self._energy_start.joules
        d_time = energy.timestamp_s - self._energy_start.timestamp_s
        if d_time <= 0 or d_energy <= 0:
            # Normally the 1 Hz counter just has not published yet and
            # the very next iteration succeeds — but a stalled/dropped
            # meter would previously retry here *forever*, silently.
            self._stalled_polls += 1
            if self._stalled_polls >= self.config.stalled_poll_limit:
                self._stalled_polls = 0
                self.health.windows_stalled += 1
                if self.telemetry.enabled:
                    self.telemetry.event(
                        "earl",
                        "window_stalled",
                        polls=self.config.stalled_poll_limit,
                    )
                self._note_bad_window()
                self._reset_window()
            return
        self._stalled_polls = 0
        try:
            sig = Signature.from_window(
                window,
                dc_energy_j=d_energy,
                dc_seconds=d_time,
                avg_cpu_freq_ghz=self.eard.current_effective_cpu_ghz(),
                avg_imc_freq_ghz=self.eard.current_imc_freq_ghz(),
            )
        except SignatureError:
            self.health.windows_rejected += 1
            if self.telemetry.enabled:
                self.telemetry.event("earl", "window_rejected")
            self._note_bad_window()
            self._reset_window()
            return
        self._note_good_window()
        if self.telemetry.enabled:
            self.telemetry.observe("earl.window_s", window.seconds)
            self.telemetry.event(
                "earl",
                "signature",
                cpi=sig.cpi,
                gbs=sig.gbs,
                dc_power_w=sig.dc_power_w,
                avg_cpu_freq_ghz=sig.avg_cpu_freq_ghz,
                avg_imc_freq_ghz=sig.avg_imc_freq_ghz,
            )
        if not self._policy_disabled:
            try:
                self._state_new_signature(sig)
            except (PolicyError, ModelError):
                self._disable_policy()
        else:
            self.signatures.append(sig)
        self._reset_window()

    def on_app_end(self) -> None:
        """Job teardown: a degraded node is restored to its defaults."""
        if self.degraded:
            # never leave a degraded node on whatever the last partial
            # apply happened to program: defaults are the contract.
            try:
                self._restore_safe_defaults()
            except (PolicyError, ModelError):
                pass
        self.health.finish(self.eard.node.elapsed_s)
        try:
            self.policy.on_app_end()
        except (PolicyError, ModelError):
            self.health.policy_failures += 1

    # -- the Code-1 state machine ------------------------------------------------

    def _state_new_signature(self, sig: Signature) -> None:
        self.signatures.append(sig)
        now = self.eard.node.elapsed_s
        if self.state is EarlState.NODE_POLICY:
            policy_state, freqs = self.policy.node_policy(sig)
            if self.policy.applies_frequencies:
                self.eard.apply_freqs(freqs)
            if policy_state is PolicyState.READY:
                self.state = EarlState.VALIDATE_POLICY
            if self.telemetry.enabled:
                self.telemetry.event(
                    "earl",
                    "decision",
                    earl_state=EarlState.NODE_POLICY.name,
                    policy_state=policy_state.name,
                    cpu_ghz=freqs.cpu_ghz,
                    imc_max_ghz=freqs.imc_max_ghz,
                    cpi=sig.cpi,
                    gbs=sig.gbs,
                    dc_power_w=sig.dc_power_w,
                )
            self.decisions.append(
                PolicyDecision(
                    at_s=now,
                    earl_state=EarlState.NODE_POLICY,
                    policy_state=policy_state,
                    freqs=freqs,
                    signature=sig,
                )
            )
            return
        ok = self.policy.validate(sig)
        if self.telemetry.enabled:
            self.telemetry.event(
                "earl",
                "decision",
                earl_state=EarlState.VALIDATE_POLICY.name,
                policy_state=None,
                cpu_ghz=None,
                imc_max_ghz=None,
                cpi=sig.cpi,
                gbs=sig.gbs,
                dc_power_w=sig.dc_power_w,
            )
            if not ok:
                self.telemetry.event("earl", "validate_failed")
        if not ok:
            self.state = EarlState.NODE_POLICY
            defaults = self.policy.default_freqs()
            self.policy.reset()
            if self.policy.applies_frequencies:
                self.eard.restore_defaults(defaults)
        self.decisions.append(
            PolicyDecision(
                at_s=now,
                earl_state=EarlState.VALIDATE_POLICY,
                policy_state=None,
                freqs=None,
                signature=sig,
            )
        )

    def _reset_window(self) -> None:
        self._window_start = self.bank.snapshot()
        self._energy_start = self.eard.read_dc_energy()
        # window boundaries double as the RAPL polling cadence: >= 10 s,
        # far below the ~22 min wrap period.
        self.eard.poll_rapl()
