"""EARL: the EAR runtime library.

EARL lives inside the application (LD_PRELOAD on real systems; driven
by the simulation engine here), detects the iterative structure with
DynAIS, accumulates measurement windows of at least
``signature_min_time_s`` (bounded below by the 1 Hz Node Manager
energy counter), computes signatures and runs the policy state machine
— the paper's Code 1:

* ``NODE_POLICY``: hand the fresh signature to the policy; apply the
  frequencies it returns; move to ``VALIDATE_POLICY`` when the policy
  says ``READY``, stay when it says ``CONTINUE`` (iterative policies
  such as the explicit-UFS descent).
* ``VALIDATE_POLICY``: ask the policy whether the selection still fits;
  on failure restore the defaults and fall back to ``NODE_POLICY``.

Once stable, EARL keeps the same frequencies "until a significant
change is detected in the signature" (15 % by default), which the
validate step checks on every subsequent window.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..hw.counters import CounterBank, CounterSnapshot
from ..workloads.phase import IterationCounters
from .config import EarConfig
from .dynais import Dynais, DynaisEvent
from .eard import Eard, EnergyReading
from .models import make_model
from .models.default_model import EnergyModel
from .policies.api import NodeFreqs, PolicyPlugin, PolicyState
from .policies.registry import PolicyContext, create_policy
from .signature import Signature

__all__ = ["EarlState", "PolicyDecision", "Earl"]


class EarlState(Enum):
    """EARL's top-level state (the paper's ``ear_state``)."""

    NODE_POLICY = auto()
    VALIDATE_POLICY = auto()


@dataclass(frozen=True)
class PolicyDecision:
    """Trace record of one policy invocation."""

    at_s: float
    earl_state: EarlState
    policy_state: PolicyState | None
    freqs: NodeFreqs | None
    signature: Signature


class Earl:
    """One EARL instance manages one node of one job."""

    def __init__(
        self,
        eard: Eard,
        config: EarConfig,
        *,
        model: EnergyModel | None = None,
        policy: PolicyPlugin | None = None,
    ) -> None:
        self.eard = eard
        self.config = config
        node_config = eard.node.config
        self.model = model if model is not None else make_model(node_config, config)
        ctx = PolicyContext(
            config=config,
            pstates=node_config.pstates,
            model=self.model,
            imc_max_ghz=eard.imc_max_ghz,
            imc_min_ghz=eard.imc_min_ghz,
        )
        self.policy = policy if policy is not None else create_policy(config.policy, ctx)
        self.dynais = Dynais()
        self.bank = CounterBank()
        self.state = EarlState.NODE_POLICY
        self.signatures: list[Signature] = []
        self.decisions: list[PolicyDecision] = []
        self._window_start: CounterSnapshot = self.bank.snapshot()
        self._energy_start: EnergyReading = eard.read_dc_energy()
        self._loop_detected = False
        self.policy.on_app_start()
        # EAR pins the policy's default frequency at job start (the
        # ear.conf DEFAULT_FREQUENCY), so every signature — including
        # the very first — is measured with software in control of the
        # clock and the hardware UFS in its pinned regime.
        if self.policy.applies_frequencies:
            self.eard.apply_freqs(self.policy.default_freqs())

    # -- engine interface -----------------------------------------------------

    def on_iteration(
        self,
        counters: IterationCounters,
        mpi_events: tuple[int, ...],
        wall_seconds: float,
    ) -> None:
        """Process one completed application iteration.

        For MPI codes DynAIS must lock onto the loop before windows
        start; non-MPI codes run time-guided (the paper's fallback) and
        every iteration counts.
        """
        self.bank.add_iteration(counters, wall_seconds=wall_seconds)
        if mpi_events:
            for event in mpi_events:
                ev = self.dynais.observe(event)
                if ev is DynaisEvent.NEW_LOOP:
                    self._loop_detected = True
                    self._reset_window()
                    self.policy.on_new_loop()
                elif ev is DynaisEvent.END_LOOP:
                    self._loop_detected = False
                    self.policy.on_end_loop()
            if not self._loop_detected:
                return
        # Window long enough for a trustworthy power average?
        window = self.bank.snapshot().delta(self._window_start)
        if window.seconds < self.config.signature_min_time_s:
            return
        energy = self.eard.read_dc_energy()
        d_energy = energy.joules - self._energy_start.joules
        d_time = energy.timestamp_s - self._energy_start.timestamp_s
        if d_time <= 0 or d_energy <= 0:
            return  # the 1 Hz counter has not published yet
        sig = Signature.from_window(
            window,
            dc_energy_j=d_energy,
            dc_seconds=d_time,
            avg_cpu_freq_ghz=self.eard.current_effective_cpu_ghz(),
            avg_imc_freq_ghz=self.eard.current_imc_freq_ghz(),
        )
        self._state_new_signature(sig)
        self._reset_window()

    def on_app_end(self) -> None:
        self.policy.on_app_end()

    # -- the Code-1 state machine ------------------------------------------------

    def _state_new_signature(self, sig: Signature) -> None:
        self.signatures.append(sig)
        now = self.eard.node.elapsed_s
        if self.state is EarlState.NODE_POLICY:
            policy_state, freqs = self.policy.node_policy(sig)
            if self.policy.applies_frequencies:
                self.eard.apply_freqs(freqs)
            if policy_state is PolicyState.READY:
                self.state = EarlState.VALIDATE_POLICY
            self.decisions.append(
                PolicyDecision(
                    at_s=now,
                    earl_state=EarlState.NODE_POLICY,
                    policy_state=policy_state,
                    freqs=freqs,
                    signature=sig,
                )
            )
            return
        ok = self.policy.validate(sig)
        if not ok:
            self.state = EarlState.NODE_POLICY
            defaults = self.policy.default_freqs()
            self.policy.reset()
            if self.policy.applies_frequencies:
                self.eard.restore_defaults(defaults)
        self.decisions.append(
            PolicyDecision(
                at_s=now,
                earl_state=EarlState.VALIDATE_POLICY,
                policy_state=None,
                freqs=None,
                signature=sig,
            )
        )

    def _reset_window(self) -> None:
        self._window_start = self.bank.snapshot()
        self._energy_start = self.eard.read_dc_energy()
