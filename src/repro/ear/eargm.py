"""EARGM: the EAR Global Manager (energy control service).

EAR's third service after accounting and optimisation is *control*: a
cluster-wide energy budget monitor that warns and, past a threshold,
acts — in production by telling EARDs to cap the default policy
frequency.  The paper focuses on the optimisation service, so this is
the supporting implementation that completes the framework: budget
tracking over a time horizon, graded warning levels, and a P-state cap
pushed to the managed EARLs' configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..errors import ConfigError
from ..telemetry.recorder import NULL_RECORDER, Recorder

__all__ = ["WarningLevel", "EargmConfig", "Eargm"]


class WarningLevel(Enum):
    """Budget status, graded like EAR's eargm warnings.

    The first three levels grade the *pro-rated* pace (consumption vs.
    the elapsed share of the horizon); PANIC is reserved for absolute
    exhaustion of the budget.  A front-loaded job can overshoot its
    pace by a lot seconds into the horizon while barely denting the
    absolute budget — that is WARNING2 territory (cap the defaults),
    not a panic.
    """

    OK = auto()
    WARNING1 = auto()  # >= 85 % of the pro-rated budget consumed
    WARNING2 = auto()  # >= 95 % of pace, or past it entirely
    PANIC = auto()  # the absolute budget is exhausted


@dataclass(frozen=True)
class EargmConfig:
    """Energy budget over a horizon, e.g. 100 kWh per day."""

    budget_j: float
    horizon_s: float
    warning1: float = 0.85
    warning2: float = 0.95

    def __post_init__(self) -> None:
        if self.budget_j <= 0 or self.horizon_s <= 0:
            raise ConfigError("budget and horizon must be positive")
        if not 0 < self.warning1 < self.warning2 <= 1.0:
            raise ConfigError("warning thresholds must satisfy 0 < w1 < w2 <= 1")


class Eargm:
    """Cluster energy-budget controller."""

    def __init__(
        self, config: EargmConfig, *, telemetry: Recorder = NULL_RECORDER
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self._consumed_j = 0.0
        self._elapsed_s = 0.0
        self._last_level = WarningLevel.OK

    def report(self, energy_j: float, seconds: float) -> WarningLevel:
        """Feed one accounting interval; get the current warning level."""
        if energy_j < 0 or seconds < 0:
            raise ConfigError("cannot report negative energy/time")
        self._consumed_j += energy_j
        self._elapsed_s += seconds
        level = self.level()
        if level is not self._last_level:
            if self.telemetry.enabled:
                self.telemetry.event(
                    "eargm",
                    "level_change",
                    time_s=self._elapsed_s,
                    level=level.name,
                    previous=self._last_level.name,
                    consumed_j=self._consumed_j,
                )
            self._last_level = level
        return level

    def level(self) -> WarningLevel:
        """Graded budget check.

        PANIC only when the *absolute* budget is exhausted — a job that
        merely runs ahead of the pro-rated pace (ratio >= 1) seconds
        into the horizon still has virtually the whole budget left, so
        pace overshoot grades as WARNING2, the strongest non-panic
        reaction (a two-P-state default cap).
        """
        if self._consumed_j > self.config.budget_j:
            return WarningLevel.PANIC
        elapsed_share = min(self._elapsed_s / self.config.horizon_s, 1.0)
        if elapsed_share <= 0:
            return WarningLevel.OK
        ratio = self._consumed_j / (self.config.budget_j * elapsed_share)
        if ratio >= self.config.warning2:
            return WarningLevel.WARNING2
        if ratio >= self.config.warning1:
            return WarningLevel.WARNING1
        return WarningLevel.OK

    def recommended_max_pstate_offset(self) -> int:
        """How many P-states below nominal the defaults should be capped.

        EAR's graded reaction: nothing while OK, one state at the first
        warning, two at the second, three in panic.
        """
        level = self.level()
        return {
            WarningLevel.OK: 0,
            WarningLevel.WARNING1: 1,
            WarningLevel.WARNING2: 2,
            WarningLevel.PANIC: 3,
        }[level]

    @property
    def consumed_j(self) -> float:
        """Energy consumed against the budget so far, in joules."""
        return self._consumed_j

    @property
    def elapsed_s(self) -> float:
        """Budget-period time elapsed so far, in seconds."""
        return self._elapsed_s
