"""EARGM: the EAR Global Manager (energy control service).

EAR's third service after accounting and optimisation is *control*: a
cluster-wide energy budget monitor that warns and, past a threshold,
acts — in production by telling EARDs to cap the default policy
frequency.  The paper focuses on the optimisation service, so this is
the supporting implementation that completes the framework: budget
tracking over a time horizon, graded warning levels, and a P-state cap
pushed to the managed EARLs' configurations.

The budget is *rolling*: ``budget_j`` joules are granted per
``horizon_s`` window, and the accumulators reset at every horizon
boundary.  A controller that outlives one horizon (the normal case for
the long-lived service tier) therefore grades each window on its own
consumption instead of ratcheting toward permanent PANIC on lifetime
totals.  Reports that span a boundary are split pro-rata between the
old and the new horizon; a report that ends exactly on the boundary is
charged entirely to the closing horizon, so exhausting the budget in
precisely one horizon still panics before the window rolls.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..errors import ConfigError
from ..telemetry.recorder import NULL_RECORDER, Recorder

__all__ = ["WarningLevel", "EargmConfig", "Eargm"]


class WarningLevel(Enum):
    """Budget status, graded like EAR's eargm warnings.

    The first three levels grade the *pro-rated* pace (consumption vs.
    the elapsed share of the horizon); PANIC is reserved for absolute
    exhaustion of the budget.  A front-loaded job can overshoot its
    pace by a lot seconds into the horizon while barely denting the
    absolute budget — that is WARNING2 territory (cap the defaults),
    not a panic.
    """

    OK = auto()
    WARNING1 = auto()  # >= 85 % of the pro-rated budget consumed
    WARNING2 = auto()  # >= 95 % of pace, or past it entirely
    PANIC = auto()  # the absolute budget is exhausted


@dataclass(frozen=True)
class EargmConfig:
    """Energy budget granted per rolling horizon, e.g. 100 kWh per day."""

    budget_j: float
    horizon_s: float
    warning1: float = 0.85
    warning2: float = 0.95
    #: pace-grading grace, as a fraction of the horizon: the elapsed
    #: share is floored at this value, so the first completions of a
    #: fresh window (elapsed ~ 0, pace ratio ~ infinity) don't trip a
    #: spurious warning.  PANIC is absolute and unaffected.
    pace_grace: float = 0.01

    def __post_init__(self) -> None:
        if self.budget_j <= 0 or self.horizon_s <= 0:
            raise ConfigError("budget and horizon must be positive")
        if not 0 < self.warning1 < self.warning2 <= 1.0:
            raise ConfigError("warning thresholds must satisfy 0 < w1 < w2 <= 1")
        if not 0 <= self.pace_grace < 1:
            raise ConfigError("pace_grace must be in [0, 1)")


class Eargm:
    """Cluster energy-budget controller with rolling horizons.

    Grading happens on the *current* horizon's accumulators
    (:attr:`horizon_consumed_j` / :attr:`horizon_elapsed_s`), which
    reset at every horizon boundary.  The lifetime totals
    (:attr:`consumed_j` / :attr:`elapsed_s`) keep accumulating for
    accounting and reports, but never influence the warning level.
    """

    def __init__(
        self, config: EargmConfig, *, telemetry: Recorder = NULL_RECORDER
    ) -> None:
        self.config = config
        self.telemetry = telemetry
        self._consumed_j = 0.0
        self._elapsed_s = 0.0
        self._horizon_consumed_j = 0.0
        self._horizon_elapsed_s = 0.0
        self._horizons_completed = 0
        self._last_level = WarningLevel.OK

    def report(self, energy_j: float, seconds: float) -> WarningLevel:
        """Feed one accounting interval; get the current warning level.

        Intervals that extend past the current horizon's end are split
        pro-rata: the slice up to the boundary is charged to the
        closing horizon, the window rolls, and the remainder (possibly
        spanning several more horizons) is charged onward.  The roll
        only happens *strictly past* the boundary — an interval ending
        exactly on it still belongs to the closing horizon, so a budget
        exhausted in exactly one horizon panics before the reset.
        """
        if energy_j < 0 or seconds < 0:
            raise ConfigError("cannot report negative energy/time")
        self._consumed_j += energy_j
        self._elapsed_s += seconds
        horizon_s = self.config.horizon_s
        remaining_s = seconds
        remaining_j = energy_j
        while (
            remaining_s > 0
            and self._horizon_elapsed_s + remaining_s > horizon_s
        ):
            span_s = horizon_s - self._horizon_elapsed_s
            span_j = remaining_j * (span_s / remaining_s)
            self._horizon_consumed_j += span_j
            remaining_s -= span_s
            remaining_j -= span_j
            self._roll_horizon()
        self._horizon_elapsed_s += remaining_s
        self._horizon_consumed_j += remaining_j
        level = self.level()
        if level is not self._last_level:
            if self.telemetry.enabled:
                self.telemetry.event(
                    "eargm",
                    "level_change",
                    time_s=self._elapsed_s,
                    level=level.name,
                    previous=self._last_level.name,
                    consumed_j=self._consumed_j,
                )
            self._last_level = level
        return level

    def _roll_horizon(self) -> None:
        """Close the current horizon and open a fresh budget window."""
        self._horizons_completed += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "eargm",
                "horizon_rollover",
                time_s=self._elapsed_s,
                horizon=self._horizons_completed,
                consumed_j=self._horizon_consumed_j,
                budget_j=self.config.budget_j,
            )
        self._horizon_consumed_j = 0.0
        self._horizon_elapsed_s = 0.0

    def level(self) -> WarningLevel:
        """Graded budget check for the current horizon.

        PANIC only when the *absolute* horizon budget is exhausted — a
        job that merely runs ahead of the pro-rated pace (ratio >= 1)
        seconds into the horizon still has virtually the whole budget
        left, so pace overshoot grades as WARNING2, the strongest
        non-panic reaction (a two-P-state default cap).
        """
        if self._horizon_consumed_j > self.config.budget_j:
            return WarningLevel.PANIC
        # floor the elapsed share at the grace fraction: at the very
        # start of a window the pace ratio is numerically meaningless
        # (anything / ~0), and a compliant long-horizon service must
        # not get capped for completing a job right after a rollover.
        elapsed_share = (
            max(self._horizon_elapsed_s, self.config.pace_grace * self.config.horizon_s)
            / self.config.horizon_s
        )
        if elapsed_share <= 0:
            return WarningLevel.OK
        ratio = self._horizon_consumed_j / (self.config.budget_j * elapsed_share)
        if ratio >= self.config.warning2:
            return WarningLevel.WARNING2
        if ratio >= self.config.warning1:
            return WarningLevel.WARNING1
        return WarningLevel.OK

    def recommended_max_pstate_offset(self) -> int:
        """How many P-states below nominal the defaults should be capped.

        EAR's graded reaction: nothing while OK, one state at the first
        warning, two at the second, three in panic.
        """
        level = self.level()
        return {
            WarningLevel.OK: 0,
            WarningLevel.WARNING1: 1,
            WarningLevel.WARNING2: 2,
            WarningLevel.PANIC: 3,
        }[level]

    @property
    def consumed_j(self) -> float:
        """Lifetime energy consumed across all horizons, in joules."""
        return self._consumed_j

    @property
    def elapsed_s(self) -> float:
        """Lifetime budget-period time across all horizons, in seconds."""
        return self._elapsed_s

    @property
    def horizon_consumed_j(self) -> float:
        """Energy consumed against the *current* horizon's budget."""
        return self._horizon_consumed_j

    @property
    def horizon_elapsed_s(self) -> float:
        """Time elapsed inside the *current* horizon."""
        return self._horizon_elapsed_s

    @property
    def horizons_completed(self) -> int:
        """How many full budget horizons have rolled over."""
        return self._horizons_completed
