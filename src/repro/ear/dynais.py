"""DynAIS: Dynamic Application Iterative Structure detection.

EARL finds the outer loop of an MPI application *without any user
hints* by watching the stream of MPI calls: when the recent event
history becomes periodic, the period is the loop body and each period
boundary is one application iteration.  This reimplementation follows
the published behaviour (loop begin / new iteration / loop end events,
smallest-period-wins) with an O(max_period) per-event incremental
algorithm:

for every candidate period ``p`` we track the length of the current
suffix of the stream that satisfies ``e[t] == e[t - p]``; once that
suffix covers ``confirm`` full periods, the stream is declared periodic
with period ``p``.  Ties resolve to the smallest period, so an outer
loop containing two identical inner halves is reported at the inner
period — the same resolution the real DynAIS exhibits, and equally
adequate for signature windows because EARL only needs *stable,
repeating* boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["DynaisEvent", "Dynais"]


class DynaisEvent(Enum):
    """What the detector says after consuming one event."""

    NO_LOOP = auto()
    #: periodicity just confirmed; the current event starts iteration 0.
    NEW_LOOP = auto()
    #: inside a detected loop, not at a period boundary.
    IN_LOOP = auto()
    #: inside a detected loop, at a period boundary (one iteration done).
    NEW_ITERATION = auto()
    #: the periodic pattern broke; the loop ended.
    END_LOOP = auto()


@dataclass
class _PeriodTracker:
    period: int
    run: int = 0  # length of the suffix satisfying e[t] == e[t-p]


class Dynais:
    """Streaming loop detector over integer event ids."""

    def __init__(self, *, max_period: int = 64, confirm: int = 3) -> None:
        if max_period <= 0:
            raise ValueError("max_period must be positive")
        if confirm < 2:
            raise ValueError("confirm must be at least 2")
        self.max_period = max_period
        self.confirm = confirm
        self._history: list[int] = []
        self._trackers = [_PeriodTracker(p) for p in range(1, max_period + 1)]
        self._period: int | None = None
        self._since_boundary = 0

    @property
    def in_loop(self) -> bool:
        """True once a loop period has been confirmed."""
        return self._period is not None

    @property
    def period(self) -> int | None:
        """Length of the detected loop body, in events."""
        return self._period

    def reset(self) -> None:
        """Forget all history (EARL calls this between application phases)."""
        self._history.clear()
        for t in self._trackers:
            t.run = 0
        self._period = None
        self._since_boundary = 0

    def observe(self, event: int) -> DynaisEvent:
        """Consume one MPI event; report the loop state transition."""
        n = len(self._history)
        for t in self._trackers:
            if n >= t.period and self._history[n - t.period] == event:
                t.run += 1
            else:
                t.run = 0
        self._history.append(event)
        if len(self._history) > 4 * self.max_period * self.confirm:
            # bound memory: keep enough history for the longest period
            keep = 2 * self.max_period * self.confirm
            del self._history[:-keep]

        if self._period is None:
            for t in self._trackers:  # ordered by period: smallest wins
                if t.run >= self.confirm * t.period:
                    self._period = t.period
                    self._since_boundary = 1
                    return DynaisEvent.NEW_LOOP
            return DynaisEvent.NO_LOOP

        tracker = self._trackers[self._period - 1]
        if tracker.run == 0:
            self._period = None
            self._since_boundary = 0
            return DynaisEvent.END_LOOP
        self._since_boundary += 1
        if self._since_boundary >= self._period:
            self._since_boundary = 0
            return DynaisEvent.NEW_ITERATION
        return DynaisEvent.IN_LOOP
