"""Policy plugin registry.

EAR loads policies as shared-object plugins resolved by name from
``ear.conf``; the Python equivalent is a registry of factories.  A
factory receives the :class:`~repro.ear.policies.context.PolicyContext`
(node capabilities + configuration + trained model) and returns a fresh
plugin instance — one per EARL, since policies carry per-job state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ...errors import PolicyError
from ...hw.pstates import PStateTable
from ...telemetry.recorder import NULL_RECORDER, Recorder
from ..config import EarConfig
from ..models.default_model import EnergyModel
from .api import PolicyPlugin

__all__ = [
    "PolicyContext",
    "register_policy",
    "create_policy",
    "available_policies",
    "policy_applies_frequencies",
]


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy factory needs to instantiate a plugin."""

    config: EarConfig
    pstates: PStateTable
    model: EnergyModel
    #: silicon uncore range, GHz (read from UNCORE_RATIO_LIMIT at boot).
    imc_max_ghz: float
    imc_min_ghz: float
    #: structured event sink; the no-op NULL_RECORDER unless the engine
    #: armed telemetry for this node.
    telemetry: Recorder = NULL_RECORDER


_FACTORIES: Dict[str, Callable[[PolicyContext], PolicyPlugin]] = {}


def register_policy(name: str):
    """Class decorator registering a policy factory under ``name``."""

    def deco(factory: Callable[[PolicyContext], PolicyPlugin]):
        if name in _FACTORIES:
            raise PolicyError(f"policy {name!r} registered twice")
        _FACTORIES[name] = factory
        return factory

    return deco


def create_policy(name: str, context: PolicyContext) -> PolicyPlugin:
    """Instantiate a registered policy plugin."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    plugin = factory(context)
    if not isinstance(plugin, PolicyPlugin):
        raise PolicyError(f"factory for {name!r} returned {type(plugin).__name__}")
    return plugin


def available_policies() -> tuple[str, ...]:
    """Names of every registered policy plugin, sorted."""
    return tuple(sorted(_FACTORIES))


def policy_applies_frequencies(name: str) -> bool:
    """Whether the named policy programs the hardware.

    Read from the registered factory *class* so callers (the engine's
    pin guard) can decide before instantiating a plugin: monitoring-style
    policies observe without touching frequencies, so pinning the clock
    under them is legitimate — it is exactly how EAR's learning phase
    measures the P-state/uncore grid.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return bool(getattr(factory, "applies_frequencies", True))
