"""Region-based ``min_energy``: per-phase (f_cpu, f_imc) tables.

The paper tunes one ``(f_cpu, f_imc)`` pair per application signature;
real workloads are phase-structured.  Chadha & Gerndt's region-based
DVFS/UFS modelling (see PAPERS.md and ROADMAP item 4) keeps one
operating point *per region* instead: when the application re-enters a
phase it has already visited, the tuned pair is re-applied directly and
the iterative descent — with its penalty-bearing ``CONTINUE`` windows —
is skipped.

This policy implements that on top of :class:`MinEnergyPolicy`:

* **Region key.**  A region is identified by the signature observed at
  the phase boundary (the window that (re-)enters ``CPU_FREQ_SEL`` —
  either the first window of the run, a phase change detected during
  the descent, or a validation failure in the stable state, exactly the
  boundaries DynAIS + the ``phase_change`` telemetry event expose).
  CPI and GB/s are quantized into logarithmic buckets whose width is
  the configured ``signature_change_th`` (15 % by default), so two
  windows of the same phase map to the same key while signatures the
  stable-state validation would reject map to different ones.  See
  ``docs/POLICIES.md`` for the derivation and worked examples.

* **Learning.**  The first visit to a region runs the inherited
  figure-2 machine unchanged.  When the machine settles (enters
  ``STABLE``), the selected ``(P-state, f_cpu, f_imc_max)`` triple is
  stored under the region key (``policy/region_learned`` telemetry).

* **Re-entry.**  A window entering ``CPU_FREQ_SEL`` whose key is in the
  table — and differs from the region the policy is currently tuned
  for — re-applies the stored pair in one step: references and the
  decision signature are rebased on the fresh window, the machine goes
  straight to ``STABLE`` and returns ``READY``
  (``policy/region_reapply`` telemetry).

* **Single-phase fallback.**  On a single-phase application only one
  region key ever exists, and it is always the *active* one after the
  first settle, so the re-apply branch never triggers: every decision
  is byte-for-byte the decision :class:`MinEnergyPolicy` would have
  made (pinned by tests/ear/test_regions_policy.py).

The table survives :meth:`reset` on purpose: a reset marks a phase
boundary, which is precisely when re-entering an already-tuned region
must find the table populated.  A fresh job gets a fresh plugin
instance, so tables never leak across jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..signature import Signature
from .api import NodeFreqs, PolicyState
from .min_energy import MinEnergyPolicy, Stage
from .registry import PolicyContext, register_policy

__all__ = ["MinEnergyRegionsPolicy", "RegionEntry", "region_key"]

#: GB/s level below which memory traffic is busy-wait noise; such
#: signatures share one "no traffic" bucket instead of spreading over
#: meaningless log buckets (mirrors the descent guard's floor).
_GBS_BUCKET_FLOOR = 0.5


def region_key(sig: Signature, change_th: float) -> tuple[int, int]:
    """Quantize a phase-boundary signature into a region key.

    CPI and GB/s land in logarithmic buckets of relative width
    ``change_th`` — ``bucket = floor(ln(x) / ln(1 + change_th))`` — so
    values within one signature-change tolerance of each other fall in
    the same or an adjacent bucket.  A boundary straddle is benign: the
    policy just learns the region twice.
    """
    width = math.log1p(change_th)
    cpi_bucket = int(math.floor(math.log(max(sig.cpi, 1e-9)) / width))
    if sig.gbs <= _GBS_BUCKET_FLOOR:
        gbs_bucket = -(10**6)  # the shared "no memory traffic" bucket
    else:
        gbs_bucket = int(math.floor(math.log(sig.gbs) / width))
    return (cpi_bucket, gbs_bucket)


@dataclass(frozen=True)
class RegionEntry:
    """One region's learned operating point."""

    pstate: int
    cpu_ghz: float
    imc_max_ghz: float


@register_policy("min_energy_regions")
class MinEnergyRegionsPolicy(MinEnergyPolicy):
    """min_energy + explicit UFS with a per-region frequency table."""

    name = "min_energy_regions"

    def __init__(self, ctx: PolicyContext) -> None:
        super().__init__(ctx)
        self._region_table: dict[tuple[int, int], RegionEntry] = {}
        #: region the current STABLE selection was tuned for.
        self._active_region: tuple[int, int] | None = None
        #: region whose descent is in flight (learned at the settle).
        self._pending_region: tuple[int, int] | None = None

    @property
    def region_table(self) -> dict[tuple[int, int], RegionEntry]:
        """Copy of the learned per-region table (tests/reports)."""
        return dict(self._region_table)

    def reset(self) -> None:
        """Forget descent state but keep the learned region table."""
        super().reset()
        self._pending_region = None

    # -- the region hook ------------------------------------------------------

    def _cpu_freq_sel(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        """Every (re-)entry into the CPU stage passes through here —
        the first window, the in-descent phase-change restart and the
        restart after a validation failure alike."""
        key = region_key(sig, self.cfg.signature_change_th)
        entry = self._region_table.get(key)
        if entry is not None and key != self._active_region:
            return self._reapply(key, entry, sig)
        self._pending_region = key
        return super()._cpu_freq_sel(sig)

    def _reapply(
        self, key: tuple[int, int], entry: RegionEntry, sig: Signature
    ) -> tuple[PolicyState, NodeFreqs]:
        """Re-enter a known region: apply its stored pair in one step."""
        self._current_ps = entry.pstate
        self._selected_cpu_ghz = entry.cpu_ghz
        self._imc_max_ghz = entry.imc_max_ghz
        # the fresh boundary window is the new reference: validation and
        # the descent guard both grade against *this* phase's levels.
        self._ref_cpi, self._ref_gbs = sig.cpi, sig.gbs
        self._decision_sig = sig
        self._active_region = key
        self._pending_region = None
        if self.telemetry.enabled:
            self.telemetry.event(
                "policy",
                "region_reapply",
                region=f"{key[0]},{key[1]}",
                pstate=entry.pstate,
                cpu_ghz=entry.cpu_ghz,
                imc_max_ghz=entry.imc_max_ghz,
            )
        self._enter_stage(Stage.STABLE)
        freqs = NodeFreqs(
            cpu_ghz=entry.cpu_ghz,
            imc_max_ghz=self._imc_max_ghz,
            imc_min_ghz=min(self.ctx.imc_min_ghz, self._imc_max_ghz),
        )
        return PolicyState.READY, self._freqs_with_limits(freqs)

    def _enter_stage(self, stage: Stage) -> None:
        """Intercept the settle: store the pair under the pending key."""
        if (
            stage is Stage.STABLE
            and self._stage is not Stage.STABLE
            and self._pending_region is not None
        ):
            key = self._pending_region
            self._region_table[key] = RegionEntry(
                pstate=self._current_ps,
                cpu_ghz=self._selected_cpu_ghz,
                imc_max_ghz=self._imc_max_ghz,
            )
            self._active_region = key
            self._pending_region = None
            if self.telemetry.enabled:
                self.telemetry.event(
                    "policy",
                    "region_learned",
                    region=f"{key[0]},{key[1]}",
                    pstate=self._current_ps,
                    cpu_ghz=self._selected_cpu_ghz,
                    imc_max_ghz=self._imc_max_ghz,
                    n_regions=len(self._region_table),
                )
        super()._enter_stage(stage)
