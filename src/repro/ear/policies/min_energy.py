"""``min_energy_to_solution`` with explicit uncore frequency selection.

This is the paper's core contribution (section V-B).  The policy is a
two-stage state machine (the paper's figure 2):

``CPU_FREQ_SEL``
    The classic linear search: project time and power at every P-state
    with the energy model, keep the states whose predicted time penalty
    against the *default* (nominal) frequency stays below
    ``cpu_policy_th``, pick the one with minimum predicted energy.

``COMP_REF``
    Only entered when the CPU stage lowered the frequency: one
    signature window at the new clock provides the reference CPI and
    GB/s for the uncore guard.  When the CPU stage keeps the default
    frequency, the current signature already *is* the reference and the
    policy jumps straight to ``IMC_FREQ_SEL``.

``IMC_FREQ_SEL``
    The iterative descent.  Starting from the hardware-selected uncore
    frequency (HW-guided; the paper's default) or from the silicon
    maximum (the "not guided" alternative of figure 5), each signature
    window lowers the **maximum** uncore limit by 0.1 GHz and returns
    ``CONTINUE``.  The guard: if CPI rose above
    ``ref_cpi * (1 + unc_policy_th)`` or GB/s fell below
    ``ref_gbs * (1 - unc_policy_th)``, the last step is reverted and
    the policy returns ``READY``.  Only the max limit moves — the
    minimum stays at the hardware floor so the hardware can still react
    if the application changes underneath (the paper's extension 3).

A phase change during the descent (CPI moving beyond the 15 % signature
threshold — far past anything a 0.1 GHz uncore step can cause) resets
the machine to ``CPU_FREQ_SEL`` (the paper's final extension).
"""

from __future__ import annotations

from enum import Enum, auto

from ...errors import PolicyError
from ...hw.units import snap_ghz
from ..signature import Signature, relative_change
from .api import NodeFreqs, PolicyPlugin, PolicyState
from .registry import PolicyContext, register_policy

__all__ = ["MinEnergyPolicy", "Stage"]

#: below this traffic level the GB/s guard is meaningless noise
#: (busy-wait hosts move ~0.1 GB/s).
_GBS_GUARD_FLOOR = 1.0


class Stage(Enum):
    """Internal stages of the figure-2 state machine."""

    CPU_FREQ_SEL = auto()
    COMP_REF = auto()
    IMC_FREQ_SEL = auto()
    STABLE = auto()


@register_policy("min_energy")
class MinEnergyPolicy(PolicyPlugin):
    """min_energy_to_solution + explicit UFS."""

    name = "min_energy"

    def __init__(self, ctx: PolicyContext) -> None:
        self.ctx = ctx
        self.cfg = ctx.config
        self.pstates = ctx.pstates
        self.model = ctx.model
        self.telemetry = ctx.telemetry
        self._stage = Stage.CPU_FREQ_SEL
        self._current_ps = self.default_pstate
        self._selected_cpu_ghz = self.pstates.freq_of(self.default_pstate)
        self._imc_max_ghz = self.default_freqs().imc_max_ghz
        self._ref_cpi: float | None = None
        self._ref_gbs: float | None = None
        self._decision_sig: Signature | None = None

    # -- public API -------------------------------------------------------

    @property
    def stage(self) -> Stage:
        """The figure-2 stage the policy is currently in."""
        return self._stage

    def _enter_stage(self, stage: Stage) -> None:
        """Move the state machine, announcing the transition."""
        if stage is self._stage:
            return
        self._stage = stage
        if self.telemetry.enabled:
            self.telemetry.event("policy", "stage", stage=stage.name)

    @property
    def default_pstate(self) -> int:
        """The policy's reference P-state: nominal, possibly capped by
        EARGM's ``default_pstate_offset`` under budget pressure."""
        return self.pstates.clamp_pstate(
            self.pstates.nominal_pstate + self.cfg.default_pstate_offset
        )

    def default_freqs(self) -> NodeFreqs:
        """The safe frequencies EARD restores on failure."""
        imc_max = self.ctx.imc_max_ghz
        if self.cfg.default_imc_max_ghz is not None:
            imc_max = min(imc_max, self.cfg.default_imc_max_ghz)
        return NodeFreqs(
            cpu_ghz=self.pstates.freq_of(self.default_pstate),
            imc_max_ghz=imc_max,
            imc_min_ghz=min(self.ctx.imc_min_ghz, imc_max),
        )

    def reset(self) -> None:
        """Forget all descent state; next window starts the machine over."""
        self._enter_stage(Stage.CPU_FREQ_SEL)
        self._current_ps = self.default_pstate
        self._selected_cpu_ghz = self.pstates.freq_of(self.default_pstate)
        self._imc_max_ghz = self.default_freqs().imc_max_ghz
        self._ref_cpi = None
        self._ref_gbs = None
        self._decision_sig = None

    def node_policy(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        """One policy step for a new signature (Code 1's NODE_POLICY)."""
        if self._stage is Stage.CPU_FREQ_SEL:
            return self._cpu_freq_sel(sig)
        if self._stage is Stage.COMP_REF:
            return self._comp_ref(sig)
        if self._stage is Stage.IMC_FREQ_SEL:
            return self._imc_freq_sel(sig)
        # STABLE: EARL should be validating, but re-running the policy
        # from scratch is the safe interpretation.
        self.reset()
        return self._cpu_freq_sel(sig)

    def validate(self, sig: Signature) -> bool:
        """Stable-state check: has the application changed phase?"""
        if self._decision_sig is None:
            return True
        from ..signature import signature_changed

        return not signature_changed(
            self._decision_sig, sig, self.cfg.signature_change_th
        )

    # -- stage: CPU frequency selection --------------------------------------

    def _cpu_freq_sel(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        best_ps = self._select_cpu_pstate(sig)
        self._selected_cpu_ghz = self.pstates.freq_of(best_ps)
        if self.telemetry.enabled:
            self.telemetry.event(
                "policy",
                "cpu_select",
                pstate=best_ps,
                cpu_ghz=self._selected_cpu_ghz,
            )
        default_ps = self.default_pstate
        defaults = self.default_freqs()
        freqs = NodeFreqs(
            cpu_ghz=self._selected_cpu_ghz,
            imc_max_ghz=defaults.imc_max_ghz,
            imc_min_ghz=defaults.imc_min_ghz,
        )
        was_at = self._current_ps
        self._current_ps = best_ps

        if not self.cfg.use_explicit_ufs:
            # Classic min_energy_to_solution ("ME" in the evaluation).
            self._decision_sig = sig
            self._enter_stage(Stage.STABLE)
            return PolicyState.READY, freqs

        if best_ps == default_ps and was_at == default_ps:
            # The signature was measured at the selected frequency:
            # it already is the uncore reference (figure 2's short-cut
            # straight into IMC_FREQ_SEL).
            self._ref_cpi, self._ref_gbs = sig.cpi, sig.gbs
            self._decision_sig = sig
            self._enter_stage(Stage.IMC_FREQ_SEL)
            self._imc_max_ghz = self._imc_search_start(sig)
            return self._imc_step_down(freqs)

        self._enter_stage(Stage.COMP_REF)
        return PolicyState.CONTINUE, freqs

    def _select_cpu_pstate(self, sig: Signature) -> int:
        """The basic min_energy linear search over P-states.

        Projections run *from* the P-state matching the signature's
        measured average frequency — under AVX-512 licence throttling
        that is the licence state, not the programmed target, and
        anchoring there is what keeps the search honest for
        vector-dense kernels (the paper's section V-A point).
        """
        ps = self.pstates
        default_ps = self.default_pstate
        from_ps = ps.closest_pstate(sig.avg_cpu_freq_ghz)
        ref = self.model.project(sig, from_ps, default_ps)
        limit = ref.time_s * (1.0 + self.cfg.cpu_policy_th)
        best_ps, best_energy = default_ps, ref.energy_j
        min_ps = ps.closest_pstate(self.cfg.min_cpu_freq_ghz)
        for p in range(default_ps + 1, min_ps + 1):
            proj = self.model.project(sig, from_ps, p)
            if proj.time_s <= limit and proj.energy_j < best_energy:
                best_ps, best_energy = p, proj.energy_j
        return best_ps

    # -- stage: reference computation --------------------------------------------

    def _comp_ref(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        self._ref_cpi, self._ref_gbs = sig.cpi, sig.gbs
        self._decision_sig = sig
        self._enter_stage(Stage.IMC_FREQ_SEL)
        self._imc_max_ghz = self._imc_search_start(sig)
        freqs = NodeFreqs(
            cpu_ghz=self._selected_cpu_ghz,
            imc_max_ghz=self._imc_max_ghz,
            imc_min_ghz=self.ctx.imc_min_ghz,
        )
        return self._imc_step_down(freqs)

    def _imc_search_start(self, sig: Signature) -> float:
        """Where the descent begins: HW selection or the configured max.

        Both variants stay under the site default ceiling
        (``default_imc_max_ghz``) — starting a "not guided" search at
        the silicon maximum would transiently override the site cap.
        """
        ceiling = self.default_freqs().imc_max_ghz
        if self.cfg.hw_guided_imc:
            return snap_ghz(
                min(max(sig.avg_imc_freq_ghz, self.ctx.imc_min_ghz), ceiling)
            )
        return ceiling

    # -- stage: IMC frequency selection ---------------------------------------------

    def _imc_freq_sel(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        if self._ref_cpi is None or self._ref_gbs is None:
            raise PolicyError("IMC_FREQ_SEL entered without a reference")

        # Phase change during the descent: far beyond what one uncore
        # step can cause -> start over from the CPU stage.  The signature
        # was measured at the currently applied P-state, so that state is
        # preserved across the reset for correct projections.
        if relative_change(self._ref_cpi, sig.cpi) > self.cfg.signature_change_th:
            if self.telemetry.enabled:
                self.telemetry.event(
                    "policy",
                    "phase_change",
                    cpi=sig.cpi,
                    ref_cpi=self._ref_cpi,
                )
            applied_ps = self._current_ps
            self.reset()
            self._current_ps = applied_ps
            return self._cpu_freq_sel(sig)

        freqs = NodeFreqs(
            cpu_ghz=self._selected_cpu_ghz,
            imc_max_ghz=self._imc_max_ghz,
            imc_min_ghz=self.ctx.imc_min_ghz,
        )
        # Movements below the measurement-significance floor cannot be
        # attributed to the uncore step (see EarConfig.guard_epsilon).
        th = max(self.cfg.unc_policy_th, self.cfg.guard_epsilon)
        cpi_bad = sig.cpi > self._ref_cpi * (1.0 + th)
        gbs_bad = (
            self._ref_gbs > _GBS_GUARD_FLOOR
            and sig.gbs < self._ref_gbs * (1.0 - th)
        )
        if cpi_bad or gbs_bad:
            # Revert the last reduction and settle.
            self._imc_max_ghz = snap_ghz(
                min(self._imc_max_ghz + self.cfg.imc_step_ghz, self.ctx.imc_max_ghz)
            )
            if self.telemetry.enabled:
                self.telemetry.event(
                    "policy",
                    "imc_guard",
                    cpi=sig.cpi,
                    ref_cpi=self._ref_cpi,
                    gbs=sig.gbs,
                    ref_gbs=self._ref_gbs,
                    settled_imc_max_ghz=self._imc_max_ghz,
                )
            self._enter_stage(Stage.STABLE)
            return PolicyState.READY, freqs.with_imc_max(self._imc_max_ghz)
        return self._imc_step_down(freqs)

    def _imc_step_down(self, freqs: NodeFreqs) -> tuple[PolicyState, NodeFreqs]:
        """Lower the max uncore limit one step, or settle at the floor."""
        next_max = snap_ghz(self._imc_max_ghz - self.cfg.imc_step_ghz)
        if next_max < self.ctx.imc_min_ghz - 1e-9:
            self._enter_stage(Stage.STABLE)
            return PolicyState.READY, self._freqs_with_limits(freqs)
        self._imc_max_ghz = next_max
        if self.telemetry.enabled:
            self.telemetry.event(
                "policy", "imc_step", imc_max_ghz=self._imc_max_ghz
            )
        return PolicyState.CONTINUE, self._freqs_with_limits(freqs)

    def _freqs_with_limits(self, freqs: NodeFreqs) -> NodeFreqs:
        imc_min = (
            self._imc_max_ghz if self.cfg.move_imc_min else self.ctx.imc_min_ghz
        )
        return NodeFreqs(
            cpu_ghz=freqs.cpu_ghz,
            imc_max_ghz=self._imc_max_ghz,
            imc_min_ghz=imc_min,
        )
