"""The EAR policy plugin API, extended for explicit UFS.

The paper's framework contribution is precisely this interface: "The
EAR API for energy policies has been extended to select frequencies for
the CPU and Integrated Memory Controller (IMC) scopes."  A policy is a
plugin exposing

* ``node_policy(signature)`` — decide the next frequencies; return
  :attr:`PolicyState.READY` when converged or
  :attr:`PolicyState.CONTINUE` to be re-invoked on the next signature
  (this is what makes iterative policies like the eUFS descent
  possible),
* ``validate(signature)`` — called while the policy is stable, to
  confirm the selection still matches the running application,
* ``default_freqs()`` — the safe point EARL restores on validation
  failure.

Frequency decisions travel in :class:`NodeFreqs`, which spans both
scopes: the CPU clock plus the IMC limit range (max and min — the
paper's policy moves only the maximum, leaving the hardware room to
react to phase changes, but the type supports both so the rejected
alternative can be benchmarked).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from enum import Enum, auto

from ...errors import PolicyError
from ..signature import Signature

__all__ = ["PolicyState", "NodeFreqs", "PolicyPlugin"]


class PolicyState(Enum):
    """What the policy tells EARL after a ``node_policy`` call."""

    #: selection finished; EARL applies it and moves to validation.
    READY = auto()
    #: iterative selection in progress; re-invoke on the next signature.
    CONTINUE = auto()


@dataclass(frozen=True)
class NodeFreqs:
    """A frequency selection spanning the CPU and IMC scopes."""

    cpu_ghz: float
    imc_max_ghz: float
    imc_min_ghz: float

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise PolicyError(f"cpu frequency must be positive, got {self.cpu_ghz}")
        if self.imc_min_ghz > self.imc_max_ghz + 1e-9:
            raise PolicyError(
                f"IMC min {self.imc_min_ghz} above max {self.imc_max_ghz}"
            )

    def with_imc_max(self, imc_max_ghz: float) -> "NodeFreqs":
        """Copy of this selection with a different uncore maximum."""
        return replace(
            self,
            imc_max_ghz=imc_max_ghz,
            imc_min_ghz=min(self.imc_min_ghz, imc_max_ghz),
        )


class PolicyPlugin(abc.ABC):
    """Base class every energy policy implements.

    Concrete policies are registered in
    :mod:`repro.ear.policies.registry` and loaded by name, mirroring
    EAR's dlopen-based plugin mechanism.
    """

    #: registry name; subclasses must override.
    name: str = ""

    #: whether EARL should program the hardware with this policy's
    #: decisions; monitoring-style policies observe without touching
    #: frequency (pinning the clock would itself change HW UFS behaviour).
    applies_frequencies: bool = True

    @abc.abstractmethod
    def node_policy(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        """Decide the next frequencies from a fresh signature."""

    @abc.abstractmethod
    def validate(self, sig: Signature) -> bool:
        """Check the stable selection still fits the application."""

    @abc.abstractmethod
    def default_freqs(self) -> NodeFreqs:
        """The safe selection EARL restores when validation fails."""

    def reset(self) -> None:
        """Forget internal state (application phase change)."""

    # -- optional hooks mirroring EAR's application lifetime events --------
    # (the paper: "several application lifetime events are captured to
    # invoke policy functions ... start/end of the application, loop,
    # mpi call and the signature computation")

    def on_app_start(self) -> None:  # pragma: no cover - default no-op
        """Called once when the application starts."""

    def on_app_end(self) -> None:  # pragma: no cover - default no-op
        """Called once when the application ends."""

    def on_new_loop(self) -> None:  # pragma: no cover - default no-op
        """Called when DynAIS detects a new iterative region."""

    def on_end_loop(self) -> None:  # pragma: no cover - default no-op
        """Called when the detected iterative region ends."""
