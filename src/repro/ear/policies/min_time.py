"""``min_time_to_solution`` (+ the paper's future-work eUFS extension).

EAR's second default policy minimises execution time: starting from the
default frequency it moves *up* in frequency while the predicted
performance gain justifies the frequency increase — the efficiency
condition

    (T(f_i) - T(f_j)) / T(f_i)  >=  min_eff_gain * (f_j - f_i) / f_i

i.e. a CPU-bound code climbs to turbo, a memory-bound one stays put
because extra clock buys no speedup.

The paper leaves "integrating the same [explicit UFS] strategy in
min_time_to_solution" as future work and explicitly mentions
"additional strategies such as increasing the uncore frequency".  Both
are implemented here:

* for CPU-bound signatures the inherited guarded *descent* trims uncore
  power the application cannot use (bounded by ``unc_policy_th``);
* for memory-bound signatures running under a **constrained** uncore
  ceiling (a sysadmin default, an EPB powersave bias, a leftover limit
  from a previous job), the IMC stage searches *upward* instead: raise
  the max limit 0.1 GHz per signature window while the measured
  iteration time keeps improving, revert the last step when it stops.
"""

from __future__ import annotations

from ...hw.units import snap_ghz
from ..signature import Signature, signature_changed
from .api import NodeFreqs, PolicyPlugin, PolicyState
from .min_energy import MinEnergyPolicy, Stage
from .registry import PolicyContext, register_policy

__all__ = ["MinTimePolicy"]

#: TPI/CPI ratio above which a signature counts as memory-bound enough
#: that *more* uncore could buy time (roughly: >40 % stall share on the
#: trained corpus family).
_MEMORY_BOUND_TPI_PER_CPI = 0.013

#: default efficiency threshold: EAR ships 0.7 (70 % of the frequency
#: increase must show up as speedup to keep climbing).
MIN_EFF_GAIN_DEFAULT = 0.7


@register_policy("min_time")
class MinTimePolicy(MinEnergyPolicy):
    """min_time_to_solution, reusing the eUFS descent machinery."""

    name = "min_time"

    def __init__(self, ctx: PolicyContext, *, min_eff_gain: float = MIN_EFF_GAIN_DEFAULT) -> None:
        super().__init__(ctx)
        if not 0.0 < min_eff_gain <= 1.0:
            raise ValueError(f"min_eff_gain must be in (0, 1], got {min_eff_gain}")
        self.min_eff_gain = min_eff_gain
        self._search_up = False
        self._last_time_s: float | None = None

    def _select_cpu_pstate(self, sig: Signature) -> int:
        """Climb from the default frequency while the gain justifies it.

        Overrides the min_energy linear search; everything else (state
        machine, COMP_REF, the guarded IMC descent) is inherited.
        """
        ps = self.pstates
        current = ps.nominal_pstate
        proj_cur = self.model.project(sig, self._current_ps, current)
        # P-state indices decrease toward turbo (index 0).
        for candidate in range(current - 1, -1, -1):
            proj_next = self.model.project(sig, self._current_ps, candidate)
            f_cur = ps.freq_of(current)
            f_next = ps.freq_of(candidate)
            gain = (proj_cur.time_s - proj_next.time_s) / proj_cur.time_s
            required = self.min_eff_gain * (f_next - f_cur) / f_cur
            if gain < required:
                break
            current, proj_cur = candidate, proj_next
        return current

    # -- the future-work upward uncore search -------------------------------

    def reset(self) -> None:
        """Forget the selection state."""
        super().reset()
        self._search_up = False
        self._last_time_s = None

    def _imc_search_start(self, sig: Signature) -> float:
        """Decide the search direction before delegating.

        A memory-bound signature whose uncore sits visibly below the
        silicon maximum has time to gain from *raising* the ceiling.
        """
        memory_bound = sig.tpi / sig.cpi >= _MEMORY_BOUND_TPI_PER_CPI
        constrained = sig.avg_imc_freq_ghz < self.ctx.imc_max_ghz - 1.5 * self.cfg.imc_step_ghz
        self._search_up = memory_bound and constrained
        self._last_time_s = sig.iteration_time_s
        return super()._imc_search_start(sig)

    def _imc_freq_sel(self, sig: Signature):
        if not self._search_up:
            return super()._imc_freq_sel(sig)
        freqs = NodeFreqs(
            cpu_ghz=self._selected_cpu_ghz,
            imc_max_ghz=self._imc_max_ghz,
            imc_min_ghz=self.ctx.imc_min_ghz,
        )
        improving = (
            self._last_time_s is None
            or sig.iteration_time_s
            < self._last_time_s * (1.0 - self.cfg.guard_epsilon)
        )
        at_ceiling = self._imc_max_ghz >= self.ctx.imc_max_ghz - 1e-9
        self._last_time_s = sig.iteration_time_s
        if not improving and not at_ceiling:
            # the last raise bought nothing: revert it and settle
            self._imc_max_ghz = snap_ghz(
                max(self._imc_max_ghz - self.cfg.imc_step_ghz, self.ctx.imc_min_ghz)
            )
            self._stage = Stage.STABLE
            return PolicyState.READY, freqs.with_imc_max(self._imc_max_ghz)
        if at_ceiling:
            self._stage = Stage.STABLE
            return PolicyState.READY, freqs.with_imc_max(self._imc_max_ghz)
        self._imc_max_ghz = snap_ghz(
            min(self._imc_max_ghz + self.cfg.imc_step_ghz, self.ctx.imc_max_ghz)
        )
        return PolicyState.CONTINUE, freqs.with_imc_max(self._imc_max_ghz)

    def _imc_step_down(self, freqs: NodeFreqs):
        """First step after the reference window: up or down by mode."""
        if not self._search_up:
            return super()._imc_step_down(freqs)
        if self._imc_max_ghz >= self.ctx.imc_max_ghz - 1e-9:
            self._stage = Stage.STABLE
            return PolicyState.READY, freqs.with_imc_max(self._imc_max_ghz)
        self._imc_max_ghz = snap_ghz(self._imc_max_ghz + self.cfg.imc_step_ghz)
        return PolicyState.CONTINUE, freqs.with_imc_max(self._imc_max_ghz)


@register_policy("monitoring")
class MonitoringPolicy(PolicyPlugin):
    """The no-op policy: monitoring only, hardware keeps all control.

    This is the paper's "No policy" reference configuration — nominal
    CPU frequency, hardware UFS — expressed as a plugin so the whole
    evaluation runs through one code path.
    """

    name = "monitoring"
    applies_frequencies = False

    def __init__(self, ctx: PolicyContext) -> None:
        self.ctx = ctx
        self._last: Signature | None = None

    def node_policy(self, sig: Signature) -> tuple[PolicyState, NodeFreqs]:
        """One policy step for a new signature."""
        self._last = sig
        return PolicyState.READY, self.default_freqs()

    def validate(self, sig: Signature) -> bool:
        """Accept every signature: monitoring never re-decides."""
        if self._last is None:
            return True
        return not signature_changed(
            self._last, sig, self.ctx.config.signature_change_th
        )

    def default_freqs(self) -> NodeFreqs:
        """The node's default frequencies (nothing is ever changed)."""
        return NodeFreqs(
            cpu_ghz=self.ctx.pstates.nominal_ghz,
            imc_max_ghz=self.ctx.imc_max_ghz,
            imc_min_ghz=self.ctx.imc_min_ghz,
        )
