"""EAR energy policy plugins.

Importing this package registers the built-in policies:
``min_energy`` (the paper's extended min_energy_to_solution with
explicit UFS), ``min_energy_regions`` (the region-based variant with a
per-phase frequency table; see docs/POLICIES.md), ``min_time`` (with
the future-work eUFS extension) and ``monitoring`` (no-op reference).
"""

from .api import NodeFreqs, PolicyPlugin, PolicyState
from .min_energy import MinEnergyPolicy, Stage
from .min_time import MinTimePolicy, MonitoringPolicy
from .regions import MinEnergyRegionsPolicy, RegionEntry, region_key
from .registry import (
    PolicyContext,
    available_policies,
    create_policy,
    register_policy,
)

__all__ = [
    "NodeFreqs",
    "PolicyPlugin",
    "PolicyState",
    "MinEnergyPolicy",
    "MinEnergyRegionsPolicy",
    "MinTimePolicy",
    "MonitoringPolicy",
    "RegionEntry",
    "region_key",
    "Stage",
    "PolicyContext",
    "available_policies",
    "create_policy",
    "register_policy",
]
