"""The default EAR projection model (pre-AVX512).

This is the model the 2020 EAR paper ships: project CPI and power
through the trained per-pair coefficients, derive time from the
CPI/frequency identity.  The paper's new AVX512 model wraps this one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ModelError
from ...hw.pstates import PStateTable
from ..signature import Signature
from .coefficients import CoefficientTable

__all__ = ["Projection", "EnergyModel", "DefaultModel"]


@dataclass(frozen=True)
class Projection:
    """Predicted behaviour at a target P-state."""

    pstate: int
    time_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        """Predicted node energy per application iteration."""
        return self.time_s * self.power_w


class EnergyModel:
    """Interface both models implement."""

    name: str = "abstract"

    def project(self, sig: Signature, from_ps: int, to_ps: int) -> Projection:
        """Predict behaviour at ``to_ps`` from a signature at ``from_ps``."""
        raise NotImplementedError


class DefaultModel(EnergyModel):
    """CPI/TPI linear projection over trained per-pair coefficients."""

    name = "default"

    def __init__(self, table: CoefficientTable, pstates: PStateTable) -> None:
        if len(table.pstate_freqs_ghz) != len(pstates):
            raise ModelError(
                "coefficient table and P-state table disagree on the number "
                f"of states ({len(table.pstate_freqs_ghz)} vs {len(pstates)})"
            )
        self.table = table
        self.pstates = pstates

    def project(self, sig: Signature, from_ps: int, to_ps: int) -> Projection:
        """Project time/power through the per-pair coefficients."""
        from_ps = self.pstates.clamp_pstate(from_ps)
        to_ps = self.pstates.clamp_pstate(to_ps)
        time_s, power_w = self.table.project(sig, from_ps, to_ps)
        return Projection(pstate=to_ps, time_s=time_s, power_w=power_w)
