"""EAR energy/performance projection models.

``train_coefficients`` runs the per-node-type learning phase;
``DefaultModel`` is the 2020 EAR projection; ``Avx512Model`` is the
paper's new VPI-weighted model; ``make_model`` picks one from an
:class:`repro.ear.config.EarConfig`.
"""

from ...hw.node import NodeConfig
from ..config import EarConfig
from .avx512 import Avx512Model
from .coefficients import (
    CoefficientTable,
    PairCoefficients,
    clear_cache,
    train_coefficients,
)
from .default_model import DefaultModel, EnergyModel, Projection
from .store import FORMAT_VERSION, load_coefficients, save_coefficients
from .training import steady_state_signature

__all__ = [
    "FORMAT_VERSION",
    "load_coefficients",
    "save_coefficients",
    "Avx512Model",
    "CoefficientTable",
    "PairCoefficients",
    "DefaultModel",
    "EnergyModel",
    "Projection",
    "train_coefficients",
    "clear_cache",
    "steady_state_signature",
    "make_model",
]


def make_model(node_config: NodeConfig, config: EarConfig) -> EnergyModel:
    """Build the configured projection model for a node type."""
    table = train_coefficients(node_config)
    if config.use_avx512_model:
        return Avx512Model(table, node_config.pstates)
    return DefaultModel(table, node_config.pstates)
