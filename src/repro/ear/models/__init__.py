"""EAR energy/performance projection models.

``train_coefficients`` runs the per-node-type learning phase;
``DefaultModel`` is the 2020 EAR projection; ``Avx512Model`` is the
paper's new VPI-weighted model; ``make_model`` picks one from an
:class:`repro.ear.config.EarConfig`, sourcing the coefficient table via
:func:`resolve_coefficients` (fitted file on disk, or the in-process
analytic fallback).
"""

from __future__ import annotations

import pathlib

from ...errors import ModelError
from ...hw.node import NodeConfig
from ..config import EarConfig
from .avx512 import Avx512Model
from .coefficients import (
    CoefficientTable,
    PairCoefficients,
    PairQuality,
    TableQuality,
    clear_cache,
    train_coefficients,
)
from .default_model import DefaultModel, EnergyModel, Projection
from .store import (
    DEFAULT_COEFFICIENTS_DIR,
    FORMAT_VERSION,
    coefficients_file,
    load_coefficients,
    node_slug,
    save_coefficients,
)
from .training import steady_state_signature

__all__ = [
    "DEFAULT_COEFFICIENTS_DIR",
    "FORMAT_VERSION",
    "coefficients_file",
    "load_coefficients",
    "node_slug",
    "save_coefficients",
    "Avx512Model",
    "CoefficientTable",
    "PairCoefficients",
    "PairQuality",
    "TableQuality",
    "DefaultModel",
    "EnergyModel",
    "Projection",
    "train_coefficients",
    "clear_cache",
    "steady_state_signature",
    "resolve_coefficients",
    "make_model",
]


def _check_compatible(table: CoefficientTable, node_config: NodeConfig, origin) -> None:
    freqs = tuple(node_config.pstates.frequencies_ghz)
    if tuple(table.pstate_freqs_ghz) != freqs:
        raise ModelError(
            f"{origin}: coefficient table was fitted for P-states "
            f"{table.pstate_freqs_ghz} but node type {node_config.name!r} "
            f"has {freqs}; re-run the learning phase for this node type"
        )


def resolve_coefficients(
    node_config: NodeConfig, config: EarConfig
) -> CoefficientTable:
    """Pick the coefficient table for a node type.

    Resolution order, driven by ``config.coefficients_path``:

    1. ``None`` — the in-process analytic learning phase
       (:func:`train_coefficients`), bit-identical to the behaviour
       before fitted tables existed.
    2. a directory — prefer the backend-qualified
       ``<dir>/<node-slug>.<backend>.json`` (what a campaign for a
       non-MSR node type writes), then plain ``<dir>/<node-slug>.json``
       (the MSR-era spelling), otherwise fall back to the analytic
       table (a campaign may have fitted only some node types).
    3. a file — must load; a missing or corrupt explicit file raises
       :class:`~repro.errors.ModelError` instead of silently projecting
       with different numbers than the caller asked for.

    Any loaded table must match the node's P-state frequencies exactly.
    """
    source = config.coefficients_path
    if source is None:
        return train_coefficients(node_config)
    path = pathlib.Path(source)
    if path.is_dir():
        qualified = coefficients_file(
            path, node_config.name, backend=node_config.uncore_backend
        )
        candidate = qualified if qualified.exists() else coefficients_file(
            path, node_config.name
        )
        if not candidate.exists():
            return train_coefficients(node_config)
        table = load_coefficients(candidate)
        _check_compatible(table, node_config, candidate)
        return table
    table = load_coefficients(path)
    _check_compatible(table, node_config, path)
    return table


def make_model(node_config: NodeConfig, config: EarConfig) -> EnergyModel:
    """Build the configured projection model for a node type."""
    table = resolve_coefficients(node_config, config)
    if config.use_avx512_model:
        return Avx512Model(table, node_config.pstates)
    return DefaultModel(table, node_config.pstates)
