"""Coefficient persistence.

Production EAR runs its learning phase once per node class and stores
the fitted coefficients (per P-state pair) in files/DB that every EARD
loads at boot.  This module provides the same lifecycle for the
reproduction: JSON save/load of :class:`CoefficientTable`, with a
format version and integrity checks, so expensive retraining can be
skipped across processes.

Format history (the loader accepts every listed version):

* **v1** — node name, P-state frequencies, the pair coefficients.
* **v2** — adds ``source`` (``"analytic"``/``"fitted"``) and the
  optional ``quality`` goodness-of-fit record a
  :class:`repro.learning.LearningCampaign` attaches (per-pair R² and
  worst relative projection errors, plus the measured AVX-512 licence
  frequency).

Fitted tables conventionally live under ``results/coefficients/``, one
file per node type named by :func:`node_slug`.
"""

from __future__ import annotations

import json
import pathlib
import re

from ...errors import ModelError
from .coefficients import CoefficientTable, PairCoefficients, PairQuality, TableQuality

__all__ = [
    "save_coefficients",
    "load_coefficients",
    "node_slug",
    "coefficients_file",
    "FORMAT_VERSION",
    "DEFAULT_COEFFICIENTS_DIR",
]

FORMAT_VERSION = 2

#: conventional location of fitted tables (the CLI's ``learn --out``
#: default); relative to the working directory like ``results/.cache``.
DEFAULT_COEFFICIENTS_DIR = pathlib.Path("results") / "coefficients"


def node_slug(node_name: str) -> str:
    """Filesystem-safe identifier for a node type name.

    ``"Lenovo ThinkSystem SD530 (2x Xeon Gold 6148)"`` becomes
    ``"lenovo-thinksystem-sd530-2x-xeon-gold-6148"`` — the per-node-type
    file name under the coefficients directory.
    """
    slug = re.sub(r"[^a-z0-9]+", "-", node_name.lower()).strip("-")
    if not slug:
        raise ModelError(f"cannot derive a file slug from node name {node_name!r}")
    return slug


def coefficients_file(
    directory: str | pathlib.Path, node_name: str, backend: str | None = None
) -> pathlib.Path:
    """The per-node-type coefficient file inside a coefficients directory.

    With ``backend`` the name is qualified per control path
    (``<slug>.<backend>.json``): heterogeneous clusters train one table
    per (node type, uncore backend) because the backend shapes the
    signatures the models fit (per-die clamping, ELC floors).  Plain
    ``<slug>.json`` remains the un-qualified spelling the MSR-era
    tooling wrote, and the preferred-fallback order in
    :func:`repro.ear.models.resolve_coefficients` keeps those files
    loading.
    """
    slug = node_slug(node_name)
    if backend is not None:
        return pathlib.Path(directory) / f"{slug}.{backend}.json"
    return pathlib.Path(directory) / f"{slug}.json"


def _quality_payload(quality: TableQuality) -> dict:
    return {
        "n_observations": quality.n_observations,
        "kernels": list(quality.kernels),
        "min_r2_cpi": quality.min_r2_cpi,
        "min_r2_power": quality.min_r2_power,
        "max_rel_time_err": quality.max_rel_time_err,
        "max_rel_power_err": quality.max_rel_power_err,
        "avx512_licence_ghz": quality.avx512_licence_ghz,
        "pairs": [
            {
                "from": q.from_ps,
                "to": q.to_ps,
                "n_obs": q.n_obs,
                "r2_cpi": q.r2_cpi,
                "r2_power": q.r2_power,
                "max_rel_time_err": q.max_rel_time_err,
                "max_rel_power_err": q.max_rel_power_err,
            }
            for q in quality.pairs
        ],
    }


def _quality_from_payload(payload: dict) -> TableQuality:
    return TableQuality(
        n_observations=int(payload["n_observations"]),
        kernels=tuple(payload["kernels"]),
        min_r2_cpi=float(payload["min_r2_cpi"]),
        min_r2_power=float(payload["min_r2_power"]),
        max_rel_time_err=float(payload["max_rel_time_err"]),
        max_rel_power_err=float(payload["max_rel_power_err"]),
        avx512_licence_ghz=(
            None
            if payload.get("avx512_licence_ghz") is None
            else float(payload["avx512_licence_ghz"])
        ),
        pairs=tuple(
            PairQuality(
                from_ps=int(q["from"]),
                to_ps=int(q["to"]),
                n_obs=int(q["n_obs"]),
                r2_cpi=float(q["r2_cpi"]),
                r2_power=float(q["r2_power"]),
                max_rel_time_err=float(q["max_rel_time_err"]),
                max_rel_power_err=float(q["max_rel_power_err"]),
            )
            for q in payload.get("pairs", ())
        ),
    )


def save_coefficients(table: CoefficientTable, path: str | pathlib.Path) -> None:
    """Serialise a trained table to JSON (current format version)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "node_name": table.node_name,
        "source": table.source,
        "pstate_freqs_ghz": list(table.pstate_freqs_ghz),
        "pairs": [
            {
                "from": f,
                "to": t,
                "a": c.a,
                "b": c.b,
                "c": c.c,
                "d": c.d,
                "e": c.e,
                "f": c.f,
            }
            for (f, t), c in table.items()
        ],
    }
    if table.quality is not None:
        payload["quality"] = _quality_payload(table.quality)
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1))


def load_coefficients(path: str | pathlib.Path) -> CoefficientTable:
    """Load a table saved by :func:`save_coefficients`.

    Validates the format version and that the pair set is complete for
    the stored P-state count — a truncated or hand-edited file fails
    loudly rather than mispredicting silently.  Version-1 files (no
    source/quality) still load, as ``source="fitted"`` with no quality.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelError(f"cannot load coefficients from {path}: {exc}") from exc
    version = payload.get("format_version")
    if version not in (1, FORMAT_VERSION):
        raise ModelError(
            f"{path}: unsupported coefficient format "
            f"{version!r} (expected 1 or {FORMAT_VERSION})"
        )
    freqs = tuple(payload["pstate_freqs_ghz"])
    table = CoefficientTable(payload["node_name"], freqs)
    table.source = str(payload.get("source", "fitted"))
    for item in payload["pairs"]:
        table.set(
            int(item["from"]),
            int(item["to"]),
            PairCoefficients(
                a=float(item["a"]),
                b=float(item["b"]),
                c=float(item["c"]),
                d=float(item["d"]),
                e=float(item["e"]),
                f=float(item["f"]),
            ),
        )
    expected = len(freqs) * (len(freqs) - 1)
    if len(table) != expected:
        raise ModelError(
            f"{path}: incomplete table ({len(table)} pairs, expected {expected})"
        )
    if payload.get("quality") is not None:
        try:
            table.quality = _quality_from_payload(payload["quality"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"{path}: malformed quality record: {exc}") from exc
    return table
