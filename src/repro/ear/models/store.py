"""Coefficient persistence.

Production EAR runs its learning phase once per node class and stores
the fitted coefficients (per P-state pair) in files/DB that every EARD
loads at boot.  This module provides the same lifecycle for the
reproduction: JSON save/load of :class:`CoefficientTable`, with a
format version and integrity checks, so expensive retraining can be
skipped across processes.
"""

from __future__ import annotations

import json
import pathlib

from ...errors import ModelError
from .coefficients import CoefficientTable, PairCoefficients

__all__ = ["save_coefficients", "load_coefficients", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_coefficients(table: CoefficientTable, path: str | pathlib.Path) -> None:
    """Serialise a trained table to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "node_name": table.node_name,
        "pstate_freqs_ghz": list(table.pstate_freqs_ghz),
        "pairs": [
            {
                "from": f,
                "to": t,
                "a": c.a,
                "b": c.b,
                "c": c.c,
                "d": c.d,
                "e": c.e,
                "f": c.f,
            }
            for (f, t), c in sorted(table._pairs.items())
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_coefficients(path: str | pathlib.Path) -> CoefficientTable:
    """Load a table saved by :func:`save_coefficients`.

    Validates the format version and that the pair set is complete for
    the stored P-state count — a truncated or hand-edited file fails
    loudly rather than mispredicting silently.
    """
    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ModelError(f"cannot load coefficients from {path}: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise ModelError(
            f"{path}: unsupported coefficient format "
            f"{payload.get('format_version')!r} (expected {FORMAT_VERSION})"
        )
    freqs = tuple(payload["pstate_freqs_ghz"])
    table = CoefficientTable(payload["node_name"], freqs)
    for item in payload["pairs"]:
        table.set(
            int(item["from"]),
            int(item["to"]),
            PairCoefficients(
                a=float(item["a"]),
                b=float(item["b"]),
                c=float(item["c"]),
                d=float(item["d"]),
                e=float(item["e"]),
                f=float(item["f"]),
            ),
        )
    expected = len(freqs) * (len(freqs) - 1)
    if len(table) != expected:
        raise ModelError(
            f"{path}: incomplete table ({len(table)} pairs, expected {expected})"
        )
    return table
