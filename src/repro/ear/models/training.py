"""The EAR learning phase: steady-state measurement of training kernels.

On a real cluster EAR trains its projection coefficients by running a
kernel battery at every P-state on every node type ("compute
coefficients" jobs).  Here the battery is the synthetic corpus from
:mod:`repro.workloads.generator` and the "measurement" is the analytic
steady state of the hardware model — equivalent to running the engine
to convergence, but exact and fast.
"""

from __future__ import annotations

from dataclasses import replace

from ...hw.node import Node, NodeConfig
from ...hw.msr import UncoreRatioLimit
from ...workloads.phase import CACHE_LINE_BYTES, PhaseProfile
from ..signature import Signature

__all__ = ["steady_state_signature"]


def steady_state_signature(
    profile: PhaseProfile,
    node_config: NodeConfig,
    *,
    f_cpu_ghz: float,
    f_uncore_ghz: float | None = None,
    pinned: bool = True,
) -> Signature:
    """Noise-free signature of a profile at a fixed operating point.

    ``f_uncore_ghz = None`` lets the hardware UFS controller choose, as
    it would during the learning phase; a value pins the uncore.
    Used by coefficient training, the motivation study (fixed-uncore
    sweeps) and as ground truth in tests.
    """
    node = Node(node_config)
    if pinned:
        node.set_core_freq(f_cpu_ghz, privileged=True)
    if f_uncore_ghz is not None:
        ratio = int(round(f_uncore_ghz * 10))
        node.set_uncore_limits(
            UncoreRatioLimit(min_ratio=ratio, max_ratio=ratio), privileged=True
        )

    eff_ghz = node.sockets[0].effective_freq_ghz(profile.vpi)
    op = profile.operating_point(node, effective_core_ghz=eff_ghz)
    node.run_ufs(op)
    f_unc = node.uncore_freq_ghz

    ps = node_config.pstates
    ref_core = profile._reference_effective_ghz(node)
    t = profile.iteration_time_s(
        f_core_ghz=eff_ghz,
        f_uncore_ghz=f_unc,
        ref_core_ghz=ref_core,
        ref_uncore_ghz=node.sockets[0].uncore.hw_max_ratio * 0.1,
        dram=node_config.dram,
    )
    nbytes = profile.bytes_per_iteration()
    gbs = nbytes / t / 1e9
    op = replace(op, traffic_gbs=gbs)
    power = node.power(op)

    n_cores = node_config.n_cores
    active = profile.n_active_cores if profile.n_active_cores is not None else n_cores
    instr = profile.instructions_per_iteration(ref_core_ghz=ref_core, n_cores=n_cores)
    cycles = t * eff_ghz * 1e9 * active
    return Signature(
        iteration_time_s=t,
        dc_power_w=power.dc_w,
        cpi=cycles / instr,
        tpi=(nbytes / CACHE_LINE_BYTES) / instr,
        gbs=gbs,
        vpi=profile.vpi,
        avg_cpu_freq_ghz=eff_ghz,
        avg_imc_freq_ghz=f_unc,
    )
