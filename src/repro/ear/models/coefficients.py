"""Per-node-type projection coefficients and their training.

EAR's energy models (the Bell/Brochard lineage the paper builds on —
refs [8], [9] — as deployed in the 2020 EAR paper) are *per P-state
pair* linear regressions learned once per node type:

    CPI(to)   = A(from,to) · CPI(from)   + B(from,to) · TPI(from) + C(from,to)
    Power(to) = D(from,to) · Power(from) + E(from,to) · TPI(from) + F(from,to)

and the time projection follows from the frequency/CPI identity

    Time(to) = Time(from) · (CPI(to) / CPI(from)) · (f_from / f_to).

The training here mirrors EAR's learning phase: run a workload battery
at every P-state, then least-squares fit each pair.  Coefficient tables
are cached per node type because every EARL instance on the same
hardware shares them (as the real EAR stores them per node class in its
database).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ModelError
from ...hw.node import NodeConfig
from ...workloads.generator import training_corpus
from ..signature import Signature
from .training import steady_state_signature

__all__ = [
    "PairCoefficients",
    "PairQuality",
    "TableQuality",
    "CoefficientTable",
    "train_coefficients",
    "clear_cache",
]


@dataclass(frozen=True)
class PairCoefficients:
    """Regression coefficients for one (from, to) P-state pair."""

    a: float  # CPI slope
    b: float  # CPI vs TPI
    c: float  # CPI intercept
    d: float  # power slope
    e: float  # power vs TPI
    f: float  # power intercept

    def project_cpi(self, cpi: float, tpi: float) -> float:
        """Projected CPI at the pair's target P-state."""
        return self.a * cpi + self.b * tpi + self.c

    def project_power(self, power_w: float, tpi: float) -> float:
        """Projected DC power at the pair's target P-state."""
        return self.d * power_w + self.e * tpi + self.f


@dataclass(frozen=True)
class PairQuality:
    """Goodness of fit for one (from, to) P-state pair regression."""

    from_ps: int
    to_ps: int
    #: observations (matched kernel × uncore × seed points) behind the fit.
    n_obs: int
    #: coefficient of determination of the CPI regression.
    r2_cpi: float
    #: coefficient of determination of the power regression.
    r2_power: float
    #: worst relative error of the projected iteration time on the
    #: training observations themselves (via the CPI/frequency identity).
    max_rel_time_err: float
    #: worst relative error of the projected DC power.
    max_rel_power_err: float


@dataclass(frozen=True)
class TableQuality:
    """Goodness of fit attached to a whole fitted table.

    The aggregates are the *worst case* over all pairs, so a single
    badly conditioned pair cannot hide behind good averages.
    """

    n_observations: int
    kernels: tuple[str, ...]
    min_r2_cpi: float
    min_r2_power: float
    max_rel_time_err: float
    max_rel_power_err: float
    #: AVX-512 licence frequency as *measured* from the AVX-dense
    #: kernels' effective clock plateau (None when the battery had no
    #: AVX-dense kernel on this node type).
    avx512_licence_ghz: float | None = None
    pairs: tuple[PairQuality, ...] = ()


class CoefficientTable:
    """All pair coefficients for one node type.

    ``source`` says where the numbers came from (``"analytic"`` for the
    in-process training fallback, ``"fitted"`` for tables produced by a
    :class:`repro.learning.LearningCampaign`); ``quality`` carries the
    goodness-of-fit record for fitted tables (None for analytic ones —
    the analytic corpus is exact on its own family by construction).
    """

    def __init__(
        self, node_name: str, pstate_freqs_ghz: tuple[float, ...]
    ) -> None:
        self.node_name = node_name
        self.pstate_freqs_ghz = pstate_freqs_ghz
        self._pairs: dict[tuple[int, int], PairCoefficients] = {}
        self.source: str = "analytic"
        self.quality: TableQuality | None = None

    def set(self, from_ps: int, to_ps: int, coeffs: PairCoefficients) -> None:
        """Store the coefficients for one (from, to) pair."""
        self._pairs[(from_ps, to_ps)] = coeffs

    def get(self, from_ps: int, to_ps: int) -> PairCoefficients:
        """Coefficients for one pair; ModelError when untrained."""
        try:
            return self._pairs[(from_ps, to_ps)]
        except KeyError:
            raise ModelError(
                f"{self.node_name}: no coefficients for P-state pair "
                f"{from_ps} -> {to_ps}; was the learning phase run?"
            ) from None

    def __len__(self) -> int:
        return len(self._pairs)

    def items(self) -> tuple[tuple[tuple[int, int], PairCoefficients], ...]:
        """All ``((from, to), coefficients)`` pairs, sorted."""
        return tuple(sorted(self._pairs.items()))

    def project(
        self, sig: Signature, from_ps: int, to_ps: int
    ) -> tuple[float, float]:
        """Project (iteration_time_s, dc_power_w) from one P-state to another."""
        if from_ps == to_ps:
            return sig.iteration_time_s, sig.dc_power_w
        coeffs = self.get(from_ps, to_ps)
        cpi_to = max(coeffs.project_cpi(sig.cpi, sig.tpi), 1e-6)
        power_to = max(coeffs.project_power(sig.dc_power_w, sig.tpi), 1.0)
        f_from = self.pstate_freqs_ghz[from_ps]
        f_to = self.pstate_freqs_ghz[to_ps]
        time_to = sig.iteration_time_s * (cpi_to / sig.cpi) * (f_from / f_to)
        return time_to, power_to


_CACHE: dict[str, CoefficientTable] = {}


def clear_cache() -> None:
    """Drop trained tables (tests that mutate node configs use this)."""
    _CACHE.clear()


def train_coefficients(node_config: NodeConfig) -> CoefficientTable:
    """Run the learning phase for a node type (cached).

    For every profile in the training corpus and every P-state, take
    the steady-state signature with the hardware UFS active (as the
    real learning phase would), then fit each (from, to) pair by least
    squares over the corpus.
    """
    cached = _CACHE.get(node_config.name)
    if cached is not None:
        return cached

    ps = node_config.pstates
    freqs = tuple(ps.frequencies_ghz)
    corpus = training_corpus(node_config)
    # measurements[p][k] = signature of corpus profile k at P-state p
    measurements: list[list[Signature]] = []
    for p in range(len(freqs)):
        row = [
            steady_state_signature(profile, node_config, f_cpu_ghz=freqs[p])
            for profile in corpus
        ]
        measurements.append(row)

    table = CoefficientTable(node_config.name, freqs)
    n = len(corpus)
    for from_ps in range(len(freqs)):
        x = np.empty((n, 3))
        x[:, 0] = [s.cpi for s in measurements[from_ps]]
        x[:, 1] = [s.tpi for s in measurements[from_ps]]
        x[:, 2] = 1.0
        xp = np.empty((n, 3))
        xp[:, 0] = [s.dc_power_w for s in measurements[from_ps]]
        xp[:, 1] = x[:, 1]
        xp[:, 2] = 1.0
        for to_ps in range(len(freqs)):
            if to_ps == from_ps:
                continue
            y_cpi = np.array([s.cpi for s in measurements[to_ps]])
            y_pwr = np.array([s.dc_power_w for s in measurements[to_ps]])
            abc, *_ = np.linalg.lstsq(x, y_cpi, rcond=None)
            def_, *_ = np.linalg.lstsq(xp, y_pwr, rcond=None)
            table.set(
                from_ps,
                to_ps,
                PairCoefficients(
                    a=float(abc[0]),
                    b=float(abc[1]),
                    c=float(abc[2]),
                    d=float(def_[0]),
                    e=float(def_[1]),
                    f=float(def_[2]),
                ),
            )
    _CACHE[node_config.name] = table
    return table
