"""The paper's AVX512-aware energy model (section V-A).

AVX-512 instructions cannot benefit from core clocks above the licence
frequency — requesting 2.4 GHz for an all-AVX512 kernel on the Xeon
6148 still executes at 2.2 GHz (P-state 3).  The new model therefore
produces **two** projections for every request:

* the *default* projection at the requested target P-state, and
* the *avx512* projection at the target clamped to the licence state,

and blends them weighted by VPI, the AVX-512 instruction fraction of
the signature.  A scalar code (VPI 0) reduces to the default model; a
pure AVX-512 kernel (VPI 1) is projected entirely at the clamped state,
so the model never promises speedups the silicon cannot deliver —
which is exactly what makes `min_energy_to_solution` pick the licence
frequency for DGEMM instead of wasting power requesting nominal.
"""

from __future__ import annotations

from ...hw.pstates import PStateTable
from ..signature import Signature
from .coefficients import CoefficientTable
from .default_model import DefaultModel, EnergyModel, Projection

__all__ = ["Avx512Model"]


class Avx512Model(EnergyModel):
    """VPI-weighted blend of the default and licence-clamped projections."""

    name = "avx512"

    def __init__(self, table: CoefficientTable, pstates: PStateTable) -> None:
        self.pstates = pstates
        self._default = DefaultModel(table, pstates)

    def project(self, sig: Signature, from_ps: int, to_ps: int) -> Projection:
        """Project via the VPI-weighted blend (see the module docstring)."""
        to_ps = self.pstates.clamp_pstate(to_ps)
        default_pred = self._default.project(sig, from_ps, to_ps)
        if sig.vpi <= 0.0:
            return default_pred
        clamped_ps = self.pstates.avx512_clamp(to_ps)
        clamped_from = self.pstates.avx512_clamp(from_ps)
        power_pred = self._default.project(sig, from_ps, clamped_ps)
        # The AVX time component scales purely with the (licence-clamped)
        # clock: a kernel dense enough in 512-bit work to hit the licence
        # limit is execution-throughput bound by construction — its wide
        # loads stream plenty of memory traffic *without* stalling, so the
        # TPI-based stall estimate of the scalar regression must not be
        # trusted for it.  This is what keeps min_energy at the licence
        # frequency for DGEMM (Table IV) instead of chasing the apparent
        # memory-boundness of its 98 GB/s signature.
        f_from = self.pstates.freq_of(clamped_from)
        f_to = self.pstates.freq_of(clamped_ps)
        avx_time = sig.iteration_time_s * (f_from / f_to)
        w = sig.vpi
        return Projection(
            pstate=to_ps,
            time_s=(1.0 - w) * default_pred.time_s + w * avx_time,
            power_w=(1.0 - w) * default_pred.power_w + w * power_pred.power_w,
        )
