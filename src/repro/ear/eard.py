"""EARD: the per-node EAR daemon.

On a real cluster EARD is the privileged component: EARL (running
unprivileged inside the application) sends it frequency requests and
metric queries over a local socket, and EARD performs the MSR writes
and IPMI reads.  The simulation keeps the same split — only EARD ever
passes ``privileged=True`` to the MSR layer, so a policy bug can never
write hardware state directly (the :class:`~repro.errors.MsrPermissionError`
tests pin this down).

The daemon is hardened for unattended operation:

* privileged MSR writes retry with bounded backoff on transient
  failures and surface a ``degraded`` flag instead of crashing EARL;
* package RAPL energy is accumulated from wrap-aware counter deltas
  (the 32-bit counter wraps every ~22 minutes at 200 W — shorter than
  the paper's application runs, so the raw sum under-reports);
* sensor views average across sockets, matching how signatures are
  defined per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import MsrError, TransientMsrError
from ..hw.msr import UncoreRatioLimit
from ..hw.node import Node
from ..hw.rapl import RaplCounter
from ..hw.units import ghz_to_ratio
from ..telemetry.recorder import NULL_RECORDER, Recorder
from .policies.api import NodeFreqs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.faults import FaultInjector, HealthMonitor

__all__ = ["EnergyReading", "Eard"]

#: MSR write attempts per apply (1 initial + retries).  Injected fault
#: bursts are at most ``FaultPlan.msr_failure_burst`` consecutive
#: attempts, so any retry budget above the burst recovers.
DEFAULT_MSR_WRITE_ATTEMPTS = 5


@dataclass(frozen=True)
class EnergyReading:
    """One Node Manager energy query: accumulated joules + timestamp.

    The timestamp is the *latch* time (whole seconds); dividing energy
    deltas by latch-time deltas is what makes power estimates unbiased
    despite the 1 Hz counter.
    """

    joules: float
    timestamp_s: float


class Eard:
    """Privileged node-control daemon."""

    def __init__(
        self,
        node: Node,
        *,
        injector: "FaultInjector | None" = None,
        health: "HealthMonitor | None" = None,
        msr_write_attempts: int = DEFAULT_MSR_WRITE_ATTEMPTS,
        telemetry: Recorder = NULL_RECORDER,
    ) -> None:
        self.node = node
        self.injector = injector
        #: shared event sink (EARL and the policy read it off the daemon).
        self.telemetry = telemetry
        if health is None:
            from ..sim.faults import HealthMonitor

            health = HealthMonitor()
        self.health = health
        self.msr_write_attempts = max(1, msr_write_attempts)
        #: True after an apply exhausted its retries: the hardware may
        #: still be running the previous selection.
        self.degraded = False
        #: silicon uncore range, read from the control path at daemon
        #: start-up (the paper: "the available uncore frequency range ...
        #: can be read from this MSR register after the boot"; on newer
        #: generations the backend reads sysfs/TPMI instead).
        limits = node.uncore_backend.silicon_range()
        self.imc_max_ghz = limits.max_ghz
        self.imc_min_ghz = limits.min_ghz
        # wrap-aware package-energy accumulation: remember the raw
        # register values and integrate deltas on every poll.
        self._rapl_last_raw = [c.raw() for c in node.rapl.pck]
        self._rapl_acc_j = 0.0

    # -- frequency control -----------------------------------------------

    def apply_freqs(self, freqs: NodeFreqs) -> bool:
        """Apply a policy decision to the hardware (privileged writes).

        Transient MSR failures are retried up to ``msr_write_attempts``
        times (the simulation collapses the exponential backoff between
        attempts to zero simulated time); on exhaustion the daemon keeps
        the previous hardware state, raises nothing, and reports the
        problem through ``degraded`` / the health record.  Returns True
        when the write landed.
        """
        last_error: MsrError | None = None
        for attempt in range(self.msr_write_attempts):
            try:
                self._privileged_apply(freqs)
            except TransientMsrError as err:
                last_error = err
                if attempt > 0:
                    self.health.msr_retries += 1
                continue
            if attempt > 0:
                self.health.msr_retries += 1
            self.degraded = False
            if self.telemetry.enabled:
                self.telemetry.event(
                    "eard",
                    "apply",
                    cpu_ghz=freqs.cpu_ghz,
                    imc_max_ghz=freqs.imc_max_ghz,
                    imc_min_ghz=freqs.imc_min_ghz,
                    attempts=attempt + 1,
                )
                self.telemetry.counter("eard.applies")
            return True
        assert last_error is not None
        self.degraded = True
        self.health.msr_apply_failures += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "eard", "apply_failed", attempts=self.msr_write_attempts
            )
        return False

    def _privileged_apply(self, freqs: NodeFreqs) -> None:
        """One write attempt for both frequency scopes (may raise)."""
        if self.injector is not None:
            self.injector.check_msr_write()
        self.node.set_core_freq(freqs.cpu_ghz, privileged=True)
        self.node.set_uncore_limits(
            UncoreRatioLimit(
                min_ratio=ghz_to_ratio(freqs.imc_min_ghz),
                max_ratio=ghz_to_ratio(freqs.imc_max_ghz),
            ),
            privileged=True,
        )

    def restore_defaults(self, freqs: NodeFreqs) -> bool:
        """Apply the policy's safe defaults (same mechanism)."""
        return self.apply_freqs(freqs)

    def set_pkg_power_limit(self, watts: float | None) -> None:
        """Arm (or disable) the RAPL package power cap — EAR's node
        powercap service acts through this."""
        self.node.set_pkg_power_limit(watts, privileged=True)

    def set_epb(self, epb: int) -> None:
        """Set the Energy/Performance Bias hint on every socket.

        The paper's section IV notes EPB as one of the inputs biasing
        the hardware UFS heuristic; sites set it through EARD.
        """
        for s in self.node.sockets:
            s.msr.write_epb(epb, privileged=True)

    # -- sensors ---------------------------------------------------------------

    def read_dc_energy(self) -> EnergyReading:
        """Query the Node Manager DC energy counter."""
        reading = EnergyReading(
            joules=self.node.dc_meter.read_joules(),
            timestamp_s=self.node.dc_meter.read_timestamp_s(),
        )
        if self.injector is not None:
            reading = self.injector.filter_energy_reading(reading)
        return reading

    def poll_rapl(self) -> None:
        """Accumulate wrap-aware package-energy deltas since the last poll.

        EARL drives this once per measurement window (>= 10 s), far
        below the ~22 min wrap period, so the at-most-one-wrap
        assumption of :meth:`RaplCounter.delta_joules` holds.
        """
        for i, counter in enumerate(self.node.rapl.pck):
            raw = counter.raw()
            self._rapl_acc_j += RaplCounter.delta_joules(
                self._rapl_last_raw[i], raw, counter.unit_j
            )
            self._rapl_last_raw[i] = raw
        if self.telemetry.enabled:
            self.telemetry.gauge("eard.rapl_pck_joules", self._rapl_acc_j)

    def read_rapl_pck_joules(self) -> float:
        """Wrap-aware accumulated package energy since daemon start.

        Unlike the raw register sum (which under-reports by one full
        wrap per ~22 minutes at 200 W), the accumulated deltas stay
        correct over arbitrarily long runs.
        """
        self.poll_rapl()
        return self._rapl_acc_j

    def current_cpu_target_ghz(self) -> float:
        """The core clock EARD last programmed."""
        return self.node.core_target_ghz

    def current_effective_cpu_ghz(self) -> float:
        """Clock the busy cores actually sustain (aperf/mperf view).

        Differs from the programmed target under AVX-512 licence
        throttling; the energy models must project *from* this state.
        Averaged over the sockets that have accounted busy time, since
        signatures are defined per node, not per socket.
        """
        values = [s.last_effective_ghz for s in self.node.sockets if s.last_effective_ghz > 0]
        if not values:
            return self.node.core_target_ghz
        return sum(values) / len(values)

    def current_imc_freq_ghz(self) -> float:
        """The uncore frequency the HW control loop is running right now
        (averaged over sockets)."""
        sockets = self.node.sockets
        return sum(s.uncore_freq_ghz for s in sockets) / len(sockets)
