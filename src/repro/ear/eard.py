"""EARD: the per-node EAR daemon.

On a real cluster EARD is the privileged component: EARL (running
unprivileged inside the application) sends it frequency requests and
metric queries over a local socket, and EARD performs the MSR writes
and IPMI reads.  The simulation keeps the same split — only EARD ever
passes ``privileged=True`` to the MSR layer, so a policy bug can never
write hardware state directly (the :class:`~repro.errors.MsrPermissionError`
tests pin this down).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.msr import UncoreRatioLimit
from ..hw.node import Node
from ..hw.units import ghz_to_ratio
from .policies.api import NodeFreqs

__all__ = ["EnergyReading", "Eard"]


@dataclass(frozen=True)
class EnergyReading:
    """One Node Manager energy query: accumulated joules + timestamp.

    The timestamp is the *latch* time (whole seconds); dividing energy
    deltas by latch-time deltas is what makes power estimates unbiased
    despite the 1 Hz counter.
    """

    joules: float
    timestamp_s: float


class Eard:
    """Privileged node-control daemon."""

    def __init__(self, node: Node) -> None:
        self.node = node
        #: silicon uncore range, read from the MSR at daemon start-up
        #: (the paper: "the available uncore frequency range ... can be
        #: read from this MSR register after the boot").
        limits = node.sockets[0].msr.read_uncore_limits()
        self.imc_max_ghz = limits.max_ghz
        self.imc_min_ghz = limits.min_ghz

    # -- frequency control -----------------------------------------------

    def apply_freqs(self, freqs: NodeFreqs) -> None:
        """Apply a policy decision to the hardware (privileged writes)."""
        self.node.set_core_freq(freqs.cpu_ghz, privileged=True)
        self.node.set_uncore_limits(
            UncoreRatioLimit(
                min_ratio=ghz_to_ratio(freqs.imc_min_ghz),
                max_ratio=ghz_to_ratio(freqs.imc_max_ghz),
            ),
            privileged=True,
        )

    def restore_defaults(self, freqs: NodeFreqs) -> None:
        """Apply the policy's safe defaults (same mechanism)."""
        self.apply_freqs(freqs)

    def set_pkg_power_limit(self, watts: float | None) -> None:
        """Arm (or disable) the RAPL package power cap — EAR's node
        powercap service acts through this."""
        self.node.set_pkg_power_limit(watts, privileged=True)

    def set_epb(self, epb: int) -> None:
        """Set the Energy/Performance Bias hint on every socket.

        The paper's section IV notes EPB as one of the inputs biasing
        the hardware UFS heuristic; sites set it through EARD.
        """
        for s in self.node.sockets:
            s.msr.write_epb(epb, privileged=True)

    # -- sensors ---------------------------------------------------------------

    def read_dc_energy(self) -> EnergyReading:
        """Query the Node Manager DC energy counter."""
        return EnergyReading(
            joules=self.node.dc_meter.read_joules(),
            timestamp_s=self.node.dc_meter.read_timestamp_s(),
        )

    def read_rapl_pck_joules(self) -> float:
        """Sum of package RAPL counters (wrap-prone raw view)."""
        return self.node.rapl.pck_joules_total()

    def current_cpu_target_ghz(self) -> float:
        return self.node.core_target_ghz

    def current_effective_cpu_ghz(self) -> float:
        """Clock the busy cores actually sustain (aperf/mperf view).

        Differs from the programmed target under AVX-512 licence
        throttling; the energy models must project *from* this state.
        """
        ghz = self.node.sockets[0].last_effective_ghz
        return ghz if ghz > 0 else self.node.core_target_ghz

    def current_imc_freq_ghz(self) -> float:
        """The uncore frequency the HW control loop is running right now."""
        return self.node.uncore_freq_ghz
