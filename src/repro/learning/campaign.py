"""The learning campaign: measure → fit → validate → save.

This is the reproduction of EAR's offline *learning phase*.  A
:class:`LearningCampaign` takes a node type and a battery of training
kernels, sweeps them over a :class:`~repro.learning.grid.LearningGrid`
through the experiment pool (so grid runs are cached, parallel and
deterministic like every other experiment), fits a
:class:`~repro.ear.models.CoefficientTable` from the measured
signatures, optionally validates it against held-out workloads, and
saves it where :func:`repro.ear.models.resolve_coefficients` will find
it (``EarConfig(coefficients_path=<dir>)``).

Each grid point is executed as a *pinned monitoring run*: the
``monitoring`` policy observes signatures without programming
frequencies, while the harness pins the core clock to the grid P-state
and the uncore to the grid frequency — exactly the shape of EAR's
``compute coefficients`` jobs, where the batch system fixes frequencies
and EARL only measures.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from ..ear.config import EarConfig
from ..ear.models import CoefficientTable, coefficients_file, save_coefficients
from ..ear.signature import Signature
from ..errors import LearningError
from ..experiments.journal import CampaignJournal, campaign_id
from ..experiments.parallel import ExperimentPool, FailedRun, RunRequest, default_pool
from ..hw.node import NodeConfig
from ..sim.result import RunResult
from ..telemetry.recorder import NULL_RECORDER, Recorder
from ..workloads.app import Workload
from .grid import GridObservation, LearningGrid
from .fit import fit_table
from .validate import (
    DEFAULT_ERROR_THRESHOLD,
    ValidationReport,
    default_validation_workloads,
    validate_table,
)

__all__ = ["MONITORING_CONFIG", "LearningCampaign", "default_kernels"]

#: the observe-only configuration every grid run executes under: the
#: monitoring policy records signatures, applies nothing, and uses the
#: analytic coefficients (the fitted table obviously cannot be used to
#: measure its own training data).
MONITORING_CONFIG = EarConfig(policy="monitoring")


def default_kernels(node_config: NodeConfig) -> tuple[Workload, ...]:
    """The training battery for a node type (matched by config name).

    The single-node kernels of the paper's Table II plus the multi-node
    motivation kernels of Table I, filtered to the requested node type —
    the same mix of CPU-bound, memory-bound and AVX-dense behaviour the
    real learning phase feeds on.
    """
    from ..workloads import kernels as k

    battery = (
        k.bt_mz_c_openmp(),
        k.sp_mz_c_openmp(),
        k.dgemm_mkl(),
        k.stream_triad(),
        k.bt_mz_c_mpi(),
        k.lu_d_mpi(),
        k.bt_cuda_d(),
        k.lu_cuda_d(),
    )
    selected = tuple(w for w in battery if w.node_config.name == node_config.name)
    if not selected:
        # a generation with no kernels anchored on it (Broadwell,
        # Granite Rapids in a mixed cluster): retarget the CPU-only
        # SD530 battery to its silicon — calibration is re-fitted on
        # the new node type, GPU-anchored kernels stay out.
        from ..hw.node import SD530

        selected = tuple(
            w.retargeted(node_config)
            for w in battery
            if w.node_config.name == SD530.name
        )
    if not selected:
        raise LearningError(
            f"no training kernels are defined for node type {node_config.name!r}"
        )
    return selected


def _steady(signatures: tuple[Signature, ...]) -> Signature:
    """Collapse a run's signature trace into one steady-state signature.

    The first window still carries ramp-up (cold caches, UFS
    convergence); with more than one window it is dropped and the rest
    are averaged field-wise, weighted equally per window.
    """
    if not signatures:
        raise LearningError(
            "grid run produced no signatures; the kernel is too short for "
            "the configured signature window — raise the grid scale"
        )
    windows = signatures[1:] if len(signatures) > 1 else signatures
    n = len(windows)
    first = windows[0]
    if n == 1:
        return first
    return replace(
        first,
        iteration_time_s=sum(s.iteration_time_s for s in windows) / n,
        dc_power_w=sum(s.dc_power_w for s in windows) / n,
        cpi=sum(s.cpi for s in windows) / n,
        tpi=sum(s.tpi for s in windows) / n,
        gbs=sum(s.gbs for s in windows) / n,
        vpi=sum(s.vpi for s in windows) / n,
        avg_cpu_freq_ghz=sum(s.avg_cpu_freq_ghz for s in windows) / n,
        avg_imc_freq_ghz=sum(s.avg_imc_freq_ghz for s in windows) / n,
        iterations=sum(s.iterations for s in windows),
    )


class LearningCampaign:
    """One end-to-end learning phase for one node type.

    Parameters
    ----------
    node_config:
        The node type to learn coefficients for.
    kernels:
        Training battery; defaults to :func:`default_kernels`.
    grid:
        The measurement sweep; defaults to ``LearningGrid.full``.
    pool:
        Experiment pool the grid runs go through; defaults to the
        process-default pool (shared cache, CLI-configured jobs).
    recorder:
        Telemetry sink for the campaign-scope events
        (``learning/grid_run``, ``learning/fit``, ``learning/validate``);
        silent by default.
    journal:
        Optional :class:`~repro.experiments.journal.CampaignJournal`;
        when set, every grid request is write-ahead journaled through
        the pool while :meth:`measure` runs, which is what makes
        ``repro-ear learn --resume`` possible.
    """

    def __init__(
        self,
        node_config: NodeConfig,
        *,
        kernels: tuple[Workload, ...] | None = None,
        grid: LearningGrid | None = None,
        pool: ExperimentPool | None = None,
        recorder: Recorder = NULL_RECORDER,
        journal: CampaignJournal | None = None,
    ) -> None:
        self.node_config = node_config
        self.kernels = kernels if kernels is not None else default_kernels(node_config)
        self.grid = grid if grid is not None else LearningGrid.full(node_config)
        self.pool = pool if pool is not None else default_pool()
        self.recorder = recorder
        self.journal = journal
        for w in self.kernels:
            if w.node_config.name != node_config.name:
                raise LearningError(
                    f"kernel {w.name!r} targets node type "
                    f"{w.node_config.name!r}, not {node_config.name!r}"
                )
        bad = [p for p in self.grid.pstates if not 0 <= p < len(node_config.pstates)]
        if bad:
            raise LearningError(
                f"grid P-states {bad} outside this node's range "
                f"0..{len(node_config.pstates) - 1}"
            )

    # -- stages ---------------------------------------------------------

    def grid_requests(self) -> tuple[list[tuple], list[RunRequest]]:
        """The campaign's grid as (points, run requests), both flat.

        ``points`` are ``(kernel, pstate, uncore, seed)`` tuples aligned
        index-for-index with the requests.  Exposed separately from
        :meth:`measure` because the request keys also *identify* the
        campaign (see :meth:`journal_id`).
        """
        freqs = self.node_config.pstates.frequencies_ghz
        points = [
            (kernel, pstate, uncore, seed)
            for kernel in self.kernels
            for pstate in self.grid.pstates
            for uncore in self.grid.uncore_ghz
            for seed in self.grid.seeds
        ]
        requests = [
            RunRequest(
                workload=kernel,
                ear_config=MONITORING_CONFIG,
                seed=seed,
                scale=self.grid.scale,
                pin_cpu_ghz=freqs[pstate],
                pin_uncore_ghz=uncore,
            )
            for kernel, pstate, uncore, seed in points
        ]
        return points, requests

    def journal_id(self) -> str:
        """Content-derived campaign identity for the journal filename.

        A hash over the sorted grid request keys plus the node type:
        the same campaign (same kernels, grid, scale, seeds) resumes
        into the same journal; any change to the grid gets a fresh one.
        """
        _, requests = self.grid_requests()
        return campaign_id(
            "learn", self.node_config.name, sorted(r.key() for r in requests)
        )

    def measure(self) -> tuple[GridObservation, ...]:
        """Run the whole grid through the pool; return all observations.

        The batch is submitted flat (every kernel × P-state × uncore ×
        seed at once) so cache misses saturate the worker pool.  Grid
        points whose runs were quarantined by the pool are *excluded*
        (the fit degrades gracefully and coverage is warned about); only
        a grid with zero surviving points raises.
        """
        points, requests = self.grid_requests()
        previous_journal = self.pool.journal
        if self.journal is not None:
            self.pool.journal = self.journal
        try:
            results = self.pool.run_many(requests)
        finally:
            if self.journal is not None:
                self.pool.journal = previous_journal
        failures = [r for r in results if isinstance(r, FailedRun)]
        observations = tuple(
            GridObservation(
                kernel=kernel.name,
                pstate=pstate,
                uncore_ghz=uncore,
                seed=seed,
                signature=self._steady_of(kernel, result),
            )
            for (kernel, pstate, uncore, seed), result in zip(points, results)
            if not isinstance(result, FailedRun)
        )
        if not observations:
            raise LearningError(
                f"all {len(results)} grid runs failed; first: "
                f"{failures[0].describe()}"
            )
        if failures:
            coverage = len(observations) / len(results)
            warnings.warn(
                f"learning grid: {len(failures)}/{len(results)} points "
                f"quarantined and excluded from the fit "
                f"(coverage {coverage:.0%})",
                RuntimeWarning,
                stacklevel=2,
            )
            self.recorder.event(
                "learning",
                "coverage",
                node_type=self.node_config.name,
                n_points=len(results),
                n_failed=len(failures),
                coverage=coverage,
            )
        for kernel in self.kernels:
            self.recorder.event(
                "learning",
                "grid_run",
                node_type=self.node_config.name,
                kernel=kernel.name,
                n_runs=self.grid.runs_per_kernel,
                n_pstates=len(self.grid.pstates),
                n_uncore=len(self.grid.uncore_ghz),
                scale=self.grid.scale,
            )
        return observations

    @staticmethod
    def _steady_of(kernel: Workload, result: RunResult) -> Signature:
        try:
            return _steady(result.signatures)
        except LearningError as exc:
            raise LearningError(f"{kernel.name}: {exc}") from None

    def fit(
        self, observations: tuple[GridObservation, ...] | None = None
    ) -> CoefficientTable:
        """Fit the coefficient table (measuring first if needed)."""
        if observations is None:
            observations = self.measure()
        table = fit_table(observations, self.node_config)
        quality = table.quality
        assert quality is not None
        self.recorder.event(
            "learning",
            "fit",
            node_type=self.node_config.name,
            n_observations=quality.n_observations,
            n_kernels=len(quality.kernels),
            min_r2_cpi=quality.min_r2_cpi,
            min_r2_power=quality.min_r2_power,
            max_rel_time_err=quality.max_rel_time_err,
            max_rel_power_err=quality.max_rel_power_err,
            avx512_licence_ghz=quality.avx512_licence_ghz,
        )
        return table

    def validate(
        self,
        table: CoefficientTable,
        *,
        workloads: tuple[Workload, ...] | None = None,
        threshold: float = DEFAULT_ERROR_THRESHOLD,
    ) -> ValidationReport:
        """Replay held-out workloads against the fitted table."""
        if workloads is None:
            workloads = default_validation_workloads(self.node_config)
        report = validate_table(
            table,
            self.node_config,
            workloads,
            pool=self.pool,
            scale=self.grid.scale,
            threshold=threshold,
        )
        for wv in report.workloads:
            self.recorder.event(
                "learning",
                "validate",
                node_type=self.node_config.name,
                workload=wv.workload,
                max_rel_time_err=wv.max_rel_time_err,
                max_rel_power_err=wv.max_rel_power_err,
                threshold=threshold,
                passed=bool(
                    wv.max_rel_time_err <= threshold
                    and wv.max_rel_power_err <= threshold
                ),
            )
        return report

    def save(self, table: CoefficientTable, out_dir) -> str:
        """Write the fitted table where the runtime resolver looks.

        Non-MSR node types get the backend-qualified file name so one
        directory can hold tables for every generation in a mixed
        cluster; the MSR default keeps the historical plain name.
        """
        backend = self.node_config.uncore_backend
        path = coefficients_file(
            out_dir,
            self.node_config.name,
            backend=None if backend == "msr" else backend,
        )
        save_coefficients(table, path)
        return str(path)

    def run(
        self,
        *,
        out_dir=None,
        validate: bool = False,
        threshold: float = DEFAULT_ERROR_THRESHOLD,
    ) -> tuple[CoefficientTable, ValidationReport | None]:
        """The full phase: measure, fit, optionally validate, save.

        Validation failure (held-out projection error above the
        threshold) raises :class:`~repro.errors.LearningError` *before*
        the table is saved — a table that fails validation never lands
        where a run could pick it up.
        """
        table = self.fit()
        report = None
        if validate:
            report = self.validate(table, threshold=threshold)
            report.raise_if_failed()
        if out_dir is not None:
            self.save(table, out_dir)
        return table, report
