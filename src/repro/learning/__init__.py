"""The coefficient-learning subsystem (EAR's offline learning phase).

End-to-end reproduction of how EAR obtains its projection-model
coefficients before any policy ever runs: sweep training kernels over
the P-state × uncore grid (:class:`LearningGrid`), fit per-node-type
per-pair regressions from the measured signatures (:func:`fit_table`),
validate against held-out workloads (:func:`validate_table`) and
persist the table where ``EarConfig(coefficients_path=...)`` resolves
it.  :class:`LearningCampaign` ties the stages together; the
``repro-ear learn`` CLI subcommand drives it.
"""

from .campaign import MONITORING_CONFIG, LearningCampaign, default_kernels
from .fit import MAX_SCALAR_VPI, MIN_PAIR_OBSERVATIONS, fit_table
from .grid import GridObservation, LearningGrid
from .validate import (
    DEFAULT_ERROR_THRESHOLD,
    TargetError,
    ValidationReport,
    WorkloadValidation,
    default_validation_workloads,
    validate_table,
)

__all__ = [
    "MONITORING_CONFIG",
    "LearningCampaign",
    "default_kernels",
    "MAX_SCALAR_VPI",
    "MIN_PAIR_OBSERVATIONS",
    "fit_table",
    "GridObservation",
    "LearningGrid",
    "DEFAULT_ERROR_THRESHOLD",
    "TargetError",
    "ValidationReport",
    "WorkloadValidation",
    "default_validation_workloads",
    "validate_table",
]
