"""The measurement grid of the learning phase.

EAR's ``compute coefficients`` jobs sweep the training kernels over
every CPU P-state; this reproduction extends the sweep with explicit
uncore points (the paper's subject is precisely the uncore dimension),
so each kernel is measured at every (P-state, uncore frequency, seed)
combination.  :class:`LearningGrid` describes that sweep;
:class:`GridObservation` is one measured point of it.

Both grid constructors cover **all** P-states of the node — the fitted
table must contain every (from, to) pair or the runtime model refuses
to load it — and differ only in the uncore points, the seed count and
the workload scale (i.e. in cost and fit quality, never in coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LearningError
from ..ear.signature import Signature
from ..hw.node import NodeConfig

__all__ = ["LearningGrid", "GridObservation"]


@dataclass(frozen=True)
class GridObservation:
    """One steady-state signature measured at a grid point."""

    kernel: str
    #: requested CPU P-state (the AVX licence may clamp the effective
    #: clock below it; the signature records what actually ran).
    pstate: int
    #: pinned uncore frequency, GHz.
    uncore_ghz: float
    seed: int
    signature: Signature


@dataclass(frozen=True)
class LearningGrid:
    """The (P-state × uncore × seed) sweep one campaign measures."""

    pstates: tuple[int, ...]
    uncore_ghz: tuple[float, ...]
    seeds: tuple[int, ...] = (101,)
    #: iteration-count scale applied to every kernel (the learning
    #: phase needs steady-state windows, not full-length runs).
    scale: float = 0.3

    def __post_init__(self) -> None:
        if not self.pstates or not self.uncore_ghz or not self.seeds:
            raise LearningError("a learning grid cannot have an empty axis")
        if len(set(self.pstates)) != len(self.pstates):
            raise LearningError(f"duplicate P-states in grid: {self.pstates}")
        if not 0.0 < self.scale <= 1.0:
            raise LearningError(f"grid scale {self.scale} outside (0, 1]")

    @property
    def runs_per_kernel(self) -> int:
        """Grid points (= simulation runs) each kernel contributes."""
        return len(self.pstates) * len(self.uncore_ghz) * len(self.seeds)

    @staticmethod
    def _uncore_span(node_config: NodeConfig) -> tuple[float, float]:
        lo = node_config.uncore_min_ratio / 10.0
        hi = node_config.uncore_max_ratio / 10.0
        return lo, hi

    @classmethod
    def full(cls, node_config: NodeConfig) -> "LearningGrid":
        """The production grid: all P-states, three uncore points.

        Three uncore frequencies (silicon min, midpoint, max) give the
        TPI regressors enough spread to separate the memory term from
        the CPI term in every pair fit.
        """
        lo, hi = cls._uncore_span(node_config)
        mid = round((lo + hi) / 2, 1)
        return cls(
            pstates=tuple(range(len(node_config.pstates))),
            uncore_ghz=(lo, mid, hi),
            seeds=(101,),
            scale=0.3,
        )

    @classmethod
    def coarse(cls, node_config: NodeConfig) -> "LearningGrid":
        """The cheap grid: all P-states, uncore endpoints only.

        Roughly a third of the full grid's simulation time; still
        complete in P-state coverage, at the price of wider projection
        error bars.  Meant for smoke tests and quick iterations.
        """
        lo, hi = cls._uncore_span(node_config)
        return cls(
            pstates=tuple(range(len(node_config.pstates))),
            uncore_ghz=(lo, hi),
            seeds=(101,),
            scale=0.15,
        )
