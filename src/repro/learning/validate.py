"""Held-out validation of a fitted coefficient table.

The learning phase is only trustworthy if the fitted projections hold
on workloads the fit never saw.  This stage replays held-out workloads
at the nominal P-state (hardware UFS, observe-only policy), projects
their signatures to a sample of target P-states through the fitted
table, runs the same workloads pinned at those targets, and compares
projection against observation.  Errors above the threshold fail
loudly (:meth:`ValidationReport.raise_if_failed`) — a table that
mispredicts held-out codes must never reach a policy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..ear.models import Avx512Model, CoefficientTable
from ..errors import LearningError
from ..experiments.parallel import ExperimentPool, FailedRun, RunRequest, default_pool
from ..hw.node import NodeConfig
from ..workloads.app import Workload

__all__ = [
    "DEFAULT_ERROR_THRESHOLD",
    "TargetError",
    "WorkloadValidation",
    "ValidationReport",
    "default_validation_workloads",
    "validate_table",
]

#: maximum held-out relative projection error (time and power) a table
#: may show before validation fails.  The worst errors concentrate at
#: the P-state floor on MPI applications with a large frequency-
#: invariant wait share — time the CPI/TPI regressors cannot see —
#: which lands at 10-16 % for the full training battery; the default
#: tolerates that known model limitation and still rejects genuinely
#: broken fits (an unanchored battery mispredicts HPCG by ~100 %).
DEFAULT_ERROR_THRESHOLD = 0.20

#: seed for validation runs; disjoint from the training grid's seeds so
#: validation never replays a training simulation byte for byte.
VALIDATION_SEED = 211


@dataclass(frozen=True)
class TargetError:
    """Projection vs. observation at one target P-state."""

    pstate: int
    projected_time_s: float
    observed_time_s: float
    projected_power_w: float
    observed_power_w: float

    @property
    def rel_time_err(self) -> float:
        """Relative time projection error at this target."""
        return abs(self.projected_time_s - self.observed_time_s) / self.observed_time_s

    @property
    def rel_power_err(self) -> float:
        """Relative power projection error at this target."""
        return abs(self.projected_power_w - self.observed_power_w) / self.observed_power_w


@dataclass(frozen=True)
class WorkloadValidation:
    """All target-P-state errors for one held-out workload."""

    workload: str
    targets: tuple[TargetError, ...]

    @property
    def max_rel_time_err(self) -> float:
        """Worst time error over this workload's targets."""
        return max(t.rel_time_err for t in self.targets)

    @property
    def max_rel_power_err(self) -> float:
        """Worst power error over this workload's targets."""
        return max(t.rel_power_err for t in self.targets)


@dataclass(frozen=True)
class ValidationReport:
    """The validation stage's verdict for one fitted table."""

    node_name: str
    threshold: float
    workloads: tuple[WorkloadValidation, ...]

    @property
    def max_rel_time_err(self) -> float:
        """Worst time error over all held-out workloads."""
        return max(w.max_rel_time_err for w in self.workloads)

    @property
    def max_rel_power_err(self) -> float:
        """Worst power error over all held-out workloads."""
        return max(w.max_rel_power_err for w in self.workloads)

    @property
    def passed(self) -> bool:
        """True when every held-out error is within the threshold."""
        return (
            self.max_rel_time_err <= self.threshold
            and self.max_rel_power_err <= self.threshold
        )

    def raise_if_failed(self) -> None:
        """Fail loudly when the table mispredicts held-out workloads."""
        if self.passed:
            return
        worst = max(
            self.workloads,
            key=lambda w: max(w.max_rel_time_err, w.max_rel_power_err),
        )
        raise LearningError(
            f"validation failed for {self.node_name!r}: worst held-out "
            f"projection error {max(worst.max_rel_time_err, worst.max_rel_power_err):.1%} "
            f"on {worst.workload!r} exceeds the {self.threshold:.0%} threshold"
        )

    def summary(self) -> str:
        """Human-readable per-workload error table."""
        lines = [
            f"validation for {self.node_name} "
            f"(threshold {self.threshold:.0%}): "
            + ("PASS" if self.passed else "FAIL")
        ]
        for w in self.workloads:
            lines.append(
                f"  {w.workload:<12s} time err {w.max_rel_time_err:6.2%}  "
                f"power err {w.max_rel_power_err:6.2%}"
            )
        return "\n".join(lines)


def default_validation_workloads(node_config: NodeConfig) -> tuple[Workload, ...]:
    """Held-out battery for a node type.

    For the paper's main testbed these are production applications from
    Table V-family runs (never part of the training battery).  Node
    types without held-out applications fall back to the training
    kernels themselves — self-validation, better than none, and flagged
    as such by the kernel names in the report.
    """
    from ..workloads.applications import bqcd, gromacs_ion_channel, hpcg

    apps = tuple(
        w
        for w in (hpcg(), bqcd(), gromacs_ion_channel())
        if w.node_config.name == node_config.name
    )
    if apps:
        return apps
    from .campaign import default_kernels

    return default_kernels(node_config)


def _target_pstates(n_states: int, from_ps: int) -> tuple[int, ...]:
    """A small spread of target states: near-nominal, midrange, floor."""
    candidates = {2, n_states // 2, n_states - 1}
    candidates.discard(from_ps)
    return tuple(sorted(p for p in candidates if 0 <= p < n_states))


def validate_table(
    table: CoefficientTable,
    node_config: NodeConfig,
    workloads: tuple[Workload, ...],
    *,
    pool: ExperimentPool | None = None,
    scale: float = 0.3,
    threshold: float = DEFAULT_ERROR_THRESHOLD,
) -> ValidationReport:
    """Compare fitted projections against observed held-out runs.

    Every workload runs once pinned at the nominal clock (hardware UFS
    active, as the runtime's first measurement window would see it) and
    once per sampled target P-state; the report holds the relative
    time/power projection errors.  This function only *measures* —
    judgement is :meth:`ValidationReport.raise_if_failed`.
    """
    if not workloads:
        raise LearningError("validation needs at least one held-out workload")
    from .campaign import MONITORING_CONFIG, _steady

    pool = pool if pool is not None else default_pool()
    pstates = node_config.pstates
    from_ps = pstates.nominal_pstate
    targets = _target_pstates(len(pstates), from_ps)
    model = Avx512Model(table, pstates)

    points = [(w, p) for w in workloads for p in (from_ps, *targets)]
    requests = [
        RunRequest(
            workload=w,
            ear_config=MONITORING_CONFIG,
            seed=VALIDATION_SEED,
            scale=scale,
            pin_cpu_ghz=pstates.freq_of(p),
        )
        for w, p in points
    ]
    results = dict(zip(points, pool.run_many(requests)))
    failed = {w.name for (w, _), r in results.items() if isinstance(r, FailedRun)}
    if failed:
        # a workload with any quarantined run cannot be judged fairly;
        # exclude it and validate on the survivors (coverage warning),
        # unless nothing survives.
        if failed == {w.name for w in workloads}:
            raise LearningError(
                "validation impossible: every held-out workload had "
                "quarantined runs"
            )
        warnings.warn(
            "validation excluded workloads with quarantined runs: "
            + ", ".join(sorted(failed)),
            RuntimeWarning,
            stacklevel=2,
        )
        workloads = tuple(w for w in workloads if w.name not in failed)

    validations = []
    for w in workloads:
        base = _steady(results[(w, from_ps)].signatures)
        errors = []
        for p in targets:
            observed = _steady(results[(w, p)].signatures)
            projected = model.project(base, from_ps, p)
            errors.append(
                TargetError(
                    pstate=p,
                    projected_time_s=projected.time_s,
                    observed_time_s=observed.iteration_time_s,
                    projected_power_w=projected.power_w,
                    observed_power_w=observed.dc_power_w,
                )
            )
        validations.append(WorkloadValidation(workload=w.name, targets=tuple(errors)))
    return ValidationReport(
        node_name=node_config.name,
        threshold=threshold,
        workloads=tuple(validations),
    )
