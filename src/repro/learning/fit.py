"""Least-squares fitting of projection coefficients from grid runs.

This is the numerical core of the learning phase: given the signatures
a :class:`~repro.learning.campaign.LearningCampaign` measured across
the P-state × uncore grid, fit every (from, to) P-state pair of the
EAR projection model

    CPI(to)   = A · CPI(from)   + B · TPI(from) + C
    Power(to) = D · Power(from) + E · TPI(from) + F

by ordinary least squares, exactly as EAR's offline ``compute
coefficients`` jobs do, and attach a goodness-of-fit record
(:class:`~repro.ear.models.TableQuality`) so a badly conditioned fit
cannot be mistaken for a trustworthy one.

Observations are matched between the *from* and *to* P-states on their
``(kernel, uncore, seed)`` coordinates — the regression needs the same
physical workload measured at both clocks.  AVX-512-dense kernels
(``vpi`` above :data:`MAX_SCALAR_VPI`) are excluded from the scalar
regressions: their effective clock is licence-clamped, so pairing them
by *requested* P-state would poison the fit.  They are used instead to
*measure* the licence frequency, which is recorded in the table quality.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from ..errors import LearningError
from ..ear.models import (
    CoefficientTable,
    PairCoefficients,
    PairQuality,
    TableQuality,
)
from ..ear.signature import Signature
from ..hw.node import NodeConfig
from .grid import GridObservation

__all__ = ["MAX_SCALAR_VPI", "MIN_PAIR_OBSERVATIONS", "fit_table"]

#: observations with a larger AVX-512 instruction fraction are excluded
#: from the scalar CPI/power regressions (licence clamping decouples
#: their effective clock from the requested P-state).
MAX_SCALAR_VPI = 0.5

#: fewest matched (from, to) observation pairs a regression accepts;
#: below this the 3-parameter fit is underdetermined noise.
MIN_PAIR_OBSERVATIONS = 3


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    """Coefficient of determination with a zero-variance guard.

    A degenerate target (all observations identical) has no variance to
    explain: the fit is perfect if the residuals vanish and worthless
    otherwise, without dividing by zero.
    """
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot < 1e-12:
        return 1.0 if ss_res < 1e-9 else 0.0
    return 1.0 - ss_res / ss_tot


def _measured_licence_ghz(avx_obs: Sequence[GridObservation]) -> float | None:
    """The AVX-512 licence frequency as the silicon actually enforced it.

    Dense-AVX runs requesting clocks above the licence limit all plateau
    at the same effective frequency; the highest average clock any AVX
    observation sustained *is* that plateau (requests below the licence
    run where they asked, which is lower by construction).
    """
    if not avx_obs:
        return None
    return max(o.signature.avg_cpu_freq_ghz for o in avx_obs)


def fit_table(
    observations: Iterable[GridObservation],
    node_config: NodeConfig,
    *,
    max_scalar_vpi: float = MAX_SCALAR_VPI,
) -> CoefficientTable:
    """Fit a complete coefficient table from grid observations.

    Raises :class:`~repro.errors.LearningError` when any P-state pair
    has too few matched observations — an incomplete table would fail
    every projection at runtime, so the fit fails loudly instead.
    """
    obs = tuple(observations)
    if not obs:
        raise LearningError("cannot fit coefficients from an empty grid")
    freqs = tuple(node_config.pstates.frequencies_ghz)
    n_states = len(freqs)

    scalar = [o for o in obs if o.signature.vpi <= max_scalar_vpi]
    avx = [o for o in obs if o.signature.vpi > max_scalar_vpi]
    # by_ps[p][(kernel, uncore, seed)] = signature measured at P-state p
    by_ps: dict[int, dict[tuple, Signature]] = defaultdict(dict)
    for o in scalar:
        by_ps[o.pstate][(o.kernel, o.uncore_ghz, o.seed)] = o.signature
    missing = [p for p in range(n_states) if not by_ps.get(p)]
    if missing:
        raise LearningError(
            f"grid has no scalar observations at P-states {missing}; "
            f"the table must cover all {n_states} states"
        )

    table = CoefficientTable(node_config.name, freqs)
    table.source = "fitted"
    pair_quality: list[PairQuality] = []
    for from_ps in range(n_states):
        for to_ps in range(n_states):
            if to_ps == from_ps:
                continue
            keys = sorted(set(by_ps[from_ps]) & set(by_ps[to_ps]))
            if len(keys) < MIN_PAIR_OBSERVATIONS:
                raise LearningError(
                    f"P-state pair {from_ps} -> {to_ps} has only "
                    f"{len(keys)} matched observations "
                    f"(need {MIN_PAIR_OBSERVATIONS}); widen the grid"
                )
            src = [by_ps[from_ps][k] for k in keys]
            dst = [by_ps[to_ps][k] for k in keys]
            x = np.column_stack(
                [
                    [s.cpi for s in src],
                    [s.tpi for s in src],
                    np.ones(len(src)),
                ]
            )
            xp = np.column_stack(
                [
                    [s.dc_power_w for s in src],
                    [s.tpi for s in src],
                    np.ones(len(src)),
                ]
            )
            y_cpi = np.array([s.cpi for s in dst])
            y_pwr = np.array([s.dc_power_w for s in dst])
            abc, *_ = np.linalg.lstsq(x, y_cpi, rcond=None)
            def_, *_ = np.linalg.lstsq(xp, y_pwr, rcond=None)
            coeffs = PairCoefficients(
                a=float(abc[0]),
                b=float(abc[1]),
                c=float(abc[2]),
                d=float(def_[0]),
                e=float(def_[1]),
                f=float(def_[2]),
            )
            table.set(from_ps, to_ps, coeffs)

            pred_cpi = x @ abc
            pred_pwr = xp @ def_
            # training-set projection errors via the same identities the
            # runtime model uses (self-consistency, not held-out error).
            ratio = freqs[from_ps] / freqs[to_ps]
            time_errs = [
                abs(s.iteration_time_s * (pc / s.cpi) * ratio - d.iteration_time_s)
                / d.iteration_time_s
                for s, d, pc in zip(src, dst, pred_cpi)
            ]
            pwr_errs = [
                abs(pw - d.dc_power_w) / d.dc_power_w
                for d, pw in zip(dst, pred_pwr)
            ]
            pair_quality.append(
                PairQuality(
                    from_ps=from_ps,
                    to_ps=to_ps,
                    n_obs=len(keys),
                    r2_cpi=_r_squared(y_cpi, pred_cpi),
                    r2_power=_r_squared(y_pwr, pred_pwr),
                    max_rel_time_err=float(max(time_errs)),
                    max_rel_power_err=float(max(pwr_errs)),
                )
            )

    table.quality = TableQuality(
        n_observations=len(obs),
        kernels=tuple(sorted({o.kernel for o in obs})),
        min_r2_cpi=min(q.r2_cpi for q in pair_quality),
        min_r2_power=min(q.r2_power for q in pair_quality),
        max_rel_time_err=max(q.max_rel_time_err for q in pair_quality),
        max_rel_power_err=max(q.max_rel_power_err for q in pair_quality),
        avx512_licence_ghz=_measured_licence_ghz(avx),
        pairs=tuple(pair_quality),
    )
    return table
