"""EARDBD: the accounting aggregation daemon tier.

In a production EAR deployment the node daemons do not talk to the
database directly — an intermediate EARDBD per island batches their
per-node signature/accounting reports and ships them upstream, which
is what keeps the DB alive under a full cluster's reporting rate.
This module reproduces that tier:

* per-node reports (:class:`NodeReport`) arrive one at a time and are
  buffered;
* a **bounded** buffer models the daemon's finite memory: a report
  arriving on a full buffer is *dropped and counted* — the real
  failure mode of an undersized aggregation tier — never silently
  lost;
* on each flush tick (driven by the cluster event clock) the buffer is
  drained to the shared :class:`~repro.ear.accounting.AccountingDB`,
  growing job rows node by node (a job's reports may span flushes).

The conservation law ``received == forwarded + dropped + pending``
holds at every instant, and ``forwarded`` equals the DB's node-row
count when the daemon is the DB's only writer — the reconciliation the
acceptance tests pin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..ear.accounting import AccountingDB, JobRecord, NodeJobRecord
from ..errors import ConfigError
from ..telemetry.recorder import NULL_RECORDER, Recorder

__all__ = ["NodeReport", "EardbdConfig", "EardbdStats", "Eardbd"]


@dataclass(frozen=True)
class NodeReport:
    """One node's share of one job, as its EARD would report it."""

    job_id: int
    workload: str
    policy: str
    cpu_policy_th: float
    unc_policy_th: float
    node: NodeJobRecord

    def job_record(self) -> JobRecord:
        """A single-node job row (the upsert unit)."""
        return JobRecord(
            job_id=self.job_id,
            workload=self.workload,
            policy=self.policy,
            cpu_policy_th=self.cpu_policy_th,
            unc_policy_th=self.unc_policy_th,
            nodes=(self.node,),
        )


@dataclass(frozen=True)
class EardbdConfig:
    """Batching behaviour of one aggregation daemon."""

    #: seconds of simulated time between flushes to the DB.
    flush_interval_s: float = 30.0
    #: maximum buffered node reports; arrivals beyond this are dropped
    #: (and counted) until the next flush frees space.
    buffer_limit: int = 256

    def __post_init__(self) -> None:
        if self.flush_interval_s <= 0:
            raise ConfigError("flush_interval_s must be positive")
        if self.buffer_limit < 1:
            raise ConfigError("buffer_limit must be >= 1")


@dataclass
class EardbdStats:
    """Aggregation-tier observability counters."""

    received: int = 0
    forwarded: int = 0
    dropped: int = 0
    flushes: int = 0
    #: daemon restarts survived (control-plane fault channel).
    restarts: int = 0
    #: buffered reports carried across restarts via WAL replay.
    replayed: int = 0

    def reconciles_with(self, db: AccountingDB, *, pending: int = 0) -> bool:
        """Exact conservation check against the DB's node-row count."""
        return (
            self.received == self.forwarded + self.dropped + pending
            and self.forwarded == db.node_rows()
        )


class Eardbd:
    """One aggregation daemon in front of the accounting database."""

    def __init__(
        self,
        db: AccountingDB,
        config: EardbdConfig | None = None,
        *,
        telemetry: Recorder = NULL_RECORDER,
    ) -> None:
        self.db = db
        self.config = config if config is not None else EardbdConfig()
        self.telemetry = telemetry
        self.stats = EardbdStats()
        self._buffer: deque[NodeReport] = deque()

    @property
    def pending(self) -> int:
        """Reports buffered but not yet flushed to the DB."""
        return len(self._buffer)

    def submit(self, report: NodeReport, *, time_s: float) -> bool:
        """Buffer one per-node report; False means it was dropped."""
        self.stats.received += 1
        if len(self._buffer) >= self.config.buffer_limit:
            self.stats.dropped += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "eardbd",
                    "drop",
                    time_s=time_s,
                    job_id=report.job_id,
                    node_id=report.node.node_id,
                    buffered=len(self._buffer),
                )
            return False
        self._buffer.append(report)
        return True

    def restart(self, *, time_s: float) -> int:
        """Model a daemon restart with write-ahead-log replay.

        The production daemon journals buffered reports before
        acknowledging them, so a restart replays the buffer instead of
        losing it: nothing is dropped, the flush that would have
        happened this tick is skipped (the daemon was down), and the
        conservation law ``received == forwarded + dropped + pending``
        holds across the restart.  Returns the number of reports
        replayed.
        """
        n = len(self._buffer)
        self.stats.restarts += 1
        self.stats.replayed += n
        if self.telemetry.enabled:
            self.telemetry.event(
                "eardbd",
                "restart",
                time_s=time_s,
                replayed=n,
                total_restarts=self.stats.restarts,
            )
        return n

    def flush(self, *, time_s: float) -> int:
        """Drain the buffer into the DB; returns rows forwarded."""
        n = len(self._buffer)
        while self._buffer:
            report = self._buffer.popleft()
            self.db.upsert_nodes(report.job_record())
            self.stats.forwarded += 1
        self.stats.flushes += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "eardbd",
                "flush",
                time_s=time_s,
                rows=n,
                total_forwarded=self.stats.forwarded,
                total_dropped=self.stats.dropped,
            )
        return n
