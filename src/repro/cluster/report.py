"""Cluster campaign reports and per-policy comparisons.

Renders :class:`~repro.cluster.scheduler.ClusterReport` the way the
rest of the harness renders paper artefacts (ASCII tables), and runs
the same trace under several EAR configurations to answer the
cluster-scale question the paper's per-job tables cannot: does the
optimisation service still pay once jobs contend for nodes and a
budget — cluster energy down, makespan penalty bounded?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ear.accounting import AccountingDB
from ..ear.config import EarConfig
from ..experiments.report import format_table, ghz, pct
from .scheduler import ClusterConfig, ClusterReport, ClusterSimulation
from .traces import TraceJob

__all__ = [
    "PolicyCampaign",
    "compare_cluster_policies",
    "render_cluster_report",
    "render_comparison",
]


@dataclass(frozen=True)
class PolicyCampaign:
    """One policy's campaign outcome, with its accounting DB."""

    name: str
    report: ClusterReport
    accounting: AccountingDB

    def energy_saving_vs(self, reference: "PolicyCampaign") -> float:
        """Fractional cluster-energy saving vs. a baseline report."""
        if reference.report.total_energy_j <= 0:
            return 0.0
        return 1.0 - self.report.total_energy_j / reference.report.total_energy_j

    def makespan_penalty_vs(self, reference: "PolicyCampaign") -> float:
        """Fractional makespan increase vs. a baseline report."""
        if reference.report.makespan_s <= 0:
            return 0.0
        return self.report.makespan_s / reference.report.makespan_s - 1.0


def compare_cluster_policies(
    trace: tuple[TraceJob, ...],
    cluster: ClusterConfig,
    configs: Mapping[str, EarConfig | None],
    *,
    pool=None,
) -> dict[str, PolicyCampaign]:
    """Replay one trace once per configuration.

    Every campaign sees the identical trace (same arrivals, same job
    seeds), so differences are pure policy effect plus its knock-on
    scheduling consequences (shorter/longer jobs shift start times).
    ``configs`` maps display names to EAR configurations; ``None`` is
    the monitoring-only baseline.
    """
    from dataclasses import replace

    out: dict[str, PolicyCampaign] = {}
    for name, config in configs.items():
        db = AccountingDB()
        sim = ClusterSimulation(
            trace,
            replace(cluster, ear_config=config),
            pool=pool,
            accounting=db,
        )
        out[name] = PolicyCampaign(name=name, report=sim.run(), accounting=db)
    return out


def render_cluster_report(report: ClusterReport, *, jobs: bool = True) -> str:
    """ASCII artefact for one campaign."""
    summary_rows = [
        ["policy", report.policy],
        ["nodes", str(report.n_nodes)],
        ["jobs", str(report.n_jobs)],
        ["makespan", f"{report.makespan_s:.1f} s"],
        ["cluster energy", f"{report.total_energy_j / 1e6:.2f} MJ"],
        ["node utilisation", pct(report.utilisation)],
        ["mean / max wait", f"{report.mean_wait_s:.1f} / {report.max_wait_s:.1f} s"],
        ["backfilled jobs", str(report.n_backfilled)],
        [
            "eardbd rows",
            f"{report.eardbd.forwarded} forwarded, {report.eardbd.dropped} "
            f"dropped, {report.eardbd.flushes} flushes",
        ],
    ]
    if report.budget_j is not None:
        summary_rows.append(
            [
                "budget",
                f"{(report.consumed_j or 0.0) / 1e6:.2f} / {report.budget_j / 1e6:.2f} MJ "
                f"({report.final_level.name if report.final_level else '-'}, "
                f"{report.cap_changes} cap changes)",
            ]
        )
    if report.market is not None:
        m = report.market
        summary_rows.append(
            [
                "power market",
                f"{m.budget_w:.0f} W budget, peak grant {m.peak_granted_w:.0f} W, "
                f"{m.n_capped_jobs}/{m.n_jobs} jobs capped, "
                f"{len(m.intervals)} intervals",
            ]
        )
    out = format_table("cluster campaign", ["metric", "value"], summary_rows)
    if jobs:
        job_rows = [
            [
                str(j.job_id),
                j.workload,
                str(j.n_nodes),
                f"{j.submit_s:.0f}",
                f"{j.wait_s:.0f}",
                f"{j.run_s:.0f}",
                "bf" if j.backfilled else "",
                str(j.pstate_offset),
                f"{j.dc_energy_j / 1e6:.2f}",
                ghz(j.avg_cpu_freq_ghz),
                ghz(j.avg_imc_freq_ghz),
            ]
            for j in report.jobs
        ]
        out += "\n" + format_table(
            "jobs (in start order)",
            [
                "id",
                "workload",
                "nodes",
                "submit",
                "wait",
                "run",
                "bf",
                "cap",
                "MJ",
                "cpu",
                "imc",
            ],
            job_rows,
        )
    return out


def render_comparison(
    campaigns: Mapping[str, PolicyCampaign], *, reference: str = "none"
) -> str:
    """Per-policy savings table against a reference campaign.

    The default reference is the monitoring-only campaign; when the
    caller compared a policy subset that omits it (``repro-ear cluster
    --policies me_eufs,me_eufs_regions``), the first campaign stands in
    as the baseline.
    """
    if reference not in campaigns:
        if reference == "none" and campaigns:
            reference = next(iter(campaigns))
        else:
            raise ValueError(f"reference campaign {reference!r} missing")
    ref = campaigns[reference]
    rows = []
    for name, campaign in campaigns.items():
        r = campaign.report
        rows.append(
            [
                name,
                f"{r.total_energy_j / 1e6:.2f}",
                pct(campaign.energy_saving_vs(ref)) if name != reference else "-",
                f"{r.makespan_s:.0f}",
                pct(campaign.makespan_penalty_vs(ref)) if name != reference else "-",
                pct(r.utilisation),
                f"{r.mean_wait_s:.0f}",
            ]
        )
    return format_table(
        f"campaign vs {reference} (same trace, same seeds)",
        [
            "policy",
            "energy MJ",
            "saving",
            "makespan s",
            "penalty",
            "util",
            "wait s",
        ],
        rows,
    )
