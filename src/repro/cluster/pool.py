"""Heterogeneous node pools: mixed processor generations in one cluster.

Production EAR clusters are rarely one node type: partitions bought
years apart coexist, and each generation exposes a different uncore
control path (:mod:`repro.hw.backends`).  A :class:`NodePool` maps the
scheduler's flat node-id space onto named *generations* — contiguous
id ranges of one :class:`~repro.hw.node.NodeConfig` each — so the FCFS
+ backfill scheduler can place a job on any generation with capacity,
retarget its workload to that silicon, and let coefficient resolution
pick the right per-(node type, backend) table.

``--node-mix skylake=8,graniterapids=8`` on the CLI becomes
``(("skylake", 8), ("graniterapids", 8))`` via :func:`parse_node_mix`;
the registry :data:`GENERATIONS` names the configs a mix may draw from.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ConfigError
from ..hw.node import BROADWELL_NODE, GRANITE_RAPIDS_NODE, SD530, NodeConfig

__all__ = ["GENERATIONS", "NodePool", "parse_node_mix"]

#: the node generations a mix may name.  Broadwell is bound to the
#: legacy sysfs driver here: the ring-bus parts are exactly the ones
#: operated through ``intel_uncore_frequency`` files in mixed clusters,
#: and it keeps every backend reachable from a trace.
GENERATIONS: dict[str, NodeConfig] = {
    "skylake": SD530,
    "broadwell": replace(BROADWELL_NODE, uncore_backend="sysfs"),
    "graniterapids": GRANITE_RAPIDS_NODE,
}


def parse_node_mix(spec: str) -> tuple[tuple[str, int], ...]:
    """Parse a ``gen=count,gen=count`` mix specification.

    Order is preserved — it is the placement preference order (the
    scheduler tries the first named generation first) and fixes the
    node-id layout, so the same spec always yields the same schedule.
    """
    mix: list[tuple[str, int]] = []
    seen: set[str] = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, count_s = part.partition("=")
        name = name.strip()
        if not sep:
            raise ConfigError(
                f"malformed node-mix entry {part!r}; expected <generation>=<count>"
            )
        if name not in GENERATIONS:
            raise ConfigError(
                f"unknown node generation {name!r}; expected one of "
                f"{', '.join(GENERATIONS)}"
            )
        if name in seen:
            raise ConfigError(f"node generation {name!r} appears twice in the mix")
        seen.add(name)
        try:
            count = int(count_s)
        except ValueError:
            raise ConfigError(
                f"node-mix count for {name!r} must be an integer, got {count_s!r}"
            ) from None
        if count < 1:
            raise ConfigError(f"node-mix count for {name!r} must be >= 1")
        mix.append((name, count))
    if not mix:
        raise ConfigError("a node mix needs at least one generation")
    return tuple(mix)


class NodePool:
    """Node-id layout of a mixed-generation cluster.

    Generations occupy contiguous id ranges in mix order: a mix of
    ``skylake=8,graniterapids=8`` puts Skylake on ids 0..7 and Granite
    Rapids on 8..15.  The pool is pure bookkeeping — live
    :class:`~repro.hw.node.Node` objects are still built per job by the
    simulation engine from the (retargeted) workload's node config.
    """

    def __init__(self, mix: tuple[tuple[str, int], ...]) -> None:
        if not mix:
            raise ConfigError("a node pool needs at least one generation")
        self.mix = tuple(mix)
        self._ranges: dict[str, range] = {}
        at = 0
        for name, count in self.mix:
            if name not in GENERATIONS:
                raise ConfigError(
                    f"unknown node generation {name!r}; expected one of "
                    f"{', '.join(GENERATIONS)}"
                )
            if count < 1:
                raise ConfigError(f"generation {name!r} needs at least one node")
            if name in self._ranges:
                raise ConfigError(f"generation {name!r} appears twice in the mix")
            self._ranges[name] = range(at, at + count)
            at += count
        self.total = at

    @property
    def generations(self) -> tuple[str, ...]:
        """Generation names, mix (= placement preference) order."""
        return tuple(name for name, _ in self.mix)

    @property
    def max_generation_size(self) -> int:
        """Node count of the largest generation (bounds job width)."""
        return max(count for _, count in self.mix)

    def node_ids(self, generation: str) -> range:
        """The contiguous node-id range of one generation."""
        try:
            return self._ranges[generation]
        except KeyError:
            raise ConfigError(f"generation {generation!r} is not in this pool") from None

    def config(self, generation: str) -> NodeConfig:
        """The node configuration of one generation."""
        self.node_ids(generation)  # membership check
        return GENERATIONS[generation]

    def generation_of(self, node_id: int) -> str:
        """The generation owning a node id."""
        for name, ids in self._ranges.items():
            if node_id in ids:
                return name
        raise ConfigError(f"node id {node_id} is outside the pool (0..{self.total - 1})")

    def config_of(self, node_id: int) -> NodeConfig:
        """The node configuration of a node id."""
        return GENERATIONS[self.generation_of(node_id)]
