"""Discrete-event core of the cluster simulator.

Same philosophy as the per-job engine: nothing interesting happens
between events, so a multi-hour campaign simulates in milliseconds.
Cluster-level events are job arrivals, job completions and EARDBD
flush ticks; everything in between is dead time.

Determinism is load-bearing (the acceptance bar is "same trace seed ⇒
identical schedule"), so ties are broken by an explicit kind priority
and then an insertion sequence number — never by object identity or
hash order.  Completions sort before arrivals at the same instant
(freed nodes are visible to the scheduling pass that places the
arrival), and flushes run last so a flush at ``t`` ships the reports
of jobs that finished at ``t``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..errors import ExperimentError

__all__ = ["EventKind", "Event", "EventQueue", "SimClock"]


class EventKind(Enum):
    """What a cluster event is; the value is its same-time priority.

    Failures sort with completions (before arrivals) at the same
    instant: a node that dies at ``t`` must be invisible to the
    scheduling pass that places an arrival at ``t``, and a node that
    finishes rebooting at ``t`` must be visible to it.
    """

    JOB_FINISH = 0
    NODE_FAIL = 1
    NODE_RECOVER = 2
    JOB_ARRIVAL = 3
    EARDBD_FLUSH = 4


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence on the cluster timeline."""

    time_s: float
    kind: EventKind
    #: event-specific data: the queued job for arrivals, the running
    #: job for completions, None for flush ticks.
    payload: Any = None


class SimClock:
    """The cluster's simulated wall clock.

    Monotonic by construction: the event queue yields events in time
    order and :meth:`advance` refuses to move backwards, so any
    subsystem holding the clock (telemetry recorders, the EARDBD flush
    logic) sees one consistent notion of "now".
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, to_s: float) -> None:
        """Move the clock forward; going backwards is an error."""
        if to_s < self._now - 1e-9:
            raise ExperimentError(
                f"simulated clock cannot run backwards ({self._now} -> {to_s})"
            )
        self._now = max(self._now, to_s)


@dataclass(order=True)
class _QueueEntry:
    """Heap entry; the sort key *is* the field order."""

    time_s: float
    priority: int
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """Deterministic priority queue of :class:`Event`."""

    def __init__(self) -> None:
        self._heap: list[_QueueEntry] = []
        self._seq = 0

    def push(self, time_s: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; ties break by kind, then insertion order."""
        if time_s < 0:
            raise ExperimentError("events cannot be scheduled before t=0")
        event = Event(time_s=time_s, kind=kind, payload=payload)
        heapq.heappush(
            self._heap, _QueueEntry(time_s, kind.value, self._seq, event)
        )
        self._seq += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise ExperimentError("pop from an empty event queue")
        return heapq.heappop(self._heap).event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
