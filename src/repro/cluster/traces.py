"""Synthetic job-trace generation for the cluster simulator.

A trace is the input side of a scheduling study: who arrives when,
asking for how many nodes, to run what.  Traces here are drawn from a
seeded generator so a campaign is exactly reproducible — the same
trace seed yields the same arrival times, the same workload mix and
the same per-job simulation seeds, which is what lets the acceptance
tests demand bit-identical schedules.

The workload mix comes from the existing synthetic-workload registry
(:func:`repro.workloads.generator.synthetic_workload`): a spread over
compute-bound, mixed and memory-bound jobs at 1–4 nodes, i.e. the
boundedness space in which the paper's policies differentiate.  The
``min_energy`` + explicit-UFS policy saves most on the memory-lean
jobs (uncore descends) while the memory-bound ones bound the penalty —
a mix, not a best case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..hw.node import SD530, NodeConfig
from ..workloads.app import Workload
from ..workloads.generator import synthetic_workload

__all__ = ["TraceJob", "TraceConfig", "trace_workload_mix", "generate_trace"]


@dataclass(frozen=True)
class TraceJob:
    """One job of a campaign trace."""

    index: int
    #: arrival on the cluster clock.
    submit_s: float
    workload: Workload
    #: per-job simulation seed (derived from the trace seed).
    seed: int
    #: the "user-requested walltime": what conservative backfill uses
    #: for reservations.  Unlike a production scheduler the simulator
    #: does not kill overrunning jobs — completions reschedule off the
    #: actual run time.
    est_time_s: float


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic campaign."""

    n_jobs: int = 12
    seed: int = 0
    #: mean of the exponential inter-arrival process.
    mean_interarrival_s: float = 20.0
    #: fraction of jobs arriving together at t=0 (the morning burst
    #: that makes backfill and budget pace interesting).
    burst_fraction: float = 0.25
    #: iteration-count scale applied to every job's workload.
    scale: float = 1.0
    #: walltime request = reference time x this margin.
    est_margin: float = 1.3

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ConfigError("a trace needs at least one job")
        if self.mean_interarrival_s <= 0:
            raise ConfigError("mean_interarrival_s must be positive")
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise ConfigError("burst_fraction must be in [0, 1]")
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.est_margin < 1.0:
            raise ConfigError("est_margin below 1 would make backfill optimistic")


@dataclass(frozen=True)
class _MixEntry:
    workload: Workload
    weight: float


def _mix_workload(
    name: str,
    node_config: NodeConfig,
    *,
    core: float,
    unc: float,
    mem: float,
    n_nodes: int,
    n_iterations: int,
) -> Workload:
    return synthetic_workload(
        name=name,
        node_config=node_config,
        core_share=core,
        unc_share=unc,
        mem_share=mem,
        n_nodes=n_nodes,
        n_iterations=n_iterations,
    )


def trace_workload_mix(
    node_config: NodeConfig = SD530,
) -> tuple[tuple[Workload, float], ...]:
    """The default ``(workload, weight)`` mix of a campaign.

    Sizes and boundedness follow typical HPC accounting splits: many
    small jobs, few wide ones; compute-heavy codes dominate but a
    quarter of the node-hours are memory-bound.
    """
    entries = (
        _MixEntry(
            _mix_workload(
                "synt.cpu.1n", node_config, core=0.88, unc=0.05, mem=0.04,
                n_nodes=1, n_iterations=260,
            ),
            0.30,
        ),
        _MixEntry(
            _mix_workload(
                "synt.mixed.1n", node_config, core=0.55, unc=0.12, mem=0.25,
                n_nodes=1, n_iterations=220,
            ),
            0.25,
        ),
        _MixEntry(
            _mix_workload(
                "synt.mem.1n", node_config, core=0.20, unc=0.18, mem=0.55,
                n_nodes=1, n_iterations=170,
            ),
            0.15,
        ),
        _MixEntry(
            _mix_workload(
                "synt.cpu.2n", node_config, core=0.85, unc=0.06, mem=0.05,
                n_nodes=2, n_iterations=300,
            ),
            0.15,
        ),
        _MixEntry(
            _mix_workload(
                "synt.mixed.4n", node_config, core=0.50, unc=0.14, mem=0.28,
                n_nodes=4, n_iterations=340,
            ),
            0.15,
        ),
    )
    return tuple((e.workload, e.weight) for e in entries)


def generate_trace(
    config: TraceConfig,
    *,
    workloads: tuple[tuple[Workload, float], ...] | None = None,
) -> tuple[TraceJob, ...]:
    """Draw one seeded campaign trace.

    All randomness (arrival gaps, workload choice, per-job seeds)
    flows from ``config.seed`` through one generator, consumed in a
    fixed order — the trace is a pure function of its config.
    """
    mix = trace_workload_mix() if workloads is None else tuple(workloads)
    if not mix:
        raise ConfigError("the workload mix cannot be empty")
    rng = np.random.default_rng(config.seed)
    weights = np.array([w for _, w in mix], dtype=float)
    if np.any(weights <= 0):
        raise ConfigError("workload-mix weights must be positive")
    weights = weights / weights.sum()

    n_burst = int(round(config.n_jobs * config.burst_fraction))
    gaps = rng.exponential(config.mean_interarrival_s, size=config.n_jobs)
    picks = rng.choice(len(mix), size=config.n_jobs, p=weights)
    seeds = rng.integers(1, 2**31 - 1, size=config.n_jobs)

    jobs = []
    at = 0.0
    for i in range(config.n_jobs):
        if i >= n_burst:
            at += float(gaps[i])
        wl = mix[int(picks[i])][0]
        if config.scale != 1.0:
            wl = wl.scaled_iterations(config.scale)
        jobs.append(
            TraceJob(
                index=i,
                submit_s=at,
                workload=wl,
                seed=int(seeds[i]),
                est_time_s=wl.total_ref_time_s * config.est_margin,
            )
        )
    return tuple(jobs)
