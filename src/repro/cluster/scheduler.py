"""The cluster simulation: node pool, scheduler, EARGM actuation.

One :class:`ClusterSimulation` replays a job trace against a node pool
under EAR's three services at once:

* **optimisation** — every job executes through the per-job simulation
  engine (via the cache-aware
  :class:`~repro.experiments.parallel.ExperimentPool`, so repeated
  (workload, config, seed) jobs re-use cached physics);
* **accounting** — per-node outcomes flow through the
  :class:`~repro.cluster.eardbd.Eardbd` aggregation tier into the
  shared :class:`~repro.ear.accounting.AccountingDB`;
* **control** — the :class:`~repro.ear.eargm.Eargm` budget loop is
  driven by the *event clock* (wall-clock deltas between completions,
  not summed job times), and its P-state cap is folded into the
  configuration of every job scheduled after a level change.

Scheduling is FCFS with conservative backfill: a queued job may jump
ahead only if, under the walltime *estimates*, it delays the
reservation of no job ahead of it.  Reservations are carved into a
free-node step function in queue order, which is exactly the
conservative variant (EASY backfill would reserve for the head job
only).

Everything is deterministic: the trace is seeded, tie-breaking in the
event queue is explicit, batches are submitted to the pool in queue
order and merged in submission order — the same trace seed yields the
identical schedule, accounting records and telemetry stream, with 1 or
N worker processes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from ..ear.accounting import AccountingDB, NodeJobRecord
from ..ear.config import EarConfig
from ..ear.eargm import Eargm, EargmConfig, WarningLevel
from ..errors import ConfigError, ExperimentError
from ..experiments.resilient import FailedRun
from ..sim.faults import FaultPlan
from ..sim.result import RunResult
from ..telemetry.recorder import NULL_RECORDER, EventRecorder, NodeTelemetry, Recorder
from ..hw.units import ratio_to_ghz
from .eardbd import Eardbd, EardbdConfig, EardbdStats, NodeReport
from .events import EventKind, EventQueue, SimClock
from .market import Grant, MarketConfig, MarketStats, PowerMarket
from .pool import NodePool
from .traces import TraceJob

__all__ = [
    "ClusterConfig",
    "JobFailure",
    "JobOutcome",
    "ClusterReport",
    "ClusterSimulation",
]

#: Salt mixed into the infra RNG seed so the control-plane fault stream
#: is decorrelated from every per-node hardware injector stream.
_INFRA_SEED_SALT = 0xC1A5


@dataclass(frozen=True)
class ClusterConfig:
    """One campaign's cluster-side settings."""

    n_nodes: int = 8
    #: EAR configuration applied to every job (None = monitoring only:
    #: no EARL on the nodes, hence no policy and no cap actuation).
    ear_config: EarConfig | None = None
    #: energy-control service; None runs without a budget.
    eargm: EargmConfig | None = None
    eardbd: EardbdConfig = field(default_factory=EardbdConfig)
    #: conservative backfill on top of FCFS (off = pure FCFS).
    backfill: bool = True
    #: fault regime applied to every job's nodes (PR-2 fault plans);
    #: each job's injectors are seeded per (plan, job seed, node).
    fault_plan: FaultPlan | None = None
    #: record the cluster-scope telemetry stream (job_submit/start/end,
    #: eardbd_flush/drop, eargm_cap).
    telemetry: bool = False
    #: heterogeneous pool layout: ordered (generation, count) pairs
    #: naming :data:`repro.cluster.pool.GENERATIONS` entries.  None is
    #: the homogeneous cluster — the pre-mix scheduling path,
    #: bit-identical event for event.
    node_mix: tuple[tuple[str, int], ...] | None = None
    #: arm per-node telemetry inside every job's simulation engine (the
    #: mixed-cluster runs use it to surface per-die limit_write events).
    job_telemetry: bool = False
    #: EARGM power-cap market (see :mod:`repro.cluster.market`); None
    #: runs without one.  Monitoring-only campaigns (``ear_config is
    #: None``) never actuate caps — there is no EARL on the nodes to
    #: comply — so the market leaves them untouched.
    market: MarketConfig | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError("a cluster needs at least one node")
        if self.node_mix is not None:
            total = sum(count for _, count in self.node_mix)
            if total != self.n_nodes:
                raise ConfigError(
                    f"node mix totals {total} nodes but n_nodes is {self.n_nodes}"
                )


@dataclass(frozen=True)
class JobOutcome:
    """One scheduled job, start to finish."""

    index: int
    job_id: int
    workload: str
    n_nodes: int
    submit_s: float
    start_s: float
    end_s: float
    #: cluster node ids the job ran on.
    placement: tuple[int, ...]
    #: True when the job jumped the FCFS queue via backfill.
    backfilled: bool
    level_at_start: WarningLevel
    pstate_offset: int
    dc_energy_j: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float
    #: power-market grant at claim time (None without a market).
    granted_w: float | None = None
    #: uncore ladder steps the market asked this job to descend.
    market_imc_steps: int = 0
    #: CPU P-state offset the market added on top of EARGM's.
    market_pstate_offset: int = 0

    @property
    def wait_s(self) -> float:
        """Queue wait: start time minus submission time."""
        return self.start_s - self.submit_s

    @property
    def run_s(self) -> float:
        """Execution time: end time minus start time."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class JobFailure:
    """One job attempt the cluster gave up on.

    Either a node crash consumed the job's retry budget
    (``node_id >= 0``: the node that died under the final attempt), or
    the experiment pool quarantined the job's run as a poison job
    (``node_id == -1``).
    """

    index: int
    job_id: int
    workload: str
    n_nodes: int
    submit_s: float
    start_s: float
    fail_s: float
    #: crashed cluster node id, or -1 for a pool-quarantined run.
    node_id: int
    #: 1-based attempt number that failed terminally.
    attempt: int


@dataclass(frozen=True)
class ClusterReport:
    """What one campaign did, cluster-wide."""

    n_nodes: int
    policy: str
    jobs: tuple[JobOutcome, ...]
    makespan_s: float
    total_energy_j: float
    #: busy node-seconds / (n_nodes * makespan).
    utilisation: float
    mean_wait_s: float
    max_wait_s: float
    n_backfilled: int
    eardbd: EardbdStats
    #: budget bookkeeping (None without an EARGM).
    budget_j: float | None = None
    consumed_j: float | None = None
    final_level: WarningLevel | None = None
    #: number of cap (offset) changes EARGM actuated during the run.
    cap_changes: int = 0
    #: cluster-scope telemetry snapshot (node -1), if recorded.
    telemetry: NodeTelemetry | None = None
    #: jobs that terminally failed (crash retry budget exhausted or
    #: pool-quarantined); empty on the clean path.
    failures: tuple[JobFailure, ...] = ()
    #: crash-killed job attempts that were requeued.
    n_requeues: int = 0
    #: node-crash events injected by the infra fault channel.
    n_node_failures: int = 0
    #: power-market summary (None without a market).
    market: MarketStats | None = None

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the trace."""
        return len(self.jobs)

    def to_dict(self) -> dict:
        """JSON-friendly summary (per-job rows included)."""
        return {
            "n_nodes": self.n_nodes,
            "policy": self.policy,
            "n_jobs": self.n_jobs,
            "makespan_s": self.makespan_s,
            "total_energy_j": self.total_energy_j,
            "utilisation": self.utilisation,
            "mean_wait_s": self.mean_wait_s,
            "max_wait_s": self.max_wait_s,
            "n_backfilled": self.n_backfilled,
            "eardbd": {
                "received": self.eardbd.received,
                "forwarded": self.eardbd.forwarded,
                "dropped": self.eardbd.dropped,
                "flushes": self.eardbd.flushes,
                "restarts": self.eardbd.restarts,
                "replayed": self.eardbd.replayed,
            },
            "n_requeues": self.n_requeues,
            "n_node_failures": self.n_node_failures,
            "failures": [
                {
                    "index": f.index,
                    "job_id": f.job_id,
                    "workload": f.workload,
                    "n_nodes": f.n_nodes,
                    "submit_s": f.submit_s,
                    "start_s": f.start_s,
                    "fail_s": f.fail_s,
                    "node_id": f.node_id,
                    "attempt": f.attempt,
                }
                for f in self.failures
            ],
            "budget_j": self.budget_j,
            "consumed_j": self.consumed_j,
            "final_level": self.final_level.name if self.final_level else None,
            "cap_changes": self.cap_changes,
            "market": self.market.to_dict() if self.market else None,
            "jobs": [
                {
                    "index": j.index,
                    "job_id": j.job_id,
                    "workload": j.workload,
                    "n_nodes": j.n_nodes,
                    "submit_s": j.submit_s,
                    "start_s": j.start_s,
                    "end_s": j.end_s,
                    "wait_s": j.wait_s,
                    "placement": list(j.placement),
                    "backfilled": j.backfilled,
                    "level_at_start": j.level_at_start.name,
                    "pstate_offset": j.pstate_offset,
                    "dc_energy_j": j.dc_energy_j,
                    "avg_cpu_freq_ghz": j.avg_cpu_freq_ghz,
                    "avg_imc_freq_ghz": j.avg_imc_freq_ghz,
                    "granted_w": j.granted_w,
                    "market_imc_steps": j.market_imc_steps,
                    "market_pstate_offset": j.market_pstate_offset,
                }
                for j in self.jobs
            ],
        }


# -- internal bookkeeping -----------------------------------------------------


@dataclass
class _Queued:
    job: TraceJob


@dataclass
class _Starting:
    job: TraceJob
    job_id: int
    placement: tuple[int, ...]
    level: WarningLevel
    offset: int
    config: EarConfig | None
    backfilled: bool
    #: the power-market grant this job was claimed under, if any.
    grant: Grant | None = None


@dataclass
class _Running:
    start: _Starting
    start_s: float
    end_s: float
    result: RunResult
    #: set when a scheduled NODE_FAIL will kill this attempt before its
    #: JOB_FINISH event; the finish handler ignores killed attempts.
    killed: bool = False


class _FreeProfile:
    """Free-node count over future time, for reservation carving.

    A step function represented as breakpoints ``(time, avail)``; the
    last value extends to infinity.  ``earliest_fit`` finds the first
    time a demand fits for a duration; ``reserve`` carves it out.
    O(n^2) over breakpoints — traces are tens of jobs, not millions.
    """

    def __init__(self, now: float, avail: int, releases: list[tuple[float, int]]):
        points: dict[float, int] = {now: 0}
        for t, n in releases:
            points[max(t, now)] = points.get(max(t, now), 0) + n
        self._times = sorted(points)
        level = avail
        self._avail = []
        for t in self._times:
            level += points[t]
            self._avail.append(level)

    def _avail_at(self, t: float) -> int:
        avail = 0
        for bt, av in zip(self._times, self._avail):
            if bt <= t + 1e-12:
                avail = av
            else:
                break
        return avail

    def earliest_fit(self, need: int, duration: float) -> float:
        # candidate starts are profile breakpoints only: on a carved
        # (non-monotonic) profile that can be slightly pessimistic, but
        # never lets a backfill delay an earlier reservation.
        for start in self._times:
            window_end = start + duration
            ok = all(
                av >= need
                for bt, av in zip(self._times, self._avail)
                if start - 1e-12 <= bt < window_end - 1e-12
            ) and self._avail_at(start) >= need
            if ok:
                return start
        raise ExperimentError("reservation does not fit on any horizon")

    def reserve(self, start: float, duration: float, need: int) -> None:
        end = start + duration
        for t in (start, end):
            if t not in self._times:
                idx = len([bt for bt in self._times if bt < t])
                self._times.insert(idx, t)
                self._avail.insert(idx, self._avail[idx - 1] if idx > 0 else 0)
        for i, bt in enumerate(self._times):
            if start - 1e-12 <= bt < end - 1e-12:
                self._avail[i] -= need


# -- the simulation -----------------------------------------------------------


class ClusterSimulation:
    """Replay one trace on one cluster configuration.

    Two driving modes share one event loop:

    * **batch** (the default): :meth:`run` pushes the whole trace,
      drives the loop to completion and returns the report — the
      pre-service behaviour, bit-identical event for event.
    * **streaming** (``streaming=True``): the trace may start empty;
      :meth:`submit_job` admits jobs while the loop is live,
      :meth:`step`/:meth:`drain_events` advance it incrementally, and
      :meth:`harvest_outcomes`/:meth:`harvest_failures` drain finished
      work so a long-lived driver keeps memory bounded.  Aggregate
      statistics survive harvesting, so :meth:`finalize` still reports
      totals over everything the simulation ever ran.
    """

    def __init__(
        self,
        trace: tuple[TraceJob, ...],
        config: ClusterConfig,
        *,
        pool=None,
        accounting: AccountingDB | None = None,
        streaming: bool = False,
    ) -> None:
        from ..experiments.parallel import default_pool

        if not trace and not streaming:
            raise ConfigError("a campaign needs at least one job")
        self.config = config
        #: generation layout of a heterogeneous pool (None = homogeneous).
        self.node_pool = (
            NodePool(config.node_mix) if config.node_mix is not None else None
        )
        # a job must fit inside one generation: allocations never span
        # generations (one engine run models one node type).
        self._max_job_nodes = (
            self.node_pool.max_generation_size
            if self.node_pool is not None
            else config.n_nodes
        )
        for job in trace:
            self._check_job_fits(job)
        self.trace = tuple(trace)
        self.streaming = streaming
        self.config = config
        self.pool = pool if pool is not None else default_pool()
        self.accounting = accounting if accounting is not None else AccountingDB()
        self.clock = SimClock()
        self.telemetry: Recorder = (
            EventRecorder(node=-1, clock=lambda: self.clock.now)
            if config.telemetry
            else NULL_RECORDER
        )
        self.eargm = (
            Eargm(config.eargm, telemetry=self.telemetry)
            if config.eargm is not None
            else None
        )
        self.eardbd = Eardbd(self.accounting, config.eardbd, telemetry=self.telemetry)
        self.market = (
            PowerMarket(config.market, telemetry=self.telemetry)
            if config.market is not None
            else None
        )
        self._events = EventQueue()
        self._queue: deque[_Queued] = deque()
        self._free: set[int] = set(range(config.n_nodes))
        self._running: dict[int, _Running] = {}
        self._unarrived = 0
        self._last_eargm_report_s = 0.0
        self._last_offset = 0
        self._cap_changes = 0
        self._outcomes: list[JobOutcome] = []
        self._makespan_s = 0.0
        self._ran = False
        self._started = False
        self._finalized = False
        self._flush_armed = False
        # aggregates over *harvested* (drained) outcomes/failures, so
        # finalize() reports totals even after streaming drivers pull
        # finished work out of memory.  All start at additive/ordering
        # identities, keeping the batch path bit-identical.
        self._h_energy_j = 0.0
        self._h_busy_node_s = 0.0
        self._h_wait_sum_s = 0.0
        self._h_wait_max_s = 0.0
        self._h_jobs = 0
        self._h_backfilled = 0
        self._h_failures = 0
        # -- control-plane fault channel state (inert without a plan
        # carrying infra rates: no RNG is built, no draws happen, the
        # clean path stays bit-identical) --------------------------------
        plan = config.fault_plan
        self._infra_plan = plan if plan is not None and plan.infra_enabled else None
        self._infra_rng = (
            np.random.default_rng(
                np.random.SeedSequence([self._infra_plan.seed, _INFRA_SEED_SALT])
            )
            if self._infra_plan is not None
            else None
        )
        #: crashed node id -> absolute recovery time.
        self._rebooting: dict[int, float] = {}
        #: trace index -> crash-killed attempts so far.
        self._attempts: dict[int, int] = {}
        self._failures: list[JobFailure] = []
        self._n_requeues = 0
        self._n_node_failures = 0

    # -- public API ----------------------------------------------------------

    def run(self) -> ClusterReport:
        """Drive the event loop to completion; return the report."""
        if self._ran:
            raise ExperimentError("a ClusterSimulation runs once; build a fresh one")
        self._ran = True
        self.start()
        while self.step():
            pass
        return self.finalize()

    def start(self) -> None:
        """Prime the event loop: trace arrivals, then the first flush.

        Idempotent.  In streaming mode with an empty initial trace the
        EARDBD flush tick is armed lazily by the first
        :meth:`submit_job`, so an idle service does not advance the
        event clock while nothing runs.
        """
        if self._started:
            return
        self._started = True
        for job in self.trace:
            self._events.push(job.submit_s, EventKind.JOB_ARRIVAL, job)
            self._unarrived += 1
        if self.trace or not self.streaming:
            self._push_flush(self.config.eardbd.flush_interval_s)

    def step(self) -> bool:
        """Process exactly one event; False once the queue is empty."""
        if not self._started:
            self.start()
        if not self._events:
            return False
        event = self._events.pop()
        self.clock.advance(event.time_s)
        if event.kind is EventKind.JOB_ARRIVAL:
            self._on_arrival(event.payload)
        elif event.kind is EventKind.JOB_FINISH:
            self._on_finish(event.payload)
        elif event.kind is EventKind.NODE_FAIL:
            self._on_node_fail(event.payload)
        elif event.kind is EventKind.NODE_RECOVER:
            self._on_node_recover(event.payload)
        else:
            self._on_flush()
        return True

    def drain_events(self) -> int:
        """Step until the event queue is empty; return events processed."""
        n = 0
        while self.step():
            n += 1
        return n

    def finalize(self) -> ClusterReport:
        """Flush the EARDBD residue and build the final report.

        Runs once; the simulation accepts no further work afterwards.
        """
        if self._finalized:
            raise ExperimentError("a ClusterSimulation finalizes once")
        self._finalized = True
        if self.eardbd.pending:
            # final drain so nothing reported is lost at shutdown.
            self.eardbd.flush(time_s=self._makespan_s)
        return self._report()

    # -- streaming API --------------------------------------------------------

    def submit_job(self, job: TraceJob) -> TraceJob:
        """Admit one job while the event loop is live (streaming mode).

        A job whose ``submit_s`` lies in the simulation's past is
        admitted *now* (the event clock never runs backwards); the
        possibly re-timed job is returned.  Submissions that arrive
        before the clock passes their submit time replay exactly like a
        batch trace — same arrivals, same tie-breaking — which is what
        makes the service path bit-identical to the batch path.
        """
        if not self.streaming:
            raise ExperimentError("submit_job requires streaming=True")
        if self._finalized:
            raise ExperimentError("cannot submit to a finalized simulation")
        self._check_job_fits(job)
        if not self._started:
            self.start()
        if job.submit_s < self.clock.now:
            job = replace(job, submit_s=self.clock.now)
        self._events.push(job.submit_s, EventKind.JOB_ARRIVAL, job)
        self._unarrived += 1
        if not self._flush_armed:
            self._push_flush(self.clock.now + self.config.eardbd.flush_interval_s)
        return job

    def harvest_outcomes(self) -> tuple[JobOutcome, ...]:
        """Drain finished jobs, folding them into the report aggregates.

        Streaming drivers call this after every pump cycle so a
        long-lived simulation holds O(in-flight) state instead of the
        whole history; :meth:`finalize` still reports exact totals.
        """
        out = tuple(self._outcomes)
        self._outcomes.clear()
        for j in out:
            self._h_energy_j += j.dc_energy_j
            self._h_busy_node_s += j.run_s * j.n_nodes
            self._h_wait_sum_s += j.wait_s
            self._h_wait_max_s = max(self._h_wait_max_s, j.wait_s)
            self._h_jobs += 1
            if j.backfilled:
                self._h_backfilled += 1
        return out

    def harvest_failures(self) -> tuple[JobFailure, ...]:
        """Drain terminal job failures (streaming counterpart of outcomes)."""
        out = tuple(self._failures)
        self._failures.clear()
        self._h_failures += len(out)
        return out

    def drain_telemetry_events(self) -> tuple:
        """Drain buffered cluster-scope telemetry events (bounded memory).

        Counters/gauges/timers stay cumulative on the recorder; only the
        per-event backlog is handed over, ready for an event ring.
        """
        if not self.telemetry.enabled:
            return ()
        events = tuple(self.telemetry.events)
        self.telemetry.events.clear()
        return events

    @property
    def n_running(self) -> int:
        """Jobs currently executing on nodes."""
        return len(self._running)

    @property
    def n_queued(self) -> int:
        """Jobs waiting in the FCFS queue."""
        return len(self._queue)

    @property
    def n_pending_events(self) -> int:
        """Events still in the queue (arrivals, finishes, flush ticks)."""
        return len(self._events)

    @property
    def jobs_completed(self) -> int:
        """Total jobs finished so far (harvested + still buffered)."""
        return self._h_jobs + len(self._outcomes)

    @property
    def total_energy_j(self) -> float:
        """Total data-centre energy of all finished jobs so far."""
        return self._h_energy_j + sum(j.dc_energy_j for j in self._outcomes)

    def _push_flush(self, at_s: float) -> None:
        self._events.push(at_s, EventKind.EARDBD_FLUSH)
        self._flush_armed = True

    def _check_job_fits(self, job: TraceJob) -> None:
        if job.workload.n_nodes > self._max_job_nodes:
            where = (
                f"the largest generation has {self._max_job_nodes} nodes"
                if self.node_pool is not None
                else f"the cluster has {self.config.n_nodes}"
            )
            raise ConfigError(
                f"job {job.index} ({job.workload.name}) needs "
                f"{job.workload.n_nodes} nodes; {where}"
            )

    # -- event handlers ------------------------------------------------------

    def _on_arrival(self, job: TraceJob) -> None:
        self._unarrived -= 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "cluster",
                "job_submit",
                index=job.index,
                workload=job.workload.name,
                n_nodes=job.workload.n_nodes,
            )
        self._queue.append(_Queued(job))
        self._schedule_pass()

    def _on_finish(self, running: _Running) -> None:
        if running.killed:
            # a NODE_FAIL consumed this attempt before its scheduled
            # completion; the requeue/fail decision already happened.
            return
        now = self.clock.now
        start = running.start
        self._makespan_s = max(self._makespan_s, now)
        self._free.update(start.placement)
        del self._running[start.job_id]
        result = running.result
        if self.telemetry.enabled:
            self.telemetry.event(
                "cluster",
                "job_end",
                job_id=start.job_id,
                index=start.job.index,
                workload=start.job.workload.name,
                time_s_run=result.time_s,
                dc_energy_j=result.dc_energy_j,
            )
        self._report_accounting(running, now)
        self._report_eargm(result, now)
        if self.market is not None:
            # feed the measured node power back into the market's table
            # (the next bid for this workload uses it), then free the
            # job's watts for subsequent admissions.
            if result.time_s > 0:
                self.market.observe(
                    start.job.workload.name,
                    result.dc_energy_j / result.time_s / len(start.placement),
                )
            self.market.release(start.job_id)
        grant = start.grant
        self._outcomes.append(
            JobOutcome(
                index=start.job.index,
                job_id=start.job_id,
                workload=start.job.workload.name,
                n_nodes=start.job.workload.n_nodes,
                submit_s=start.job.submit_s,
                start_s=running.start_s,
                end_s=now,
                placement=start.placement,
                backfilled=start.backfilled,
                level_at_start=start.level,
                pstate_offset=start.offset,
                dc_energy_j=result.dc_energy_j,
                avg_cpu_freq_ghz=result.avg_cpu_freq_ghz,
                avg_imc_freq_ghz=result.avg_imc_freq_ghz,
                granted_w=grant.granted_w if grant is not None else None,
                market_imc_steps=grant.imc_steps if grant is not None else 0,
                market_pstate_offset=(
                    grant.pstate_offset if grant is not None else 0
                ),
            )
        )
        self._schedule_pass()

    def _on_node_fail(self, payload: tuple[_Running, int]) -> None:
        """A node died under a running job (infra fault channel).

        Surviving nodes free immediately; the victim reboots for
        ``node_reboot_s`` before rejoining the pool.  The killed
        attempt ships *nothing* to EARDBD/EARGM (its counters died with
        the node), so accounting reconciliation stays exact.  The job
        requeues at the head of the FCFS queue while its retry budget
        lasts, then is recorded as a terminal :class:`JobFailure`.
        """
        running, node_id = payload
        assert self._infra_plan is not None
        now = self.clock.now
        start = running.start
        running.killed = True
        del self._running[start.job_id]
        if self.market is not None:
            # the attempt's counters died with the node: release the
            # bid without feeding the power table.
            self.market.release(start.job_id)
        self._n_node_failures += 1
        self._makespan_s = max(self._makespan_s, now)
        self._free.update(n for n in start.placement if n != node_id)
        recover_at = now + self._infra_plan.node_reboot_s
        self._rebooting[node_id] = recover_at
        self._events.push(recover_at, EventKind.NODE_RECOVER, node_id)
        if self.telemetry.enabled:
            self.telemetry.event(
                "cluster",
                "node_fail",
                node_id=node_id,
                job_id=start.job_id,
                index=start.job.index,
                workload=start.job.workload.name,
                recover_s=recover_at,
            )
        attempt = self._attempts.get(start.job.index, 0) + 1
        self._attempts[start.job.index] = attempt
        if attempt <= self._infra_plan.job_max_retries:
            self._n_requeues += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "cluster",
                    "requeue",
                    index=start.job.index,
                    workload=start.job.workload.name,
                    attempt=attempt,
                )
            # head of the queue: a crash victim does not lose its FCFS
            # position to jobs that arrived after it started.
            self._queue.appendleft(_Queued(start.job))
        else:
            self._failures.append(
                JobFailure(
                    index=start.job.index,
                    job_id=start.job_id,
                    workload=start.job.workload.name,
                    n_nodes=start.job.workload.n_nodes,
                    submit_s=start.job.submit_s,
                    start_s=running.start_s,
                    fail_s=now,
                    node_id=node_id,
                    attempt=attempt,
                )
            )
            if self.telemetry.enabled:
                self.telemetry.event(
                    "cluster",
                    "job_fail",
                    index=start.job.index,
                    workload=start.job.workload.name,
                    attempt=attempt,
                )
        self._schedule_pass()

    def _on_node_recover(self, node_id: int) -> None:
        """A crashed node finished rebooting; it can host jobs again."""
        self._rebooting.pop(node_id, None)
        self._free.add(node_id)
        if self.telemetry.enabled:
            self.telemetry.event("cluster", "node_recover", node_id=node_id)
        self._schedule_pass()

    def _on_flush(self) -> None:
        self._flush_armed = False
        restart = (
            self._infra_plan is not None
            and self._infra_plan.eardbd_restart_rate > 0.0
            and self._infra_rng.random() < self._infra_plan.eardbd_restart_rate
        )
        if restart:
            # the daemon was down this tick: buffered reports replay
            # from its WAL, the flush is skipped, nothing is lost.
            self.eardbd.restart(time_s=self.clock.now)
        else:
            self.eardbd.flush(time_s=self.clock.now)
        if self.market is not None:
            # the flush tick is the EARGM interval: snapshot the market
            # (the conservation record the report and tests check).
            self.market.tick(self.clock.now)
        if self._unarrived or self._queue or self._running:
            self._push_flush(self.clock.now + self.config.eardbd.flush_interval_s)

    # -- accounting + control ------------------------------------------------

    def _report_accounting(self, running: _Running, now: float) -> None:
        start = running.start
        result = running.result
        cfg = start.config
        for local, node in enumerate(result.nodes):
            record = NodeJobRecord(
                node_id=start.placement[local],
                seconds=node.seconds if node.seconds > 0 else result.time_s,
                dc_energy_j=node.dc_energy_j,
                avg_cpu_freq_ghz=node.avg_cpu_freq_ghz,
                avg_imc_freq_ghz=node.avg_imc_freq_ghz,
            )
            self.eardbd.submit(
                NodeReport(
                    job_id=start.job_id,
                    workload=start.job.workload.name,
                    policy=cfg.policy if cfg is not None else "none",
                    cpu_policy_th=cfg.cpu_policy_th if cfg is not None else 0.0,
                    unc_policy_th=cfg.unc_policy_th if cfg is not None else 0.0,
                    node=record,
                ),
                time_s=now,
            )

    def _report_eargm(self, result: RunResult, now: float) -> None:
        if self.eargm is None:
            return
        # wall-clock delta, not the job's own duration: concurrent jobs
        # burn budget faster than serial ones, which is exactly the
        # pace signal EARGM grades.
        delta = max(0.0, now - self._last_eargm_report_s)
        self._last_eargm_report_s = now
        self.eargm.report(result.dc_energy_j, delta)
        offset = self.eargm.recommended_max_pstate_offset()
        if offset != self._last_offset:
            self._cap_changes += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "eargm",
                    "cap",
                    level=self.eargm.level().name,
                    pstate_offset=offset,
                    previous_offset=self._last_offset,
                )
            self._last_offset = offset

    # -- scheduling ----------------------------------------------------------

    def _schedule_pass(self) -> None:
        now = self.clock.now
        starters: list[_Starting] = []
        while self._queue and self._fits_now(self._queue[0].job):
            starters.append(self._claim(self._queue.popleft().job, backfilled=False))
        if self._queue and self.config.backfill:
            starters.extend(self._backfill_pass(now, starters))
        if starters:
            self._launch(starters, now)

    def _fits_now(self, job: TraceJob) -> bool:
        """Can the job start immediately on some (single) generation?"""
        need = job.workload.n_nodes
        if self.node_pool is None:
            return len(self._free) >= need
        return any(
            self._free_in(gen) >= need for gen in self.node_pool.generations
        )

    def _free_in(self, generation: str) -> int:
        ids = self.node_pool.node_ids(generation)
        return sum(1 for n in self._free if n in ids)

    def _backfill_pass(
        self, now: float, already_started: list[_Starting]
    ) -> list[_Starting]:
        """Conservative backfill: reserve for every queued job in order;
        start any whose earliest reservation is *now* (it then delays
        nobody ahead of it by construction)."""
        if self.node_pool is not None:
            return self._backfill_hetero(now, already_started)
        releases = [
            (run.end_s, len(run.start.placement)) for run in self._running.values()
        ]
        # jobs started in this very pass have no measured duration yet;
        # their walltime estimate stands in for the profile.
        releases += [
            (now + s.job.est_time_s, len(s.placement)) for s in already_started
        ]
        # crashed nodes rejoin the pool at their recovery times, so
        # reservations are recomputed against the post-reboot capacity.
        releases += [(recover_at, 1) for recover_at in self._rebooting.values()]
        profile = _FreeProfile(now, len(self._free), releases)
        started: list[_Starting] = []
        remaining: deque[_Queued] = deque()
        for queued in self._queue:
            job = queued.job
            need = job.workload.n_nodes
            at = profile.earliest_fit(need, job.est_time_s)
            profile.reserve(at, job.est_time_s, need)
            if at <= now + 1e-12 and need <= len(self._free):
                started.append(self._claim(job, backfilled=True))
            else:
                remaining.append(queued)
        self._queue = remaining
        return started

    def _backfill_hetero(
        self, now: float, already_started: list[_Starting]
    ) -> list[_Starting]:
        """Conservative backfill over a mixed pool: one free-node
        profile per generation (allocations never span generations);
        each queued job reserves on the generation whose earliest fit
        is soonest, mix order breaking ties."""
        pool = self.node_pool
        releases: dict[str, list[tuple[float, int]]] = {
            gen: [] for gen in pool.generations
        }
        for run in self._running.values():
            gen = pool.generation_of(run.start.placement[0])
            releases[gen].append((run.end_s, len(run.start.placement)))
        for s in already_started:
            gen = pool.generation_of(s.placement[0])
            releases[gen].append((now + s.job.est_time_s, len(s.placement)))
        for node_id, recover_at in self._rebooting.items():
            releases[pool.generation_of(node_id)].append((recover_at, 1))
        free_now = {gen: self._free_in(gen) for gen in pool.generations}
        profiles = {
            gen: _FreeProfile(now, free_now[gen], releases[gen])
            for gen in pool.generations
        }
        started: list[_Starting] = []
        remaining: deque[_Queued] = deque()
        for queued in self._queue:
            job = queued.job
            need = job.workload.n_nodes
            best_gen, best_at = None, float("inf")
            for gen in pool.generations:
                if need > len(pool.node_ids(gen)):
                    continue
                at = profiles[gen].earliest_fit(need, job.est_time_s)
                if at < best_at - 1e-12:
                    best_gen, best_at = gen, at
            assert best_gen is not None  # job width is pre-validated
            profiles[best_gen].reserve(best_at, job.est_time_s, need)
            if best_at <= now + 1e-12 and need <= free_now[best_gen]:
                started.append(
                    self._claim(job, backfilled=True, generation=best_gen)
                )
                free_now[best_gen] -= need
            else:
                remaining.append(queued)
        self._queue = remaining
        return started

    def _claim(
        self, job: TraceJob, *, backfilled: bool, generation: str | None = None
    ) -> _Starting:
        need = job.workload.n_nodes
        if self.node_pool is None:
            placement = tuple(sorted(self._free)[:need])
        else:
            # pick the requested generation, else the first in mix
            # order with capacity; retarget the workload to its silicon
            # so the engine builds the right node type and coefficient
            # resolution sees the right (node, backend) pair.
            gens = (
                (generation,)
                if generation is not None
                else self.node_pool.generations
            )
            placement = None
            for gen in gens:
                ids = self.node_pool.node_ids(gen)
                free = sorted(n for n in self._free if n in ids)
                if len(free) >= need:
                    placement = tuple(free[:need])
                    job = replace(
                        job,
                        workload=job.workload.retargeted(
                            self.node_pool.config(gen)
                        ),
                    )
                    break
            if placement is None:
                raise ExperimentError(
                    f"no generation can host job {job.index} right now"
                )
        self._free.difference_update(placement)
        if self.eargm is not None:
            level = self.eargm.level()
            offset = self.eargm.recommended_max_pstate_offset()
        else:
            level, offset = WarningLevel.OK, 0
        job_id = self.accounting.new_job_id()
        cfg = self.config.ear_config
        grant: Grant | None = None
        if cfg is not None:
            if self.market is not None:
                # the market's compliance ladder rides the same knobs
                # EARGM uses: an uncore cap folds into the config's
                # default IMC max, a residual P-state deficit folds
                # into the offset (the stricter of the two wins).
                grant = self.market.admit(
                    job_id, job.workload.name, job.workload.n_nodes
                )
                offset = max(offset, grant.pstate_offset)
                cfg = self._fold_grant(cfg, grant, job)
            cfg = replace(cfg, default_pstate_offset=offset)
        return _Starting(
            job=job,
            job_id=job_id,
            placement=placement,
            level=level,
            offset=offset,
            config=cfg,
            backfilled=backfilled,
            grant=grant,
        )

    def _fold_grant(
        self, cfg: EarConfig, grant: Grant, job: TraceJob
    ) -> EarConfig:
        """Translate a grant's uncore steps into this job's IMC cap.

        Steps descend from the node generation's silicon maximum in
        ``imc_step_ghz`` increments, floored at the silicon minimum —
        the same ladder the policy's own UFS selection walks.
        """
        if grant.imc_steps <= 0:
            return cfg
        node_cfg = job.workload.node_config
        silicon_max = ratio_to_ghz(node_cfg.uncore_max_ratio)
        silicon_min = ratio_to_ghz(node_cfg.uncore_min_ratio)
        cap = round(silicon_max - grant.imc_steps * cfg.imc_step_ghz, 10)
        return replace(cfg, default_imc_max_ghz=max(silicon_min, cap))

    def _launch(self, starters: list[_Starting], now: float) -> None:
        from ..experiments.parallel import RunRequest

        requests = [
            RunRequest(
                workload=s.job.workload,
                ear_config=s.config,
                seed=s.job.seed,
                fault_plan=self.config.fault_plan,
                telemetry=self.config.job_telemetry,
            )
            for s in starters
        ]
        results = self.pool.run_many(requests)
        quarantined = False
        for start, result in zip(starters, results):
            if isinstance(result, FailedRun):
                # the experiment pool gave up on this job's run (poison
                # job): record a terminal failure, free the claimed
                # nodes, ship nothing to accounting.
                quarantined = True
                self._makespan_s = max(self._makespan_s, now)
                self._free.update(start.placement)
                if self.market is not None:
                    self.market.release(start.job_id)
                self._failures.append(
                    JobFailure(
                        index=start.job.index,
                        job_id=start.job_id,
                        workload=start.job.workload.name,
                        n_nodes=start.job.workload.n_nodes,
                        submit_s=start.job.submit_s,
                        start_s=now,
                        fail_s=now,
                        node_id=-1,
                        attempt=result.n_attempts,
                    )
                )
                if self.telemetry.enabled:
                    self.telemetry.event(
                        "cluster",
                        "job_fail",
                        index=start.job.index,
                        workload=start.job.workload.name,
                        attempt=result.n_attempts,
                    )
                continue
            end = now + result.time_s
            running = _Running(start=start, start_s=now, end_s=end, result=result)
            self._running[start.job_id] = running
            self._events.push(end, EventKind.JOB_FINISH, running)
            self._maybe_schedule_crash(running, now)
            if self.telemetry.enabled:
                self.telemetry.event(
                    "cluster",
                    "job_start",
                    job_id=start.job_id,
                    index=start.job.index,
                    workload=start.job.workload.name,
                    nodes=",".join(str(n) for n in start.placement),
                    backfilled=start.backfilled,
                    pstate_offset=start.offset,
                )
        if quarantined and self._queue:
            # nodes freed by quarantined jobs can host queued work now,
            # and no future event is guaranteed to trigger a pass.
            self._schedule_pass()

    def _maybe_schedule_crash(self, running: _Running, now: float) -> None:
        """Draw the infra fault channel for one started attempt.

        One Bernoulli draw per attempt with success probability
        ``1 - (1 - rate)^n_nodes`` (any of the job's nodes may die); a
        firing crash picks a victim node and a uniform point inside the
        attempt's duration, and schedules the NODE_FAIL there.  Draw
        order follows launch order, so the schedule is deterministic
        for a given (trace, plan) pair.
        """
        plan = self._infra_plan
        if plan is None or plan.node_crash_rate <= 0.0:
            return
        placement = running.start.placement
        p_crash = 1.0 - (1.0 - plan.node_crash_rate) ** len(placement)
        if self._infra_rng.random() >= p_crash:
            return
        frac = self._infra_rng.uniform(0.05, 0.95)
        victim = placement[int(self._infra_rng.integers(0, len(placement)))]
        fail_at = now + frac * running.result.time_s
        self._events.push(fail_at, EventKind.NODE_FAIL, (running, victim))

    # -- reporting -----------------------------------------------------------

    def _report(self) -> ClusterReport:
        # The harvested aggregates are additive identities on the batch
        # path (nothing was drained), so every expression below reduces
        # bit-for-bit to the pre-streaming formula.
        outcomes = tuple(sorted(self._outcomes, key=lambda j: (j.start_s, j.index)))
        makespan = self._makespan_s
        busy = self._h_busy_node_s + sum(j.run_s * j.n_nodes for j in outcomes)
        waits = [j.wait_s for j in outcomes]
        n_jobs = self._h_jobs + len(waits)
        snapshot = self.telemetry.snapshot()
        return ClusterReport(
            n_nodes=self.config.n_nodes,
            policy=(
                self.config.ear_config.policy
                if self.config.ear_config is not None
                else "none"
            ),
            jobs=outcomes,
            makespan_s=makespan,
            total_energy_j=self._h_energy_j + sum(j.dc_energy_j for j in outcomes),
            utilisation=(
                busy / (self.config.n_nodes * makespan) if makespan > 0 else 0.0
            ),
            mean_wait_s=(
                (self._h_wait_sum_s + sum(waits)) / n_jobs if n_jobs else 0.0
            ),
            max_wait_s=max(self._h_wait_max_s, max(waits, default=0.0)),
            n_backfilled=self._h_backfilled + sum(1 for j in outcomes if j.backfilled),
            eardbd=self.eardbd.stats,
            budget_j=self.config.eargm.budget_j if self.config.eargm else None,
            consumed_j=self.eargm.consumed_j if self.eargm else None,
            final_level=self.eargm.level() if self.eargm else None,
            cap_changes=self._cap_changes,
            telemetry=snapshot,
            failures=tuple(
                sorted(self._failures, key=lambda f: (f.fail_s, f.index))
            ),
            n_requeues=self._n_requeues,
            n_node_failures=self._n_node_failures,
            market=self.market.stats() if self.market is not None else None,
        )
