"""Cluster-scale simulation: scheduler, EARDBD tier, EARGM actuation.

The paper frames EAR as three cluster-wide services — energy
accounting, energy control and energy optimisation.  The per-job
engine (:mod:`repro.sim`) exercises the optimisation service one job
at a time; this package adds the missing middle tier around it:

:mod:`repro.cluster.events`
    The discrete-event core: a simulated clock and a deterministic
    event queue (arrivals, completions, daemon flush ticks).

:mod:`repro.cluster.traces`
    Seeded synthetic job traces: arrival processes and workload/size
    mixes drawn from the workload generator registry.

:mod:`repro.cluster.eardbd`
    The EARDBD aggregation daemon: per-node accounting reports are
    batched in a bounded buffer and flushed to the shared
    :class:`~repro.ear.accounting.AccountingDB` on a configurable
    interval.  Overflow drops are counted, never silent.

:mod:`repro.cluster.scheduler`
    The cluster simulation itself: an FCFS + conservative-backfill
    scheduler over a node pool, job execution fanned out through the
    cache-aware :class:`~repro.experiments.parallel.ExperimentPool`,
    and the :class:`~repro.ear.eargm.Eargm` budget loop driven by the
    event clock so P-state caps propagate to jobs scheduled after each
    level change.

:mod:`repro.cluster.market`
    The EARGM power-cap market: jobs bid watts needed vs. watts
    saveable, the budget is redistributed each interval, and capped
    jobs comply by descending the uncore ladder before CPU P-states
    (see docs/POLICIES.md).

:mod:`repro.cluster.report`
    :class:`ClusterReport` rendering and the per-policy campaign
    comparison behind ``repro-ear cluster``.
"""

from .eardbd import Eardbd, EardbdConfig, EardbdStats, NodeReport
from .events import Event, EventKind, EventQueue, SimClock
from .market import (
    Bid,
    Grant,
    MarketConfig,
    MarketInterval,
    MarketStats,
    PowerMarket,
)
from .pool import GENERATIONS, NodePool, parse_node_mix
from .report import compare_cluster_policies, render_cluster_report, render_comparison
from .scheduler import ClusterConfig, ClusterReport, ClusterSimulation, JobOutcome
from .traces import TraceConfig, TraceJob, generate_trace, trace_workload_mix

__all__ = [
    "Bid",
    "ClusterConfig",
    "ClusterReport",
    "ClusterSimulation",
    "Eardbd",
    "Grant",
    "MarketConfig",
    "MarketInterval",
    "MarketStats",
    "PowerMarket",
    "EardbdConfig",
    "EardbdStats",
    "Event",
    "EventKind",
    "EventQueue",
    "GENERATIONS",
    "JobOutcome",
    "NodePool",
    "NodeReport",
    "parse_node_mix",
    "SimClock",
    "TraceConfig",
    "TraceJob",
    "compare_cluster_policies",
    "generate_trace",
    "render_cluster_report",
    "render_comparison",
    "trace_workload_mix",
]
