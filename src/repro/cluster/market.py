"""EARGM power-cap market: nodes bid for watts, caps are redistributed.

The PR-4 EARGM grades an *energy* budget and answers with a cluster-wide
P-state offset — one knob for everybody.  Under a hard **power** cap
(Cuttlefish-style operation, ROADMAP item 4) that is too blunt: the
cap-compliance cost of a watt differs per workload, and the uncore is
the cheap lever for most of them (the paper's core result).  This
module promotes the ``benchmarks/test_powercap.py`` what-if into a real
market inside the cluster simulation:

* **Bids.**  When a job is claimed, it bids ``needed_w`` — its expected
  node power times its node count — and declares ``floor_w``, the power
  it can *guarantee* by fully descending its compliance ladder
  (``max_imc_steps`` uncore steps, then ``max_pstate_offset`` CPU
  P-states).  The expectation comes from the market's measured-power
  table — the cluster-side analogue of the policy's per-region table —
  seeded with :attr:`MarketConfig.default_w_per_node` until the first
  finish of that workload is observed.

* **Redistribution.**  Every admit, release and EARDBD-flush tick
  reallocates the whole budget over the active bids, in one of three
  regimes (exact conservation in all three, pinned by
  tests/cluster/test_market.py):

  - slack (``Σneeded ≤ budget``): everyone gets what they asked for;
  - binding (``Σfloor ≤ budget < Σneeded``): everyone gets their floor
    plus a pro-rata share of the remainder,
    ``floor_i + (needed_i − floor_i) · (budget − Σfloor)/(Σneeded − Σfloor)``;
  - infeasible (``budget < Σfloor``): floors are squeezed
    proportionally, ``floor_i · budget/Σfloor`` — the market never
    grants more than the budget, even when compliance cannot
    physically reach it.

* **Compliance ladder.**  A job's per-node deficit
  ``(needed − granted)/n_nodes`` is paid in uncore steps first
  (``imc_step_w`` watts each, up to ``max_imc_steps``) and only the
  residual in P-states (``pstate_w`` watts each) — eUFS as the
  first-resort cap-compliance tool.  The scheduler folds the resulting
  ``(imc_steps, pstate_offset)`` into the job's
  :class:`~repro.ear.config.EarConfig` at claim time
  (``default_imc_max_ghz`` / ``default_pstate_offset``), so actuation
  rides the exact knobs EARGM already uses and no engine change (or
  run-cache version bump) is needed.

Grants are frozen at claim time (re-capping a running job would need
mid-run re-simulation); redistribution affects the *next* admission,
which is how interval-based EARGM reconfiguration behaves between
ticks.  See docs/POLICIES.md for the derivation and a worked example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..telemetry.recorder import NULL_RECORDER, Recorder

__all__ = [
    "MarketConfig",
    "Bid",
    "Grant",
    "MarketInterval",
    "MarketStats",
    "PowerMarket",
]


@dataclass(frozen=True)
class MarketConfig:
    """The power market's budget and compliance-ladder pricing."""

    #: cluster-wide power budget the grants must stay within, in watts.
    budget_w: float
    #: watts one uncore ladder step is worth, per node.  The default
    #: matches the paper's SD530 measurements (~0.5 GHz of uncore ≈
    #: 20 W, i.e. ~4 W per 0.1 GHz step).
    imc_step_w: float = 4.0
    #: uncore steps a job can be asked to descend (8 × 0.1 GHz spans
    #: the full Skylake 2.4→1.6 GHz useful range).
    max_imc_steps: int = 8
    #: watts one CPU P-state is worth, per node (the costlier lever).
    pstate_w: float = 12.0
    #: P-states a capped job can be pushed down after the uncore ladder
    #: is exhausted (mirrors EARGM's PANIC offset).
    max_pstate_offset: int = 3
    #: expected node power until a workload's first finish is measured.
    default_w_per_node: float = 400.0

    def __post_init__(self) -> None:
        if self.budget_w <= 0:
            raise ConfigError("the market budget must be positive watts")
        if self.imc_step_w <= 0 or self.pstate_w <= 0:
            raise ConfigError("ladder step prices must be positive watts")
        if self.max_imc_steps < 0 or self.max_pstate_offset < 0:
            raise ConfigError("ladder depths cannot be negative")

    @property
    def saveable_w_per_node(self) -> float:
        """Watts one node can shed by fully descending its ladder."""
        return (
            self.max_imc_steps * self.imc_step_w
            + self.max_pstate_offset * self.pstate_w
        )


@dataclass(frozen=True)
class Bid:
    """One active job's demand on the budget."""

    job_id: int
    workload: str
    n_nodes: int
    #: expected draw at full speed (est. W/node × nodes).
    needed_w: float
    #: guaranteed draw with the ladder fully descended.
    floor_w: float


@dataclass(frozen=True)
class Grant:
    """The market's answer to one bid."""

    job_id: int
    granted_w: float
    #: uncore ladder steps the job must descend to comply.
    imc_steps: int
    #: CPU P-state offset on top of the uncore steps.
    pstate_offset: int

    @property
    def capped(self) -> bool:
        """Did compliance require touching any knob?"""
        return self.imc_steps > 0 or self.pstate_offset > 0


@dataclass(frozen=True)
class MarketInterval:
    """One flush-tick snapshot of the market (the conservation record)."""

    time_s: float
    budget_w: float
    #: Σ needed over active bids.
    demand_w: float
    #: Σ granted over active grants — ≤ budget whenever any bid is live.
    granted_w: float
    n_jobs: int
    n_capped: int


@dataclass(frozen=True)
class MarketStats:
    """Whole-campaign market summary for the cluster report."""

    budget_w: float
    intervals: tuple[MarketInterval, ...]
    #: jobs that were admitted with a non-trivial compliance ladder.
    n_capped_jobs: int
    n_jobs: int
    #: highest Σ granted across all intervals (≤ budget, pinned).
    peak_granted_w: float = 0.0
    #: workload → last measured W/node (the learned power table).
    power_table: tuple[tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        """JSON-friendly view (per-interval rows included)."""
        return {
            "budget_w": self.budget_w,
            "n_jobs": self.n_jobs,
            "n_capped_jobs": self.n_capped_jobs,
            "peak_granted_w": self.peak_granted_w,
            "power_table": {name: w for name, w in self.power_table},
            "intervals": [
                {
                    "time_s": i.time_s,
                    "budget_w": i.budget_w,
                    "demand_w": i.demand_w,
                    "granted_w": i.granted_w,
                    "n_jobs": i.n_jobs,
                    "n_capped": i.n_capped,
                }
                for i in self.intervals
            ],
        }


@dataclass
class PowerMarket:
    """The EARGM-side market state: bids, grants, measured powers."""

    config: MarketConfig
    telemetry: Recorder = NULL_RECORDER
    _bids: dict[int, Bid] = field(default_factory=dict)
    _grants: dict[int, Grant] = field(default_factory=dict)
    #: workload name → last measured W/node (learned at job finishes).
    _power_w: dict[str, float] = field(default_factory=dict)
    _intervals: list[MarketInterval] = field(default_factory=list)
    _n_jobs: int = 0
    _n_capped: int = 0

    # -- the power table ------------------------------------------------------

    def estimate_w_per_node(self, workload: str) -> float:
        """Expected node power for one workload (table, else prior)."""
        return self._power_w.get(workload, self.config.default_w_per_node)

    def observe(self, workload: str, w_per_node: float) -> None:
        """Record a finished job's measured node power (last write wins:
        the freshest measurement reflects the current cap regime)."""
        if w_per_node > 0:
            self._power_w[workload] = w_per_node

    @property
    def power_table(self) -> dict[str, float]:
        """Copy of the learned workload → W/node table."""
        return dict(self._power_w)

    # -- bidding --------------------------------------------------------------

    def admit(self, job_id: int, workload: str, n_nodes: int) -> Grant:
        """Bid for one starting job; return its (frozen) grant.

        The whole budget is reallocated over the active bids *including
        the newcomer*, but only the newcomer's grant is returned and
        recorded — running jobs keep the caps they started with.  The
        newcomer's target share is additionally clamped to the headroom
        the frozen grants leave, so ``Σ live grants ≤ budget`` holds by
        induction at every instant (the tick invariant).
        """
        est = self.estimate_w_per_node(workload)
        needed = est * n_nodes
        floor = max(0.0, needed - self.config.saveable_w_per_node * n_nodes)
        bid = Bid(
            job_id=job_id,
            workload=workload,
            n_nodes=n_nodes,
            needed_w=needed,
            floor_w=floor,
        )
        self._bids[job_id] = bid
        headroom = self.config.budget_w - sum(
            g.granted_w for g in self._grants.values()
        )
        granted = min(self._allocate()[job_id], max(0.0, headroom))
        grant = self._comply(bid, granted)
        self._grants[job_id] = grant
        self._n_jobs += 1
        if grant.capped:
            self._n_capped += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "market",
                "grant",
                job_id=job_id,
                workload=workload,
                needed_w=needed,
                granted_w=grant.granted_w,
                imc_steps=grant.imc_steps,
                pstate_offset=grant.pstate_offset,
            )
        return grant

    def release(self, job_id: int) -> None:
        """Drop a finished (or failed) job's bid; its watts free up for
        the next admission."""
        self._bids.pop(job_id, None)
        self._grants.pop(job_id, None)

    def grant_for(self, job_id: int) -> Grant | None:
        """The live grant for one job (None once released)."""
        return self._grants.get(job_id)

    # -- allocation -----------------------------------------------------------

    def _allocate(self) -> dict[int, float]:
        """Split the budget over active bids (three exact regimes)."""
        budget = self.config.budget_w
        bids = self._bids
        total_needed = sum(b.needed_w for b in bids.values())
        if total_needed <= budget:
            return {jid: b.needed_w for jid, b in bids.items()}
        total_floor = sum(b.floor_w for b in bids.values())
        if total_floor <= budget:
            # pro-rata share of the headroom above the floors.
            share = (budget - total_floor) / (total_needed - total_floor)
            return {
                jid: b.floor_w + (b.needed_w - b.floor_w) * share
                for jid, b in bids.items()
            }
        # infeasible: squeeze the floors themselves, never over-grant.
        squeeze = budget / total_floor
        return {jid: b.floor_w * squeeze for jid, b in bids.items()}

    def _comply(self, bid: Bid, granted_w: float) -> Grant:
        """Turn a watt deficit into ladder positions, uncore first."""
        cfg = self.config
        deficit = max(0.0, (bid.needed_w - granted_w) / bid.n_nodes)
        if deficit <= 1e-9:
            return Grant(
                job_id=bid.job_id,
                granted_w=granted_w,
                imc_steps=0,
                pstate_offset=0,
            )
        imc_steps = min(
            cfg.max_imc_steps, math.ceil((deficit - 1e-9) / cfg.imc_step_w)
        )
        residual = deficit - imc_steps * cfg.imc_step_w
        offset = (
            min(cfg.max_pstate_offset, math.ceil((residual - 1e-9) / cfg.pstate_w))
            if residual > 1e-9
            else 0
        )
        return Grant(
            job_id=bid.job_id,
            granted_w=granted_w,
            imc_steps=imc_steps,
            pstate_offset=offset,
        )

    # -- the interval tick ----------------------------------------------------

    def tick(self, time_s: float) -> MarketInterval:
        """Snapshot the market at one EARDBD flush (the EARGM interval).

        The conservation invariant lives here: the recorded
        ``granted_w`` is the sum over *live* grants, which the
        allocator keeps ≤ budget whenever demand exceeds it.
        """
        granted = sum(g.granted_w for g in self._grants.values())
        demand = sum(b.needed_w for b in self._bids.values())
        interval = MarketInterval(
            time_s=time_s,
            budget_w=self.config.budget_w,
            demand_w=demand,
            granted_w=granted,
            n_jobs=len(self._bids),
            n_capped=sum(1 for g in self._grants.values() if g.capped),
        )
        self._intervals.append(interval)
        if self.telemetry.enabled:
            self.telemetry.event(
                "market",
                "interval",
                demand_w=demand,
                granted_w=granted,
                budget_w=self.config.budget_w,
                n_jobs=len(self._bids),
            )
        return interval

    def stats(self) -> MarketStats:
        """Whole-campaign summary for the cluster report."""
        intervals = tuple(self._intervals)
        return MarketStats(
            budget_w=self.config.budget_w,
            intervals=intervals,
            n_capped_jobs=self._n_capped,
            n_jobs=self._n_jobs,
            peak_granted_w=max((i.granted_w for i in intervals), default=0.0),
            power_table=tuple(sorted(self._power_w.items())),
        )
