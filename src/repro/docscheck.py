"""Docs-consistency checker: do documented commands actually parse?

Documentation rots in one specific, machine-checkable way: a
``repro-ear ...`` invocation quoted in the README or a guide stops
matching the real argparse tree (a flag is renamed, a subcommand grows
a required argument).  This module extracts every ``repro-ear``
invocation from a set of markdown files — fenced code blocks and
inline backtick spans — and smoke-parses each one against
:func:`repro.cli.build_parser`, without executing anything.

It also verifies that ``docs/CLI.md`` is byte-identical to the current
:func:`repro.cli.dump_docs` output, so the generated reference cannot
go stale, and (``--policies-doc``) that the policy reference documents
every registered policy: a new ``@register_policy`` name without a
``docs/POLICIES.md`` heading fails the build.

Run it the way CI does::

    python -m repro.docscheck --cli-doc docs/CLI.md \
        --policies-doc docs/POLICIES.md README.md docs/*.md
"""

from __future__ import annotations

import argparse
import contextlib
import io
import pathlib
import re
import shlex
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator

from .cli import build_parser, dump_docs

__all__ = [
    "Invocation",
    "Failure",
    "extract_invocations",
    "check_invocation",
    "check_files",
    "check_cli_doc",
    "check_policy_docs",
    "main",
]

#: inline code span holding a repro-ear command, e.g. `` `repro-ear list` ``.
_INLINE_RE = re.compile(r"`(repro-ear[^`]*)`")


@dataclass(frozen=True)
class Invocation:
    """One ``repro-ear`` command found in a documentation file."""

    path: str
    line: int
    command: str


@dataclass(frozen=True)
class Failure:
    """One documented command the real parser rejected."""

    invocation: Invocation
    error: str


def _clean(command: str) -> str:
    """Normalise a documented command line for parsing.

    Strips shell prompts and trailing comments, removes ``[optional]``
    display groups and ellipses, and substitutes ``<placeholder>``
    tokens with a literal so typed arguments still convert.
    """
    command = command.strip()
    command = re.sub(r"^\$\s*", "", command)
    command = re.sub(r"\s#\s.*$", "", command)
    command = re.sub(r"\[[^\]]*\]", "", command)
    command = re.sub(r"<[^>]+>", "1", command)
    # single-capital-letter placeholders, the `--jobs N` doc idiom
    command = re.sub(r"(?<=\s)[A-Z](?=\s|$)", "1", command)
    command = command.replace("...", " ").replace("…", " ")
    return " ".join(command.split())


def extract_invocations(text: str, path: str) -> Iterator[Invocation]:
    """All ``repro-ear`` invocations in one markdown document.

    Fenced code blocks are scanned line by line (with ``\\``
    continuations joined); prose lines contribute inline backtick
    spans.  Only commands *starting* with ``repro-ear`` count — a
    sentence merely mentioning the name is not an invocation.
    """
    in_fence = False
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        start = i
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            i += 1
            continue
        if in_fence:
            candidate = line.strip()
            candidate = re.sub(r"^\$\s*", "", candidate)
            if candidate.startswith("repro-ear"):
                while candidate.endswith("\\") and i + 1 < len(lines):
                    i += 1
                    candidate = candidate[:-1].rstrip() + " " + lines[i].strip()
                cleaned = _clean(candidate)
                if cleaned:
                    yield Invocation(path=path, line=start + 1, command=cleaned)
        else:
            for m in _INLINE_RE.finditer(line):
                cleaned = _clean(m.group(1))
                if cleaned.startswith("repro-ear"):
                    yield Invocation(path=path, line=start + 1, command=cleaned)
        i += 1


def _subcommands(parser: argparse.ArgumentParser) -> tuple[str, ...]:
    sub = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return tuple(sub.choices)


def check_invocation(
    invocation: Invocation, parser: argparse.ArgumentParser
) -> Failure | None:
    """Smoke-parse one documented command; None means it is valid.

    ``parse_args`` only runs argument conversion — the subcommand's
    handler is never called, so checking docs has no side effects.
    Bare references (``repro-ear`` alone, or ``repro-ear <sub>`` with
    no arguments — how prose names a subcommand) are checked for
    subcommand existence only, not for required arguments.
    """
    try:
        argv = shlex.split(invocation.command)[1:]
    except ValueError as exc:
        return Failure(invocation, f"unparseable shell syntax: {exc}")
    if argv == ["--dump-docs"]:
        return None  # handled before argparse by repro.cli.main
    if not argv:
        return None  # the program mentioned by name
    if len(argv) == 1 and not argv[0].startswith("-"):
        if argv[0] in _subcommands(parser):
            return None  # a subcommand mentioned by name
        return Failure(invocation, f"unknown subcommand {argv[0]!r}")
    stderr = io.StringIO()
    try:
        with contextlib.redirect_stderr(stderr):
            parser.parse_args(argv)
    except SystemExit as exc:
        if exc.code not in (0, None):
            message = stderr.getvalue().strip().splitlines()
            error = message[-1] if message else "parse error"
            # "required: command" is only reached after every global flag
            # parsed successfully — a flags-only illustration, not drift.
            if error.endswith("the following arguments are required: command"):
                return None
            return Failure(invocation, error)
    return None


def check_files(paths: Iterable[str | pathlib.Path]) -> tuple[list[Invocation], list[Failure]]:
    """Check every documented invocation in the given markdown files."""
    parser = build_parser()
    invocations: list[Invocation] = []
    failures: list[Failure] = []
    for path in paths:
        p = pathlib.Path(path)
        for inv in extract_invocations(p.read_text(), str(p)):
            invocations.append(inv)
            failure = check_invocation(inv, parser)
            if failure is not None:
                failures.append(failure)
    return invocations, failures


def check_cli_doc(path: str | pathlib.Path) -> str | None:
    """None when the generated CLI reference on disk is current."""
    p = pathlib.Path(path)
    if not p.exists():
        return f"{p}: missing; regenerate with `python -m repro.cli --dump-docs > {p}`"
    if p.read_text() != dump_docs():
        return (
            f"{p}: stale; regenerate with `python -m repro.cli --dump-docs > {p}`"
        )
    return None


def check_policy_docs(path: str | pathlib.Path) -> list[str]:
    """Which registered policies the policy reference fails to document.

    Every name in :func:`repro.ear.policies.available_policies` must
    appear backticked in a markdown heading of the given file (the
    ``## `min_energy` -- ...`` shape), so registering a policy without
    writing its section is a CI failure, not silent drift.  Returns
    one message per problem; empty means the doc is complete.
    """
    from .ear.policies import available_policies

    p = pathlib.Path(path)
    if not p.exists():
        return [f"{p}: missing; every registered policy needs a section here"]
    documented = {
        name
        for line in p.read_text().splitlines()
        if line.startswith("#")
        for name in re.findall(r"`([^`]+)`", line)
    }
    return [
        f"{p}: no heading documents policy `{name}`"
        for name in available_policies()
        if name not in documented
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.docscheck``."""
    parser = argparse.ArgumentParser(
        prog="repro-docscheck",
        description="verify documented repro-ear commands against the real CLI",
    )
    parser.add_argument("files", nargs="+", help="markdown files to scan")
    parser.add_argument(
        "--cli-doc",
        default=None,
        dest="cli_doc",
        help="also verify this generated CLI reference is up to date",
    )
    parser.add_argument(
        "--policies-doc",
        default=None,
        dest="policies_doc",
        help="also verify this policy reference has a heading for every "
        "registered policy name",
    )
    args = parser.parse_args(argv)

    invocations, failures = check_files(args.files)
    for f in failures:
        print(
            f"{f.invocation.path}:{f.invocation.line}: "
            f"`{f.invocation.command}` -- {f.error}",
            file=sys.stderr,
        )
    status = 0
    if failures:
        status = 1
    if args.cli_doc is not None:
        stale = check_cli_doc(args.cli_doc)
        if stale is not None:
            print(stale, file=sys.stderr)
            status = 1
    missing: list[str] = []
    if args.policies_doc is not None:
        missing = check_policy_docs(args.policies_doc)
        for message in missing:
            print(message, file=sys.stderr)
        if missing:
            status = 1
    print(
        f"docscheck: {len(invocations)} invocation(s) in {len(args.files)} file(s), "
        f"{len(failures)} failure(s)"
        + ("" if args.cli_doc is None else f", cli-doc {'ok' if not stale else 'STALE'}")
        + (
            ""
            if args.policies_doc is None
            else f", policies-doc {'ok' if not missing else 'INCOMPLETE'}"
        )
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
