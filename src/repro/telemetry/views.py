"""Human-readable timeline views over the telemetry event stream.

These renderers back the ``repro-ear telemetry`` subcommand: given any
run that carried telemetry (fresh or out of the run cache), they show
the policy's explicit-UFS descent and the hardening ladder's reactions
as annotated timelines — the figure-2 narrative and its failure-mode
counterpart, straight from the events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .recorder import TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.result import RunResult

__all__ = [
    "ladder_event_counts",
    "node_events",
    "render_degradation_ladder",
    "render_descent_timeline",
]

#: ladder-relevant (subsystem, kind) pairs, mildest to most severe.
_LADDER_KINDS = {
    ("faults", "meter_stall"),
    ("faults", "meter_dropout"),
    ("faults", "counter_corruption"),
    ("faults", "msr_failure"),
    ("faults", "rapl_wrap_storm"),
    ("faults", "throttle_start"),
    ("earl", "sample_rejected"),
    ("earl", "window_rejected"),
    ("earl", "window_stalled"),
    ("earl", "watchdog_trip"),
    ("earl", "watchdog_clear"),
    ("earl", "policy_disabled"),
    ("eard", "apply_failed"),
}

_DESCENT_KINDS = {
    ("policy", "stage"),
    ("policy", "cpu_select"),
    ("policy", "imc_step"),
    ("policy", "imc_guard"),
    ("policy", "phase_change"),
    ("earl", "decision"),
    ("earl", "validate_failed"),
}


def _check_node(result: "RunResult", node: int) -> None:
    if not 0 <= node < result.n_nodes:
        raise ValueError(
            f"node {node} out of range for a {result.n_nodes}-node run"
        )


def node_events(result: "RunResult", node: int) -> tuple[TelemetryEvent, ...]:
    """This node's event stream; raises if the run carried no telemetry."""
    _check_node(result, node)
    if not result.has_telemetry:
        raise ValueError(
            "run has no telemetry; execute it with telemetry=True "
            "(repro-ear telemetry re-runs cached requests as needed)"
        )
    return tuple(e for e in result.events if e.node == node)


def _fmt_payload(e: TelemetryEvent) -> str:
    parts = []
    for key, value in e.payload:
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _render(title: str, events: list[TelemetryEvent]) -> str:
    lines = [title]
    if not events:
        lines.append("  (no events)")
        return "\n".join(lines)
    for e in events:
        lines.append(
            f"  {e.time_s:9.1f}s  {e.subsystem:>7}/{e.kind:<18} {_fmt_payload(e)}".rstrip()
        )
    return "\n".join(lines)


def render_descent_timeline(result: "RunResult", *, node: int = 0) -> str:
    """Policy-descent timeline: stage transitions, CPU selection, every
    IMC step, guard trips and EARL decisions for one node."""
    events = [
        e for e in node_events(result, node) if (e.subsystem, e.kind) in _DESCENT_KINDS
    ]
    title = (
        f"{result.workload}: node {node} policy descent "
        f"(policy: {result.policy}, {len(events)} events)"
    )
    return _render(title, events)


def ladder_event_counts(result: "RunResult") -> tuple[tuple[str, int], ...]:
    """Degradation-ladder event tallies over *all* nodes of a run, as
    sorted ``("subsystem/kind", count)`` pairs — the aggregate view the
    resilience sweep reports per intensity point.  Empty for runs
    without telemetry (callers treat that as "not recorded", not as
    "no events")."""
    if not result.has_telemetry:
        return ()
    counts: dict[str, int] = {}
    for e in result.events:
        if (e.subsystem, e.kind) in _LADDER_KINDS:
            name = f"{e.subsystem}/{e.kind}"
            counts[name] = counts.get(name, 0) + 1
    return tuple(sorted(counts.items()))


def render_degradation_ladder(result: "RunResult", *, node: int = 0) -> str:
    """Degradation-ladder timeline: injected faults and every hardening
    reaction (rejections, stalls, watchdog, policy containment)."""
    all_events = node_events(result, node)
    events = [e for e in all_events if (e.subsystem, e.kind) in _LADDER_KINDS]
    title = (
        f"{result.workload}: node {node} degradation ladder "
        f"({len(events)} events)"
    )
    return _render(title, events)
