"""Structured, seed-deterministic run telemetry.

The observability spine of the simulated EAR stack: every subsystem
(engine, EARL, EARD, policies, EARGM, fault injector) emits typed
events, counters, gauges and timer observations through a
:class:`~repro.telemetry.recorder.Recorder`.  The default recorder is
the zero-cost :data:`~repro.telemetry.recorder.NULL_RECORDER`, so the
clean simulation path stays bit-identical when telemetry is off.

Layout
------

:mod:`repro.telemetry.recorder`
    The event model (:class:`TelemetryEvent`), the recorder API and the
    frozen per-node snapshot (:class:`NodeTelemetry`) that rides on
    :class:`~repro.sim.result.NodeResult` across process boundaries.
:mod:`repro.telemetry.exporters`
    JSONL event logs, Prometheus-style text metrics and per-stage
    timing summaries.
:mod:`repro.telemetry.stream`
    Bounded event rings, incremental metric aggregation and strict
    exposition-format validation for the persistent service tier.
:mod:`repro.telemetry.views`
    Human-readable policy-descent and degradation-ladder timelines
    (the ``repro-ear telemetry`` subcommand).
"""

from .exporters import (
    canonical_scalar,
    events_to_jsonl,
    metrics_to_prometheus,
    stage_timing_summary,
)
from .stream import (
    EventRing,
    MetricsAggregator,
    validate_exposition,
)
from .recorder import (
    NULL_RECORDER,
    EventRecorder,
    NodeTelemetry,
    NullRecorder,
    Recorder,
    TelemetryEvent,
)
from .views import (
    ladder_event_counts,
    node_events,
    render_degradation_ladder,
    render_descent_timeline,
)

__all__ = [
    "NULL_RECORDER",
    "EventRecorder",
    "EventRing",
    "MetricsAggregator",
    "NodeTelemetry",
    "NullRecorder",
    "Recorder",
    "TelemetryEvent",
    "canonical_scalar",
    "events_to_jsonl",
    "ladder_event_counts",
    "metrics_to_prometheus",
    "node_events",
    "render_degradation_ladder",
    "render_descent_timeline",
    "stage_timing_summary",
    "validate_exposition",
]
