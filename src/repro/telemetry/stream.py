"""Streaming telemetry: bounded buffers and incremental aggregation.

The batch exporters in :mod:`repro.telemetry.exporters` collect a whole
run and render once.  A persistent service cannot do that — events
arrive forever, so memory must stay bounded and metric state must be
mergeable incrementally.  Three pieces:

:class:`EventRing`
    A bounded ring of rendered JSONL event lines, the backing store for
    the service's ``/events`` tail endpoint.  Old events fall off the
    back; totals record how many were ever seen and dropped.
:class:`MetricsAggregator`
    Incremental, multi-source metric state rendered on demand into
    Prometheus text exposition format via the same deduplicating
    renderer the batch exporter uses.
:func:`validate_exposition`
    A strict exposition-format checker (one ``# TYPE`` per family,
    parseable samples, no duplicate series) used by the service tests
    and CI smoke to reject output a real scraper would reject.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Iterable, Mapping

from .exporters import event_to_json_line, render_metric_families
from .recorder import NodeTelemetry, TelemetryEvent

__all__ = ["EventRing", "MetricsAggregator", "validate_exposition"]


class EventRing:
    """Bounded buffer of rendered telemetry event lines.

    Events are rendered to canonical JSONL once on ingest (failing
    loudly on non-canonical payloads, same contract as the batch
    exporter) and kept in a fixed-size ring so a service that streams
    millions of events holds only the most recent ``capacity`` lines.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._lines: deque[str] = deque(maxlen=capacity)
        self._total = 0

    def extend(self, events: Iterable[TelemetryEvent]) -> int:
        """Ingest events (rendering each to a JSONL line); return count."""
        n = 0
        for event in events:
            self._lines.append(event_to_json_line(event))
            n += 1
        self._total += n
        return n

    def tail(self, n: int | None = None) -> list[str]:
        """The most recent ``n`` rendered lines (all retained if None)."""
        if n is None or n >= len(self._lines):
            return list(self._lines)
        if n <= 0:
            return []
        return list(self._lines)[-n:]

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def total_seen(self) -> int:
        """How many events were ever ingested (including dropped ones)."""
        return self._total

    @property
    def dropped(self) -> int:
        """How many events have fallen off the back of the ring."""
        return self._total - len(self._lines)


class MetricsAggregator:
    """Incremental metric state for a continuously scraped endpoint.

    Metric state arrives from two directions: whole
    :class:`NodeTelemetry` snapshots (each *replaces* that source's
    previous contribution — recorder counters are cumulative, so adding
    them would double-count) and direct service-level gauges/counters
    set by the control tier itself.  ``render()`` merges everything
    into exposition text through the same deduplicating renderer as the
    batch exporter, so the stream and batch outputs obey the identical
    format contract.
    """

    def __init__(self, *, prefix: str = "repro") -> None:
        self.prefix = prefix
        # source -> {(name, node): value} replaced wholesale per update
        self._src_counters: dict[str, dict[tuple[str, int], float]] = {}
        self._src_gauges: dict[str, dict[tuple[str, int], float]] = {}
        self._src_timers: dict[str, dict[tuple[str, int], tuple[int, float]]] = {}
        # service-level series, label string -> value
        self._gauges: dict[str, dict[str, float]] = {}
        self._counters: dict[str, dict[str, float]] = {}

    def update_source(self, source: str, snapshots: Iterable[NodeTelemetry]) -> None:
        """Replace ``source``'s contribution with fresh snapshots.

        Recorder state is cumulative, so each update supersedes the
        previous one for the same source — the aggregator never grows
        beyond (sources x metric names x nodes).
        """
        counters: dict[tuple[str, int], float] = {}
        gauges: dict[tuple[str, int], float] = {}
        timers: dict[tuple[str, int], tuple[int, float]] = {}
        for t in snapshots:
            for name, value in t.counters:
                counters[(name, t.node)] = value
            for name, value in t.gauges:
                gauges[(name, t.node)] = value
            for name, count, total in t.timers:
                timers[(name, t.node)] = (count, total)
        self._src_counters[source] = counters
        self._src_gauges[source] = gauges
        self._src_timers[source] = timers

    def set_gauge(self, name: str, value: float, *, labels: str = "") -> None:
        """Set a service-level gauge sample (labels rendered verbatim)."""
        self._gauges.setdefault(name, {})[labels] = float(value)

    def set_counter(self, name: str, value: float, *, labels: str = "") -> None:
        """Set a service-level cumulative counter sample."""
        self._counters.setdefault(name, {})[labels] = float(value)

    def render(self) -> str:
        """Current state as Prometheus text exposition format."""
        counters: dict[str, list[tuple[str, float]]] = {}
        gauges: dict[str, list[tuple[str, float]]] = {}
        timer_counts: dict[str, list[tuple[str, float]]] = {}
        timer_totals: dict[str, list[tuple[str, float]]] = {}
        for per_source, bucket in (
            (self._src_counters, counters),
            (self._src_gauges, gauges),
        ):
            merged: dict[tuple[str, int], float] = {}
            for source in sorted(per_source):
                for (name, node), value in per_source[source].items():
                    merged[(name, node)] = merged.get((name, node), 0.0) + value
            for (name, node), value in sorted(merged.items()):
                bucket.setdefault(name, []).append((f'node="{node}"', value))
        merged_timers: dict[tuple[str, int], tuple[int, float]] = {}
        for source in sorted(self._src_timers):
            for (name, node), (count, total) in self._src_timers[source].items():
                prev = merged_timers.get((name, node), (0, 0.0))
                merged_timers[(name, node)] = (prev[0] + count, prev[1] + total)
        for (name, node), (count, total) in sorted(merged_timers.items()):
            timer_counts.setdefault(name, []).append((f'node="{node}"', float(count)))
            timer_totals.setdefault(name, []).append((f'node="{node}"', total))
        for name, samples in self._counters.items():
            counters.setdefault(name, []).extend(sorted(samples.items()))
        for name, samples in self._gauges.items():
            gauges.setdefault(name, []).extend(sorted(samples.items()))

        families: list[tuple[str, str, list[tuple[str, float]]]] = []
        for name in sorted(counters):
            families.append((f"{self.prefix}_{name}", "counter", counters[name]))
        for name in sorted(gauges):
            families.append((f"{self.prefix}_{name}", "gauge", gauges[name]))
        for name in sorted(timer_counts):
            families.append(
                (f"{self.prefix}_{name}_count", "counter", timer_counts[name])
            )
            families.append(
                (f"{self.prefix}_{name}_seconds_total", "counter", timer_totals[name])
            )
        return render_metric_families(families)

    def series_count(self) -> int:
        """How many distinct series the aggregator currently holds."""
        n = sum(len(d) for d in self._src_counters.values())
        n += sum(len(d) for d in self._src_gauges.values())
        n += sum(len(d) for d in self._src_timers.values())
        n += sum(len(d) for d in self._gauges.values())
        n += sum(len(d) for d in self._counters.values())
        return n


# -- strict exposition-format checking ----------------------------------------

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_SPECIAL_VALUES = {"NaN", "+Inf", "-Inf", "Inf"}


def _check_sample(line: str, types: Mapping[str, str]) -> tuple[str, str]:
    """Validate one sample line; return its (family, labelset) identity."""
    m = _SAMPLE_RE.match(line)
    if m is None:
        raise ValueError(f"unparseable sample line: {line!r}")
    name = m.group("name")
    family = name
    if family not in types:
        # summary/timer-style derived names attach to their base family
        raise ValueError(f"sample {name!r} has no preceding # TYPE declaration")
    labels = m.group("labels") or ""
    if labels:
        for pair in labels.split(","):
            if not _LABEL_RE.match(pair):
                raise ValueError(f"bad label pair {pair!r} in line {line!r}")
    value = m.group("value")
    if value not in _SPECIAL_VALUES:
        try:
            float(value)
        except ValueError:
            raise ValueError(f"bad sample value {value!r} in line {line!r}") from None
    return name, labels


def validate_exposition(text: str) -> dict[str, str]:
    """Strictly check Prometheus text exposition format.

    Enforces what a strict scraper enforces — and what this repo's
    exporters promise:

    - every non-comment line parses as ``name[{labels}] value [ts]``;
    - each ``# TYPE`` names a valid family with a known kind and
      appears at most once per family, before that family's samples;
    - every sample belongs to a declared family (our exporters always
      declare); and
    - no duplicate ``(family, labelset)`` series.

    Returns the ``{family: kind}`` mapping on success; raises
    ``ValueError`` describing the first violation.
    """
    types: dict[str, str] = {}
    seen_series: set[tuple[str, str]] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            _, _, family, kind = parts
            if not _NAME_RE.match(family):
                raise ValueError(f"line {lineno}: bad family name {family!r}")
            if kind not in {"counter", "gauge", "histogram", "summary", "untyped"}:
                raise ValueError(f"line {lineno}: bad metric kind {kind!r}")
            if family in types:
                raise ValueError(
                    f"line {lineno}: duplicate # TYPE for family {family!r}"
                )
            types[family] = kind
            continue
        if line.startswith("#"):  # HELP or comment: tolerated
            continue
        try:
            series = _check_sample(line, types)
        except ValueError as err:
            raise ValueError(f"line {lineno}: {err}") from None
        if series in seen_series:
            raise ValueError(
                f"line {lineno}: duplicate series {series[0]!r}{{{series[1]}}}"
            )
        seen_series.add(series)
    return types
