"""The telemetry event model and recorder API.

Three layers:

:class:`TelemetryEvent`
    One typed occurrence: ``(node, time_s, subsystem, kind, payload)``.
    The payload is a tuple of sorted ``(key, value)`` pairs — plain,
    hashable, picklable data — so events compare structurally and ride
    through the experiment pool's process boundary unchanged.

:class:`Recorder` / :class:`NullRecorder` / :class:`EventRecorder`
    The emit API.  Subsystems hold a recorder and call
    ``event``/``counter``/``gauge``/``observe``; the null recorder is a
    no-op singleton (:data:`NULL_RECORDER`) so instrumentation costs
    nothing when telemetry is off.  Hot per-iteration sites should
    additionally guard on :attr:`Recorder.enabled` to skip building the
    keyword payload.

:class:`NodeTelemetry`
    The frozen end-of-run snapshot of one node's recorder, attached to
    :class:`~repro.sim.result.NodeResult`.  All mappings are stored as
    sorted tuples so two identically seeded runs produce structurally
    equal (``==``) telemetry.

Determinism: recorders take their timestamps from an injected clock
(simulated node time), never the wall clock, and draw no randomness —
the same seed yields the identical event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

__all__ = [
    "TelemetryEvent",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "EventRecorder",
    "NodeTelemetry",
]

#: Payload values are restricted to plain scalars so every event is
#: JSON-serialisable and picklable without custom hooks.
Scalar = float | int | str | bool | None


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed occurrence inside a run."""

    node: int
    time_s: float
    subsystem: str
    kind: str
    #: sorted ``(key, value)`` pairs; see :attr:`payload_dict`.
    payload: tuple[tuple[str, Scalar], ...] = ()

    @property
    def payload_dict(self) -> dict[str, Scalar]:
        """The payload as a plain dict."""
        return dict(self.payload)

    def to_dict(self) -> dict:
        """Flat JSON-friendly view (payload keys inlined)."""
        out: dict = {
            "time_s": self.time_s,
            "node": self.node,
            "subsystem": self.subsystem,
            "kind": self.kind,
        }
        out.update(self.payload)
        return out


def _freeze_payload(payload: Mapping[str, Scalar]) -> tuple[tuple[str, Scalar], ...]:
    return tuple(sorted(payload.items()))


class Recorder:
    """No-op recorder base; doubles as the null implementation.

    ``enabled`` lets hot paths skip keyword-dict construction entirely:

    >>> if recorder.enabled:
    ...     recorder.event("earl", "sample_rejected")
    """

    enabled: bool = False

    def event(
        self, subsystem: str, kind: str, *, time_s: float | None = None, **payload: Scalar
    ) -> None:
        """Record one typed event (no-op here)."""

    def counter(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter (no-op here)."""

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (no-op here)."""

    def observe(self, name: str, seconds: float) -> None:
        """Add one timer observation (no-op here)."""

    def snapshot(self) -> "NodeTelemetry | None":
        """Frozen end-of-run view; ``None`` for the null recorder."""
        return None


class NullRecorder(Recorder):
    """Explicit alias for readability at call sites."""


#: Shared zero-cost default; safe because it holds no state.
NULL_RECORDER = NullRecorder()


@dataclass(frozen=True)
class NodeTelemetry:
    """Frozen telemetry of one node, serialised into the run result."""

    node: int
    events: tuple[TelemetryEvent, ...] = ()
    #: monotonic counters, sorted by name.
    counters: tuple[tuple[str, float], ...] = ()
    #: last-write-wins gauges, sorted by name.
    gauges: tuple[tuple[str, float], ...] = ()
    #: timers as ``(name, count, total_seconds)``, sorted by name.
    timers: tuple[tuple[str, int, float], ...] = ()

    @property
    def counters_dict(self) -> dict[str, float]:
        """The counters as a plain dict."""
        return dict(self.counters)

    @property
    def gauges_dict(self) -> dict[str, float]:
        """The gauges as a plain dict."""
        return dict(self.gauges)

    @property
    def timers_dict(self) -> dict[str, tuple[int, float]]:
        """Timers as ``name -> (count, total_seconds)``."""
        return {name: (count, total) for name, count, total in self.timers}


class EventRecorder(Recorder):
    """Collecting recorder for one node of one run.

    Parameters
    ----------
    node:
        Node id stamped on every event (convention: ``-1`` for
        cluster-scope emitters such as EARGM).
    clock:
        Zero-argument callable returning the current *simulated* time;
        bound to ``node.elapsed_s`` by the engine.  Callers may override
        per event with ``time_s=``.
    """

    enabled = True

    def __init__(self, *, node: int, clock: Callable[[], float] | None = None) -> None:
        self.node = node
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.events: list[TelemetryEvent] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list] = {}

    def event(
        self, subsystem: str, kind: str, *, time_s: float | None = None, **payload: Scalar
    ) -> None:
        """Record one typed event, stamped with the node clock."""
        self.events.append(
            TelemetryEvent(
                node=self.node,
                time_s=self._clock() if time_s is None else time_s,
                subsystem=subsystem,
                kind=kind,
                payload=_freeze_payload(payload),
            )
        )

    def counter(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Add one duration sample to a timer."""
        cell = self._timers.get(name)
        if cell is None:
            self._timers[name] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    def snapshot(self) -> NodeTelemetry:
        """Freeze this recorder into an immutable NodeTelemetry."""
        return NodeTelemetry(
            node=self.node,
            events=tuple(self.events),
            counters=tuple(sorted(self._counters.items())),
            gauges=tuple(sorted(self._gauges.items())),
            timers=tuple(
                (name, count, total)
                for name, (count, total) in sorted(self._timers.items())
            ),
        )


def merge_events(
    telemetries: Iterable[NodeTelemetry],
) -> tuple[TelemetryEvent, ...]:
    """Interleave per-node event streams into one timeline.

    Stable sort on ``(time_s, node)``: each node's stream is already
    time-ordered, so the merged order is deterministic.
    """
    events: list[TelemetryEvent] = []
    for t in telemetries:
        events.extend(t.events)
    events.sort(key=lambda e: (e.time_s, e.node))
    return tuple(events)
