"""Telemetry exporters: JSONL event logs, Prometheus text metrics and
per-stage timing summaries.

All exporters accept either a :class:`~repro.sim.result.RunResult`
(whose nodes carry :class:`~repro.telemetry.recorder.NodeTelemetry`
snapshots) or the raw snapshots/events, so they work on anything the
run cache returns.  Output is deterministic: metric families and labels
are emitted in sorted order, events in timeline order.

Two contracts matter for *streaming* consumers (the service tier
scrapes these continuously):

- JSONL payload values are canonicalized to JSON-native scalars (enum
  members export their ``name``, numpy scalars their Python value) and
  anything else fails loudly instead of degrading to an opaque
  ``repr`` string.
- Prometheus family names are deduplicated *after* sanitization, so
  two distinct raw names that sanitize identically (``earl.window`` vs
  ``earl/window``) get distinct final names and each ``# TYPE`` line is
  emitted exactly once — a strict scraper rejects duplicates.  Sample
  values are formatted at full precision (shortest round-trip form),
  not the 6-significant-digit ``%g``.
"""

from __future__ import annotations

import enum
import json
import math
import re
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .recorder import NodeTelemetry, TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.result import RunResult

__all__ = [
    "canonical_scalar",
    "events_to_jsonl",
    "event_to_json_line",
    "format_metric_value",
    "assign_metric_names",
    "render_metric_families",
    "metrics_to_prometheus",
    "stage_timing_summary",
]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _telemetries(source) -> list[NodeTelemetry]:
    """Accept a RunResult, an iterable of NodeTelemetry, or one snapshot."""
    if isinstance(source, NodeTelemetry):
        return [source]
    nodes = getattr(source, "nodes", None)
    if nodes is not None:  # RunResult
        return [n.telemetry for n in nodes if n.telemetry is not None]
    return [t for t in source if t is not None]


def _events(source) -> tuple[TelemetryEvent, ...]:
    events = getattr(source, "events", None)
    if events is not None and not isinstance(source, NodeTelemetry):
        return tuple(events)  # RunResult.events (already merged)
    from .recorder import merge_events

    return merge_events(_telemetries(source))


# -- JSONL event log ----------------------------------------------------------


def canonical_scalar(value):
    """Coerce one telemetry payload value to a JSON-native scalar.

    Enum members export their ``name``; numpy scalars their Python
    value.  Anything that is not JSON-native after that raises
    ``TypeError`` — downstream consumers are typed and an opaque
    ``repr`` string would silently break them.
    """
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.generic):
        item = value.item()
        if isinstance(item, (bool, int, float, str)):
            return item
    raise TypeError(
        f"telemetry payload value {value!r} ({type(value).__name__}) "
        "is not a JSON-canonical scalar"
    )


def event_to_json_line(event: TelemetryEvent) -> str:
    """One event as a compact JSON object with canonical scalar values."""
    raw = event.to_dict()
    try:
        clean = {key: canonical_scalar(value) for key, value in raw.items()}
    except TypeError as err:
        raise TypeError(
            f"event {event.subsystem}/{event.kind} at t={event.time_s}: {err}"
        ) from err
    return json.dumps(clean, separators=(",", ":"))


def events_to_jsonl(source) -> str:
    """One compact JSON object per event, in timeline order.

    The flat layout (payload keys inlined next to ``time_s``/``node``/
    ``subsystem``/``kind``) grep-s and loads line-by-line — the shape
    every structured-log pipeline expects.  Payload values are
    canonicalized (see :func:`canonical_scalar`); a non-canonical value
    raises instead of serializing as an opaque repr string.
    """
    lines = [event_to_json_line(e) for e in _events(source)]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus-style text metrics -------------------------------------------


def format_metric_value(value: float) -> str:
    """Full-precision exposition value: shortest round-trip float form.

    ``%g`` keeps only 6 significant digits, which silently truncates
    large joule counters between scrapes; ``repr`` of a float is the
    shortest string that parses back to the same double.  Non-finite
    values use the exposition-format spellings.
    """
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def assign_metric_names(raw_names: Sequence[str]) -> dict[str, str]:
    """Map raw family names to unique sanitized exposition names.

    Sanitization replaces every non ``[a-zA-Z0-9_]`` character with
    ``_``, which can collapse distinct raw names onto one final name.
    Collisions get deterministic numeric suffixes (``_2``, ``_3``, ...)
    in the order the raw names are supplied, so callers that supply a
    sorted sequence get a stable mapping across exports.
    """
    assigned: dict[str, str] = {}
    used: set[str] = set()
    for raw in raw_names:
        if raw in assigned:
            continue
        base = _METRIC_NAME_RE.sub("_", raw)
        candidate = base
        n = 1
        while candidate in used:
            n += 1
            candidate = f"{base}_{n}"
        assigned[raw] = candidate
        used.add(candidate)
    return assigned


def render_metric_families(
    families: Sequence[tuple[str, str, Sequence[tuple[str, float]]]],
) -> str:
    """Render ``(raw_name, kind, [(labels, value), ...])`` families.

    Emits exactly one ``# TYPE`` line per family (names deduplicated
    post-sanitization via :func:`assign_metric_names`), samples in the
    order supplied by the caller, values at full precision.  ``labels``
    is the rendered label set without braces (e.g. ``node="0"``) or
    ``""``.
    """
    names = assign_metric_names([raw for raw, _, _ in families])
    out: list[str] = []
    for raw, kind, samples in families:
        name = names[raw]
        out.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            label_part = f"{{{labels}}}" if labels else ""
            out.append(f"{name}{label_part} {format_metric_value(value)}")
    return "\n".join(out) + ("\n" if out else "")


def metrics_to_prometheus(source, *, prefix: str = "repro") -> str:
    """Counters, gauges and timers in Prometheus text exposition format.

    Timers expand into ``*_count`` and ``*_seconds_total`` pairs, the
    conventional summary encoding.  Every sample is labelled with its
    node id.  The output is exposition-valid: one ``# TYPE`` per final
    family name even when distinct raw names sanitize identically.
    """
    telemetries = _telemetries(source)
    counters: dict[str, list[tuple[int, float]]] = {}
    gauges: dict[str, list[tuple[int, float]]] = {}
    timers: dict[str, list[tuple[int, int, float]]] = {}
    for t in telemetries:
        for name, value in t.counters:
            counters.setdefault(name, []).append((t.node, value))
        for name, value in t.gauges:
            gauges.setdefault(name, []).append((t.node, value))
        for name, count, total in t.timers:
            timers.setdefault(name, []).append((t.node, count, total))

    def node_samples(samples: Iterable[tuple[int, float]]) -> list[tuple[str, float]]:
        return [(f'node="{node}"', value) for node, value in sorted(samples)]

    families: list[tuple[str, str, list[tuple[str, float]]]] = []
    for name in sorted(counters):
        families.append((f"{prefix}_{name}", "counter", node_samples(counters[name])))
    for name in sorted(gauges):
        families.append((f"{prefix}_{name}", "gauge", node_samples(gauges[name])))
    for name in sorted(timers):
        families.append(
            (
                f"{prefix}_{name}_count",
                "counter",
                node_samples((n, float(c)) for n, c, _ in timers[name]),
            )
        )
        families.append(
            (
                f"{prefix}_{name}_seconds_total",
                "counter",
                node_samples((n, s) for n, _, s in timers[name]),
            )
        )
    return render_metric_families(families)


# -- per-stage timing summary -------------------------------------------------


def _stage_spans(
    events: Sequence[TelemetryEvent], end_s: float
) -> Iterable[tuple[int, str, float]]:
    """Durations of policy stages per node, from ``policy/stage`` events."""
    open_stage: dict[int, tuple[str, float]] = {}
    for e in events:
        if e.subsystem != "policy" or e.kind != "stage":
            continue
        prev = open_stage.get(e.node)
        if prev is not None:
            yield e.node, prev[0], max(0.0, e.time_s - prev[1])
        open_stage[e.node] = (str(e.payload_dict.get("stage")), e.time_s)
    for node, (stage, since) in open_stage.items():
        yield node, stage, max(0.0, end_s - since)


def stage_timing_summary(source, *, end_s: float | None = None) -> list[dict]:
    """Rows of ``{node, name, count, total_s, mean_s}``.

    Two families: recorder timers (``engine.iteration_s``,
    ``earl.window_s``, ...) and policy-stage spans derived from the
    ``policy/stage`` transition events (``stage.IMC_FREQ_SEL``, ...),
    so the figure-2 state machine's time budget is visible per node.
    """
    telemetries = _telemetries(source)
    events = _events(source)
    if end_s is None:
        end_s = getattr(source, "time_s", None)
        if end_s is None:
            end_s = max((e.time_s for e in events), default=0.0)
    rows: list[dict] = []
    for t in telemetries:
        for name, count, total in t.timers:
            rows.append(
                {
                    "node": t.node,
                    "name": name,
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                }
            )
    spans: dict[tuple[int, str], list[float]] = {}
    for node, stage, dur in _stage_spans(events, end_s):
        spans.setdefault((node, f"stage.{stage}"), []).append(dur)
    for (node, name), durs in sorted(spans.items()):
        total = sum(durs)
        rows.append(
            {
                "node": node,
                "name": name,
                "count": len(durs),
                "total_s": total,
                "mean_s": total / len(durs),
            }
        )
    rows.sort(key=lambda r: (r["node"], r["name"]))
    return rows
