"""Telemetry exporters: JSONL event logs, Prometheus text metrics and
per-stage timing summaries.

All exporters accept either a :class:`~repro.sim.result.RunResult`
(whose nodes carry :class:`~repro.telemetry.recorder.NodeTelemetry`
snapshots) or the raw snapshots/events, so they work on anything the
run cache returns.  Output is deterministic: metric families and labels
are emitted in sorted order, events in timeline order.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Iterable, Sequence

from .recorder import NodeTelemetry, TelemetryEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.result import RunResult

__all__ = ["events_to_jsonl", "metrics_to_prometheus", "stage_timing_summary"]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _telemetries(source) -> list[NodeTelemetry]:
    """Accept a RunResult, an iterable of NodeTelemetry, or one snapshot."""
    if isinstance(source, NodeTelemetry):
        return [source]
    nodes = getattr(source, "nodes", None)
    if nodes is not None:  # RunResult
        return [n.telemetry for n in nodes if n.telemetry is not None]
    return [t for t in source if t is not None]


def _events(source) -> tuple[TelemetryEvent, ...]:
    events = getattr(source, "events", None)
    if events is not None and not isinstance(source, NodeTelemetry):
        return tuple(events)  # RunResult.events (already merged)
    from .recorder import merge_events

    return merge_events(_telemetries(source))


# -- JSONL event log ----------------------------------------------------------


def events_to_jsonl(source) -> str:
    """One compact JSON object per event, in timeline order.

    The flat layout (payload keys inlined next to ``time_s``/``node``/
    ``subsystem``/``kind``) grep-s and loads line-by-line — the shape
    every structured-log pipeline expects.
    """
    lines = [
        json.dumps(e.to_dict(), separators=(",", ":"), default=repr)
        for e in _events(source)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus-style text metrics -------------------------------------------


def _metric_name(prefix: str, name: str) -> str:
    return _METRIC_NAME_RE.sub("_", f"{prefix}_{name}")


def metrics_to_prometheus(source, *, prefix: str = "repro") -> str:
    """Counters, gauges and timers in Prometheus text exposition format.

    Timers expand into ``*_count`` and ``*_seconds_total`` pairs, the
    conventional summary encoding.  Every sample is labelled with its
    node id.
    """
    telemetries = _telemetries(source)
    counters: dict[str, list[tuple[int, float]]] = {}
    gauges: dict[str, list[tuple[int, float]]] = {}
    timers: dict[str, list[tuple[int, int, float]]] = {}
    for t in telemetries:
        for name, value in t.counters:
            counters.setdefault(name, []).append((t.node, value))
        for name, value in t.gauges:
            gauges.setdefault(name, []).append((t.node, value))
        for name, count, total in t.timers:
            timers.setdefault(name, []).append((t.node, count, total))

    out: list[str] = []

    def emit(name: str, kind: str, samples: list[tuple[int, float]]) -> None:
        out.append(f"# TYPE {name} {kind}")
        for node, value in sorted(samples):
            out.append(f'{name}{{node="{node}"}} {value:g}')

    for name in sorted(counters):
        emit(_metric_name(prefix, name), "counter", counters[name])
    for name in sorted(gauges):
        emit(_metric_name(prefix, name), "gauge", gauges[name])
    for name in sorted(timers):
        base = _metric_name(prefix, name)
        emit(f"{base}_count", "counter", [(n, float(c)) for n, c, _ in timers[name]])
        emit(f"{base}_seconds_total", "counter", [(n, s) for n, _, s in timers[name]])
    return "\n".join(out) + ("\n" if out else "")


# -- per-stage timing summary -------------------------------------------------


def _stage_spans(
    events: Sequence[TelemetryEvent], end_s: float
) -> Iterable[tuple[int, str, float]]:
    """Durations of policy stages per node, from ``policy/stage`` events."""
    open_stage: dict[int, tuple[str, float]] = {}
    for e in events:
        if e.subsystem != "policy" or e.kind != "stage":
            continue
        prev = open_stage.get(e.node)
        if prev is not None:
            yield e.node, prev[0], max(0.0, e.time_s - prev[1])
        open_stage[e.node] = (str(e.payload_dict.get("stage")), e.time_s)
    for node, (stage, since) in open_stage.items():
        yield node, stage, max(0.0, end_s - since)


def stage_timing_summary(source, *, end_s: float | None = None) -> list[dict]:
    """Rows of ``{node, name, count, total_s, mean_s}``.

    Two families: recorder timers (``engine.iteration_s``,
    ``earl.window_s``, ...) and policy-stage spans derived from the
    ``policy/stage`` transition events (``stage.IMC_FREQ_SEL``, ...),
    so the figure-2 state machine's time budget is visible per node.
    """
    telemetries = _telemetries(source)
    events = _events(source)
    if end_s is None:
        end_s = getattr(source, "time_s", None)
        if end_s is None:
            end_s = max((e.time_s for e in events), default=0.0)
    rows: list[dict] = []
    for t in telemetries:
        for name, count, total in t.timers:
            rows.append(
                {
                    "node": t.node,
                    "name": name,
                    "count": count,
                    "total_s": total,
                    "mean_s": total / count if count else 0.0,
                }
            )
    spans: dict[tuple[int, str], list[float]] = {}
    for node, stage, dur in _stage_spans(events, end_s):
        spans.setdefault((node, f"stage.{stage}"), []).append(dur)
    for (node, name), durs in sorted(spans.items()):
        total = sum(durs)
        rows.append(
            {
                "node": node,
                "name": name,
                "count": len(durs),
                "total_s": total,
                "mean_s": total / len(durs),
            }
        )
    rows.sort(key=lambda r: (r["node"], r["name"]))
    return rows
