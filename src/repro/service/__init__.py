"""EAR as a service: the persistent asyncio control tier.

Layout::

    protocol.py   wire format: JSON-line ops, JobSpec, envelopes
    server.py     EarService + ClusterWorker (asyncio, streaming sims)
    client.py     synchronous stdlib-socket client

The batch CLI simulates one campaign and exits; this package keeps the
simulation alive: ``repro-ear serve`` listens on a unix socket (or TCP
port), clients stream job submissions in, named cluster workers
multiplex streaming :class:`~repro.cluster.scheduler.ClusterSimulation`
instances over the shared cache-aware experiment pool, and telemetry
streams out incrementally — a JSONL event tail and a Prometheus scrape
endpoint served from the same socket.
"""

from .client import ServiceClient, ServiceError
from .protocol import PROTOCOL_VERSION, JobSpec
from .server import ClusterWorker, EarService, ServiceConfig, service_workloads

__all__ = [
    "PROTOCOL_VERSION",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "ClusterWorker",
    "EarService",
    "service_workloads",
]
