"""The persistent "EAR as a service" control tier.

One :class:`EarService` is the long-lived counterpart of a batch
``repro-ear cluster`` invocation: an asyncio server that accepts
streaming job submissions over a local unix socket (or TCP), routes
them to named :class:`ClusterWorker` instances — each multiplexing one
streaming :class:`~repro.cluster.scheduler.ClusterSimulation` — and
streams telemetry out incrementally instead of post-hoc.

Topology and flow::

    clients ──JSON lines──▶ EarService ──▶ ClusterWorker (per cluster)
    scraper ──HTTP GET  ──▶    │               │  pending deque (bounded)
                               │               ▼  sorted (submit_s, tag)
                               │           ClusterSimulation (streaming)
                               │               │  pool.run_many via
                               │               ▼  AsyncPoolBridge
                               │         ExperimentPool + RunCache
                               ▼
               EventRing + MetricsAggregator (bounded)

Backpressure is explicit at both ends: each worker's pending deque is
bounded (``max_pending``; excess submissions are *rejected*, not
buffered) and blocking simulation work dispatches through the
:class:`~repro.experiments.parallel.AsyncPoolBridge`'s in-flight cap.
Memory stays bounded regardless of how many jobs stream through:
finished outcomes are harvested into aggregates after every pump
cycle, telemetry events drain into a fixed-capacity ring, and the
run cache takes an LRU bound.

SIGTERM/SIGINT request a *graceful drain*: ingress closes, every
worker finishes its pending and in-flight jobs, EARDBD residue is
flushed, the campaign journal gets its trailer, and the process exits
cleanly — an interrupted service resumes from the journal (and the
run cache's disk layer) without re-simulating finished work.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
from collections import deque
from dataclasses import dataclass

from ..cluster.eardbd import EardbdConfig
from ..cluster.scheduler import ClusterConfig, ClusterSimulation
from ..cluster.traces import TraceJob, trace_workload_mix
from ..ear.accounting import AccountingDB
from ..ear.eargm import EargmConfig
from ..errors import ConfigError, ExperimentError
from ..experiments.journal import CampaignJournal
from ..experiments.parallel import AsyncPoolBridge, default_pool
from ..experiments.runner import standard_configs
from ..telemetry.stream import EventRing, MetricsAggregator
from ..workloads.app import Workload
from ..workloads.applications import mpi_applications
from ..workloads.kernels import bt_mz_c_mpi, lu_d_mpi, single_node_kernels
from .protocol import PROTOCOL_VERSION, JobSpec, decode, encode, error, ok

__all__ = ["ServiceConfig", "ClusterWorker", "EarService", "service_workloads"]


def service_workloads() -> dict[str, Workload]:
    """The workload registry streamed submissions resolve against.

    The synthetic campaign mix (what batch traces draw from) plus the
    paper's kernels and applications, keyed by lower-cased name.
    """
    registry: dict[str, Workload] = {}
    for wl, _ in trace_workload_mix():
        registry[wl.name.lower()] = wl
    for wl in list(single_node_kernels()) + [bt_mz_c_mpi(), lu_d_mpi()] + list(
        mpi_applications()
    ):
        registry.setdefault(wl.name.lower(), wl)
    return registry


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one ``repro-ear serve`` instance needs to know."""

    #: unix-socket path (preferred transport); None disables it.
    socket_path: str | None = None
    #: TCP listener (for environments without unix sockets); None disables.
    host: str = "127.0.0.1"
    port: int | None = None
    #: service instance name (journal identity, status banner).
    name: str = "default"
    #: defaults for auto-created clusters.
    n_nodes: int = 8
    policy: str = "me_eufs"
    budget_mj: float | None = None
    horizon_s: float = 4500.0
    flush_interval_s: float = 30.0
    backfill: bool = True
    #: per-cluster ingress bound: submissions beyond this many pending
    #: jobs are rejected with a ``backpressure`` error.
    max_pending: int = 1024
    #: concurrent blocking dispatches through the pool bridge.
    max_inflight: int = 2
    #: process pump cycles eagerly (False = only on explicit drain,
    #: which guarantees one globally sorted batch — the mode the
    #: batch-equivalence tests use).
    eager: bool = True
    #: bounded telemetry buffers.
    events_ring: int = 4096
    history_limit: int = 256
    #: LRU bound applied to the pool's run cache (None = unbounded).
    max_cache_entries: int | None = 4096
    #: write-ahead journal (resume support); fsync per record.
    journal: bool = True
    journal_dir: str | None = None
    journal_fsync: bool = True
    resume: bool = False

    def __post_init__(self) -> None:
        if self.socket_path is None and self.port is None:
            raise ConfigError("serve needs a unix socket path or a TCP port")
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if self.n_nodes < 1:
            raise ConfigError("a cluster needs at least one node")

    def ear_config_for(self, policy: str):
        """Resolve a policy name to an EarConfig (None = monitoring)."""
        configs = standard_configs()
        if policy not in configs:
            raise ConfigError(
                f"unknown policy {policy!r}; available: {sorted(configs)}"
            )
        return configs[policy]


@dataclass
class _Pending:
    """One admitted-but-not-yet-simulated submission."""

    submit_s: float
    tag: int
    order: int
    workload: Workload
    seed: int
    est_time_s: float


@dataclass
class WorkerStats:
    """Lifetime counters of one cluster worker."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    energy_j: float = 0.0


class ClusterWorker:
    """One named cluster: a streaming simulation plus its pump task.

    All simulation mutation happens on the single pump task (sorted
    batch admission, event-loop drain via the bridge, harvest), so a
    worker is free of data races by construction; the server only
    appends to the bounded pending deque and reads counters.
    """

    def __init__(
        self,
        name: str,
        policy: str,
        service_config: ServiceConfig,
        *,
        pool,
        bridge: AsyncPoolBridge,
        ring: EventRing,
        registry: dict[str, Workload],
    ) -> None:
        self.name = name
        self.policy = policy
        self.service_config = service_config
        self.registry = registry
        self.bridge = bridge
        cluster_config = ClusterConfig(
            n_nodes=service_config.n_nodes,
            ear_config=service_config.ear_config_for(policy),
            eargm=(
                EargmConfig(
                    budget_j=service_config.budget_mj * 1e6,
                    horizon_s=service_config.horizon_s,
                )
                if service_config.budget_mj is not None
                else None
            ),
            eardbd=EardbdConfig(flush_interval_s=service_config.flush_interval_s),
            backfill=service_config.backfill,
            telemetry=True,
        )
        self.sim = ClusterSimulation(
            (), cluster_config, pool=pool, accounting=AccountingDB(), streaming=True
        )
        self.ring = ring
        self.stats = WorkerStats()
        self.recent: deque = deque(maxlen=service_config.history_limit)
        self.pending: deque[_Pending] = deque()
        self._order = 0
        self._next_index = 0
        self._wakeup = asyncio.Event()
        self._cond = asyncio.Condition()
        self._busy = False
        self._closing = False
        self._task: asyncio.Task | None = None

    # -- ingress (server coroutine side) --------------------------------------

    def submit(self, spec: JobSpec) -> dict:
        """Enqueue one spec; bounded — rejects instead of buffering."""
        if self._closing:
            return error("draining", f"cluster {self.name!r} is shutting down")
        if len(self.pending) >= self.service_config.max_pending:
            self.stats.rejected += 1
            return error(
                "backpressure",
                f"cluster {self.name!r} has {len(self.pending)} pending "
                f"jobs (max {self.service_config.max_pending}); retry later",
                pending=len(self.pending),
            )
        workload = self.registry.get(spec.workload.lower())
        if workload is None:
            return error(
                "unknown_workload",
                f"unknown workload {spec.workload!r}",
                available=sorted(self.registry),
            )
        if workload.n_nodes > self.service_config.n_nodes:
            return error(
                "too_wide",
                f"workload {spec.workload!r} needs {workload.n_nodes} nodes; "
                f"cluster {self.name!r} has {self.service_config.n_nodes}",
            )
        if spec.scale != 1.0:
            workload = workload.scaled_iterations(spec.scale)
        submit_s = (
            spec.submit_s if spec.submit_s is not None else self.sim.clock.now
        )
        self._order += 1
        self.pending.append(
            _Pending(
                submit_s=submit_s,
                tag=spec.tag if spec.tag is not None else self._order,
                order=self._order,
                workload=workload,
                seed=spec.seed,
                est_time_s=workload.total_ref_time_s * spec.est_margin,
            )
        )
        self.stats.submitted += 1
        if self.service_config.eager:
            self._wakeup.set()
        return ok(
            cluster=self.name,
            pending=len(self.pending),
            submit_s=submit_s,
        )

    # -- the pump (single mutating task) --------------------------------------

    def start(self) -> None:
        """Spawn the pump task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._pump(), name=f"pump:{self.name}"
            )

    async def _pump(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self.pending:
                self._busy = True
                batch = list(self.pending)
                self.pending.clear()
                # sorted admission: concurrent clients' interleavings
                # all collapse onto the same (submit_s, tag) order.
                batch.sort(key=lambda p: (p.submit_s, p.tag, p.order))
                for item in batch:
                    job = TraceJob(
                        index=self._next_index,
                        submit_s=item.submit_s,
                        workload=item.workload,
                        seed=item.seed,
                        est_time_s=item.est_time_s,
                    )
                    self._next_index += 1
                    self.sim.submit_job(job)
                await self.bridge.call(self.sim.drain_events)
                self._harvest()
            self._busy = False
            async with self._cond:
                self._cond.notify_all()
            if self._closing and not self.pending:
                return

    def _harvest(self) -> None:
        """Fold finished work into bounded state after a pump cycle."""
        for outcome in self.sim.harvest_outcomes():
            self.stats.completed += 1
            self.stats.energy_j += outcome.dc_energy_j
            self.recent.append(outcome)
        for failure in self.sim.harvest_failures():
            self.stats.failed += 1
            self.recent.append(failure)
        self.ring.extend(self.sim.drain_telemetry_events())

    async def drain(self) -> None:
        """Wait until everything submitted so far has simulated."""
        self._wakeup.set()
        async with self._cond:
            await self._cond.wait_for(lambda: not self.pending and not self._busy)

    async def close(self) -> None:
        """Graceful shutdown: drain in-flight work, stop the pump."""
        self._closing = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None

    def status(self) -> dict:
        """One cluster's row of the service status payload."""
        sim = self.sim
        row = {
            "policy": self.policy,
            "submitted": self.stats.submitted,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "rejected": self.stats.rejected,
            "pending": len(self.pending),
            "queued": sim.n_queued,
            "running": sim.n_running,
            "energy_j": self.stats.energy_j,
            "clock_s": sim.clock.now,
        }
        if sim.eargm is not None:
            row["eargm"] = {
                "level": sim.eargm.level().name,
                "consumed_j": sim.eargm.consumed_j,
                "horizon_consumed_j": sim.eargm.horizon_consumed_j,
                "horizons_completed": sim.eargm.horizons_completed,
                "budget_j": sim.eargm.config.budget_j,
            }
        return row


class EarService:
    """The asyncio server multiplexing cluster workers.

    Use :meth:`serve_forever` from a CLI entry point (installs signal
    handlers), or :meth:`start`/:meth:`shutdown` directly from tests
    and embedding code.
    """

    def __init__(self, config: ServiceConfig, *, pool=None) -> None:
        self.config = config
        self.pool = pool if pool is not None else default_pool()
        if (
            config.max_cache_entries is not None
            and getattr(self.pool, "cache", None) is not None
        ):
            self.pool.cache.max_memory_entries = config.max_cache_entries
        self.bridge = AsyncPoolBridge(self.pool, max_inflight=config.max_inflight)
        self.registry = service_workloads()
        self.ring = EventRing(config.events_ring)
        self.metrics = MetricsAggregator()
        self.workers: dict[str, ClusterWorker] = {}
        self.journal: CampaignJournal | None = None
        self.resumed_runs = 0
        self._servers: list[asyncio.base_events.Server] = []
        self._accepting = False
        self._shutdown_requested: asyncio.Event | None = None
        self._stopped = asyncio.Event()
        self._drain_on_shutdown = True

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Open the journal and the listeners; begin accepting (idempotent)."""
        if self._shutdown_requested is not None:
            return
        if self.config.journal:
            self.journal = CampaignJournal.for_campaign(
                f"service-{self.config.name}",
                directory=self.config.journal_dir,
                resume=self.config.resume,
                meta={"service": self.config.name, "protocol": PROTOCOL_VERSION},
            )
            self.journal.fsync = self.config.journal_fsync
            if self.config.resume:
                self.resumed_runs = len(self.journal.replay().completed)
            self.pool.journal = self.journal
        if self.config.socket_path is not None:
            path = self.config.socket_path
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)
            self._servers.append(
                await asyncio.start_unix_server(self._handle_connection, path=path)
            )
        if self.config.port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection, host=self.config.host,
                    port=self.config.port,
                )
            )
        self._shutdown_requested = asyncio.Event()
        self._accepting = True

    async def serve_forever(self) -> int:
        """Run until a shutdown request (signal or ``shutdown`` op)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, self.request_shutdown)
        try:
            await self._shutdown_requested.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError):
                    loop.remove_signal_handler(sig)
            await self._finish(drain=self._drain_on_shutdown)
        return 0

    def request_shutdown(self, *, drain: bool = True) -> None:
        """Ask the serve loop to stop (signal-handler safe)."""
        self._accepting = False
        self._drain_on_shutdown = drain
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop listeners, drain workers, close the journal (tests)."""
        self.request_shutdown(drain=drain)
        await self._finish(drain=drain)

    async def _finish(self, *, drain: bool) -> None:
        if self._stopped.is_set():
            return
        self._accepting = False
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if drain:
            for worker in self.workers.values():
                await worker.close()
        else:
            for worker in self.workers.values():
                worker._closing = True
                if worker._task is not None:
                    worker._task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await worker._task
        if self.journal is not None:
            if drain:
                self.journal.finish(
                    clusters=len(self.workers),
                    completed=sum(w.stats.completed for w in self.workers.values()),
                    failed=sum(w.stats.failed for w in self.workers.values()),
                )
            self.journal.close()
            if self.pool.journal is self.journal:
                self.pool.journal = None
        if self.config.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.config.socket_path)
        self._stopped.set()

    # -- cluster routing ------------------------------------------------------

    def _worker_for(self, spec: JobSpec) -> ClusterWorker | dict:
        worker = self.workers.get(spec.cluster)
        if worker is None:
            policy = spec.policy if spec.policy is not None else self.config.policy
            try:
                worker = ClusterWorker(
                    spec.cluster,
                    policy,
                    self.config,
                    pool=self.pool,
                    bridge=self.bridge,
                    ring=self.ring,
                    registry=self.registry,
                )
            except ConfigError as err:
                return error("bad_cluster", str(err))
            worker.start()
            self.workers[spec.cluster] = worker
        elif spec.policy is not None and spec.policy != worker.policy:
            return error(
                "policy_mismatch",
                f"cluster {spec.cluster!r} runs policy {worker.policy!r}; "
                f"submit without a policy or to a fresh cluster",
            )
        return worker

    # -- request handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._handle_http(first, reader, writer)
                return
            line: bytes | None = first
            while line:
                response = await self._dispatch_line(line)
                writer.write(encode(response))
                await writer.drain()
                if response.get("_close"):
                    break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            request = decode(line)
        except ConfigError as err:
            return error("bad_request", str(err))
        op = request.pop("op", None)
        try:
            if op == "ping":
                return ok(
                    service=self.config.name,
                    protocol=PROTOCOL_VERSION,
                    accepting=self._accepting,
                )
            if op == "submit":
                return await self._op_submit(request)
            if op == "status":
                return ok(**self.status_payload())
            if op == "tail":
                n = int(request.get("n", 100))
                return ok(events=self.ring.tail(n), dropped=self.ring.dropped)
            if op == "metrics":
                return ok(text=self.render_metrics())
            if op == "drain":
                for worker in list(self.workers.values()):
                    await worker.drain()
                return ok(**self.status_payload())
            if op == "shutdown":
                self.request_shutdown(drain=bool(request.get("drain", True)))
                return {**ok(stopping=True), "_close": True}
            return error(
                "unknown_op", f"unknown op {op!r}",
            )
        except (ConfigError, ExperimentError) as err:
            return error("bad_request", str(err))

    async def _op_submit(self, request: dict) -> dict:
        if not self._accepting:
            return error("draining", "the service is shutting down")
        count = int(request.pop("count", 1))
        if count < 1:
            return error("bad_request", "count must be >= 1")
        try:
            spec = JobSpec.from_payload(request)
        except ConfigError as err:
            return error("bad_request", str(err))
        worker = self._worker_for(spec)
        if isinstance(worker, dict):  # routing error
            return worker
        accepted = 0
        last: dict = error("bad_request", "nothing submitted")
        for i in range(count):
            expanded = (
                spec
                if count == 1
                else JobSpec(
                    workload=spec.workload,
                    policy=spec.policy,
                    seed=spec.seed + i,
                    scale=spec.scale,
                    submit_s=spec.submit_s,
                    cluster=spec.cluster,
                    tag=spec.tag + i if spec.tag is not None else None,
                    est_margin=spec.est_margin,
                )
            )
            last = worker.submit(expanded)
            if not last["ok"]:
                break
            accepted += 1
        if accepted == 0:
            return last
        return ok(
            accepted=accepted,
            cluster=spec.cluster,
            pending=len(worker.pending),
        )

    # -- HTTP endpoints -------------------------------------------------------

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # drain headers; the endpoints are all GET + no body
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        try:
            target = request_line.split()[1].decode()
        except (IndexError, UnicodeDecodeError):
            writer.write(_http_response(400, "text/plain", b"bad request"))
            await writer.drain()
            return
        path, _, query = target.partition("?")
        if path == "/metrics":
            body = self.render_metrics().encode()
            writer.write(
                _http_response(200, "text/plain; version=0.0.4", body)
            )
        elif path == "/events":
            n = 100
            for part in query.split("&"):
                if part.startswith("n="):
                    with contextlib.suppress(ValueError):
                        n = int(part[2:])
            body = ("".join(line + "\n" for line in self.ring.tail(n))).encode()
            writer.write(_http_response(200, "application/x-ndjson", body))
        elif path == "/status":
            import json

            body = json.dumps(self.status_payload(), sort_keys=True).encode()
            writer.write(_http_response(200, "application/json", body))
        else:
            writer.write(_http_response(404, "text/plain", b"not found"))
        await writer.drain()

    # -- observability --------------------------------------------------------

    def status_payload(self) -> dict:
        """The ``status`` op / ``/status`` endpoint body."""
        pool_stats = self.pool.stats
        cache = getattr(self.pool, "cache", None)
        payload = {
            "service": self.config.name,
            "protocol": PROTOCOL_VERSION,
            "accepting": self._accepting,
            "resumed_runs": self.resumed_runs,
            "clusters": {
                name: worker.status() for name, worker in sorted(self.workers.items())
            },
            "events": {
                "buffered": len(self.ring),
                "total": self.ring.total_seen,
                "dropped": self.ring.dropped,
            },
            "pool": {
                "simulations": pool_stats.simulations,
                "batches": pool_stats.batches,
                "inflight": self.bridge.inflight,
                "peak_inflight": self.bridge.peak_inflight,
            },
        }
        if cache is not None:
            payload["cache"] = {
                "entries": len(cache),
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "evictions": cache.stats.memory_evictions,
            }
        return payload

    def render_metrics(self) -> str:
        """The ``/metrics`` endpoint body (Prometheus exposition text)."""
        for name, worker in sorted(self.workers.items()):
            if worker.sim.telemetry.enabled:
                self.metrics.update_source(
                    f"cluster:{name}", [worker.sim.telemetry.snapshot()]
                )
            labels = f'cluster="{name}"'
            self.metrics.set_counter(
                "service.jobs_submitted", worker.stats.submitted, labels=labels
            )
            self.metrics.set_counter(
                "service.jobs_completed", worker.stats.completed, labels=labels
            )
            self.metrics.set_counter(
                "service.jobs_failed", worker.stats.failed, labels=labels
            )
            self.metrics.set_counter(
                "service.jobs_rejected", worker.stats.rejected, labels=labels
            )
            self.metrics.set_counter(
                "service.energy_joules", worker.stats.energy_j, labels=labels
            )
            self.metrics.set_gauge(
                "service.jobs_pending", len(worker.pending), labels=labels
            )
            self.metrics.set_gauge(
                "service.jobs_running", worker.sim.n_running, labels=labels
            )
            self.metrics.set_gauge(
                "service.sim_clock_seconds", worker.sim.clock.now, labels=labels
            )
            if worker.sim.eargm is not None:
                self.metrics.set_gauge(
                    "service.eargm_horizons_completed",
                    worker.sim.eargm.horizons_completed,
                    labels=labels,
                )
                self.metrics.set_gauge(
                    "service.eargm_horizon_consumed_joules",
                    worker.sim.eargm.horizon_consumed_j,
                    labels=labels,
                )
        self.metrics.set_counter("service.events_total", self.ring.total_seen)
        self.metrics.set_gauge("service.events_buffered", len(self.ring))
        cache = getattr(self.pool, "cache", None)
        if cache is not None:
            self.metrics.set_counter("service.cache_hits", cache.stats.hits)
            self.metrics.set_counter("service.cache_misses", cache.stats.misses)
            self.metrics.set_gauge("service.cache_entries", len(cache))
        return self.metrics.render()


def _http_response(status: int, content_type: str, body: bytes) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body
