"""Synchronous client for the EAR service tier.

A deliberately boring stdlib-socket client: the server is asyncio, but
submitters (the ``repro-ear submit``/``status`` CLI, tests, batch
scripts) are plain synchronous code.  One :class:`ServiceClient` opens
one connection per request — the protocol is a single JSON line each
way, so connection reuse buys nothing and per-request connections make
the client trivially safe to share across threads.
"""

from __future__ import annotations

import json
import socket
import time

from ..errors import ExperimentError
from .protocol import decode, encode

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ExperimentError):
    """The server answered with an error envelope."""

    def __init__(self, code: str, message: str, payload: dict | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.payload = payload or {}


class ServiceClient:
    """Talk JSON lines (and raw HTTP) to a running ``repro-ear serve``."""

    def __init__(
        self,
        socket_path: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 10.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ExperimentError("client needs a unix socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return sock

    def request(self, op: str, **payload) -> dict:
        """One op round-trip; raise :class:`ServiceError` on failure."""
        with self._connect() as sock:
            sock.sendall(encode({"op": op, **payload}))
            line = _read_line(sock)
        if not line:
            raise ExperimentError("server closed the connection without replying")
        response = decode(line)
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "unknown")),
                str(response.get("message", "")),
                response,
            )
        return response

    def http_get(self, path: str) -> tuple[int, str]:
        """Raw one-shot HTTP GET against the same endpoint."""
        with self._connect() as sock:
            sock.sendall(
                f"GET {path} HTTP/1.1\r\nHost: repro\r\nConnection: close\r\n\r\n".encode()
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks).decode()
        head, _, body = raw.partition("\r\n\r\n")
        status_line = head.split("\r\n", 1)[0]
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ExperimentError(f"malformed HTTP response: {status_line!r}") from None
        return status, body

    # -- ops ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness + protocol handshake."""
        return self.request("ping")

    def submit(self, workload: str, **spec) -> dict:
        """Submit one (or ``count``) jobs; returns the admission receipt."""
        return self.request("submit", workload=workload, **spec)

    def status(self) -> dict:
        """Full service status payload."""
        return self.request("status")

    def tail(self, n: int = 100) -> list[str]:
        """The most recent ``n`` telemetry event lines (JSONL)."""
        return self.request("tail", n=n)["events"]

    def metrics(self) -> str:
        """The Prometheus exposition text, over the JSON dialect."""
        return self.request("metrics")["text"]

    def drain(self) -> dict:
        """Block until everything submitted so far has simulated."""
        return self.request("drain")

    def shutdown(self, *, drain: bool = True) -> dict:
        """Ask the server to stop (gracefully by default)."""
        return self.request("shutdown", drain=drain)

    # -- convenience ----------------------------------------------------------

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.05) -> dict:
        """Poll ``ping`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        last_err: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.ping()
            except (OSError, ExperimentError) as err:
                last_err = err
                time.sleep(interval)
        raise ExperimentError(f"service not ready after {timeout}s: {last_err}")


def _read_line(sock: socket.socket) -> bytes:
    """Read up to the first newline (responses are one JSON line)."""
    buf = bytearray()
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            break
        buf.extend(chunk)
        if b"\n" in chunk:
            break
    line, _, _ = bytes(buf).partition(b"\n")
    return line


def parse_status_json(text: str) -> dict:
    """Parse an ``/status`` HTTP body (helper for scripts and tests)."""
    return json.loads(text)
