"""Wire protocol of the EAR service tier.

One transport, two dialects on a single port/socket:

* **JSON lines** — each request is one JSON object terminated by
  ``\\n`` with an ``op`` discriminator (``ping``/``submit``/``status``/
  ``tail``/``metrics``/``drain``/``shutdown``); each response is one
  JSON object with ``ok`` plus op-specific payload.  Connections are
  persistent: a client may pipeline many requests.
* **HTTP GET** — a connection whose first bytes spell ``GET `` is
  answered as a one-shot HTTP/1.1 exchange: ``/metrics`` (Prometheus
  text exposition), ``/events`` (JSONL tail), ``/status`` (JSON).
  This is what lets a stock Prometheus scraper or ``curl`` talk to the
  same endpoint the JSON clients use.

Everything here is transport-agnostic data plumbing; the asyncio
machinery lives in :mod:`repro.service.server`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = [
    "PROTOCOL_VERSION",
    "JobSpec",
    "encode",
    "decode",
    "ok",
    "error",
]

#: Bump when a request/response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: Operations a JSON-line client may request.
KNOWN_OPS = ("ping", "submit", "status", "tail", "metrics", "drain", "shutdown")


@dataclass(frozen=True)
class JobSpec:
    """One streamed job submission, as it crosses the wire.

    ``workload`` names an entry of the server's workload registry (the
    synthetic campaign mix plus the paper kernels); ``scale`` rescales
    its iteration count, exactly like ``TraceConfig.scale`` does for
    batch traces.  ``submit_s`` pins the arrival on the *simulation*
    clock — submissions that reach the server before the clock passes
    that instant replay exactly like a batch trace; later ones are
    admitted at the clock's current time.  ``tag`` is an optional
    client-side ordering key: pending jobs are sorted by
    ``(submit_s, tag)`` before admission, which is what makes
    concurrent multi-client submission order-independent.
    """

    workload: str
    policy: str | None = None
    seed: int = 1
    scale: float = 1.0
    submit_s: float | None = None
    cluster: str = "default"
    tag: int | None = None
    est_margin: float = 1.3

    def __post_init__(self) -> None:
        if not self.workload:
            raise ConfigError("a job spec needs a workload name")
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.est_margin < 1.0:
            raise ConfigError("est_margin below 1 would make backfill optimistic")
        if self.submit_s is not None and self.submit_s < 0:
            raise ConfigError("submit_s cannot be negative")

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Build a spec from a decoded request, rejecting unknown keys."""
        known = {
            "workload",
            "policy",
            "seed",
            "scale",
            "submit_s",
            "cluster",
            "tag",
            "est_margin",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown job-spec fields: {sorted(unknown)}")
        if "workload" not in payload:
            raise ConfigError("a job spec needs a workload name")
        return cls(
            workload=str(payload["workload"]),
            policy=payload.get("policy"),
            seed=int(payload.get("seed", 1)),
            scale=float(payload.get("scale", 1.0)),
            submit_s=(
                float(payload["submit_s"])
                if payload.get("submit_s") is not None
                else None
            ),
            cluster=str(payload.get("cluster", "default")),
            tag=int(payload["tag"]) if payload.get("tag") is not None else None,
            est_margin=float(payload.get("est_margin", 1.3)),
        )


def encode(message: dict) -> bytes:
    """One message as a compact JSON line (the wire unit)."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes | str) -> dict:
    """Parse one wire line; raise ``ConfigError`` on malformed input."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as err:
        raise ConfigError(f"malformed request line: {err}") from None
    if not isinstance(message, dict):
        raise ConfigError("a request must be a JSON object")
    return message


def ok(**payload) -> dict:
    """A success response envelope."""
    return {"ok": True, **payload}


def error(code: str, message: str, **payload) -> dict:
    """A failure response envelope (``code`` is machine-matchable)."""
    return {"ok": False, "error": code, "message": message, **payload}
