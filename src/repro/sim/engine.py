"""The discrete-event simulation engine.

Executes a workload on a cluster of simulated nodes, iteration by
iteration, with one EARL instance per node (exactly the deployment the
paper describes).  Each application iteration:

1. every node executes the current phase's iteration at its present
   frequencies (the HW UFS controller converges first — its 10 ms loop
   is far below iteration durations);
2. nodes synchronise at the MPI barrier: the iteration's wall time is
   the slowest node's time, and faster nodes spend the difference
   spinning in the MPI runtime (reduced activity, no traffic);
3. each node's EARL consumes the iteration (DynAIS events, counters);
   when a measurement window completes it computes a signature, runs
   the policy and reprograms the MSRs through EARD.

Event-driven rather than time-stepped: with iteration times of
0.4-1.5 s and ≥10 s signature windows, nothing interesting happens
between iteration boundaries, so a multi-thousand-second multi-node
run simulates in milliseconds.

All stochasticity (per-iteration time jitter) flows from one seeded
generator, so runs are exactly reproducible and the paper's
three-runs-averaged methodology is honest noise averaging.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..ear.config import EarConfig
from ..ear.eard import Eard
from ..ear.earl import Earl
from ..errors import ExperimentError
from ..hw.counters import CounterBank
from ..hw.node import Cluster, Node
from ..hw.units import ratio_to_ghz
from ..telemetry.recorder import NULL_RECORDER, EventRecorder, Recorder
from ..workloads.app import Workload
from ..workloads.phase import PhaseProfile
from .faults import FaultInjector, FaultPlan, HealthMonitor
from .result import FrequencySample, NodeResult, RunResult

__all__ = ["SimulationEngine", "run_workload"]

#: relative sigma of the per-iteration lognormal time jitter.
DEFAULT_NOISE_SIGMA = 0.003

#: activity factor of cores spinning at the MPI barrier, relative to
#: the phase's compute activity.
_WAIT_ACTIVITY_FACTOR = 0.5


class SimulationEngine:
    """One job execution: workload x cluster x (optional) EAR."""

    def __init__(
        self,
        workload: Workload,
        *,
        ear_config: EarConfig | None = None,
        seed: int = 0,
        noise_sigma: float = DEFAULT_NOISE_SIGMA,
        record_trace: bool = False,
        pin_cpu_ghz: float | None = None,
        pin_uncore_ghz: float | None = None,
        node_speed_spread: float = 0.0,
        fault_plan: FaultPlan | None = None,
        telemetry: bool = False,
        engine: str = "scalar",
    ) -> None:
        """``pin_cpu_ghz``/``pin_uncore_ghz`` fix frequencies for the whole
        run (the motivation study's fixed-uncore sweeps, section II of the
        paper); they are mutually exclusive with an EAR configuration.

        ``telemetry`` arms one :class:`~repro.telemetry.EventRecorder`
        per node, threaded through EARD, EARL, the policy and the fault
        injector; the default is the zero-cost ``NullRecorder``, so the
        clean path stays bit-identical with telemetry off.  Recorders
        draw no randomness, so physics is identical either way.

        ``node_speed_spread`` introduces static per-node performance
        heterogeneity (manufacturing/thermal variation): each node gets
        a fixed multiplicative slowdown factor drawn once per run, so
        the same node is the straggler at every barrier — the realistic
        worst case for bulk-synchronous codes.

        ``fault_plan`` arms the deterministic fault-injection layer
        (:mod:`repro.sim.faults`): each node gets an injector seeded
        from ``(plan.seed, seed, node_id)``, independent of the
        iteration-noise RNG, so the clean-path result is bit-identical
        with and without an all-zero plan.

        ``engine`` selects the inner-loop implementation: ``"scalar"``
        (the reference, one iteration per node per Python step) or
        ``"batched"`` (:mod:`repro.sim.kernel`, numpy over whole
        iteration chunks).  Both consume the run RNG identically, so
        iteration times — and therefore every window boundary and
        policy decision — match; see
        ``tests/sim/test_kernel_equivalence.py`` for the pinned gate.

        RNG draw order (the reproducibility contract, which both
        engines and the zero-noise property tests rely on):

        1. at construction, ``uniform(0, node_speed_spread, n_nodes)``
           — drawn **only** when ``node_speed_spread > 0``;
        2. per iteration, ``normal(0, noise_sigma, n_nodes)`` — drawn
           **only** when ``noise_sigma > 0``.

        Disabled features must not consume draws, so e.g. turning the
        spread off leaves the per-iteration noise stream unchanged.
        The fault injectors own separate generators and never touch
        this stream.
        """
        if noise_sigma < 0:
            raise ExperimentError("noise sigma cannot be negative")
        if engine not in ("scalar", "batched"):
            raise ExperimentError(
                f"unknown engine {engine!r}; expected 'scalar' or 'batched'"
            )
        if not 0.0 <= node_speed_spread < 0.3:
            raise ExperimentError("node_speed_spread must be in [0, 0.3)")
        if ear_config is not None and (
            pin_cpu_ghz is not None or pin_uncore_ghz is not None
        ):
            # Pins under an observe-only policy are the learning phase:
            # EAR's "compute coefficients" jobs measure signatures at a
            # fixed operating point.  A frequency-setting policy would
            # fight the pins, so those stay rejected.
            from ..ear.policies.registry import policy_applies_frequencies

            if policy_applies_frequencies(ear_config.policy):
                raise ExperimentError(
                    "cannot pin frequencies under a frequency-setting EAR policy"
                )
        self.workload = workload.calibrated()
        self.engine = engine
        self.ear_config = ear_config
        self.seed = seed
        self.noise_sigma = noise_sigma
        self.record_trace = record_trace
        self.cluster = Cluster(self.workload.node_config, self.workload.n_nodes)
        self.telemetry_enabled = telemetry
        self.recorders: dict[int, Recorder] = {}
        for node in self.cluster:
            if telemetry:
                # clock bound to the node: every subsystem's events are
                # stamped with that node's simulated elapsed time.
                self.recorders[node.node_id] = EventRecorder(
                    node=node.node_id, clock=(lambda n=node: n.elapsed_s)
                )
            else:
                self.recorders[node.node_id] = NULL_RECORDER
            # the backend emits uncore/limit_write on every landed limit
            # write, including the pin writes just below.
            node.uncore_backend.telemetry = self.recorders[node.node_id]
        for node in self.cluster:
            if pin_cpu_ghz is not None:
                node.set_core_freq(pin_cpu_ghz, privileged=True)
            if pin_uncore_ghz is not None:
                from ..hw.msr import UncoreRatioLimit
                from ..hw.units import ghz_to_ratio

                ratio = ghz_to_ratio(pin_uncore_ghz)
                node.set_uncore_limits(
                    UncoreRatioLimit(min_ratio=ratio, max_ratio=ratio),
                    privileged=True,
                )
        self.banks = {node.node_id: CounterBank() for node in self.cluster}
        self.fault_plan = fault_plan
        self.monitors = {node.node_id: HealthMonitor() for node in self.cluster}
        self.injectors: dict[int, FaultInjector] = {}
        if fault_plan is not None and fault_plan.enabled:
            for node in self.cluster:
                self.injectors[node.node_id] = FaultInjector(
                    fault_plan,
                    run_seed=seed,
                    node_id=node.node_id,
                    health=self.monitors[node.node_id],
                    telemetry=self.recorders[node.node_id],
                )
        self.earls: dict[int, Earl] = {}
        if ear_config is not None:
            for node in self.cluster:
                eard = Eard(
                    node,
                    injector=self.injectors.get(node.node_id),
                    health=self.monitors[node.node_id],
                    telemetry=self.recorders[node.node_id],
                )
                self.earls[node.node_id] = Earl(eard, ear_config)
        self._rng = np.random.default_rng(seed)
        # static heterogeneity: slowdown factors >= 1, fixed for the run
        if node_speed_spread > 0:
            draws = self._rng.uniform(0.0, node_speed_spread, size=len(self.cluster))
            self._node_slowdown = 1.0 + draws
        else:
            self._node_slowdown = np.ones(len(self.cluster))
        self._time_s = 0.0
        self._trace: list[FrequencySample] = []

    # -- execution ---------------------------------------------------------

    def run(self) -> RunResult:
        """Execute every phase to completion; return the job outcome."""
        if self.engine == "batched":
            from .kernel import BatchedKernel

            BatchedKernel(self).run_phases()
        else:
            for profile, n_iterations in self.workload.phases:
                for _ in range(n_iterations):
                    self._run_iteration(profile)
        for earl in self.earls.values():
            earl.on_app_end()
        return self._result()

    def _run_iteration(self, profile: PhaseProfile) -> None:
        noises = self._iteration_noise(len(self.cluster)) * self._node_slowdown
        counters = {}
        for node, noise in zip(self.cluster, noises):
            injector = self.injectors.get(node.node_id)
            clamp = None
            if injector is not None:
                injector.on_iteration_start(node)
                clamp = injector.throttle_clamp_ghz(node.elapsed_s)
            counters[node.node_id] = profile.execute_iteration(
                node, noise=noise, clamp_ghz=clamp
            )
        t_wall = max(c.seconds for c in counters.values())
        for node in self.cluster:
            c = counters[node.node_id]
            wait = t_wall - c.seconds
            if wait > 1e-12:
                self._spin_wait(node, profile, wait)
            self.banks[node.node_id].add_iteration(c, wall_seconds=t_wall)
            earl = self.earls.get(node.node_id)
            if earl is not None:
                injector = self.injectors.get(node.node_id)
                # corruption hits only EARL's *read* of the counters;
                # the engine's ground-truth bank above stays exact.
                seen = c if injector is None else injector.corrupt_counters(c)
                earl.on_iteration(seen, profile.mpi_events, t_wall)
        self._time_s += t_wall
        if self.telemetry_enabled:
            for node in self.cluster:
                rec = self.recorders[node.node_id]
                rec.observe("engine.iteration_s", t_wall)
                rec.event(
                    "engine",
                    "freq_sample",
                    cpu_target_ghz=node.core_target_ghz,
                    imc_freq_ghz=node.uncore_freq_ghz,
                )
        if self.record_trace:
            node0 = self.cluster.nodes[0]
            self._trace.append(
                FrequencySample(
                    at_s=self._time_s,
                    cpu_target_ghz=node0.core_target_ghz,
                    imc_freq_ghz=node0.uncore_freq_ghz,
                )
            )

    def _spin_wait(self, node: Node, profile: PhaseProfile, seconds: float) -> None:
        """Burn barrier-wait time spinning in the MPI runtime."""
        eff_ghz = node.sockets[0].effective_freq_ghz(0.0)
        op = profile.operating_point(node, effective_core_ghz=eff_ghz)
        op = replace(
            op,
            activity=profile.activity * _WAIT_ACTIVITY_FACTOR,
            traffic_gbs=0.0,
            vpi=0.0,
        )
        node.advance(op, seconds)

    def _iteration_noise(self, n: int) -> np.ndarray:
        if self.noise_sigma == 0:
            return np.ones(n)
        return np.exp(self._rng.normal(0.0, self.noise_sigma, size=n))

    # -- results ----------------------------------------------------------------

    def _result(self) -> RunResult:
        nodes = []
        for node in self.cluster:
            snap = self.banks[node.node_id].snapshot()
            monitor = self.monitors[node.node_id]
            monitor.finish(node.elapsed_s)
            nodes.append(
                NodeResult(
                    node_id=node.node_id,
                    dc_energy_j=node.dc_meter.exact_joules,
                    pck_energy_j=node.pck_energy_j,
                    seconds=node.elapsed_s,
                    avg_cpu_freq_ghz=node.average_cpu_freq_ghz(),
                    avg_imc_freq_ghz=node.average_imc_freq_ghz(),
                    cpi=snap.cpi if snap.instructions > 0 else 0.0,
                    gbs=snap.gbs,
                    health=monitor.snapshot(),
                    telemetry=self.recorders[node.node_id].snapshot(),
                )
            )
        nodes = tuple(nodes)
        earl0 = self.earls.get(0)
        policy = "none" if self.ear_config is None else self.ear_config.policy
        node_config = self.workload.node_config
        return RunResult(
            workload=self.workload.name,
            n_nodes=self.workload.n_nodes,
            policy=policy,
            seed=self.seed,
            time_s=self._time_s,
            nodes=nodes,
            signatures=tuple(earl0.signatures) if earl0 else (),
            decisions=tuple(earl0.decisions) if earl0 else (),
            freq_trace=tuple(self._trace),
            cpu_freq_range_ghz=(
                node_config.pstates.min_ghz,
                node_config.pstates.turbo_ghz,
            ),
            imc_freq_range_ghz=(
                ratio_to_ghz(node_config.uncore_min_ratio),
                ratio_to_ghz(node_config.uncore_max_ratio),
            ),
        )


def run_workload(
    workload: Workload,
    *,
    ear_config: EarConfig | None = None,
    seed: int = 0,
    noise_sigma: float = DEFAULT_NOISE_SIGMA,
    record_trace: bool = False,
    pin_cpu_ghz: float | None = None,
    pin_uncore_ghz: float | None = None,
    node_speed_spread: float = 0.0,
    fault_plan: FaultPlan | None = None,
    telemetry: bool = False,
    engine: str = "scalar",
) -> RunResult:
    """Convenience wrapper: build an engine and run it once."""
    return SimulationEngine(
        workload,
        ear_config=ear_config,
        seed=seed,
        noise_sigma=noise_sigma,
        record_trace=record_trace,
        pin_cpu_ghz=pin_cpu_ghz,
        pin_uncore_ghz=pin_uncore_ghz,
        node_speed_spread=node_speed_spread,
        fault_plan=fault_plan,
        telemetry=telemetry,
        engine=engine,
    ).run()
